// Command monatt-ledger is the auditor's view of the attestation evidence
// ledger (the durable trail behind the paper's Property Certification
// Module, §3.2.3). It has three modes:
//
//	monatt-ledger demo -dir DIR [-seed N]
//	    run a small simulated cloud that persists its evidence under DIR:
//	    launches, appraisals, a rootkit infection with its remediation,
//	    periodic attestation and pCA issuances all chain into the ledger,
//	    and a signed checkpoint of the head is printed.
//
//	monatt-ledger verify -dir DIR
//	    independently replay the hash chain from the compaction snapshot
//	    to the head, recomputing every entry hash and link. This shares no
//	    state with the process that wrote the ledger: it is the auditor's
//	    proof that the evidence was not rewritten.
//
//	monatt-ledger show -dir DIR [-vid V] [-kind K] [-prop P] [-limit N]
//	    query committed entries by VM, entry kind, property, or any
//	    combination.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/properties"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		demo(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "show":
		show(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: monatt-ledger {demo|verify|show} -dir DIR [options]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "monatt-ledger:", err)
	os.Exit(1)
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	dir := fs.String("dir", "", "ledger directory (required)")
	seed := fs.Int64("seed", 42, "simulation seed")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}

	tb, err := cloudsim.New(cloudsim.Options{Seed: *seed, LedgerDir: *dir})
	if err != nil {
		fatal(err)
	}
	cu, err := tb.NewCustomer("auditor-demo")
	if err != nil {
		fatal(err)
	}
	req := controller.LaunchRequest{
		ImageName: "cirros", Flavor: "small", Workload: "database",
		Props:     properties.All,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.1, Pin: -1,
	}
	healthy, err := cu.Launch(req)
	if err != nil || !healthy.OK {
		fatal(fmt.Errorf("launch: %v %s", err, healthy.Reason))
	}
	victim, err := cu.Launch(req)
	if err != nil || !victim.OK {
		fatal(fmt.Errorf("launch: %v %s", err, victim.Reason))
	}

	// Periodic monitoring on the healthy VM.
	if err := cu.StartPeriodic(healthy.Vid, properties.CPUAvailability, 5*time.Second); err != nil {
		fatal(err)
	}
	tb.RunFor(20 * time.Second)
	if _, err := cu.StopPeriodic(healthy.Vid, properties.CPUAvailability); err != nil {
		fatal(err)
	}

	// Infect the second VM: the failed appraisal triggers the Response
	// Module, and both land in the ledger.
	g, err := tb.GuestOf(victim.Vid)
	if err != nil {
		fatal(err)
	}
	g.InfectRootkit("demo-rootkit")
	if v, err := cu.Attest(victim.Vid, properties.RuntimeIntegrity); err != nil {
		fatal(err)
	} else if v.Healthy {
		fatal(fmt.Errorf("infected VM attested healthy"))
	}

	n, err := tb.Ledger.Verify()
	if err != nil {
		fatal(err)
	}
	seq, hash := tb.Ledger.Head()
	fmt.Printf("evidence ledger at %s\n", *dir)
	fmt.Printf("  entries committed: %d (chain verified)\n", n)
	fmt.Printf("  head: seq=%d hash=%x\n", seq, hash[:8])
	for _, kind := range []ledger.Kind{ledger.KindLaunch, ledger.KindAppraisal, ledger.KindRemediation, ledger.KindCertIssue} {
		es, err := tb.Ledger.Query(ledger.Filter{Kind: kind})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-12s %d\n", kind, len(es))
	}
	anchor := cryptoutil.MustIdentity("cloud-operator")
	cp := tb.Ledger.Checkpoint(anchor)
	// The auditor re-checks the anchor signature through the batch
	// verifier — the same path a fleet auditor uses to validate many
	// anchored checkpoints in one sweep.
	if err := ledger.VerifyCheckpointWith(cp, anchor.Public(), cryptoutil.NewBatchVerifier(0)); err != nil {
		fatal(err)
	}
	fmt.Printf("  signed checkpoint: seq=%d signer=%s sig=%x... (verified)\n", cp.Seq, cp.Signer, cp.Sig[:8])
	fmt.Printf("\n%s\n", tb.Ledger.Metrics().Render())
	if err := tb.Ledger.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("replay independently with: monatt-ledger verify -dir %s\n", *dir)
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "ledger directory (required)")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}
	res, err := ledger.Audit(*dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("chain OK: %d entries replayed (seq %d..%d), head hash %x\n",
		res.Entries, res.BaseSeq+1, res.HeadSeq, res.HeadHash)
}

func show(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	dir := fs.String("dir", "", "ledger directory (required)")
	vid := fs.String("vid", "", "filter by VM id")
	kind := fs.String("kind", "", "filter by entry kind")
	prop := fs.String("prop", "", "filter by property")
	limit := fs.Int("limit", 0, "maximum entries to print")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}
	l, err := ledger.Open(ledger.Options{Dir: *dir, ReadOnly: true})
	if err != nil {
		fatal(err)
	}
	defer l.Close()
	es, err := l.Query(ledger.Filter{Vid: *vid, Kind: ledger.Kind(*kind), Prop: *prop, Limit: *limit})
	if err != nil {
		fatal(err)
	}
	for _, e := range es {
		fmt.Printf("%6d  %12s  %-12s %-10s %-22s %s\n",
			e.Seq, e.At, e.Kind, e.Vid, e.Prop, e.Payload)
	}
	fmt.Printf("%d entries\n", len(es))
}
