package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestCLIBinaryEndToEnd builds the real monatt-cloud and monatt-cli
// binaries, runs the cloud daemon over loopback TCP, and drives the full
// customer flow from the CLI process: launch, list, attest all four
// properties, and terminate.
func TestCLIBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary end-to-end test skipped in -short mode")
	}
	dir := t.TempDir()
	build := func(name, pkg string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = mustModuleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	cloudBin := build("monatt-cloud", "./cmd/monatt-cloud")
	cliBin := build("monatt-cli", "./cmd/monatt-cli")

	bootstrap := filepath.Join(dir, "bootstrap.json")
	cloud := exec.Command(cloudBin, "-servers", "2", "-bootstrap", bootstrap, "-pump", "50ms")
	var cloudOut bytes.Buffer
	cloud.Stdout = &cloudOut
	cloud.Stderr = &cloudOut
	if err := cloud.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cloud.Process.Kill()
		cloud.Wait()
	}()

	// Wait for the bootstrap file.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := os.Stat(bootstrap); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cloud never wrote the bootstrap file; output:\n%s", cloudOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	cli := func(args ...string) string {
		cmd := exec.Command(cliBin, append([]string{"-bootstrap", bootstrap}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("cli %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	launchOut := cli("launch", "-image", "cirros", "-flavor", "small", "-workload", "database")
	m := regexp.MustCompile(`launched (vm-\d+)`).FindStringSubmatch(launchOut)
	if m == nil {
		t.Fatalf("launch output: %s", launchOut)
	}
	vid := m[1]
	if !strings.Contains(launchOut, "attestation") {
		t.Fatalf("launch output missing stage breakdown: %s", launchOut)
	}

	listOut := cli("list")
	if !strings.Contains(listOut, vid) || !strings.Contains(listOut, "active") {
		t.Fatalf("list output: %s", listOut)
	}

	for _, prop := range []string{
		"startup-integrity", "runtime-integrity", "covert-channel-freedom", "cpu-availability",
	} {
		out := cli("attest", "-vid", vid, "-prop", prop)
		if !strings.Contains(out, "HEALTHY") {
			t.Fatalf("attest %s: %s", prop, out)
		}
	}

	if out := cli("events"); !strings.Contains(out, "no remediation") {
		t.Fatalf("events output: %s", out)
	}

	statusOut := cli("vm", "status", "-vid", vid)
	for _, want := range []string{vid, "state=active", "Placed", "Attested", "Healthy"} {
		if !strings.Contains(statusOut, want) {
			t.Fatalf("vm status output missing %q:\n%s", want, statusOut)
		}
	}

	if out := cli("terminate", "-vid", vid); !strings.Contains(out, "terminated") {
		t.Fatalf("terminate output: %s", out)
	}
	if out := cli("list"); !strings.Contains(out, "no VMs") {
		t.Fatalf("list after terminate: %s", out)
	}
	if out := cli("vm", "status", "-vid", vid); !strings.Contains(out, "state=terminated") {
		t.Fatalf("vm status after terminate: %s", out)
	}
}

// mustModuleRoot locates the module root (where go.mod lives).
func mustModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}
