// Command monatt-cli is the cloud customer: it connects to a running
// monatt-cloud over TCP with its enrolled identity and drives the nova api,
// including the four attestation commands of Table 1. Every attestation
// report is end-verified (controller signature, nonce N1, quote Q1) before
// it is displayed — the CLI is the paper's "end-verifier".
//
// Usage:
//
//	monatt-cli [-bootstrap monatt-bootstrap.json] <command> [flags]
//
// Commands:
//
//	launch    -image ubuntu -flavor small -workload database \
//	          -props startup-integrity,runtime-integrity -allowlist init,sshd
//	attest    -vid vm-0001 -prop cpu-availability
//	periodic  -vid vm-0001 -prop cpu-availability -freq 5s
//	fetch     -vid vm-0001 -prop cpu-availability
//	stop      -vid vm-0001 -prop cpu-availability
//	terminate -vid vm-0001
//	list                 (this customer's VMs)
//	events               (remediation responses executed on them)
//	vm status -vid vm-0001   (reconcile view: lifecycle, placement, conditions)
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/secchan"
	"cloudmonatt/internal/wire"
)

type bootstrap struct {
	ControllerAddr   string `json:"controller_addr"`
	ControllerKey    string `json:"controller_key"`
	CustomerName     string `json:"customer_name"`
	CustomerSeedPath string `json:"customer_seed_path"` // raw Ed25519 seed file
}

type cli struct {
	client   *rpc.ReconnectClient
	ctrlKey  ed25519.PublicKey
	opBudget time.Duration
}

// opCtx bounds one CLI operation end to end (every retry attempt plus
// backoff), so a dead controller yields an error instead of a hung prompt.
func (c *cli) opCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), c.opBudget)
}

func connect(path string, timeout time.Duration, retries int) (*cli, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading bootstrap (is monatt-cloud running?): %w", err)
	}
	var bs bootstrap
	if err := json.Unmarshal(data, &bs); err != nil {
		return nil, err
	}
	ctrlKey, err := base64.StdEncoding.DecodeString(bs.ControllerKey)
	if err != nil {
		return nil, err
	}
	// The seed is provisioned out of band from the public bootstrap JSON:
	// a raw 0600 file monatt-cloud wrote through WriteSecretFile.
	seed, err := os.ReadFile(bs.CustomerSeedPath)
	if err != nil {
		return nil, fmt.Errorf("reading customer seed: %w", err)
	}
	id, err := cryptoutil.IdentityFromSeed(bs.CustomerName, seed)
	if err != nil {
		return nil, err
	}
	verify := func(name string, key ed25519.PublicKey) error {
		if name != "cloud-controller" || !cryptoutil.KeyEqual(key, ctrlKey) {
			return errors.New("controller identity mismatch")
		}
		return nil
	}
	client := rpc.NewReconnectClient(rpc.ClientConfig{
		Network:     rpc.TCPNetwork{},
		Addr:        bs.ControllerAddr,
		Peer:        "cloud-controller",
		Secchan:     secchan.Config{Identity: id, Verify: verify},
		Retry:       rpc.RetryPolicy{MaxAttempts: retries},
		CallTimeout: timeout,
		// Read-only queries are safe to blindly re-issue; mutations go
		// through idempotency keys or fresh nonces below.
		Idempotent: func(method string) bool {
			return method == controller.MethodListVMs || method == controller.MethodListEvents ||
				method == controller.MethodVMStatus
		},
	})
	c := &cli{client: client, ctrlKey: ctrlKey,
		opBudget: time.Duration(retries)*timeout + 5*time.Second}
	ctx, cancel := c.opCtx()
	defer cancel()
	if err := client.Connect(ctx); err != nil {
		client.Close()
		return nil, fmt.Errorf("dialing controller: %w", err)
	}
	return c, nil
}

func parseProp(s string) (properties.Property, error) {
	p := properties.Property(s)
	if !properties.Valid(p) {
		return "", fmt.Errorf("unknown property %q (valid: %v)", s, properties.All)
	}
	return p, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func main() {
	log.SetFlags(0)
	bootstrapPath := flag.String("bootstrap", "monatt-bootstrap.json", "bootstrap file from monatt-cloud")
	timeout := flag.Duration("timeout", 30*time.Second, "per-attempt RPC timeout")
	retries := flag.Int("retries", 4, "max attempts per retryable RPC")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: monatt-cli [-bootstrap FILE] [-timeout 30s] [-retries 4] <launch|attest|periodic|fetch|stop|terminate> [flags]")
	}
	c, err := connect(*bootstrapPath, *timeout, *retries)
	if err != nil {
		log.Fatal(err)
	}
	defer c.client.Close()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "launch":
		fs := flag.NewFlagSet("launch", flag.ExitOnError)
		img := fs.String("image", "ubuntu", "VM image (cirros, fedora, ubuntu)")
		flavor := fs.String("flavor", "small", "flavor (small, medium, large)")
		work := fs.String("workload", "database", "workload name")
		props := fs.String("props", "startup-integrity,runtime-integrity,covert-channel-freedom,cpu-availability", "requested security properties")
		allow := fs.String("allowlist", "init,sshd,cron,rsyslogd,agetty", "task allowlist for runtime integrity")
		minShare := fs.Float64("minshare", 0.25, "SLA CPU-share floor")
		server := fs.String("server", "", "explicit placement on a named cloud server (bypasses the property filter; capacity still enforced)")
		fs.Parse(args)
		var ps []properties.Property
		for _, s := range splitList(*props) {
			p, err := parseProp(s)
			if err != nil {
				log.Fatal(err)
			}
			ps = append(ps, p)
		}
		var res controller.LaunchResult
		ctx, cancel := c.opCtx()
		defer cancel()
		err := c.client.CallIdem(ctx, controller.MethodLaunchVM, rpc.NewIdemKey(), controller.LaunchRequest{
			ImageName: *img, Flavor: *flavor, Workload: *work, Server: *server,
			Props: ps, Allowlist: splitList(*allow), MinShare: *minShare, Pin: -1,
		}, &res)
		if err != nil {
			log.Fatal(err)
		}
		if !res.OK {
			log.Fatalf("launch rejected: %s", res.Reason)
		}
		fmt.Printf("launched %s (startup attestation: %s)\n", res.Vid, res.Verdict.Reason)
		for _, st := range res.Stages {
			fmt.Printf("  %-22s %6.2fs\n", st.Stage, st.Duration.Seconds())
		}

	case "attest":
		fs := flag.NewFlagSet("attest", flag.ExitOnError)
		vid := fs.String("vid", "", "VM id")
		prop := fs.String("prop", string(properties.RuntimeIntegrity), "property to attest")
		fs.Parse(args)
		p, err := parseProp(*prop)
		if err != nil {
			log.Fatal(err)
		}
		method := controller.MethodRuntimeAttestCurrent
		if p == properties.StartupIntegrity {
			method = controller.MethodStartupAttestCurrent
		}
		// N1 is regenerated per retry attempt so the controller's replay
		// cache never rejects a re-issued request.
		var n1 cryptoutil.Nonce
		var rep wire.CustomerReport
		ctx, cancel := c.opCtx()
		defer cancel()
		if err := c.client.CallFresh(ctx, method, func(int) (any, error) {
			n1 = cryptoutil.MustNonce()
			return wire.AttestRequest{Vid: *vid, Prop: p, N1: n1}, nil
		}, &rep); err != nil {
			log.Fatal(err)
		}
		if err := wire.VerifyCustomerReport(&rep, c.ctrlKey, *vid, p, n1); err != nil {
			log.Fatalf("REJECTING report: %v", err)
		}
		if rep.Stale {
			fmt.Printf("WARNING: attestation infrastructure unavailable; last-known-good verdict, %s old\n",
				rep.Age.Round(time.Millisecond))
		}
		fmt.Println(rep.Verdict.String())
		for k, v := range rep.Verdict.Details {
			fmt.Printf("  %s: %s\n", k, v)
		}

	case "periodic":
		fs := flag.NewFlagSet("periodic", flag.ExitOnError)
		vid := fs.String("vid", "", "VM id")
		prop := fs.String("prop", string(properties.CPUAvailability), "property")
		freq := fs.Duration("freq", 5*time.Second, "attestation frequency")
		fs.Parse(args)
		p, err := parseProp(*prop)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := c.opCtx()
		defer cancel()
		if err := c.client.CallIdem(ctx, controller.MethodRuntimeAttestPeriodic, rpc.NewIdemKey(), wire.PeriodicRequest{
			Vid: *vid, Prop: p, Freq: *freq, N1: cryptoutil.MustNonce(),
		}, nil); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("periodic attestation of %s armed at %v; use `fetch` for fresh results\n", p, *freq)

	case "fetch", "stop":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		vid := fs.String("vid", "", "VM id")
		prop := fs.String("prop", string(properties.CPUAvailability), "property")
		fs.Parse(args)
		p, err := parseProp(*prop)
		if err != nil {
			log.Fatal(err)
		}
		method := controller.MethodFetchPeriodic
		if cmd == "stop" {
			method = controller.MethodStopAttestPeriodic
		}
		n1 := cryptoutil.MustNonce()
		var reps []*wire.CustomerReport
		// Drains are idempotency-keyed: a retried drain replays the recorded
		// batch instead of losing it.
		ctx, cancel := c.opCtx()
		defer cancel()
		if err := c.client.CallIdem(ctx, method, rpc.NewIdemKey(),
			wire.StopPeriodicRequest{Vid: *vid, Prop: p, N1: n1}, &reps); err != nil {
			log.Fatal(err)
		}
		for _, rep := range reps {
			if err := wire.VerifyCustomerReport(rep, c.ctrlKey, *vid, p, n1); err != nil {
				log.Fatalf("REJECTING report: %v", err)
			}
			fmt.Println(rep.Verdict.String())
		}
		if cmd == "stop" {
			fmt.Println("periodic attestation stopped")
		} else if len(reps) == 0 {
			fmt.Println("no fresh results yet")
		}

	case "terminate":
		fs := flag.NewFlagSet("terminate", flag.ExitOnError)
		vid := fs.String("vid", "", "VM id")
		fs.Parse(args)
		ctx, cancel := c.opCtx()
		defer cancel()
		if err := c.client.CallIdem(ctx, controller.MethodTerminateVM, rpc.NewIdemKey(),
			struct{ Vid string }{*vid}, nil); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s terminated\n", *vid)

	case "list":
		var vms []controller.VMSummary
		ctx, cancel := c.opCtx()
		defer cancel()
		if err := c.client.CallCtx(ctx, controller.MethodListVMs, struct{}{}, &vms); err != nil {
			log.Fatal(err)
		}
		if len(vms) == 0 {
			fmt.Println("no VMs")
			return
		}
		fmt.Printf("%-10s %-8s %-8s %-14s %-10s %s\n", "VID", "IMAGE", "FLAVOR", "WORKLOAD", "STATE", "PROPERTIES")
		for _, vm := range vms {
			props := make([]string, len(vm.Props))
			for i, p := range vm.Props {
				props[i] = string(p)
			}
			fmt.Printf("%-10s %-8s %-8s %-14s %-10s %s\n",
				vm.Vid, vm.ImageName, vm.Flavor, vm.Workload, vm.State, strings.Join(props, ","))
		}

	case "events":
		var events []controller.ResponseEvent
		ctx, cancel := c.opCtx()
		defer cancel()
		if err := c.client.CallCtx(ctx, controller.MethodListEvents, struct{}{}, &events); err != nil {
			log.Fatal(err)
		}
		if len(events) == 0 {
			fmt.Println("no remediation responses executed")
			return
		}
		for _, ev := range events {
			fmt.Printf("t=%-8s %-11s %-8s prop=%-24s %.1fs  %s\n",
				ev.At.Round(time.Millisecond), ev.Response, ev.Vid, ev.Prop, ev.Duration.Seconds(), ev.Reason)
		}

	case "vm", "status":
		// "vm status" is the documented spelling; bare "status" works too.
		if cmd == "vm" {
			if len(args) < 1 || args[0] != "status" {
				log.Fatal("usage: monatt-cli vm status -vid vm-0001")
			}
			args = args[1:]
		}
		fs := flag.NewFlagSet("status", flag.ExitOnError)
		vid := fs.String("vid", "", "VM id")
		fs.Parse(args)
		var st wire.VMStatus
		ctx, cancel := c.opCtx()
		defer cancel()
		if err := c.client.CallCtx(ctx, controller.MethodVMStatus, struct{ Vid string }{*vid}, &st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  owner=%s  server=%s  state=%s", st.Vid, st.Owner, st.Server, st.State)
		if st.Deleted {
			fmt.Printf("  deleted  finalized=%v", st.Finalized)
		}
		fmt.Println()
		if len(st.Conditions) == 0 {
			fmt.Println("no conditions recorded")
			return
		}
		fmt.Printf("%-14s %-8s %-16s %s\n", "CONDITION", "STATUS", "REASON", "MESSAGE")
		for _, cond := range st.Conditions {
			fmt.Printf("%-14s %-8s %-16s %s\n", cond.Type, cond.Status, cond.Reason, cond.Message)
		}

	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
