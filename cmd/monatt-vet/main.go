// monatt-vet runs CloudMonatt's protocol-invariant analyzers
// (internal/lint) over module packages and fails on any finding.
//
// Usage:
//
//	go run ./cmd/monatt-vet ./...
//	go run ./cmd/monatt-vet -only consttime,ctxdeadline ./internal/rpc
//	go run ./cmd/monatt-vet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
//
// The analyzers encode rules the compiler cannot see: virtual-clock
// discipline (vclockonly), nonce freshness across retries (noncefresh),
// constant-time comparison of secret-derived material (consttime), RPC
// deadlines at every entity boundary (ctxdeadline), span hygiene
// (spanend), and the metric naming convention (metricsname). Suppress a
// finding only with an audited directive: //lint:wallclock <why> or
// //lint:ignore <analyzer> <why>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudmonatt/internal/lint"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		timing  = flag.Bool("t", false, "print load/analysis wall times")
		exclude = flag.String("exclude", "", "comma-separated analyzer names to skip")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers = filterAnalyzers(analyzers, *only, *exclude)
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "monatt-vet: no analyzers selected")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "monatt-vet:", err)
		os.Exit(2)
	}
	t0 := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monatt-vet:", err)
		os.Exit(2)
	}
	tLoad := time.Since(t0)

	t1 := time.Now()
	diags := lint.RunAll(pkgs, analyzers)
	tRun := time.Since(t1)

	for _, d := range diags {
		fmt.Println(d.String(loader.Fset))
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "monatt-vet: %d packages, load+typecheck %v, analysis %v\n",
			len(pkgs), tLoad.Round(time.Millisecond), tRun.Round(time.Millisecond))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "monatt-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func filterAnalyzers(all []*lint.Analyzer, only, exclude string) []*lint.Analyzer {
	keep := func(string) bool { return true }
	if only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		keep = func(n string) bool { return want[n] }
	}
	skip := map[string]bool{}
	for _, n := range strings.Split(exclude, ",") {
		if n = strings.TrimSpace(n); n != "" {
			skip[n] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if keep(a.Name) && !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
