// monatt-vet runs CloudMonatt's protocol-invariant analyzers
// (internal/lint) over module packages and fails on any finding.
//
// Usage:
//
//	go run ./cmd/monatt-vet ./...
//	go run ./cmd/monatt-vet -only consttime,ctxdeadline ./internal/rpc
//	go run ./cmd/monatt-vet -json -facts-dir .cache/monatt-facts ./...
//	go run ./cmd/monatt-vet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
//
// The analyzers encode rules the compiler cannot see: virtual-clock
// discipline (vclockonly), nonce freshness across retries (noncefresh),
// constant-time comparison of secret-derived material (consttime), RPC
// deadlines at every entity boundary (ctxdeadline), span hygiene
// (spanend), metric naming (metricsname), secret-taint flow (secretflow),
// intent-ledger bracketing of side effects (intentbracket), shard-routing
// provenance (shardroute), and lock discipline (lockorder). Suppress a
// finding only with an audited directive: //lint:wallclock <why> or
// //lint:ignore <analyzer> <why>; a directive that suppresses nothing is
// itself a finding.
//
// -facts-dir caches per-package analysis facts keyed by a hash of the
// package's sources, so warm runs skip the facts phase for unchanged
// packages. -json emits one object per finding (analyzer, pos, message,
// suppression state) including directive-suppressed ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudmonatt/internal/lint"
)

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	Analyzer     string `json:"analyzer"`
	Pos          string `json:"pos"`
	Message      string `json:"message"`
	Suppressed   bool   `json:"suppressed"`
	SuppressedBy string `json:"suppressedBy,omitempty"`
}

func main() {
	var (
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list analyzers and exit")
		timing   = flag.Bool("t", false, "print load/analysis wall times and facts-cache stats")
		exclude  = flag.String("exclude", "", "comma-separated analyzer names to skip")
		asJSON   = flag.Bool("json", false, "emit findings as JSON lines (includes suppressed findings, marked)")
		factsDir = flag.String("facts-dir", "", "directory for the per-package facts cache (keyed by source hash)")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers = filterAnalyzers(analyzers, *only, *exclude)
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "monatt-vet: no analyzers selected")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "monatt-vet:", err)
		os.Exit(2)
	}
	t0 := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monatt-vet:", err)
		os.Exit(2)
	}
	tLoad := time.Since(t0)

	t1 := time.Now()
	diags, stats := lint.Analyze(pkgs, analyzers, lint.AnalyzeOptions{
		Loader:         loader,
		FactsDir:       *factsDir,
		KeepSuppressed: *asJSON,
	})
	tRun := time.Since(t1)

	failing := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if !d.Suppressed {
			failing++
		}
		if *asJSON {
			_ = enc.Encode(jsonDiag{
				Analyzer:     d.Analyzer,
				Pos:          loader.Fset.Position(d.Pos).String(),
				Message:      d.Message,
				Suppressed:   d.Suppressed,
				SuppressedBy: d.SuppressedBy,
			})
			continue
		}
		fmt.Println(d.String(loader.Fset))
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "monatt-vet: %d packages, load+typecheck %v, analysis %v, facts %d/%d cached\n",
			len(pkgs), tLoad.Round(time.Millisecond), tRun.Round(time.Millisecond),
			stats.FactsCached, stats.FactPackages)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "monatt-vet: %d finding(s)\n", failing)
		os.Exit(1)
	}
}

func filterAnalyzers(all []*lint.Analyzer, only, exclude string) []*lint.Analyzer {
	keep := func(string) bool { return true }
	if only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		keep = func(n string) bool { return want[n] }
	}
	skip := map[string]bool{}
	for _, n := range strings.Split(exclude, ",") {
		if n = strings.TrimSpace(n); n != "" {
			skip[n] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if keep(a.Name) && !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
