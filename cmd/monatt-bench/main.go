// Command monatt-bench regenerates the tables and figures of the
// CloudMonatt paper's evaluation on the simulated cloud and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	monatt-bench [-seed N] [-exp all|table1|fig4|fig5|fig6|fig7|fig9|fig10|fig11|ablation|hotpath|traces|shards]
//
// The shards experiment is sized by -shards (max shard count, doubling from
// 1), -shard-tasks, -shard-freq and -shard-window; it reads the wall clock
// and runs for roughly (1.5·freq + window) per shard count, so it is not
// part of -exp all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudmonatt/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig4, fig5, fig6, fig7, fig9, fig10, fig11, ablation, comparison, rfa, hotpath, traces, shards)")
	shards := flag.Int("shards", 8, "shards: max shard count (curve doubles 1, 2, ... up to this)")
	shardTasks := flag.Int("shard-tasks", 120000, "shards: periodic attestation streams across the fleet")
	shardServers := flag.Int("shard-servers", 48, "shards: simulated cloud servers the streams spread over")
	shardFreq := flag.Duration("shard-freq", 4*time.Second, "shards: mean per-stream attestation frequency")
	shardWindow := flag.Duration("shard-window", 8*time.Second, "shards: measured window per shard count (after a 1.5x freq warm-up)")
	flag.Parse()

	run := func(name string, f func() (string, error)) {
		if *exp != name && (*exp != "all" || name == "shards") {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("  [%s regenerated in %v wall time]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (string, error) {
		r, err := bench.Table1(*seed)
		return r.Render(), err
	})
	run("fig4", func() (string, error) {
		return bench.Fig4(*seed, 200).Render(), nil
	})
	run("fig5", func() (string, error) {
		r, err := bench.Fig5(*seed, 2*time.Second)
		return r.Render(), err
	})
	run("fig6", func() (string, error) {
		r, err := bench.Fig6(*seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("fig7", func() (string, error) {
		r, err := bench.Fig7(*seed)
		return r.Render(), err
	})
	run("fig9", func() (string, error) {
		r, err := bench.Fig9(*seed)
		return r.Render(), err
	})
	run("fig10", func() (string, error) {
		r, err := bench.Fig10(*seed, 2*time.Minute)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("fig11", func() (string, error) {
		r, err := bench.Fig11(*seed)
		return r.Render(), err
	})
	run("ablation", func() (string, error) {
		out := bench.AblationScheduler(*seed).Render()
		bins, err := bench.AblationBins(*seed)
		if err != nil {
			return "", err
		}
		return out + "\n" + bins.Render(), nil
	})
	run("comparison", func() (string, error) {
		r, err := bench.Comparison(*seed)
		return r.Render(), err
	})
	run("rfa", func() (string, error) {
		r, err := bench.RFA(*seed)
		return r.Render(), err
	})
	run("hotpath", func() (string, error) {
		r, err := bench.HotPath(*seed, 50, 200)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("shards", func() (string, error) {
		r, err := bench.Shards(*seed, *shardTasks, *shards, *shardServers, *shardFreq, *shardWindow)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("traces", func() (string, error) {
		r, err := bench.TraceStages(*seed, 20)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}
