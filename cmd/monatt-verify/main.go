// Command monatt-verify checks the CloudMonatt attestation protocol three
// ways:
//
//  1. the bounded symbolic Dolev-Yao verifier over the six §7.2.2
//     secrecy/integrity/authentication properties, for the full protocol
//     and for deliberately weakened variants that prove the checks have
//     teeth;
//  2. the symbolic handshake model: the channel key exchange resists an
//     active man in the middle exactly because of its transcript
//     signatures;
//  3. a live man-in-the-middle attack against the *real implementation* —
//     an attacker owning the network between a customer and a running
//     cloud, eavesdropping and tampering.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/dolevyao"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/protoverif"
	"cloudmonatt/internal/rpc"
)

func main() {
	flag.Parse()
	symbolic()
	handshake()
	live()
}

func symbolic() {
	variants := []protoverif.Variant{
		protoverif.Full,
		protoverif.NoEncryption,
		protoverif.ReusedNonces,
		protoverif.LeakedSessionKey,
		protoverif.UnsignedReports,
	}
	exitCode := 0
	for _, v := range variants {
		m := protoverif.NewModel(v)
		findings := m.Check()
		fmt.Printf("protocol variant %-20s analyzed %4d terms: ", v, m.K.Size())
		if len(findings) == 0 {
			fmt.Println("all properties hold")
		} else {
			fmt.Printf("%d violation(s)\n", len(findings))
			for _, f := range findings {
				fmt.Printf("    [%s] %s\n", f.Property, f.Detail)
			}
		}
		// The full protocol must be clean; the weakened variants other than
		// unsigned-reports (whose weakness only shows combined with a key
		// leak) must be flagged.
		clean := len(findings) == 0
		switch v {
		case protoverif.Full, protoverif.UnsignedReports:
			if !clean {
				exitCode = 1
			}
		default:
			if clean {
				fmt.Printf("    WARNING: weakened variant %s not flagged — verifier lost its teeth\n", v)
				exitCode = 1
			}
		}
	}
	if exitCode == 0 {
		fmt.Println("\nverdict: the CloudMonatt protocol satisfies all six §7.2.2 properties in the bounded model")
	} else {
		os.Exit(exitCode)
	}
}

// handshake checks the channel-establishment model.
func handshake() {
	fmt.Println()
	signed := protoverif.NewHandshakeModel(true)
	if signed.SessionKeySecret() && !signed.MITMPossible() {
		fmt.Println("handshake (signed transcripts):   session key secret, MITM impossible")
	} else {
		fmt.Println("handshake (signed transcripts):   BROKEN")
		os.Exit(1)
	}
	unsigned := protoverif.NewHandshakeModel(false)
	if unsigned.MITMPossible() {
		fmt.Println("handshake (signatures stripped):  MITM found — the signatures are load-bearing")
	} else {
		fmt.Println("handshake (signatures stripped):  WARNING: MITM not found — model lost its teeth")
		os.Exit(1)
	}
}

// live attacks the real implementation on an attacker-owned network.
func live() {
	fmt.Println()

	// Passive: full launch + attestation under total eavesdropping.
	passive := &dolevyao.Attacker{}
	tb, err := cloudsim.New(cloudsim.Options{Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tb.Net.(*rpc.MemNetwork).Intercept = passive.Intercept
	cu, err := tb.NewCustomer("verifier")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := cu.Launch(controller.LaunchRequest{
		ImageName: "cirros", Flavor: "small", Workload: "database",
		Props:     properties.All,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.1, Pin: -1,
	})
	if err != nil || !res.OK {
		fmt.Fprintf(os.Stderr, "live: launch under passive MITM failed: %v %s\n", err, res.Reason)
		os.Exit(1)
	}
	tb.RunFor(time.Second)
	v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity)
	if err != nil || !v.Healthy {
		fmt.Fprintf(os.Stderr, "live: attestation under passive MITM failed: %v %v\n", err, v)
		os.Exit(1)
	}
	obs := passive.ObservedPayloads()
	for _, secret := range []string{res.Vid, "runtime-integrity", "HEALTHY", "launch_vm"} {
		if bytes.Contains(obs, []byte(secret)) {
			fmt.Fprintf(os.Stderr, "live: %q leaked in clear on the wire\n", secret)
			os.Exit(1)
		}
	}
	fmt.Printf("live MITM (passive):              protocol completed; %d frames captured, all opaque ciphertext\n", len(passive.Observed()))

	// Active: tamper with every post-handshake frame (index >= 1 past the
	// hello_s handshake frame, on every connection — including the fresh
	// ones the fault-tolerant clients open on retry); no forged success.
	active := &dolevyao.Attacker{S2C: dolevyao.TamperFrom(1)}
	tb2, err := cloudsim.New(cloudsim.Options{Seed: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tb2.Net.(*rpc.MemNetwork).Intercept = active.Intercept
	if cu2, err := tb2.NewCustomer("verifier"); err == nil {
		res2, err := cu2.Launch(controller.LaunchRequest{
			ImageName: "cirros", Flavor: "small", Workload: "idle", Pin: -1,
		})
		if err == nil && res2.OK {
			fmt.Fprintln(os.Stderr, "live: launch succeeded although every reply was tampered with")
			os.Exit(1)
		}
	}
	fmt.Println("live MITM (tampering):            every manipulated exchange failed closed")
	fmt.Println("\nverdict: implementation matches the verified model")
}
