// Command monatt-cloud runs the complete CloudMonatt cloud — controller,
// attestation server, privacy CA and N cloud servers — in one process, with
// every entity speaking the real protocol over loopback TCP. It writes a
// bootstrap file containing the controller endpoint, the controller's
// public key, and an enrolled customer identity seed that monatt-cli uses
// to connect.
//
// Usage:
//
//	monatt-cloud [-servers 3] [-seed 1] [-bootstrap monatt-bootstrap.json]
package main

import (
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/rpc"
)

// Bootstrap is the connection info monatt-cli consumes.
type Bootstrap struct {
	ControllerAddr string `json:"controller_addr"`
	ControllerKey  string `json:"controller_key"` // base64 Ed25519 public key
	CustomerName   string `json:"customer_name"`
	CustomerSeed   string `json:"customer_seed"` // base64 Ed25519 seed
}

func main() {
	servers := flag.Int("servers", 3, "number of cloud servers")
	seed := flag.Int64("seed", 1, "simulation seed")
	bootstrapPath := flag.String("bootstrap", "monatt-bootstrap.json", "bootstrap file for monatt-cli")
	pump := flag.Duration("pump", 200*time.Millisecond, "virtual-clock pump interval (real time)")
	flag.Parse()

	tb, err := cloudsim.New(cloudsim.Options{
		Seed:    *seed,
		Servers: *servers,
		Network: rpc.TCPNetwork{},
	})
	if err != nil {
		log.Fatalf("assembling cloud: %v", err)
	}

	customer := cryptoutil.MustIdentity("cli-customer")
	tb.RegisterIdentity(customer.Name, customer.Public())
	bs := Bootstrap{
		ControllerAddr: tb.ControllerAddr,
		ControllerKey:  base64.StdEncoding.EncodeToString(tb.Ctrl.PublicKey()),
		CustomerName:   customer.Name,
		CustomerSeed:   base64.StdEncoding.EncodeToString(customer.Seed()),
	}
	data, err := json.MarshalIndent(bs, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*bootstrapPath, data, 0o600); err != nil {
		log.Fatalf("writing bootstrap: %v", err)
	}

	fmt.Printf("CloudMonatt cloud is up:\n")
	fmt.Printf("  controller (nova api):  %s\n", tb.ControllerAddr)
	fmt.Printf("  cloud servers:          %d\n", *servers)
	fmt.Printf("  bootstrap written to:   %s\n", *bootstrapPath)
	fmt.Printf("use cmd/monatt-cli to launch and attest VMs; Ctrl-C to stop\n")

	// Pump virtual time forward so workloads run and periodic attestations
	// fire while the daemon idles in real time.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*pump)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			tb.RunFor(*pump)
		case <-stop:
			fmt.Println("\nshutting down")
			if m := tb.Attest.Metrics().Render(); m != "" {
				fmt.Println("attestation-server appraisal timings (virtual time):")
				fmt.Print(m)
			}
			return
		}
	}
}
