// Command monatt-cloud runs the complete CloudMonatt cloud — controller,
// attestation server, privacy CA and N cloud servers — in one process, with
// every entity speaking the real protocol over loopback TCP. It writes a
// bootstrap file containing the controller endpoint, the controller's
// public key, and an enrolled customer identity seed that monatt-cli uses
// to connect.
//
// With -admin-addr it also serves the operator telemetry surface over
// plain HTTP: /metrics (Prometheus text exposition), /healthz (per-entity
// liveness + circuit-breaker states), /traces (recent completed attestation
// traces as JSON, ?vm= filterable) and /debug/pprof.
//
// Usage:
//
//	monatt-cloud [-servers 3] [-shards N] [-seed 1] [-bootstrap monatt-bootstrap.json]
//	             [-admin-addr 127.0.0.1:9190]
//	             [-codec binary|gob] [-resume] [-batch-verify]
package main

import (
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"cloudmonatt/internal/attestsrv"
	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/metrics"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/trust/driver"
)

// Bootstrap is the connection info monatt-cli consumes. It carries only
// public material; the customer's private seed lives in a separate file
// (CustomerSeedPath) written through cryptoutil.WriteSecretFile, so the
// human-readable bootstrap JSON can be pasted into a terminal, a bug
// report, or a CI log without leaking a signing key.
type Bootstrap struct {
	ControllerAddr   string `json:"controller_addr"`
	ControllerKey    string `json:"controller_key"` // base64 Ed25519 public key
	CustomerName     string `json:"customer_name"`
	CustomerSeedPath string `json:"customer_seed_path"` // raw Ed25519 seed, 0600
}

func main() {
	servers := flag.Int("servers", 3, "number of cloud servers")
	shards := flag.Int("shards", 0, "attestation-server shards behind the consistent-hash ring; 0 keeps the static cluster split")
	seed := flag.Int64("seed", 1, "simulation seed")
	bootstrapPath := flag.String("bootstrap", "monatt-bootstrap.json", "bootstrap file for monatt-cli")
	pump := flag.Duration("pump", 200*time.Millisecond, "virtual-clock pump interval (real time)")
	callTimeout := flag.Duration("call-timeout", 30*time.Second, "per-attempt RPC timeout for inter-entity calls")
	retries := flag.Int("retries", 4, "max attempts per retryable inter-entity RPC")
	chaosDrop := flag.Float64("chaos-drop", 0, "inject connection-drop rate (0..1) on every link")
	chaosDelay := flag.Float64("chaos-delay", 0, "inject per-operation delay rate (0..1) on every link")
	chaosMaxDelay := flag.Duration("chaos-max-delay", 5*time.Millisecond, "max injected delay per operation")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection RNG seed")
	periodicWorkers := flag.Int("periodic-workers", 8, "max concurrent periodic appraisals across all cloud servers")
	periodicServerCap := flag.Int("periodic-server-cap", 2, "max in-flight periodic appraisals per cloud server")
	periodicBuffer := flag.Int("periodic-buffer", 64, "undelivered periodic results kept per task (oldest dropped beyond this)")
	adminAddr := flag.String("admin-addr", "", "serve the operator HTTP surface (/metrics, /healthz, /traces, /debug/pprof) on this address; empty disables it")
	trustBackend := flag.String("trust-backend", "tpm", "comma-separated trust backends assigned to servers round-robin (tpm, vtpm, sev-snp); a mixed list gives a mixed fleet")
	reattestEvery := flag.Duration("reattest-every", 0, "virtual-time interval for the reconcile loop to re-attest every active VM; 0 disables")
	resume := flag.Bool("resume", true, "cache secchan resumption tickets so reconnects skip the asymmetric handshake")
	codec := flag.String("codec", "binary", "wire codec for protocol messages (binary, gob); gob is the pre-codec compatibility mode")
	batchVerify := flag.Bool("batch-verify", true, "batch the attestation servers' signature verifications across concurrent appraisals")
	flag.Parse()

	switch *codec {
	case "binary":
		rpc.SetLegacyGob(false)
	case "gob":
		rpc.SetLegacyGob(true)
	default:
		log.Fatalf("-codec: unknown codec %q (want binary or gob)", *codec)
	}

	var backends []driver.Backend
	for _, f := range strings.Split(*trustBackend, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := driver.ParseBackend(f)
		if err != nil {
			log.Fatalf("-trust-backend: %v (registered: %v)", err, driver.Backends())
		}
		backends = append(backends, b)
	}

	var network rpc.Network = rpc.TCPNetwork{}
	if *chaosDrop > 0 || *chaosDelay > 0 {
		network = rpc.NewFaultNetwork(network, rpc.FaultConfig{
			Seed:      *chaosSeed,
			DropRate:  *chaosDrop,
			DelayRate: *chaosDelay,
			MaxDelay:  *chaosMaxDelay,
		})
		fmt.Printf("chaos mode: drop=%.0f%% delay=%.0f%% (seed %d)\n", *chaosDrop*100, *chaosDelay*100, *chaosSeed)
	}
	tb, err := cloudsim.New(cloudsim.Options{
		Seed:        *seed,
		Servers:     *servers,
		Shards:      *shards,
		Backends:    backends,
		Network:     network,
		CallTimeout: *callTimeout,
		Retry:       rpc.RetryPolicy{MaxAttempts: *retries},
		Periodic: attestsrv.PeriodicConfig{
			Workers:        *periodicWorkers,
			ServerInflight: *periodicServerCap,
			ResultBuffer:   *periodicBuffer,
		},
		ReattestEvery: *reattestEvery,
		Resume:        *resume,
		BatchVerify:   *batchVerify,
	})
	if err != nil {
		log.Fatalf("assembling cloud: %v", err)
	}

	customer := cryptoutil.MustIdentity("cli-customer")
	tb.RegisterIdentity(customer.Name, customer.Public())
	seedPath := *bootstrapPath + ".seed"
	if err := cryptoutil.WriteSecretFile(seedPath, customer.Seed()); err != nil {
		log.Fatalf("writing customer seed: %v", err)
	}
	bs := Bootstrap{
		ControllerAddr:   tb.ControllerAddr,
		ControllerKey:    base64.StdEncoding.EncodeToString(tb.Ctrl.PublicKey()),
		CustomerName:     customer.Name,
		CustomerSeedPath: seedPath,
	}
	data, err := json.MarshalIndent(bs, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*bootstrapPath, data, 0o600); err != nil {
		log.Fatalf("writing bootstrap: %v", err)
	}

	if *adminAddr != "" {
		regs := map[string]*metrics.Registry{
			"controller": tb.Ctrl.Metrics(),
			"attestsrv":  tb.Attest.Metrics(),
			"ledger":     tb.Ledger.Metrics(),
		}
		if *shards > 0 {
			for _, as := range tb.AttestServers {
				regs["attestsrv-"+as.Shard()] = as.Metrics()
			}
		}
		mux := obs.AdminMux(obs.AdminConfig{
			Registries: regs,
			Store:      tb.Obs,
			Health:     tb.Health,
		})
		admin := &http.Server{Addr: *adminAddr, Handler: mux}
		go func() {
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("admin listener: %v", err)
			}
		}()
	}

	fmt.Printf("CloudMonatt cloud is up:\n")
	fmt.Printf("  controller (nova api):  %s\n", tb.ControllerAddr)
	fmt.Printf("  cloud servers:          %d (backends: %s)\n", *servers, *trustBackend)
	if *shards > 0 {
		fmt.Printf("  attestation shards:     %d (consistent-hash ring, epoch %d)\n", *shards, tb.Ring.Epoch())
	}
	fmt.Printf("  bootstrap written to:   %s\n", *bootstrapPath)
	fmt.Printf("  customer seed:          %s (%s)\n", seedPath, cryptoutil.Redact(customer.Seed()))
	if *adminAddr != "" {
		fmt.Printf("  operator surface:       http://%s/{metrics,healthz,traces,debug/pprof}\n", *adminAddr)
	}
	fmt.Printf("use cmd/monatt-cli to launch and attest VMs; Ctrl-C to stop\n")

	// Pump virtual time forward so workloads run and periodic attestations
	// fire while the daemon idles in real time.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*pump)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			tb.RunFor(*pump)
		case <-stop:
			fmt.Println("\nshutting down")
			if m := tb.Attest.Metrics().Render(); m != "" {
				fmt.Println("attestation-server appraisal timings (virtual time):")
				fmt.Print(m)
			}
			if m := tb.Ctrl.Metrics().Render(); m != "" {
				fmt.Println("controller fault-tolerance counters:")
				fmt.Print(m)
			}
			if fn, ok := network.(*rpc.FaultNetwork); ok {
				st := fn.Stats()
				fmt.Printf("injected faults: dials=%d drops=%d delays=%d handshake-fails=%d resets=%d\n",
					st.Dials, st.Drops, st.Delays, st.HandshakeFails, st.Resets)
			}
			return
		}
	}
}
