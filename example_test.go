package cloudmonatt_test

import (
	"fmt"
	"log"
	"time"

	"cloudmonatt"
)

// Example shows the basic flow: assemble a cloud, launch a monitored VM,
// and attest its runtime integrity.
func Example() {
	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	alice, err := tb.NewCustomer("alice")
	if err != nil {
		log.Fatal(err)
	}
	vm, err := alice.Launch(cloudmonatt.LaunchRequest{
		ImageName: "ubuntu",
		Flavor:    "small",
		Workload:  "database",
		Props:     cloudmonatt.AllProperties,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.25,
		Pin:       -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tb.RunFor(time.Second)
	verdict, err := alice.Attest(vm.Vid, cloudmonatt.RuntimeIntegrity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(verdict)
	// Output: runtime-integrity: HEALTHY (all 5 tasks match the customer allowlist)
}

// ExampleCustomer_StartPeriodic arms Table 1's periodic attestation and
// drains the verified results.
func ExampleCustomer_StartPeriodic() {
	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := tb.NewCustomer("bob")
	if err != nil {
		log.Fatal(err)
	}
	vm, err := bob.Launch(cloudmonatt.LaunchRequest{
		ImageName: "cirros", Flavor: "small", Workload: "web",
		Props: cloudmonatt.AllProperties, MinShare: 0.2, Pin: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := bob.StartPeriodic(vm.Vid, cloudmonatt.CPUAvailability, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	tb.RunFor(12 * time.Second)
	verdicts, err := bob.FetchPeriodic(vm.Vid, cloudmonatt.CPUAvailability)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh verified results: %d, all healthy: %v\n", len(verdicts), allHealthy(verdicts))
	// Output: fresh verified results: 2, all healthy: true
}

func allHealthy(vs []cloudmonatt.Verdict) bool {
	for _, v := range vs {
		if !v.Healthy {
			return false
		}
	}
	return true
}
