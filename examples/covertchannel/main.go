// Covert channel: reproduce case study III (paper §4.4). A colluding
// insider in the customer's VM modulates its CPU-usage intervals to leak
// data to a co-resident receiver VM; the Performance Monitor Unit bins the
// intervals into the 30 Trust Evidence Registers and the Attestation
// Server's clustering flags the bimodal signature. The response policy
// migrates the VM away from the hostile neighborhood.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudmonatt"
)

func main() {
	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{Seed: 7, Servers: 2})
	if err != nil {
		log.Fatal(err)
	}
	alice, err := tb.NewCustomer("alice")
	if err != nil {
		log.Fatal(err)
	}

	// The customer's VM — with a covert-channel sender inside (e.g. a
	// compromised library leaking the VM's crypto keys).
	vm, err := alice.Launch(cloudmonatt.LaunchRequest{
		ImageName: "fedora",
		Flavor:    "small",
		Workload:  "attack:covert-sender",
		Props:     cloudmonatt.AllProperties,
		MinShare:  0.05,
		Pin:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !vm.OK {
		log.Fatalf("launch rejected: %s", vm.Reason)
	}
	fmt.Printf("launched %s on %s (with a covert-channel sender inside)\n", vm.Vid, vm.Server)

	// The attacker places a receiver VM next to it, probing its own
	// execution time to read the channel.
	receiver, err := tb.LaunchCoResident(vm.Server, "probe", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker co-located receiver %s on the same pCPU\n", receiver)

	// Run for half a second of virtual time, then attest confidentiality.
	tb.RunFor(500 * time.Millisecond)
	v, err := alice.Attest(vm.Vid, cloudmonatt.CovertChannelFreedom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nattestation: %s\n", v)
	for k, d := range v.Details {
		fmt.Printf("  %s: %s\n", k, d)
	}
	if v.Healthy {
		log.Fatal("expected the covert channel to be detected")
	}

	// The controller's response policy (Migration for confidentiality
	// breaches) has already moved the VM.
	for _, ev := range tb.Ctrl.Events() {
		fmt.Printf("\nresponse: %s of %s (%s) in %.1fs → now on %s\n",
			ev.Response, ev.Vid, ev.Reason, ev.Duration.Seconds(), ev.NewServer)
	}
	where, err := tb.Ctrl.VMServer(vm.Vid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s now runs on %s, away from the receiver\n", vm.Vid, where)
}
