// Quickstart: assemble an in-process CloudMonatt cloud, launch a VM with
// all four security properties, and attest its health — the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudmonatt"
)

func main() {
	// A cloud of 3 servers (the paper's testbed size), one controller and
	// one attestation server, on a deterministic virtual clock.
	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	alice, err := tb.NewCustomer("alice")
	if err != nil {
		log.Fatal(err)
	}

	// Launch a VM, requesting all four security properties. The launch
	// pipeline runs the paper's five stages, ending with a startup
	// attestation of the platform and the VM image.
	vm, err := alice.Launch(cloudmonatt.LaunchRequest{
		ImageName: "ubuntu",
		Flavor:    "small",
		Workload:  "database",
		Props:     cloudmonatt.AllProperties,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.25,
		Pin:       -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !vm.OK {
		log.Fatalf("launch rejected: %s", vm.Reason)
	}
	fmt.Printf("launched %s on %s\n", vm.Vid, vm.Server)
	fmt.Println("launch pipeline:")
	for _, st := range vm.Stages {
		fmt.Printf("  %-22s %6.2fs\n", st.Stage, st.Duration.Seconds())
	}

	// Let the VM run for a while (virtual time), then attest each property.
	tb.RunFor(2 * time.Second)
	fmt.Println("\nattestations:")
	for _, p := range cloudmonatt.AllProperties {
		v, err := alice.Attest(vm.Vid, p)
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		fmt.Printf("  %s\n", v)
	}

	if err := alice.Terminate(vm.Vid); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s terminated; total virtual time elapsed: %v\n", vm.Vid, tb.Clock.Now().Round(time.Millisecond))
}
