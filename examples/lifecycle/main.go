// Lifecycle: attestation at every stage of a VM's life (paper §5) — a
// rejected launch from a corrupted image, rescheduling off a trojaned
// platform, runtime integrity catching a rootkit, and the suspension
// response with recovery.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudmonatt"
	"cloudmonatt/internal/guest"
)

func main() {
	// Server 1 boots with a trojaned hypervisor; the other two are pristine.
	policy := cloudmonatt.DefaultPolicy()
	policy[cloudmonatt.RuntimeIntegrity] = cloudmonatt.Suspend
	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{
		Seed:           3,
		Servers:        3,
		TamperPlatform: map[string]bool{"cloud-server-1": true},
		Policy:         policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	carol, err := tb.NewCustomer("carol")
	if err != nil {
		log.Fatal(err)
	}
	req := cloudmonatt.LaunchRequest{
		ImageName: "fedora",
		Flavor:    "small",
		Workload:  "web",
		Props:     cloudmonatt.AllProperties,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.1,
		Pin:       -1,
	}

	// 1. Launch with a corrupted image: rejected outright (§5.1).
	tb.CorruptNextImage()
	res, err := carol.Launch(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. corrupted image  → launch ok=%v: %s\n", res.OK, res.Reason)

	// 2. Clean launch: the startup attestation steers the VM off the
	// trojaned platform onto a pristine one.
	res, err = carol.Launch(req)
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("clean launch rejected: %s", res.Reason)
	}
	fmt.Printf("2. clean launch     → %s placed on %s (trojaned cloud-server-1 avoided)\n", res.Vid, res.Server)

	// 3. Runtime integrity while clean.
	tb.RunFor(time.Second)
	v, err := carol.Attest(res.Vid, cloudmonatt.RuntimeIntegrity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. clean runtime    → %s\n", v)

	// 4. A rootkit infects the guest; VMI sees through its hiding.
	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		log.Fatal(err)
	}
	g.InfectRootkit("kworker-evil")
	v, err = carol.Attest(res.Vid, cloudmonatt.RuntimeIntegrity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. after rootkit    → %s\n", v)
	st, _ := tb.Ctrl.VMState(res.Vid)
	fmt.Printf("   response policy  → VM %s is now %q\n", res.Vid, st)

	// 5. The controller rechecks (§5.2): while the rootkit persists, the VM
	// stays suspended; after the operator cleans the guest, the recheck
	// attests healthy and resumes it.
	if v, resumed, err := tb.Ctrl.RecheckAndResume(res.Vid); err != nil || resumed {
		log.Fatalf("recheck of the still-infected VM resumed it (%v, %v)", v, err)
	}
	fmt.Printf("5. recheck (infected)→ still suspended, as it should be\n")
	if pid := findRootkitPID(g); pid != 0 {
		if err := g.Kill(pid); err != nil {
			log.Fatal(err)
		}
	}
	v2, resumed, err := tb.Ctrl.RecheckAndResume(res.Vid)
	if err != nil || !resumed {
		log.Fatalf("recheck of the cleaned VM did not resume it (%v, %v)", v2, err)
	}
	fmt.Printf("6. cleaned, recheck → %s (VM resumed)\n", v2)

	// 7. Retire the VM.
	if err := carol.Terminate(res.Vid); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("7. terminated       → lifecycle complete at virtual t=%v\n", tb.Clock.Now().Round(time.Millisecond))
}

// findRootkitPID locates the hidden process in the true (VMI) task view.
func findRootkitPID(g *guest.OS) int {
	for _, p := range g.TrueTasks() {
		if p.Hidden {
			return p.PID
		}
	}
	return 0
}
