// Extension: integrate a deployment-defined fifth security property into
// CloudMonatt — the paper's headline architectural claim ("the CloudMonatt
// architecture is flexible and allows the integration of an arbitrary
// number of security properties and monitoring mechanisms", §4).
//
// The new property, guest-kernel-integrity, checks via VM introspection
// that the guest's measured boot chain still matches known-good digests.
// Three registrations — the property→measurement mapping, the Monitor
// Module collector, and the Property Interpretation Module interpreter —
// and the property flows through the entire architecture: launch
// provisioning, the signed protocol, responses, everything.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudmonatt"
	"cloudmonatt/internal/attestsrv"
	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/guest"
	"cloudmonatt/internal/interpret"
	"cloudmonatt/internal/monitor"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/server"
)

const (
	propKernel properties.Property        = "guest-kernel-integrity"
	kindChain  properties.MeasurementKind = "guest-bootchain"
)

func registerProperty() error {
	golden := make(map[string][32]byte)
	for _, c := range guest.NewOS().BootChain() {
		golden[c.Name] = c.Digest()
	}

	// 1. Attestation Server: property → measurements.
	if err := properties.Register(propKernel, properties.Request{
		Kinds: []properties.MeasurementKind{kindChain},
	}); err != nil {
		return err
	}
	// 2. Monitor Module: how to collect the new measurement (VMI).
	if err := monitor.RegisterCollector(kindChain, func(vm *monitor.VM, nonce [16]byte) (properties.Measurement, error) {
		m := properties.Measurement{Kind: kindChain}
		for _, c := range vm.Guest.BootChain() {
			m.LogNames = append(m.LogNames, c.Name)
			m.LogSums = append(m.LogSums, c.Digest())
		}
		return m, nil
	}); err != nil {
		return err
	}
	// 3. Property Interpretation Module: measurements → verdict.
	return interpret.RegisterInterpreter(propKernel, func(ms []properties.Measurement, nonce cryptoutil.Nonce, refs interpret.References) properties.Verdict {
		for _, m := range ms {
			if m.Kind != kindChain {
				continue
			}
			for i, name := range m.LogNames {
				if want, ok := golden[name]; !ok || m.LogSums[i] != want {
					return properties.Verdict{Property: propKernel, Healthy: false,
						Reason: "guest boot component modified", Details: map[string]string{"component": name}}
				}
			}
			return properties.Verdict{Property: propKernel, Healthy: true,
				Reason: "guest boot chain matches known-good digests"}
		}
		return properties.Verdict{Property: propKernel, Healthy: false, Reason: "missing boot chain measurement"}
	})
}

func main() {
	if err := registerProperty(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered custom properties: %v\n", properties.Registered())

	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	// Advertise the new monitoring capability for every cloud server.
	for _, rec := range tb.Attest.Servers() {
		rec.Properties = append(rec.Properties, propKernel)
		tb.Attest.RegisterServer(rec)
	}
	for _, rec := range tb.Attest.Servers() {
		tb.Ctrl.RegisterServer(controller.ServerEntry{
			Name: rec.Name, Addr: rec.Addr,
			Capacity: capacityOf(tb, rec),
			Props:    append(append([]properties.Property{}, properties.All...), propKernel),
		})
	}

	eve, err := tb.NewCustomer("eve")
	if err != nil {
		log.Fatal(err)
	}
	vm, err := eve.Launch(cloudmonatt.LaunchRequest{
		ImageName: "fedora", Flavor: "small", Workload: "web",
		Props: append(append([]cloudmonatt.Property{}, cloudmonatt.AllProperties...), propKernel),
		Pin:   -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !vm.OK {
		log.Fatalf("launch rejected: %s", vm.Reason)
	}
	tb.RunFor(time.Second)

	v, err := eve.Attest(vm.Vid, propKernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean guest:    %s\n", v)

	g, err := tb.GuestOf(vm.Vid)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.TamperBootChain("guest-kernel"); err != nil {
		log.Fatal(err)
	}
	v, err = eve.Attest(vm.Vid, propKernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tampered guest: %s (component: %s)\n", v, v.Details["component"])
	st, _ := tb.Ctrl.VMState(vm.Vid)
	fmt.Printf("response:       VM is now %q — the custom property drives the response machinery too\n", st)
}

// capacityOf recovers the testbed's per-server capacity for re-registration.
func capacityOf(tb *cloudmonatt.Testbed, rec attestsrv.ServerRecord) server.Capacity {
	return tb.Servers[rec.Name].Free()
}
