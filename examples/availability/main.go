// Availability: reproduce case study IV (paper §4.5). A co-resident
// attacker VM abuses the Xen credit scheduler (tick evasion + IPI boost
// ping-pong) to starve the customer's VM of CPU. Periodic attestation of
// the cpu-availability property catches the SLA breach and the controller
// migrates the victim to a healthy server.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudmonatt"
)

func main() {
	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{Seed: 11, Servers: 2})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := tb.NewCustomer("bob")
	if err != nil {
		log.Fatal(err)
	}

	// Bob's CPU-hungry VM with a 25% SLA floor.
	vm, err := bob.Launch(cloudmonatt.LaunchRequest{
		ImageName: "ubuntu",
		Flavor:    "medium",
		Workload:  "spinner",
		Props:     cloudmonatt.AllProperties,
		MinShare:  0.25,
		Pin:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !vm.OK {
		log.Fatalf("launch rejected: %s", vm.Reason)
	}
	fmt.Printf("launched %s on %s with a 25%% CPU SLA floor\n", vm.Vid, vm.Server)

	// Arm periodic availability attestation every 5 seconds (Table 1's
	// runtime_attest_periodic).
	if err := bob.StartPeriodic(vm.Vid, cloudmonatt.CPUAvailability, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// A quiet first period: all green.
	tb.RunFor(6 * time.Second)
	report := func() {
		vs, err := bob.FetchPeriodic(vm.Vid, cloudmonatt.CPUAvailability)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range vs {
			fmt.Printf("  periodic: %s\n", v)
		}
	}
	fmt.Println("\nbefore the attack:")
	report()

	// The attacker arrives: two colluding vCPUs on the victim's pCPU.
	attacker, err := tb.LaunchCoResident(vm.Server, "attack:cpu-starver", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nattacker VM %s co-located — starving %s\n", attacker, vm.Vid)

	// The next periodic attestation detects the starvation and the
	// controller migrates the victim.
	tb.RunFor(12 * time.Second)
	fmt.Println("\nafter the attack:")
	report()
	for _, ev := range tb.Ctrl.Events() {
		fmt.Printf("\nresponse: %s (%s) in %.1fs → %s\n", ev.Response, ev.Reason, ev.Duration.Seconds(), ev.NewServer)
	}

	// Post-migration, availability recovers.
	tb.RunFor(12 * time.Second)
	fmt.Println("\nafter migration:")
	report()
	if _, err := bob.StopPeriodic(vm.Vid, cloudmonatt.CPUAvailability); err != nil {
		log.Fatal(err)
	}
}
