// Distributed: the same CloudMonatt entities speaking over real loopback
// TCP instead of the in-memory network — the transport used by
// cmd/monatt-cloud and cmd/monatt-cli. Every hop (customer→controller→
// attestation server→cloud server) is a genuine authenticated encrypted
// TCP connection.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudmonatt"
	"cloudmonatt/internal/rpc"
)

func main() {
	tb, err := cloudmonatt.NewTestbed(cloudmonatt.Options{
		Seed:    5,
		Servers: 2,
		Network: rpc.TCPNetwork{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller's nova api listening on tcp://%s\n", tb.ControllerAddr)

	dana, err := tb.NewCustomer("dana")
	if err != nil {
		log.Fatal(err)
	}
	vm, err := dana.Launch(cloudmonatt.LaunchRequest{
		ImageName: "cirros",
		Flavor:    "small",
		Workload:  "mail",
		Props:     cloudmonatt.AllProperties,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.05,
		Pin:       -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !vm.OK {
		log.Fatalf("launch rejected: %s", vm.Reason)
	}
	fmt.Printf("launched %s on %s over TCP\n", vm.Vid, vm.Server)

	tb.RunFor(time.Second)
	for _, p := range cloudmonatt.AllProperties {
		v, err := dana.Attest(vm.Vid, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", v)
	}
	if err := dana.Terminate(vm.Vid); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done — all protocol hops ran over authenticated TCP channels")
}
