package cloudmonatt

import (
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented package example end to
// end through the exported facade.
func TestPublicAPIQuickstart(t *testing.T) {
	tb, err := NewTestbed(Options{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := alice.Launch(LaunchRequest{
		ImageName: "ubuntu", Flavor: "small", Workload: "database",
		Props:     AllProperties,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.2,
		Pin:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.OK {
		t.Fatalf("launch rejected: %s", vm.Reason)
	}
	tb.RunFor(time.Second)
	for _, p := range AllProperties {
		v, err := alice.Attest(vm.Vid, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !v.Healthy {
			t.Fatalf("%s unhealthy on a clean VM: %v", p, v)
		}
	}
	if err := alice.Terminate(vm.Vid); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPolicyExported(t *testing.T) {
	p := DefaultPolicy()
	if p[RuntimeIntegrity] != Terminate {
		t.Fatalf("unexpected default policy: %v", p)
	}
	if p[CPUAvailability] != Migrate || p[CovertChannelFreedom] != Migrate {
		t.Fatalf("unexpected default policy: %v", p)
	}
	_ = Suspend // all three responses are exported
}

func TestPropertiesExported(t *testing.T) {
	if len(AllProperties) != 4 {
		t.Fatalf("AllProperties = %v", AllProperties)
	}
	if StartupIntegrity == RuntimeIntegrity || CovertChannelFreedom == CPUAvailability {
		t.Fatal("property constants collide")
	}
}
