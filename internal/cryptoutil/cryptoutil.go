// Package cryptoutil provides the cryptographic primitives shared by every
// CloudMonatt entity: Ed25519 identities, a minimal certificate format, the
// canonical hash used for protocol quotes (Q1/Q2/Q3 in Fig. 3 of the paper),
// and nonce generation with replay detection.
//
// Everything is stdlib-only (crypto/ed25519, crypto/sha256, crypto/rand).
package cryptoutil

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// NonceSize is the byte length of protocol nonces (N1, N2, N3).
const NonceSize = 16

// Nonce is a freshness value attached to every protocol message.
type Nonce [NonceSize]byte

// String renders the nonce in hex.
func (n Nonce) String() string { return fmt.Sprintf("%x", n[:]) }

// NewNonce draws a fresh random nonce from the given source (crypto/rand
// in production, a deterministic reader in tests).
func NewNonce(r io.Reader) (Nonce, error) {
	var n Nonce
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return Nonce{}, fmt.Errorf("cryptoutil: drawing nonce: %w", err)
	}
	return n, nil
}

// MustNonce is NewNonce from crypto/rand, panicking on failure (the system
// cannot operate without randomness).
func MustNonce() Nonce {
	n, err := NewNonce(rand.Reader)
	if err != nil {
		panic(err)
	}
	return n
}

// Identity is a named Ed25519 key pair identifying one entity (customer,
// Cloud Controller, Attestation Server, or the Trust Module of a cloud
// server). The private key never leaves the owning process.
type Identity struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewIdentity generates a fresh identity using the given entropy source.
func NewIdentity(name string, r io.Reader) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: generating identity %q: %w", name, err)
	}
	return &Identity{Name: name, priv: priv, pub: pub}, nil
}

// MustIdentity is NewIdentity from crypto/rand, panicking on failure.
func MustIdentity(name string) *Identity {
	id, err := NewIdentity(name, rand.Reader)
	if err != nil {
		panic(err)
	}
	return id
}

// Public returns the verification key.
func (id *Identity) Public() ed25519.PublicKey { return id.pub }

// Seed exports the 32-byte private seed for out-of-band provisioning (e.g.
// handing a CLI customer its enrolled identity). Handle with care.
func (id *Identity) Seed() []byte { return id.priv.Seed() }

// IdentityFromSeed reconstructs an identity from a provisioned seed.
func IdentityFromSeed(name string, seed []byte) (*Identity, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("cryptoutil: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Identity{Name: name, priv: priv, pub: priv.Public().(ed25519.PublicKey)}, nil
}

// Sign signs msg with the private key.
func (id *Identity) Sign(msg []byte) []byte {
	opSign.Add(1)
	return ed25519.Sign(id.priv, msg)
}

// Verify checks sig over msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	opVerify.Add(1)
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// Hash computes the canonical domain-separated hash of a list of fields:
// SHA-256 over tag ‖ len(f1) ‖ f1 ‖ len(f2) ‖ f2 ‖ … . Length prefixes make
// the encoding injective, so H(a‖b) collisions across field boundaries are
// impossible; the tag separates protocol contexts (e.g. "Q1" vs "Q3").
func Hash(tag string, fields ...[]byte) [32]byte {
	h := sha256.New()
	var lbuf [8]byte
	binary.BigEndian.PutUint64(lbuf[:], uint64(len(tag)))
	h.Write(lbuf[:])
	io.WriteString(h, tag)
	for _, f := range fields {
		binary.BigEndian.PutUint64(lbuf[:], uint64(len(f)))
		h.Write(lbuf[:])
		h.Write(f)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Certificate binds a public key to a subject string for a purpose, signed
// by an issuer. For attestation-key certificates the privacy CA sets the
// subject to an anonymous serial so the certificate does not reveal which
// cloud server is attesting (paper §3.4.2).
type Certificate struct {
	Subject string
	Purpose string
	Key     ed25519.PublicKey
	Issuer  string
	Serial  uint64
	Sig     []byte
}

// certBody returns the byte string the issuer signs.
func certBody(c *Certificate) []byte {
	var serial [8]byte
	binary.BigEndian.PutUint64(serial[:], c.Serial)
	sum := Hash("cloudmonatt-cert",
		[]byte(c.Subject), []byte(c.Purpose), c.Key, []byte(c.Issuer), serial[:])
	return sum[:]
}

// IssueCertificate creates a certificate over key signed by issuer.
func IssueCertificate(issuer *Identity, subject, purpose string, key ed25519.PublicKey, serial uint64) *Certificate {
	c := &Certificate{
		Subject: subject,
		Purpose: purpose,
		Key:     append(ed25519.PublicKey(nil), key...),
		Issuer:  issuer.Name,
		Serial:  serial,
	}
	c.Sig = issuer.Sign(certBody(c))
	return c
}

// VerifyCertificate checks the certificate signature under the issuer's
// public key and that the issuer name matches.
func VerifyCertificate(c *Certificate, issuerName string, issuerKey ed25519.PublicKey) error {
	return VerifyCertificateWith(c, issuerName, issuerKey, Direct)
}

// VerifyCertificateWith is VerifyCertificate with a pluggable Verifier, so
// hot paths can route the signature check through a BatchVerifier.
func VerifyCertificateWith(c *Certificate, issuerName string, issuerKey ed25519.PublicKey, v Verifier) error {
	if c == nil {
		return errors.New("cryptoutil: nil certificate")
	}
	if c.Issuer != issuerName {
		return fmt.Errorf("cryptoutil: certificate issued by %q, want %q", c.Issuer, issuerName)
	}
	if !v.Verify(issuerKey, certBody(c), c.Sig) {
		return errors.New("cryptoutil: certificate signature invalid")
	}
	return nil
}

// ConstEqual compares two byte strings in constant time. Every comparison
// of secret-derived material (keys, quotes, MACs, signatures) must go
// through here: an early-exit compare tells a network observer how many
// leading bytes matched, which is exactly the oracle that makes forged
// quotes cheap to search for. Length mismatch returns false immediately —
// lengths are public protocol constants.
func ConstEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	return subtle.ConstantTimeCompare(a, b) == 1
}

// KeyEqual reports whether two public keys are identical, in constant time.
func KeyEqual(a, b ed25519.PublicKey) bool { return ConstEqual(a, b) }

// ReplayCache remembers recently seen nonces and rejects duplicates. It is
// bounded: when full, the oldest entries are evicted (FIFO), which is safe
// because a replayed nonce old enough to have been evicted also fails the
// session binding of the surrounding protocol. FIFO order lives in a fixed
// ring buffer: the previous `order = order[1:]` slice shift kept the full
// backing array reachable and forced append to re-allocate it over and
// over on the hot nonce-admission path.
type ReplayCache struct {
	mu   sync.Mutex
	seen map[Nonce]struct{}
	ring []Nonce
	head int // ring slot holding the oldest nonce
	n    int // nonces currently held
}

// NewReplayCache creates a cache holding up to capacity nonces.
func NewReplayCache(capacity int) *ReplayCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &ReplayCache{seen: make(map[Nonce]struct{}, capacity), ring: make([]Nonce, capacity)}
}

// Check records n and reports whether it was fresh (true) or replayed (false).
func (rc *ReplayCache) Check(n Nonce) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, dup := rc.seen[n]; dup {
		return false
	}
	if rc.n == len(rc.ring) {
		delete(rc.seen, rc.ring[rc.head])
		rc.ring[rc.head] = n
		rc.head = (rc.head + 1) % len(rc.ring)
	} else {
		rc.ring[(rc.head+rc.n)%len(rc.ring)] = n
		rc.n++
	}
	rc.seen[n] = struct{}{}
	return true
}

// Len returns the number of nonces currently remembered.
func (rc *ReplayCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.seen)
}
