package cryptoutil

import (
	"encoding/binary"
	"testing"
)

// BenchmarkReplayCacheCheck exercises the nonce-admission hot path at
// steady state: the cache is full, so every fresh nonce evicts the oldest.
func BenchmarkReplayCacheCheck(b *testing.B) {
	rc := NewReplayCache(4096)
	var n Nonce
	for i := 0; i < 4096; i++ {
		binary.BigEndian.PutUint64(n[:8], uint64(i))
		rc.Check(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(n[:8], uint64(4096+i))
		rc.Check(n)
	}
}

// BenchmarkReplayCacheCheckParallel is the same hot path under contention
// (every entity shares one cache across its RPC handler goroutines).
func BenchmarkReplayCacheCheckParallel(b *testing.B) {
	rc := NewReplayCache(4096)
	b.RunParallel(func(pb *testing.PB) {
		var n Nonce
		var i uint64
		seed := MustNonce()
		copy(n[8:], seed[8:])
		for pb.Next() {
			i++
			binary.BigEndian.PutUint64(n[:8], i)
			rc.Check(n)
		}
	})
}
