// Asymmetric-operation accounting. Every ed25519 sign/verify and X25519
// key-agreement in the process ticks a counter here, so tests can prove
// hot-path claims ("a resumed secure channel performs zero asymmetric
// operations") by differencing snapshots instead of trusting the code path.
package cryptoutil

import "sync/atomic"

var opSign, opVerify, opECDH atomic.Uint64

// OpCounts is a snapshot of the process-wide asymmetric-crypto counters.
type OpCounts struct {
	Sign   uint64 // ed25519 signatures produced
	Verify uint64 // ed25519 verifications attempted
	ECDH   uint64 // X25519 operations (keygen + shared-secret)
}

// Ops snapshots the counters.
func Ops() OpCounts {
	return OpCounts{Sign: opSign.Load(), Verify: opVerify.Load(), ECDH: opECDH.Load()}
}

// Sub returns the per-counter difference c - prev.
func (c OpCounts) Sub(prev OpCounts) OpCounts {
	return OpCounts{Sign: c.Sign - prev.Sign, Verify: c.Verify - prev.Verify, ECDH: c.ECDH - prev.ECDH}
}

// Asymmetric returns the total asymmetric operations in the snapshot.
func (c OpCounts) Asymmetric() uint64 { return c.Sign + c.Verify + c.ECDH }

// NoteECDH records one X25519 operation. Callers that do their own curve
// arithmetic (internal/secchan) tick this next to each operation.
func NoteECDH() { opECDH.Add(1) }
