package cryptoutil

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkVerify compares direct per-call ed25519 verification against the
// group-commit BatchVerifier at 1, 8 and 64 concurrent callers — the shape
// of an attestation server appraising many VMs at once. Two workloads:
//
//   - unique: every caller verifies its own distinct signed message (fresh
//     per-session evidence signatures). No coalescing is possible, so this
//     measures the batcher's pure queuing overhead.
//   - shared: every caller re-checks the same signed message (the fleet's
//     current ledger checkpoint, the pCA root cert). Identical triples
//     coalesce into one underlying verification per group commit — the
//     case the batcher exists for.
func BenchmarkVerify(b *testing.B) {
	id := MustIdentity("bench-signer")
	const distinct = 64
	msgs := make([][]byte, distinct)
	sigs := make([][]byte, distinct)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("evidence-%02d", i))
		sigs[i] = id.Sign(msgs[i])
	}
	pub := id.Public()

	run := func(v Verifier, callers int, shared bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < callers; c++ {
				n := b.N / callers
				if c < b.N%callers {
					n++
				}
				wg.Add(1)
				go func(c, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						k := 0
						if !shared {
							k = (c*31 + i) % distinct
						}
						if !v.Verify(pub, msgs[k], sigs[k]) {
							b.Error("valid signature rejected")
							return
						}
					}
				}(c, n)
			}
			wg.Wait()
			if bv, ok := v.(*BatchVerifier); ok {
				st := bv.Stats()
				if st.Items > 0 {
					b.ReportMetric(float64(st.Coalesced)/float64(st.Items)*100, "%coalesced")
				}
			}
		}
	}

	for _, load := range []string{"unique", "shared"} {
		shared := load == "shared"
		for _, callers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/direct/callers-%d", load, callers), run(Direct, callers, shared))
			b.Run(fmt.Sprintf("%s/batch/callers-%d", load, callers), run(NewBatchVerifier(0), callers, shared))
		}
	}
}
