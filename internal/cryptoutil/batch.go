package cryptoutil

import (
	"crypto/ed25519"
	"runtime"
	"sync"
)

// Verifier abstracts signature verification so hot paths can swap the
// direct per-call ed25519.Verify for a batching implementation.
type Verifier interface {
	Verify(pub ed25519.PublicKey, msg, sig []byte) bool
}

// VerifierFunc adapts a function to the Verifier interface.
type VerifierFunc func(pub ed25519.PublicKey, msg, sig []byte) bool

// Verify calls f.
func (f VerifierFunc) Verify(pub ed25519.PublicKey, msg, sig []byte) bool { return f(pub, msg, sig) }

// Direct is the non-batching Verifier: one ed25519.Verify per call.
var Direct Verifier = VerifierFunc(Verify)

// BatchVerifier amortizes ed25519 verification across concurrent callers
// by leader-based group commit. The first caller to arrive while no batch
// is running becomes the leader: it drains everything queued, coalesces
// identical (pub, msg, sig) triples into one verification, and fans the
// distinct ones out over a bounded worker pool; callers that arrived while
// the leader was busy form the next batch. Followers block until the
// leader publishes their verdict.
//
// Two effects make this cheaper than calling ed25519.Verify inline:
// coalescing (concurrent appraisals of the same cloud server all verify
// the same pCA certificate signature — the batch verifies it once), and
// parallelism (a burst of distinct signatures spreads across cores even
// when each caller is itself sequential).
//
// Failure falls back to individual verification: when a coalesced group's
// shared verification fails, every member is re-verified on its own
// bytes, so one caller handing in an aliased or concurrently mutated
// buffer can never condemn another caller's valid signature.
//
// Leadership is bounded: a leader drains at most maxDrains consecutive
// batches past the one holding its own request. Under sustained load the
// queue never empties, and an uncapped leader would be trapped running
// other callers' verifications forever after its own verdict was ready.
// At the cap it promotes the oldest queued follower to leader and returns.
//
// The zero value is not usable; construct with NewBatchVerifier. A
// BatchVerifier implements Verifier and is safe for concurrent use.
type BatchVerifier struct {
	workers   int
	maxDrains int

	mu      sync.Mutex
	queue   []*batchReq
	leading bool

	stats BatchStats
}

// DefaultMaxDrains bounds how many consecutive batches one caller leads.
// Small enough that a leader's extra latency is a handful of group
// commits; large enough that leadership churn stays off the hot path.
const DefaultMaxDrains = 4

// BatchStats counts what the batching achieved.
type BatchStats struct {
	Batches   uint64 // group commits run
	Items     uint64 // verification requests served
	Coalesced uint64 // requests answered by another request's verification
	Fallbacks uint64 // individual re-verifications after a group failure
	MaxBatch  uint64 // largest single group commit
	Handoffs  uint64 // leaderships handed to a queued follower at the drain cap
	MaxDrains uint64 // most consecutive batches led by one caller
}

type batchReq struct {
	pub  ed25519.PublicKey
	msg  []byte
	sig  []byte
	ok   bool
	done chan struct{}
	lead chan struct{} // signaled instead of waited-on when promoted to leader
}

// NewBatchVerifier creates a batch verifier fanning out over at most
// workers goroutines; workers <= 0 selects GOMAXPROCS.
func NewBatchVerifier(workers int) *BatchVerifier {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &BatchVerifier{workers: workers, maxDrains: DefaultMaxDrains}
}

// SetMaxDrains overrides the consecutive-drain cap (n <= 0 restores the
// default). Tests use a tiny cap to force handoffs deterministically.
func (b *BatchVerifier) SetMaxDrains(n int) {
	if n <= 0 {
		n = DefaultMaxDrains
	}
	b.mu.Lock()
	b.maxDrains = n
	b.mu.Unlock()
}

// Verify enqueues one signature check and blocks until a group commit
// answers it. Call it from the goroutine that needs the verdict; the
// batching comes from concurrent callers, not from deferred evaluation.
func (b *BatchVerifier) Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	r := &batchReq{pub: pub, msg: msg, sig: sig, done: make(chan struct{}), lead: make(chan struct{})}
	b.mu.Lock()
	b.queue = append(b.queue, r)
	if b.leading {
		// A leader is running; it (or its successor) will take us. We may
		// instead be promoted to leader ourselves if the current leader
		// hits its drain cap while we are still queued.
		b.mu.Unlock()
		select {
		case <-r.done:
			return r.ok
		case <-r.lead:
			b.mu.Lock()
		}
	} else {
		b.leading = true
	}
	drains := 0
	for {
		// Yield once before draining: callers already runnable get to
		// enqueue and join this commit instead of forming a one-element
		// batch each. This is what lets the group grow on a single core,
		// where nothing preempts a verification in flight — the classic
		// group-commit "hold the door" beat, priced at one scheduler pass.
		b.mu.Unlock()
		runtime.Gosched()
		b.mu.Lock()
		batch := b.queue
		b.queue = nil
		b.mu.Unlock()
		b.run(batch)
		drains++
		b.mu.Lock()
		if uint64(drains) > b.stats.MaxDrains {
			b.stats.MaxDrains = uint64(drains)
		}
		if len(b.queue) == 0 {
			b.leading = false
			b.mu.Unlock()
			break
		}
		// Followers queued while we verified: lead their batch too rather
		// than leaving them to wait for a fresh caller — up to the drain
		// cap. Past it, promote the oldest queued follower so this caller
		// (whose own verdict landed in its first batch) can return. The
		// leading flag stays set across the handoff: there is never a
		// moment where a fresh caller could seize leadership and race the
		// promoted follower for the queue.
		if drains >= b.maxDrains {
			b.stats.Handoffs++
			close(b.queue[0].lead)
			b.mu.Unlock()
			break
		}
	}
	//lint:ignore lockorder every exit from the drain loop above releases b.mu before this wait
	<-r.done
	return r.ok
}

// Stats snapshots the counters.
func (b *BatchVerifier) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// run verifies one drained batch and wakes every member.
func (b *BatchVerifier) run(batch []*batchReq) {
	// Coalesce identical triples: one verification answers all of them.
	// The key hashes all three components, so two requests share a group
	// only when they are byte-identical.
	groups := make(map[[32]byte][]*batchReq, len(batch))
	order := make([][32]byte, 0, len(batch))
	for _, r := range batch {
		k := Hash("batch-verify", r.pub, r.msg, r.sig)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}

	workers := b.workers
	if workers > len(order) {
		workers = len(order)
	}
	var wg sync.WaitGroup
	idx := make(chan [32]byte, len(order))
	for _, k := range order {
		idx <- k
	}
	close(idx)
	var fallbacks uint64
	var fbMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				grp := groups[k]
				rep := grp[0]
				ok := Verify(rep.pub, rep.msg, rep.sig)
				if ok {
					for _, r := range grp {
						r.ok = true
					}
					continue
				}
				// Group failed: re-check every member individually so a
				// caller whose buffer was mutated after enqueue (making the
				// shared key stale) cannot drag the others down with it.
				rep.ok = false
				for _, r := range grp[1:] {
					r.ok = Verify(r.pub, r.msg, r.sig)
				}
				if len(grp) > 1 {
					fbMu.Lock()
					fallbacks += uint64(len(grp) - 1)
					fbMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, r := range batch {
		close(r.done)
	}

	b.mu.Lock()
	b.stats.Batches++
	b.stats.Items += uint64(len(batch))
	b.stats.Coalesced += uint64(len(batch) - len(order))
	b.stats.Fallbacks += fallbacks
	if n := uint64(len(batch)); n > b.stats.MaxBatch {
		b.stats.MaxBatch = n
	}
	b.mu.Unlock()
}
