package cryptoutil

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestIdentitySignVerify(t *testing.T) {
	id := MustIdentity("alice")
	msg := []byte("hello cloud")
	sig := id.Sign(msg)
	if !Verify(id.Public(), msg, sig) {
		t.Fatal("own signature does not verify")
	}
	if Verify(id.Public(), append(msg, 'x'), sig) {
		t.Fatal("signature verified over modified message")
	}
	other := MustIdentity("bob")
	if Verify(other.Public(), msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
	if Verify(nil, msg, sig) {
		t.Fatal("signature verified under nil key")
	}
}

func TestHashInjective(t *testing.T) {
	// Field-boundary attack: ("ab","c") vs ("a","bc") must differ.
	a := Hash("t", []byte("ab"), []byte("c"))
	b := Hash("t", []byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("length-prefixed hash collided across field boundaries")
	}
	// Tag separation.
	if Hash("t1", []byte("x")) == Hash("t2", []byte("x")) {
		t.Fatal("different tags produced identical hashes")
	}
	// Field count matters.
	if Hash("t", []byte("x")) == Hash("t", []byte("x"), nil) {
		t.Fatal("appending an empty field did not change the hash")
	}
}

func TestQuickHashDeterminismAndSensitivity(t *testing.T) {
	f := func(a, b []byte) bool {
		h1 := Hash("q", a, b)
		h2 := Hash("q", a, b)
		if h1 != h2 {
			return false
		}
		if !bytes.Equal(a, b) {
			if Hash("q", a) == Hash("q", b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateIssueVerify(t *testing.T) {
	ca := MustIdentity("pca")
	subject := MustIdentity("server-1")
	cert := IssueCertificate(ca, "anon-7", "attest", subject.Public(), 7)
	if err := VerifyCertificate(cert, "pca", ca.Public()); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	if err := VerifyCertificate(cert, "other-ca", ca.Public()); err == nil {
		t.Fatal("certificate accepted under wrong issuer name")
	}
	rogue := MustIdentity("rogue")
	if err := VerifyCertificate(cert, "pca", rogue.Public()); err == nil {
		t.Fatal("certificate accepted under wrong issuer key")
	}
	cert.Subject = "anon-8"
	if err := VerifyCertificate(cert, "pca", ca.Public()); err == nil {
		t.Fatal("tampered certificate accepted")
	}
	if err := VerifyCertificate(nil, "pca", ca.Public()); err == nil {
		t.Fatal("nil certificate accepted")
	}
}

func TestNonceUniqueness(t *testing.T) {
	seen := make(map[Nonce]bool)
	for i := 0; i < 1000; i++ {
		n, err := NewNonce(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if seen[n] {
			t.Fatal("duplicate nonce from crypto/rand")
		}
		seen[n] = true
	}
}

func TestReplayCache(t *testing.T) {
	rc := NewReplayCache(4)
	n1, n2 := MustNonce(), MustNonce()
	if !rc.Check(n1) {
		t.Fatal("fresh nonce rejected")
	}
	if rc.Check(n1) {
		t.Fatal("replayed nonce accepted")
	}
	if !rc.Check(n2) {
		t.Fatal("second fresh nonce rejected")
	}
}

func TestReplayCacheEviction(t *testing.T) {
	rc := NewReplayCache(3)
	var ns []Nonce
	for i := 0; i < 5; i++ {
		n := MustNonce()
		ns = append(ns, n)
		if !rc.Check(n) {
			t.Fatal("fresh nonce rejected")
		}
	}
	if rc.Len() != 3 {
		t.Fatalf("cache len %d, want 3", rc.Len())
	}
	// Oldest were evicted: re-checking them succeeds (acceptable: protocol
	// layers bind nonces to sessions), but recent ones are still blocked.
	if rc.Check(ns[4]) {
		t.Fatal("recent nonce accepted twice")
	}
}

func TestReplayCacheZeroCapacityDefaults(t *testing.T) {
	rc := NewReplayCache(0)
	if !rc.Check(MustNonce()) {
		t.Fatal("default-capacity cache rejected a fresh nonce")
	}
}

func TestKeyEqual(t *testing.T) {
	a, b := MustIdentity("a"), MustIdentity("b")
	if !KeyEqual(a.Public(), a.Public()) {
		t.Fatal("key not equal to itself")
	}
	if KeyEqual(a.Public(), b.Public()) {
		t.Fatal("distinct keys reported equal")
	}
}
