package cryptoutil

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Redact returns a short, non-invertible fingerprint of secret material,
// safe for logs, error strings, span annotations, and metric labels:
// "redacted:" plus the first four bytes of a domain-separated SHA-256.
// Eight hex digits identify a key across log lines without revealing it —
// brute-forcing a 32-byte seed from 32 bits of hash is hopeless, and the
// "redact" domain tag keeps the fingerprint from colliding with any
// protocol hash of the same bytes.
//
// monatt-vet's secretflow analyzer recognizes Redact (and Hash) as the
// sanctioned sanitizers: a value that has passed through one may reach
// operator-visible sinks.
func Redact(secret []byte) string {
	h := sha256.New()
	h.Write([]byte("cloudmonatt/redact\x00"))
	h.Write(secret)
	return "redacted:" + hex.EncodeToString(h.Sum(nil)[:4])
}

// WriteSecretFile is the sanctioned persistence path for secret material:
// owner-only permissions, parent directory created, and the write staged
// through a same-directory temp file so a crash never leaves a
// half-written key on disk. secretflow allows tainted values to flow here
// and nowhere else on the filesystem.
func WriteSecretFile(path string, secret []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return fmt.Errorf("cryptoutil: preparing secret dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("cryptoutil: staging secret file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return fmt.Errorf("cryptoutil: restricting secret file: %w", err)
	}
	if _, err := tmp.Write(secret); err != nil {
		tmp.Close()
		return fmt.Errorf("cryptoutil: writing secret file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cryptoutil: closing secret file: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("cryptoutil: installing secret file: %w", err)
	}
	return nil
}
