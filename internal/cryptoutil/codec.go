// Binary wire codec for certificates, shared by the wire-message codec.
package cryptoutil

import (
	"crypto/ed25519"

	"cloudmonatt/internal/binenc"
)

// AppendWire appends the certificate's binary wire encoding to b.
func (c Certificate) AppendWire(b []byte) []byte {
	b = binenc.AppendString(b, c.Subject)
	b = binenc.AppendString(b, c.Purpose)
	b = binenc.AppendBytes(b, c.Key)
	b = binenc.AppendString(b, c.Issuer)
	b = binenc.AppendUint64(b, c.Serial)
	b = binenc.AppendBytes(b, c.Sig)
	return b
}

// ReadWire decodes one certificate from the cursor.
func (c *Certificate) ReadWire(rd *binenc.Reader) {
	*c = Certificate{}
	c.Subject = rd.String()
	c.Purpose = rd.String()
	if k := rd.Bytes(); k != nil {
		c.Key = ed25519.PublicKey(k)
	}
	c.Issuer = rd.String()
	c.Serial = rd.Uint64()
	c.Sig = rd.Bytes()
}
