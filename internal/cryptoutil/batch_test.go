package cryptoutil

import (
	"fmt"
	"sync"
	"testing"
)

func batchReqFor(id *Identity, msg []byte, valid bool) *batchReq {
	sig := id.Sign(msg)
	if !valid {
		sig[0] ^= 0xff
	}
	return &batchReq{pub: id.Public(), msg: msg, sig: sig, done: make(chan struct{})}
}

// TestBatchVerifierRunCoalesces drives one group commit directly: identical
// triples must be answered by a single underlying verification, distinct
// ones verified individually, and the op counters must show the saving.
func TestBatchVerifierRunCoalesces(t *testing.T) {
	id := MustIdentity("signer")
	msg := []byte("evidence body")
	sig := id.Sign(msg)

	var batch []*batchReq
	for i := 0; i < 5; i++ { // five byte-identical requests
		batch = append(batch, &batchReq{pub: id.Public(), msg: msg, sig: sig, done: make(chan struct{})})
	}
	for i := 0; i < 3; i++ { // three distinct valid requests
		batch = append(batch, batchReqFor(id, []byte(fmt.Sprintf("distinct-%d", i)), true))
	}
	bad := batchReqFor(id, []byte("forged"), false)
	batch = append(batch, bad)

	b := NewBatchVerifier(4)
	before := Ops()
	b.run(batch)
	delta := Ops().Sub(before)

	for i, r := range batch {
		want := r != bad
		if r.ok != want {
			t.Errorf("request %d: ok=%v, want %v", i, r.ok, want)
		}
	}
	// 9 requests, 5 coalesced into 1: exactly 5 verifications happen.
	if delta.Verify != 5 {
		t.Errorf("underlying verifications: %d, want 5 (coalescing broken)", delta.Verify)
	}
	st := b.Stats()
	if st.Batches != 1 || st.Items != 9 || st.Coalesced != 4 || st.MaxBatch != 9 {
		t.Errorf("stats %+v, want 1 batch / 9 items / 4 coalesced / max 9", st)
	}
}

// TestBatchVerifierFallback: when a coalesced group's shared verification
// fails, every member is re-verified individually, so the group verdict is
// not trusted for rejection.
func TestBatchVerifierFallback(t *testing.T) {
	id := MustIdentity("signer")
	msg := []byte("tampered")
	sig := id.Sign(msg)
	sig[1] ^= 0x01

	var batch []*batchReq
	for i := 0; i < 3; i++ {
		batch = append(batch, &batchReq{pub: id.Public(), msg: msg, sig: sig, done: make(chan struct{})})
	}
	b := NewBatchVerifier(2)
	b.run(batch)
	for i, r := range batch {
		if r.ok {
			t.Errorf("request %d: forged signature verified", i)
		}
	}
	if st := b.Stats(); st.Fallbacks != 2 {
		t.Errorf("fallbacks %d, want 2 (members re-verified individually)", st.Fallbacks)
	}
}

// TestBatchVerifierConcurrent hammers the public Verify path from many
// goroutines with a mix of valid and forged signatures: every caller must
// get its own correct verdict regardless of how the batches formed.
func TestBatchVerifierConcurrent(t *testing.T) {
	ids := []*Identity{MustIdentity("a"), MustIdentity("b")}
	b := NewBatchVerifier(0)
	const n = 96
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i%2]
			msg := []byte(fmt.Sprintf("msg-%d", i%8)) // some duplicates
			sig := id.Sign(msg)
			valid := i%5 != 0
			if !valid {
				sig[2] ^= 0x80
			}
			if got := b.Verify(id.Public(), msg, sig); got != valid {
				errs <- fmt.Sprintf("caller %d: got %v, want %v", i, got, valid)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := b.Stats()
	if st.Items != n {
		t.Errorf("items %d, want %d", st.Items, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Errorf("batches %d out of range", st.Batches)
	}
}
