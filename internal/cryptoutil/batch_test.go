package cryptoutil

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func batchReqFor(id *Identity, msg []byte, valid bool) *batchReq {
	sig := id.Sign(msg)
	if !valid {
		sig[0] ^= 0xff
	}
	return &batchReq{pub: id.Public(), msg: msg, sig: sig, done: make(chan struct{})}
}

// TestBatchVerifierRunCoalesces drives one group commit directly: identical
// triples must be answered by a single underlying verification, distinct
// ones verified individually, and the op counters must show the saving.
func TestBatchVerifierRunCoalesces(t *testing.T) {
	id := MustIdentity("signer")
	msg := []byte("evidence body")
	sig := id.Sign(msg)

	var batch []*batchReq
	for i := 0; i < 5; i++ { // five byte-identical requests
		batch = append(batch, &batchReq{pub: id.Public(), msg: msg, sig: sig, done: make(chan struct{})})
	}
	for i := 0; i < 3; i++ { // three distinct valid requests
		batch = append(batch, batchReqFor(id, []byte(fmt.Sprintf("distinct-%d", i)), true))
	}
	bad := batchReqFor(id, []byte("forged"), false)
	batch = append(batch, bad)

	b := NewBatchVerifier(4)
	before := Ops()
	b.run(batch)
	delta := Ops().Sub(before)

	for i, r := range batch {
		want := r != bad
		if r.ok != want {
			t.Errorf("request %d: ok=%v, want %v", i, r.ok, want)
		}
	}
	// 9 requests, 5 coalesced into 1: exactly 5 verifications happen.
	if delta.Verify != 5 {
		t.Errorf("underlying verifications: %d, want 5 (coalescing broken)", delta.Verify)
	}
	st := b.Stats()
	if st.Batches != 1 || st.Items != 9 || st.Coalesced != 4 || st.MaxBatch != 9 {
		t.Errorf("stats %+v, want 1 batch / 9 items / 4 coalesced / max 9", st)
	}
}

// TestBatchVerifierFallback: when a coalesced group's shared verification
// fails, every member is re-verified individually, so the group verdict is
// not trusted for rejection.
func TestBatchVerifierFallback(t *testing.T) {
	id := MustIdentity("signer")
	msg := []byte("tampered")
	sig := id.Sign(msg)
	sig[1] ^= 0x01

	var batch []*batchReq
	for i := 0; i < 3; i++ {
		batch = append(batch, &batchReq{pub: id.Public(), msg: msg, sig: sig, done: make(chan struct{})})
	}
	b := NewBatchVerifier(2)
	b.run(batch)
	for i, r := range batch {
		if r.ok {
			t.Errorf("request %d: forged signature verified", i)
		}
	}
	if st := b.Stats(); st.Fallbacks != 2 {
		t.Errorf("fallbacks %d, want 2 (members re-verified individually)", st.Fallbacks)
	}
}

// TestBatchVerifierConcurrent hammers the public Verify path from many
// goroutines with a mix of valid and forged signatures: every caller must
// get its own correct verdict regardless of how the batches formed.
func TestBatchVerifierConcurrent(t *testing.T) {
	ids := []*Identity{MustIdentity("a"), MustIdentity("b")}
	b := NewBatchVerifier(0)
	const n = 96
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i%2]
			msg := []byte(fmt.Sprintf("msg-%d", i%8)) // some duplicates
			sig := id.Sign(msg)
			valid := i%5 != 0
			if !valid {
				sig[2] ^= 0x80
			}
			if got := b.Verify(id.Public(), msg, sig); got != valid {
				errs <- fmt.Sprintf("caller %d: got %v, want %v", i, got, valid)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := b.Stats()
	if st.Items != n {
		t.Errorf("items %d, want %d", st.Items, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Errorf("batches %d out of range", st.Batches)
	}
}

// TestBatchVerifierLeaderNotStarved is the regression test for the
// unbounded leader loop: under sustained concurrent load the queue never
// drains, and before the drain cap one caller could be trapped leading
// batch after batch long after its own verdict was ready. With the cap,
// no leader stint may exceed maxDrains consecutive drains, and sustained
// load must actually exercise the handoff path.
func TestBatchVerifierLeaderNotStarved(t *testing.T) {
	// Starvation needs genuine overlap: followers must enqueue while the
	// leader is inside a group commit. On a single-P runtime the leader
	// re-checks the queue before woken followers get scheduled, so the
	// queue looks empty and the re-drain path never fires. Raise P so the
	// feeders preempt the leader mid-verification like a loaded server.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	id := MustIdentity("signer")
	b := NewBatchVerifier(2)
	const drainCap = 2
	b.SetMaxDrains(drainCap)

	const feeders = 16
	const callsPer = 150
	// Pre-sign everything: a woken feeder's very next step is re-enqueue,
	// keeping the queue hot instead of pausing to sign.
	msgs := make([][]byte, 4)
	sigs := make([][]byte, 4)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("feed-%d", i))
		sigs[i] = id.Sign(msgs[i])
	}
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				k := (f + i) % len(msgs)
				if !b.Verify(id.Public(), msgs[k], sigs[k]) {
					t.Errorf("feeder %d call %d: valid signature rejected", f, i)
					return
				}
			}
		}(f)
	}
	wg.Wait()

	st := b.Stats()
	if st.Items != feeders*callsPer {
		t.Errorf("items %d, want %d", st.Items, feeders*callsPer)
	}
	if st.MaxDrains > drainCap {
		t.Errorf("a leader drained %d consecutive batches, cap is %d", st.MaxDrains, drainCap)
	}
	if st.Handoffs == 0 {
		t.Error("sustained load never handed leadership off (cap path untested)")
	}
}
