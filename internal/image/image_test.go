package image

import "testing"

func TestLibraryHasPaperImagesAndFlavors(t *testing.T) {
	lib := NewLibrary(1)
	for _, name := range ImageNames {
		img, err := lib.Get(name)
		if err != nil {
			t.Fatalf("missing image %s: %v", name, err)
		}
		if img.SizeMB <= 0 {
			t.Fatalf("%s has no size", name)
		}
	}
	for _, name := range FlavorNames {
		f, err := FlavorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.VCPUs <= 0 || f.MemoryMB <= 0 {
			t.Fatalf("flavor %s has empty resources: %+v", name, f)
		}
	}
}

func TestFlavorOrdering(t *testing.T) {
	small, _ := FlavorByName("small")
	medium, _ := FlavorByName("medium")
	large, _ := FlavorByName("large")
	if !(small.MemoryMB < medium.MemoryMB && medium.MemoryMB < large.MemoryMB) {
		t.Fatal("flavor memory not increasing")
	}
	if !(small.VCPUs <= medium.VCPUs && medium.VCPUs <= large.VCPUs) {
		t.Fatal("flavor vCPUs not increasing")
	}
}

func TestUnknownLookups(t *testing.T) {
	lib := NewLibrary(1)
	if _, err := lib.Get("nosuch"); err == nil {
		t.Fatal("unknown image returned")
	}
	if _, err := lib.GoldenDigest("nosuch"); err == nil {
		t.Fatal("unknown golden digest returned")
	}
	if _, err := FlavorByName("nosuch"); err == nil {
		t.Fatal("unknown flavor returned")
	}
}

func TestGoldenDigestMatchesPristineCopy(t *testing.T) {
	lib := NewLibrary(7)
	for _, name := range ImageNames {
		img, _ := lib.Get(name)
		golden, _ := lib.GoldenDigest(name)
		if img.Digest() != golden {
			t.Fatalf("%s: pristine copy digest differs from golden", name)
		}
	}
}

func TestCorruptionDetectedAndIsolated(t *testing.T) {
	lib := NewLibrary(7)
	img, _ := lib.Get("ubuntu")
	img.Corrupt()
	golden, _ := lib.GoldenDigest("ubuntu")
	if img.Digest() == golden {
		t.Fatal("corrupted image still matches golden digest")
	}
	fresh, _ := lib.Get("ubuntu")
	if fresh.Digest() != golden {
		t.Fatal("corrupting a copy corrupted the library original")
	}
}

func TestDeterministicLibrary(t *testing.T) {
	a, b := NewLibrary(3), NewLibrary(3)
	for _, name := range ImageNames {
		da, _ := a.GoldenDigest(name)
		db, _ := b.GoldenDigest(name)
		if da != db {
			t.Fatalf("%s digests differ across same-seed libraries", name)
		}
	}
	c := NewLibrary(4)
	dc, _ := c.GoldenDigest("ubuntu")
	da, _ := a.GoldenDigest("ubuntu")
	if dc == da {
		t.Fatal("different seeds produced identical image content")
	}
}

func TestTransferTime(t *testing.T) {
	lib := NewLibrary(1)
	cirros, _ := lib.Get("cirros")
	ubuntu, _ := lib.Get("ubuntu")
	if cirros.TransferTime(100) >= ubuntu.TransferTime(100) {
		t.Fatal("cirros should transfer faster than ubuntu")
	}
	if ubuntu.TransferTime(0) != 0 {
		t.Fatal("zero throughput should yield zero (guarded) transfer time")
	}
}
