// Package image models VM images and flavors. The paper's launch experiment
// (Fig. 9) sweeps three images (cirros, fedora, ubuntu) across three flavors
// (small, medium, large); image bytes here are synthetic but size-calibrated
// so stage latencies that scale with image/flavor size reproduce the
// figure's shape, and image digests feed the startup-integrity case study.
package image

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"time"
)

// Flavor describes the resources of a VM shape (OpenStack flavor).
type Flavor struct {
	Name     string
	VCPUs    int
	MemoryMB int
	DiskGB   int
}

// Flavors used in the paper's sweeps.
var flavors = map[string]Flavor{
	"small":  {Name: "small", VCPUs: 1, MemoryMB: 2048, DiskGB: 20},
	"medium": {Name: "medium", VCPUs: 2, MemoryMB: 4096, DiskGB: 40},
	"large":  {Name: "large", VCPUs: 4, MemoryMB: 8192, DiskGB: 80},
}

// FlavorNames lists the flavors in the paper's presentation order.
var FlavorNames = []string{"small", "medium", "large"}

// FlavorByName returns the named flavor.
func FlavorByName(name string) (Flavor, error) {
	f, ok := flavors[name]
	if !ok {
		return Flavor{}, fmt.Errorf("image: unknown flavor %q", name)
	}
	return f, nil
}

// Image is a VM image: a name, synthetic content standing in for the disk
// image, and a nominal size that drives launch-latency modeling.
type Image struct {
	Name   string
	SizeMB int
	data   []byte
}

// imageSpecs calibrates the three paper images. Sizes shape the spawning
// stage latency (cirros is tiny; ubuntu is the largest).
var imageSpecs = []struct {
	name   string
	sizeMB int
}{
	{"cirros", 13},
	{"fedora", 200},
	{"ubuntu", 250},
}

// ImageNames lists the images in the paper's presentation order.
var ImageNames = []string{"cirros", "fedora", "ubuntu"}

// Library is a catalog of images with their known-good digests — the
// reference values an appraiser uses for startup-integrity attestation.
type Library struct {
	images map[string]*Image
	golden map[string][32]byte
}

// NewLibrary builds the three paper images with deterministic synthetic
// content (seeded), and records their pristine digests.
func NewLibrary(seed int64) *Library {
	rng := rand.New(rand.NewSource(seed))
	lib := &Library{
		images: make(map[string]*Image),
		golden: make(map[string][32]byte),
	}
	for _, spec := range imageSpecs {
		// 4 KiB of synthetic content per image is plenty: digests only need
		// to change when the content changes.
		data := make([]byte, 4096)
		rng.Read(data)
		img := &Image{Name: spec.name, SizeMB: spec.sizeMB, data: data}
		lib.images[spec.name] = img
		lib.golden[spec.name] = img.Digest()
	}
	return lib
}

// Get returns a *copy* of the named image, as a launch would stream it to a
// cloud server. Corrupting the copy does not affect the library original.
func (l *Library) Get(name string) (*Image, error) {
	img, ok := l.images[name]
	if !ok {
		return nil, fmt.Errorf("image: unknown image %q", name)
	}
	cp := &Image{Name: img.Name, SizeMB: img.SizeMB, data: append([]byte(nil), img.data...)}
	return cp, nil
}

// GoldenDigest returns the known-good digest for the named image.
func (l *Library) GoldenDigest(name string) ([32]byte, error) {
	d, ok := l.golden[name]
	if !ok {
		return [32]byte{}, fmt.Errorf("image: no golden digest for %q", name)
	}
	return d, nil
}

// Digest hashes the image content.
func (i *Image) Digest() [32]byte { return sha256.Sum256(i.data) }

// Bytes exposes the image content (for measurement).
func (i *Image) Bytes() []byte { return i.data }

// Corrupt flips bytes of the image, modeling tampering in storage or
// transit (paper §4.2.1). The digest no longer matches the golden value.
func (i *Image) Corrupt() {
	if len(i.data) == 0 {
		return
	}
	i.data[0] ^= 0xFF
	i.data[len(i.data)/2] ^= 0xA5
}

// TransferTime models how long copying the image takes at the given
// throughput (used by the launch pipeline's spawning stage).
func (i *Image) TransferTime(mbPerSec float64) time.Duration {
	if mbPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(i.SizeMB) / mbPerSec * float64(time.Second))
}
