package properties

import "testing"

func TestRegisterValidation(t *testing.T) {
	req := Request{Kinds: []MeasurementKind{"custom-kind"}}
	if err := Register("", req); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(StartupIntegrity, req); err == nil {
		t.Fatal("built-in property overridden")
	}
	if err := Register("custom-x", Request{}); err == nil {
		t.Fatal("property with no measurements accepted")
	}
}

func TestRegisterLifecycle(t *testing.T) {
	const p = Property("custom-test-prop")
	req := Request{Kinds: []MeasurementKind{"custom-kind"}}
	if err := Register(p, req); err != nil {
		t.Fatal(err)
	}
	defer Unregister(p)
	if err := Register(p, req); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if !Valid(p) {
		t.Fatal("registered property not valid")
	}
	got, err := MapToMeasurements(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Kinds) != 1 || got.Kinds[0] != "custom-kind" {
		t.Fatalf("mapping = %+v", got)
	}
	found := false
	for _, q := range Registered() {
		if q == p {
			found = true
		}
	}
	if !found {
		t.Fatal("Registered() does not list the property")
	}
	Unregister(p)
	if Valid(p) {
		t.Fatal("unregistered property still valid")
	}
}
