package properties

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestMapToMeasurements(t *testing.T) {
	for _, p := range All {
		req, err := MapToMeasurements(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(req.Kinds) == 0 {
			t.Fatalf("%s maps to no measurements", p)
		}
	}
	if _, err := MapToMeasurements(Property("bogus")); err == nil {
		t.Fatal("bogus property mapped")
	}
}

func TestRuntimePropertiesHaveWindows(t *testing.T) {
	for _, p := range []Property{CovertChannelFreedom, CPUAvailability} {
		req, _ := MapToMeasurements(p)
		if req.Window <= 0 {
			t.Errorf("%s has no observation window", p)
		}
	}
}

func TestValid(t *testing.T) {
	for _, p := range All {
		if !Valid(p) {
			t.Errorf("%s reported invalid", p)
		}
	}
	if Valid("nope") {
		t.Error("invalid property reported valid")
	}
}

func TestMeasurementEncodeDistinguishesKinds(t *testing.T) {
	a := Measurement{Kind: KindTaskList, Tasks: []string{"init"}}
	b := Measurement{Kind: KindCPUTime, CPUTime: time.Second}
	if bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("different measurements encode identically")
	}
}

func TestMeasurementEncodeInjective(t *testing.T) {
	// Task-list boundary attack: ["ab","c"] vs ["a","bc"].
	a := Measurement{Kind: KindTaskList, Tasks: []string{"ab", "c"}}
	b := Measurement{Kind: KindTaskList, Tasks: []string{"a", "bc"}}
	if bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("task-list encoding is not injective")
	}
}

func TestQuickMeasurementEncodeDeterministic(t *testing.T) {
	f := func(tasks []string, counters []uint64, cpu uint32) bool {
		m := Measurement{Kind: KindIntervalHistogram, Tasks: tasks, Counters: counters, CPUTime: time.Duration(cpu)}
		return bytes.Equal(m.Encode(), m.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCounterSensitivity(t *testing.T) {
	f := func(counters []uint64) bool {
		if len(counters) == 0 {
			return true
		}
		m := Measurement{Kind: KindIntervalHistogram, Counters: counters}
		enc := m.Encode()
		mod := append([]uint64(nil), counters...)
		mod[0]++
		m2 := Measurement{Kind: KindIntervalHistogram, Counters: mod}
		return !bytes.Equal(enc, m2.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeAllLengthSensitive(t *testing.T) {
	m := Measurement{Kind: KindTaskList, Tasks: []string{"x"}}
	one := EncodeAll([]Measurement{m})
	two := EncodeAll([]Measurement{m, m})
	if bytes.Equal(one, two) {
		t.Fatal("EncodeAll insensitive to list length")
	}
}

func TestRequestEncode(t *testing.T) {
	a := Request{Kinds: []MeasurementKind{KindTaskList}, Window: time.Second}
	b := Request{Kinds: []MeasurementKind{KindTaskList}, Window: 2 * time.Second}
	if bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("request encoding ignores window")
	}
	c := Request{Kinds: []MeasurementKind{KindCPUTime}, Window: time.Second}
	if bytes.Equal(a.Encode(), c.Encode()) {
		t.Fatal("request encoding ignores kinds")
	}
}

func TestVerdictEncodeAndString(t *testing.T) {
	v := Verdict{Property: CPUAvailability, Healthy: true, Reason: "ok"}
	w := Verdict{Property: CPUAvailability, Healthy: false, Reason: "ok"}
	if bytes.Equal(v.Encode(), w.Encode()) {
		t.Fatal("verdict encoding ignores health bit")
	}
	if got := v.String(); got == "" || got == w.String() {
		t.Fatal("verdict String not distinguishing")
	}
}
