// Binary wire codec for the property types nested inside the protocol
// messages. This is deliberately separate from the canonical Encode()
// methods used for quoting: those exist to be hashed (and tolerate
// misaligned parallel slices by padding), while this codec must be a
// strict bijection — every field framed independently, every decode
// canonical — so the wire fuzzer can assert decode∘encode == identity.
package properties

import (
	"sort"
	"time"

	"cloudmonatt/internal/binenc"
)

// AppendWire appends the request's binary wire encoding to b.
func (r Request) AppendWire(b []byte) []byte {
	b = binenc.AppendUint64(b, uint64(r.Window))
	b = binenc.AppendUint32(b, uint32(len(r.Kinds)))
	for _, k := range r.Kinds {
		b = binenc.AppendString(b, string(k))
	}
	return b
}

// ReadWire decodes one request from the cursor.
func (r *Request) ReadWire(rd *binenc.Reader) {
	*r = Request{}
	r.Window = time.Duration(rd.Uint64())
	n := rd.Count(4)
	for i := 0; i < n && rd.Err() == nil; i++ {
		r.Kinds = append(r.Kinds, MeasurementKind(rd.String()))
	}
}

// AppendWire appends the measurement's binary wire encoding to b. Unlike
// the quoting encoding, the parallel LogNames/LogSums and QuotePCR/QuoteVal
// slices are framed with independent counts, so nothing is padded or
// dropped and the decode below inverts it exactly.
func (m Measurement) AppendWire(b []byte) []byte {
	b = binenc.AppendString(b, string(m.Kind))
	b = append(b, m.Digest[:]...)
	b = binenc.AppendUint32(b, uint32(len(m.LogNames)))
	for _, n := range m.LogNames {
		b = binenc.AppendString(b, n)
	}
	b = binenc.AppendUint32(b, uint32(len(m.LogSums)))
	for _, s := range m.LogSums {
		b = append(b, s[:]...)
	}
	b = binenc.AppendBytes(b, m.QuoteSig)
	b = binenc.AppendUint32(b, uint32(len(m.QuotePCR)))
	for _, p := range m.QuotePCR {
		b = binenc.AppendUint32(b, p)
	}
	b = binenc.AppendUint32(b, uint32(len(m.QuoteVal)))
	for _, v := range m.QuoteVal {
		b = append(b, v[:]...)
	}
	b = binenc.AppendUint32(b, uint32(len(m.Tasks)))
	for _, t := range m.Tasks {
		b = binenc.AppendString(b, t)
	}
	b = binenc.AppendUint32(b, uint32(len(m.Counters)))
	for _, c := range m.Counters {
		b = binenc.AppendUint64(b, c)
	}
	b = binenc.AppendUint64(b, uint64(m.CPUTime))
	b = binenc.AppendUint64(b, uint64(m.WallTime))
	b = binenc.AppendBytes(b, m.Report)
	b = binenc.AppendBytes(b, m.VKey)
	b = binenc.AppendBytes(b, m.Endorse)
	return b
}

// ReadWire decodes one measurement from the cursor.
func (m *Measurement) ReadWire(rd *binenc.Reader) {
	*m = Measurement{}
	m.Kind = MeasurementKind(rd.String())
	rd.Fixed(m.Digest[:])
	n := rd.Count(4)
	for i := 0; i < n && rd.Err() == nil; i++ {
		m.LogNames = append(m.LogNames, rd.String())
	}
	n = rd.Count(32)
	for i := 0; i < n && rd.Err() == nil; i++ {
		var s [32]byte
		rd.Fixed(s[:])
		m.LogSums = append(m.LogSums, s)
	}
	m.QuoteSig = rd.Bytes()
	n = rd.Count(4)
	for i := 0; i < n && rd.Err() == nil; i++ {
		m.QuotePCR = append(m.QuotePCR, rd.Uint32())
	}
	n = rd.Count(32)
	for i := 0; i < n && rd.Err() == nil; i++ {
		var v [32]byte
		rd.Fixed(v[:])
		m.QuoteVal = append(m.QuoteVal, v)
	}
	n = rd.Count(4)
	for i := 0; i < n && rd.Err() == nil; i++ {
		m.Tasks = append(m.Tasks, rd.String())
	}
	n = rd.Count(8)
	for i := 0; i < n && rd.Err() == nil; i++ {
		m.Counters = append(m.Counters, rd.Uint64())
	}
	m.CPUTime = time.Duration(rd.Uint64())
	m.WallTime = time.Duration(rd.Uint64())
	m.Report = rd.Bytes()
	m.VKey = rd.Bytes()
	m.Endorse = rd.Bytes()
}

// AppendWireAll appends a measurement list.
func AppendWireAll(b []byte, ms []Measurement) []byte {
	b = binenc.AppendUint32(b, uint32(len(ms)))
	for _, m := range ms {
		b = m.AppendWire(b)
	}
	return b
}

// ReadWireAll decodes a measurement list.
func ReadWireAll(rd *binenc.Reader) []Measurement {
	n := rd.Count(40) // a measurement is ≥ 40 bytes even when empty
	var ms []Measurement
	for i := 0; i < n && rd.Err() == nil; i++ {
		var m Measurement
		m.ReadWire(rd)
		ms = append(ms, m)
	}
	return ms
}

// AppendWire appends the verdict's binary wire encoding to b. Details —
// advisory, excluded from the signed quotes — still ride the wire, with
// keys sorted so the encoding is deterministic.
func (v Verdict) AppendWire(b []byte) []byte {
	b = binenc.AppendString(b, string(v.Property))
	b = binenc.AppendBool(b, v.Healthy)
	b = binenc.AppendString(b, string(v.Class))
	b = binenc.AppendString(b, v.Reason)
	b = binenc.AppendString(b, v.Backend)
	b = binenc.AppendBool(b, v.Unattestable)
	keys := make([]string, 0, len(v.Details))
	for k := range v.Details {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binenc.AppendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		b = binenc.AppendString(b, k)
		b = binenc.AppendString(b, v.Details[k])
	}
	return b
}

// ReadWire decodes one verdict from the cursor. Detail keys must arrive
// strictly ascending — the canonical order AppendWire emits — so that a
// successful decode re-encodes to the same bytes.
func (v *Verdict) ReadWire(rd *binenc.Reader) {
	*v = Verdict{}
	v.Property = Property(rd.String())
	v.Healthy = rd.Bool()
	v.Class = FailureClass(rd.String())
	v.Reason = rd.String()
	v.Backend = rd.String()
	v.Unattestable = rd.Bool()
	n := rd.Count(8)
	var prev string
	for i := 0; i < n && rd.Err() == nil; i++ {
		k := rd.String()
		val := rd.String()
		if i > 0 && k <= prev {
			rd.Fail(binenc.ErrNonCanonical)
			return
		}
		prev = k
		if v.Details == nil {
			v.Details = make(map[string]string, n)
		}
		v.Details[k] = val
	}
}
