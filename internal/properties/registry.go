package properties

import (
	"fmt"
	"sync"
)

// The paper's central architectural claim is that CloudMonatt is "flexible
// [and] allows the integration of an arbitrary number of security
// properties and monitoring mechanisms" (§4). This registry is that
// extension point: a deployment registers a new property with its
// measurement mapping here, a collector for any new measurement kinds with
// the Monitor Module (monitor.RegisterCollector), and an interpreter with
// the Property Interpretation Module (interpret.RegisterInterpreter) —
// after which the new property flows through the entire protocol, launch
// pipeline, periodic engine and response machinery unchanged.

var (
	regMu      sync.RWMutex
	registered = map[Property]Request{}
)

// Register adds a custom security property and the measurements that
// evidence it. Registering a built-in property or registering twice is an
// error (properties are trust-relevant configuration; silent overwrite
// would be a footgun).
func Register(p Property, req Request) error {
	if p == "" {
		return fmt.Errorf("properties: empty property name")
	}
	for _, b := range All {
		if p == b {
			return fmt.Errorf("properties: %q is built in", p)
		}
	}
	if len(req.Kinds) == 0 {
		return fmt.Errorf("properties: %q maps to no measurements", p)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registered[p]; dup {
		return fmt.Errorf("properties: %q already registered", p)
	}
	registered[p] = req
	return nil
}

// Unregister removes a custom property (mainly for tests).
func Unregister(p Property) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registered, p)
}

// lookupRegistered returns the registered mapping for a custom property.
func lookupRegistered(p Property) (Request, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	req, ok := registered[p]
	return req, ok
}

// Registered lists the custom properties currently installed.
func Registered() []Property {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Property, 0, len(registered))
	for p := range registered {
		out = append(out, p)
	}
	return out
}
