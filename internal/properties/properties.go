// Package properties defines the security properties a CloudMonatt customer
// can request, the measurement kinds that evidence them, and the canonical
// property→measurement mapping the Attestation Server uses to translate a
// requested property P into a measurement request rM (paper §4.1).
//
// Measurements carry a canonical binary encoding so they can be hashed into
// protocol quotes (Q3 = H(Vid‖rM‖M‖N3)) identically on both ends.
package properties

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Property identifies one security property of a VM (paper §4's case studies).
type Property string

// The four concrete properties realized in the paper.
const (
	// StartupIntegrity: platform and VM image are unmodified at launch
	// (case study I, TPM-style measured boot).
	StartupIntegrity Property = "startup-integrity"
	// RuntimeIntegrity: no hidden/unknown software runs inside the VM
	// (case study II, VM introspection).
	RuntimeIntegrity Property = "runtime-integrity"
	// CovertChannelFreedom: no CPU covert channel is exfiltrating the VM's
	// confidential data (case study III, interval-histogram detection).
	CovertChannelFreedom Property = "covert-channel-freedom"
	// CPUAvailability: the VM receives the CPU share its SLA entitles it to
	// (case study IV, VMM profiling).
	CPUAvailability Property = "cpu-availability"
)

// All lists every supported property.
var All = []Property{StartupIntegrity, RuntimeIntegrity, CovertChannelFreedom, CPUAvailability}

// Valid reports whether p names a supported property (built in or
// registered through the extension registry).
func Valid(p Property) bool {
	for _, q := range All {
		if p == q {
			return true
		}
	}
	_, ok := lookupRegistered(p)
	return ok
}

// MeasurementKind identifies one type of raw evidence a Monitor Module can
// collect.
type MeasurementKind string

// Measurement kinds produced by the monitor tools.
const (
	// KindPlatformQuote: TPM quote over the platform PCRs plus the
	// measurement log (Integrity Measurement Unit).
	KindPlatformQuote MeasurementKind = "platform-quote"
	// KindImageDigest: digest of the VM image measured before launch.
	KindImageDigest MeasurementKind = "image-digest"
	// KindTaskList: the true in-VM task list via VM introspection.
	KindTaskList MeasurementKind = "task-list"
	// KindIntervalHistogram: 30-bin CPU-usage-interval histogram from the
	// Trust Evidence Registers (Performance Monitor Unit).
	KindIntervalHistogram MeasurementKind = "interval-histogram"
	// KindBusLockTrace: time-binned counts of the VM's locked (bus-
	// serializing) memory operations over the window — the monitor for the
	// memory-bus covert channel (paper §4.4's "other types of covert
	// channels ... with more Trust Evidence Registers and mechanisms").
	KindBusLockTrace MeasurementKind = "bus-lock-trace"
	// KindCPUTime: the VM's virtual running time over a measurement window
	// (VMM Profile Tool).
	KindCPUTime MeasurementKind = "cpu-time"
	// KindVTPMQuote: a virtual-TPM quote over the VM's own PCRs, carrying
	// the vAIK and its hardware endorsement (vtpm trust backend).
	KindVTPMQuote MeasurementKind = "vtpm-quote"
	// KindAttestationReport: an opaque signed attestation report — launch
	// measurement plus platform version (sev-snp trust backend).
	KindAttestationReport MeasurementKind = "attestation-report"
)

// Request rM names the measurements the Attestation Server asks a cloud
// server to collect, with an observation window for the runtime monitors.
type Request struct {
	Kinds  []MeasurementKind
	Window time.Duration // observation window for histogram/cpu-time kinds
}

// Encode renders the request canonically for inclusion in quotes.
func (r Request) Encode() []byte {
	var out []byte
	out = binary.BigEndian.AppendUint64(out, uint64(r.Window))
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Kinds)))
	for _, k := range r.Kinds {
		out = binary.BigEndian.AppendUint32(out, uint32(len(k)))
		out = append(out, k...)
	}
	return out
}

// DefaultWindow is the runtime monitors' observation window. One second
// spans ~33 scheduler accounting periods — enough for a stable histogram.
const DefaultWindow = time.Second

// MapToMeasurements translates a requested property into the measurement
// request the target cloud server must serve (the Attestation Server's
// property→measurement mapping, paper §4.1).
func MapToMeasurements(p Property) (Request, error) {
	switch p {
	case StartupIntegrity:
		return Request{Kinds: []MeasurementKind{KindPlatformQuote, KindImageDigest}}, nil
	case RuntimeIntegrity:
		return Request{Kinds: []MeasurementKind{KindTaskList}}, nil
	case CovertChannelFreedom:
		// Both covert-channel monitors run over the same window: the CPU-
		// interval histogram (case study III) and the bus-lock trace.
		return Request{Kinds: []MeasurementKind{KindIntervalHistogram, KindBusLockTrace}, Window: DefaultWindow}, nil
	case CPUAvailability:
		return Request{Kinds: []MeasurementKind{KindCPUTime}, Window: DefaultWindow}, nil
	}
	if req, ok := lookupRegistered(p); ok {
		return req, nil
	}
	return Request{}, fmt.Errorf("properties: unsupported property %q", p)
}

// Measurement is one collected piece of evidence. Exactly the fields
// relevant to Kind are populated; Encode produces an injective canonical
// byte string for quoting and signing.
type Measurement struct {
	Kind MeasurementKind

	// KindPlatformQuote / KindImageDigest
	Digest   [32]byte
	LogNames []string   // measurement log: component names...
	LogSums  [][32]byte // ...and their digests, aligned with LogNames
	QuoteSig []byte     // TPM quote signature (platform quote only)
	QuotePCR []uint32   // quoted PCR indices
	QuoteVal [][32]byte // quoted PCR values, aligned with QuotePCR

	// KindTaskList
	Tasks []string

	// KindIntervalHistogram
	Counters []uint64

	// KindCPUTime
	CPUTime  time.Duration
	WallTime time.Duration

	// KindAttestationReport: the backend-encoded report bytes.
	Report []byte
	// KindVTPMQuote: the per-VM verification key (vAIK) and the hardware
	// root's endorsement of it.
	VKey    []byte
	Endorse []byte
}

// Encode renders the measurement canonically.
func (m Measurement) Encode() []byte {
	var out []byte
	appendBytes := func(b []byte) {
		out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	appendBytes([]byte(m.Kind))
	appendBytes(m.Digest[:])
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.LogNames)))
	for i, n := range m.LogNames {
		appendBytes([]byte(n))
		if i < len(m.LogSums) {
			appendBytes(m.LogSums[i][:])
		} else {
			appendBytes(nil)
		}
	}
	appendBytes(m.QuoteSig)
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.QuotePCR)))
	for i, p := range m.QuotePCR {
		out = binary.BigEndian.AppendUint32(out, p)
		if i < len(m.QuoteVal) {
			appendBytes(m.QuoteVal[i][:])
		} else {
			appendBytes(nil)
		}
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.Tasks)))
	for _, t := range m.Tasks {
		appendBytes([]byte(t))
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.Counters)))
	for _, c := range m.Counters {
		out = binary.BigEndian.AppendUint64(out, c)
	}
	out = binary.BigEndian.AppendUint64(out, uint64(m.CPUTime))
	out = binary.BigEndian.AppendUint64(out, uint64(m.WallTime))
	appendBytes(m.Report)
	appendBytes(m.VKey)
	appendBytes(m.Endorse)
	return out
}

// EncodeAll renders a measurement list canonically.
func EncodeAll(ms []Measurement) []byte {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(ms)))
	for _, m := range ms {
		enc := m.Encode()
		out = binary.BigEndian.AppendUint32(out, uint32(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// FailureClass categorizes an unhealthy verdict by what is at fault, which
// determines the remediation: a compromised image is rejected outright
// (relaunching elsewhere cannot help), a compromised platform is
// rescheduled onto another server (paper §5.1), and a runtime violation is
// reported to the customer.
type FailureClass string

const (
	// FailureUnclassified marks verdicts from interpreters that predate the
	// classification (custom extensions); consumers fall back to inspecting
	// Reason.
	FailureUnclassified FailureClass = ""
	// FailureImage blames the VM image itself.
	FailureImage FailureClass = "image"
	// FailurePlatform blames the hosting platform (hypervisor stack, TPM
	// quote, measurement log).
	FailurePlatform FailureClass = "platform"
	// FailureRuntime blames the VM's runtime behavior (rogue tasks, covert
	// channels, SLA violations).
	FailureRuntime FailureClass = "runtime"
)

// Verdict is the Attestation Server's interpretation of the measurements
// for one property: the attestation report R the customer receives.
type Verdict struct {
	Property Property
	Healthy  bool
	Class    FailureClass // set when !Healthy; empty for healthy verdicts
	Reason   string
	Details  map[string]string
	// Backend records which trust backend's evidence the verdict appraises
	// ("tpm", "vtpm", "sev-snp"); it rides the signed report chain so the
	// customer learns what kind of root of trust vouched for the VM.
	Backend string
	// Unattestable marks the paper's V_fail outcome: the property cannot
	// be evidenced on the VM's trust backend at all, as opposed to being
	// measured and found compromised. Always paired with Healthy=false.
	Unattestable bool
}

// UnattestableVerdict builds the V_fail verdict for a property the VM's
// trust backend cannot evidence.
func UnattestableVerdict(p Property, backend string) Verdict {
	return Verdict{
		Property:     p,
		Healthy:      false,
		Unattestable: true,
		Backend:      backend,
		Reason:       fmt.Sprintf("property %s is not attestable on the %s trust backend", p, backend),
	}
}

// Encode renders the verdict canonically for the Q1/Q2 quotes.
func (v Verdict) Encode() []byte {
	var out []byte
	appendBytes := func(b []byte) {
		out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	appendBytes([]byte(v.Property))
	if v.Healthy {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	appendBytes([]byte(v.Class))
	appendBytes([]byte(v.Reason))
	// Details are advisory and excluded from the signed body; Class and
	// Reason carry the authoritative finding.
	appendBytes([]byte(v.Backend))
	if v.Unattestable {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// String renders the verdict for humans.
func (v Verdict) String() string {
	state := "HEALTHY"
	switch {
	case v.Unattestable:
		state = "UNATTESTABLE"
	case !v.Healthy:
		state = "COMPROMISED"
	}
	return fmt.Sprintf("%s: %s (%s)", v.Property, state, v.Reason)
}
