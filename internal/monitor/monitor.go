// Package monitor implements the Monitor Module of a CloudMonatt cloud
// server (paper Fig. 2): the Monitor Kernel that dispatches measurement
// requests, and four monitor tools —
//
//   - the Integrity Measurement Unit (IMU), which measures the platform
//     boot chain and VM images into the Trust Module's TPM;
//   - the VM Introspection (VMI) tool, which reads the *true* task list of
//     a guest from outside the VM;
//   - the VMM Profile tool, which accounts a VM's virtual running time over
//     a measurement window without intercepting its execution;
//   - the Performance Monitor Unit (PMU), which bins the target VM's
//     CPU-usage intervals into the 30 Trust Evidence Registers used by the
//     covert-channel detector (§4.4.2).
package monitor

import (
	"fmt"
	"sync"
	"time"

	"cloudmonatt/internal/guest"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/sim"
	"cloudmonatt/internal/trust"
	"cloudmonatt/internal/trust/driver"
	"cloudmonatt/internal/xen"
)

// HistogramBins is the number of interval bins (and Trust Evidence
// Registers) used by the covert-channel detector: 1 ms granularity over the
// 30 ms default execution interval (paper §4.4.2).
const HistogramBins = 30

// BinWidth is the width of one interval bin.
const BinWidth = time.Millisecond

// CPUTimeRegister is the Trust Evidence Register holding CPU_measure.
const CPUTimeRegister = HistogramBins

// mergeEps is the maximum scheduler-artifact gap folded into one logical
// CPU-usage interval: IPI latency, dispatch overheads, and sub-half-ms
// preemptions by fine-grained probing co-tenants all merge, so a benign
// VM's long bursts are not shredded into pseudo-symbols. The covert
// sender's inter-symbol gap (1 ms) stays above this, so real symbols still
// delimit. (A sender could evade the PMU with sub-eps gaps, but then its
// receiver gets only sub-eps probe slots, crippling the channel.)
const mergeEps = 500 * time.Microsecond

// Component is one measured platform element.
type Component struct {
	Name string
	Data []byte
}

// StandardPlatform returns the pristine platform software stack every
// CloudMonatt-secure server boots. The appraiser knows these contents, so
// it can compute the expected measurements.
func StandardPlatform() []Component {
	return []Component{
		{Name: "firmware", Data: []byte("seabios-1.7 pristine")},
		{Name: "hypervisor", Data: []byte("xen-4.2 pristine")},
		{Name: "host-os", Data: []byte("dom0-linux-3.8 pristine")},
		{Name: "platform-config", Data: []byte("cloudmonatt-node.conf v1")},
	}
}

// VM is the monitor's handle on one hosted virtual machine.
type VM struct {
	Vid         string
	Domain      *xen.Domain
	Guest       *guest.OS
	ImageDigest [32]byte
}

// Module is the Monitor Module of one cloud server.
type Module struct {
	hv   *xen.Hypervisor
	regs *trust.Registers
	drv  driver.Driver

	mu         sync.Mutex
	vms        map[string]*VM
	watches    map[string]*intervalWatch
	busWatches map[string]*busWatch
	profiles   map[string]*profileWindow
}

// New creates the Monitor Module, wires the PMU into the hypervisor's run
// trace, and boots the IMU by measuring the platform components through
// the trust-backend driver (into the TPM, or dropped by backends whose
// evidence does not cover the host). Passing tampered components models a
// compromised platform. regs is the Trust Evidence Register bank the
// scheduler-level monitors store into.
func New(hv *xen.Hypervisor, regs *trust.Registers, drv driver.Driver, platform []Component) (*Module, error) {
	m := &Module{
		hv:         hv,
		regs:       regs,
		drv:        drv,
		vms:        make(map[string]*VM),
		watches:    make(map[string]*intervalWatch),
		busWatches: make(map[string]*busWatch),
		profiles:   make(map[string]*profileWindow),
	}
	for _, c := range platform {
		if err := drv.BootMeasure(c.Name, c.Data); err != nil {
			return nil, fmt.Errorf("monitor: measuring %s: %w", c.Name, err)
		}
	}
	hv.Observe(xen.RunSegmentFunc(m.observe))
	hv.ObserveBus(xen.BusLockFunc(m.observeBus))
	return m, nil
}

// AddVM registers a hosted VM with the monitor. The image digest must be
// the measurement taken before launch (the IMU records it through the
// trust backend: an image-PCR extension, a vTPM provisioning, or a launch
// measurement).
func (m *Module) AddVM(vm *VM) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.vms[vm.Vid]; dup {
		return fmt.Errorf("monitor: VM %s already registered", vm.Vid)
	}
	if err := m.drv.AddVM(vm.Vid, vm.ImageDigest); err != nil {
		return err
	}
	m.vms[vm.Vid] = vm
	return nil
}

// RemoveVM forgets a VM (termination or migration away).
func (m *Module) RemoveVM(vid string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drv.RemoveVM(vid)
	delete(m.vms, vid)
	delete(m.watches, vid)
	delete(m.busWatches, vid)
	delete(m.profiles, vid)
}

// vm looks up a registered VM.
func (m *Module) vm(vid string) (*VM, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vms[vid]
	if !ok {
		return nil, fmt.Errorf("monitor: unknown VM %s", vid)
	}
	return v, nil
}

// --- Performance Monitor Unit -------------------------------------------

// intervalWatch accumulates one VM's CPU-usage intervals online: contiguous
// run segments (separated by less than mergeEps) extend the current
// interval; a real preemption closes it and bumps the matching bin.
type intervalWatch struct {
	dom     *xen.Domain
	bins    [HistogramBins]uint64
	accRun  sim.Time
	lastEnd sim.Time
	open    bool
}

func (w *intervalWatch) observe(start, end sim.Time) {
	if w.open && start-w.lastEnd <= mergeEps {
		w.accRun += end - start
		w.lastEnd = end
		return
	}
	w.closeInterval()
	w.accRun = end - start
	w.lastEnd = end
	w.open = true
}

func (w *intervalWatch) closeInterval() {
	if !w.open || w.accRun <= 0 {
		return
	}
	idx := int((w.accRun - 1) / BinWidth)
	if idx >= HistogramBins {
		idx = HistogramBins - 1
	}
	if idx < 0 {
		idx = 0
	}
	w.bins[idx]++
	w.open = false
	w.accRun = 0
}

// observe routes hypervisor run segments to the active PMU watches.
func (m *Module) observe(v *xen.VCPU, start, end sim.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.watches {
		if w.dom == v.Domain() {
			w.observe(start, end)
		}
	}
}

// StartIntervalWatch arms the PMU on the VM's domain, zeroing the histogram
// registers.
func (m *Module) StartIntervalWatch(vid string) error {
	vm, err := m.vm(vid)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watches[vid] = &intervalWatch{dom: vm.Domain}
	return nil
}

// CollectIntervalHistogram stops the watch, loads the bin counts into Trust
// Evidence Registers 0..29, and returns the histogram measurement.
func (m *Module) CollectIntervalHistogram(vid string) (properties.Measurement, error) {
	m.mu.Lock()
	w, ok := m.watches[vid]
	if ok {
		delete(m.watches, vid)
	}
	m.mu.Unlock()
	if !ok {
		return properties.Measurement{}, fmt.Errorf("monitor: no interval watch armed for %s", vid)
	}
	w.closeInterval()
	regs := m.regs
	counters := make([]uint64, HistogramBins)
	for i, c := range w.bins {
		if err := regs.Set(i, c); err != nil {
			return properties.Measurement{}, err
		}
		counters[i] = c
	}
	return properties.Measurement{Kind: properties.KindIntervalHistogram, Counters: counters}, nil
}

// --- bus-lock watch ---------------------------------------------------------

// busWatch bins a VM's locked-operation counts into HistogramBins time
// slices of the observation window — a second bank of programmable Trust
// Evidence Registers, monitoring the memory-bus covert channel the paper's
// §4.4.3 anticipates ("other types of covert channels can also be
// monitored, with more Trust Evidence Registers and mechanisms").
type busWatch struct {
	dom     *xen.Domain
	start   sim.Time
	binLen  sim.Time
	bins    [HistogramBins]uint64
	overrun uint64 // locks observed past the window (collected late)
}

func (w *busWatch) observe(at sim.Time, count int) {
	idx := int((at - w.start) / w.binLen)
	if idx < 0 {
		return
	}
	if idx >= HistogramBins {
		w.overrun += uint64(count)
		return
	}
	w.bins[idx] += uint64(count)
}

// observeBus routes bus-lock events to the active watches.
func (m *Module) observeBus(v *xen.VCPU, at sim.Time, count int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.busWatches {
		if w.dom == v.Domain() {
			w.observe(at, count)
		}
	}
}

// StartBusWatch arms the bus-lock monitor on the VM for the given window.
func (m *Module) StartBusWatch(vid string, window sim.Time) error {
	vm, err := m.vm(vid)
	if err != nil {
		return err
	}
	if window <= 0 {
		window = sim.Time(HistogramBins) * 10 * time.Millisecond
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.busWatches[vid] = &busWatch{
		dom:    vm.Domain,
		start:  m.hv.Kernel().Now(),
		binLen: window / HistogramBins,
	}
	return nil
}

// CollectBusTrace stops the bus watch and returns the time-binned counts.
func (m *Module) CollectBusTrace(vid string) (properties.Measurement, error) {
	m.mu.Lock()
	w, ok := m.busWatches[vid]
	if ok {
		delete(m.busWatches, vid)
	}
	m.mu.Unlock()
	if !ok {
		return properties.Measurement{}, fmt.Errorf("monitor: no bus watch armed for %s", vid)
	}
	counters := make([]uint64, HistogramBins)
	copy(counters, w.bins[:])
	return properties.Measurement{Kind: properties.KindBusLockTrace, Counters: counters}, nil
}

// --- VMM Profile Tool -----------------------------------------------------

// profileWindow snapshots a VM's accumulated runtime at window start.
type profileWindow struct {
	dom     *xen.Domain
	startAt sim.Time
	startRT sim.Time
}

// StartProfile begins a CPU-time measurement window for the VM. The profile
// observes vCPU transitions only (no interception of the VM's execution),
// which is why periodic attestation costs the guest nothing (paper §7.1.2).
func (m *Module) StartProfile(vid string) error {
	vm, err := m.vm(vid)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.profiles[vid] = &profileWindow{
		dom:     vm.Domain,
		startAt: m.hv.Kernel().Now(),
		startRT: vm.Domain.TotalRuntime(),
	}
	return nil
}

// CollectProfile ends the window, stores CPU_measure (µs) into its Trust
// Evidence Register, and returns the cpu-time measurement.
func (m *Module) CollectProfile(vid string) (properties.Measurement, error) {
	m.mu.Lock()
	p, ok := m.profiles[vid]
	if ok {
		delete(m.profiles, vid)
	}
	m.mu.Unlock()
	if !ok {
		return properties.Measurement{}, fmt.Errorf("monitor: no profile window open for %s", vid)
	}
	cpu := p.dom.TotalRuntime() - p.startRT
	wall := m.hv.Kernel().Now() - p.startAt
	if err := m.regs.Set(CPUTimeRegister, uint64(cpu/time.Microsecond)); err != nil {
		return properties.Measurement{}, err
	}
	return properties.Measurement{Kind: properties.KindCPUTime, CPUTime: cpu, WallTime: wall}, nil
}

// --- VM Introspection tool -------------------------------------------------

// CollectTaskList probes the guest's memory from the hypervisor and returns
// the true task list, including processes a rootkit hides from in-guest
// queries (paper §4.3.2).
func (m *Module) CollectTaskList(vid string) (properties.Measurement, error) {
	vm, err := m.vm(vid)
	if err != nil {
		return properties.Measurement{}, err
	}
	if vm.Guest == nil {
		return properties.Measurement{}, fmt.Errorf("monitor: VM %s has no introspectable guest", vid)
	}
	var names []string
	for _, p := range vm.Guest.TrueTasks() {
		names = append(names, p.Name)
	}
	return properties.Measurement{Kind: properties.KindTaskList, Tasks: names}, nil
}

// --- Integrity Measurement Unit ---------------------------------------------

// PlatformEvidence produces the trust backend's platform/startup evidence
// for the VM (a TPM platform quote, a vTPM quote, or an attestation
// report) bound to the verifier's nonce. The evidence kind must match
// what the verifier requested — a mismatch means the appraiser believes
// the server runs a different backend than it does.
func (m *Module) PlatformEvidence(vid string, kind properties.MeasurementKind, nonce [16]byte) (properties.Measurement, error) {
	meas, err := m.drv.PlatformEvidence(vid, nonce)
	if err != nil {
		return properties.Measurement{}, err
	}
	if meas.Kind != kind {
		return properties.Measurement{}, fmt.Errorf("monitor: %s backend produces %s evidence, not %s",
			m.drv.Backend(), meas.Kind, kind)
	}
	return meas, nil
}

// Backend reports the trust backend rooting this server's evidence.
func (m *Module) Backend() driver.Backend { return m.drv.Backend() }

// ImageDigest returns the measurement of the VM's image taken before launch.
func (m *Module) ImageDigest(vid string) (properties.Measurement, error) {
	vm, err := m.vm(vid)
	if err != nil {
		return properties.Measurement{}, err
	}
	return properties.Measurement{Kind: properties.KindImageDigest, Digest: vm.ImageDigest}, nil
}

// --- extension collectors ----------------------------------------------------

// Collector gathers one custom measurement kind from a hosted VM. It runs
// inside the Monitor Kernel with the same access the built-in tools have.
type Collector func(vm *VM, nonce [16]byte) (properties.Measurement, error)

var (
	collectorMu sync.RWMutex
	collectors  = map[properties.MeasurementKind]Collector{}
)

// RegisterCollector installs a collector for a custom measurement kind
// (the Monitor Module side of the paper's property-extension claim, §4).
// Built-in kinds cannot be overridden.
func RegisterCollector(kind properties.MeasurementKind, c Collector) error {
	switch kind {
	case properties.KindPlatformQuote, properties.KindImageDigest,
		properties.KindTaskList, properties.KindIntervalHistogram,
		properties.KindBusLockTrace, properties.KindCPUTime,
		properties.KindVTPMQuote, properties.KindAttestationReport:
		return fmt.Errorf("monitor: %q is a built-in measurement kind", kind)
	}
	if c == nil {
		return fmt.Errorf("monitor: nil collector for %q", kind)
	}
	collectorMu.Lock()
	defer collectorMu.Unlock()
	if _, dup := collectors[kind]; dup {
		return fmt.Errorf("monitor: collector for %q already registered", kind)
	}
	collectors[kind] = c
	return nil
}

// UnregisterCollector removes a custom collector (mainly for tests).
func UnregisterCollector(kind properties.MeasurementKind) {
	collectorMu.Lock()
	defer collectorMu.Unlock()
	delete(collectors, kind)
}

func lookupCollector(kind properties.MeasurementKind) (Collector, bool) {
	collectorMu.RLock()
	defer collectorMu.RUnlock()
	c, ok := collectors[kind]
	return c, ok
}

// --- Monitor Kernel ----------------------------------------------------------

// Collect is the Monitor Kernel: it serves a measurement request end to
// end. For windowed kinds it arms the watches, asks the caller to advance
// virtual time by the window (the cloud server owns the simulation clock),
// then gathers the results.
func (m *Module) Collect(vid string, req properties.Request, nonce [16]byte, advance func(sim.Time)) ([]properties.Measurement, error) {
	needsWindow := false
	for _, k := range req.Kinds {
		switch k {
		case properties.KindIntervalHistogram:
			if err := m.StartIntervalWatch(vid); err != nil {
				return nil, err
			}
			needsWindow = true
		case properties.KindBusLockTrace:
			w := req.Window
			if w <= 0 {
				w = properties.DefaultWindow
			}
			if err := m.StartBusWatch(vid, w); err != nil {
				return nil, err
			}
			needsWindow = true
		case properties.KindCPUTime:
			if err := m.StartProfile(vid); err != nil {
				return nil, err
			}
			needsWindow = true
		}
	}
	if needsWindow {
		w := req.Window
		if w <= 0 {
			w = properties.DefaultWindow
		}
		if advance == nil {
			return nil, fmt.Errorf("monitor: windowed measurement requires a clock driver")
		}
		advance(w)
	}
	var out []properties.Measurement
	for _, k := range req.Kinds {
		var meas properties.Measurement
		var err error
		switch k {
		case properties.KindPlatformQuote, properties.KindVTPMQuote, properties.KindAttestationReport:
			meas, err = m.PlatformEvidence(vid, k, nonce)
		case properties.KindImageDigest:
			meas, err = m.ImageDigest(vid)
		case properties.KindTaskList:
			meas, err = m.CollectTaskList(vid)
		case properties.KindIntervalHistogram:
			meas, err = m.CollectIntervalHistogram(vid)
		case properties.KindBusLockTrace:
			meas, err = m.CollectBusTrace(vid)
		case properties.KindCPUTime:
			meas, err = m.CollectProfile(vid)
		default:
			if c, ok := lookupCollector(k); ok {
				var vm *VM
				vm, err = m.vm(vid)
				if err == nil {
					meas, err = c(vm, nonce)
				}
			} else {
				err = fmt.Errorf("monitor: unsupported measurement kind %q", k)
			}
		}
		if err != nil {
			return nil, err
		}
		out = append(out, meas)
	}
	return out, nil
}
