package monitor

import (
	"crypto/rand"
	"crypto/sha256"
	"testing"
	"time"

	"cloudmonatt/internal/attack"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/guest"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/sim"
	"cloudmonatt/internal/tpm"
	"cloudmonatt/internal/trust"
	"cloudmonatt/internal/trust/driver"
	_ "cloudmonatt/internal/trust/driver/tpmdrv"
	"cloudmonatt/internal/workload"
	"cloudmonatt/internal/xen"
)

type rig struct {
	k  *sim.Kernel
	hv *xen.Hypervisor
	tm *trust.Module
	m  *Module
}

func newRig(t *testing.T, platform []Component) *rig {
	t.Helper()
	k := sim.NewKernel(21)
	hv := xen.New(k, xen.DefaultConfig(), 1)
	tm, err := trust.NewModule("server-1", 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if platform == nil {
		platform = StandardPlatform()
	}
	drv, err := driver.Open(driver.BackendTPM, driver.Config{ServerName: "server-1", TPM: tm.TPM()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(hv, tm.Registers(), drv, platform)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, hv: hv, tm: tm, m: m}
}

func (r *rig) addVM(t *testing.T, vid string, prog xen.Program, g *guest.OS) *xen.Domain {
	t.Helper()
	d := r.hv.NewDomain(vid, 256, 0, prog)
	d.WakeAll()
	if err := r.m.AddVM(&VM{Vid: vid, Domain: d, Guest: g, ImageDigest: sha256.Sum256([]byte(vid))}); err != nil {
		t.Fatal(err)
	}
	return d
}

func (r *rig) advance(d sim.Time) { r.k.RunUntil(r.k.Now() + d) }

func TestAddRemoveVM(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "vm-1", workload.Idle(), guest.NewOS())
	if err := r.m.AddVM(&VM{Vid: "vm-1"}); err == nil {
		t.Fatal("duplicate VM registered")
	}
	r.m.RemoveVM("vm-1")
	if _, err := r.m.CollectTaskList("vm-1"); err == nil {
		t.Fatal("removed VM still introspectable")
	}
}

func TestTaskListSeesRootkit(t *testing.T) {
	r := newRig(t, nil)
	g := guest.NewOS()
	g.InfectRootkit("stealth-miner")
	r.addVM(t, "vm-1", workload.Idle(), g)
	meas, err := r.m.CollectTaskList("vm-1")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range meas.Tasks {
		if name == "stealth-miner" {
			found = true
		}
	}
	if !found {
		t.Fatal("VMI did not surface the hidden process")
	}
}

func TestProfileMeasuresCPUShare(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "busy", workload.Spinner(5*time.Millisecond), nil)
	r.addVM(t, "lazy", workload.Idle(), nil)
	r.advance(100 * time.Millisecond) // warm up
	for _, tc := range []struct {
		vid string
		lo  float64
		hi  float64
	}{{"busy", 0.95, 1.01}, {"lazy", 0, 0.01}} {
		if err := r.m.StartProfile(tc.vid); err != nil {
			t.Fatal(err)
		}
		r.advance(time.Second)
		meas, err := r.m.CollectProfile(tc.vid)
		if err != nil {
			t.Fatal(err)
		}
		share := float64(meas.CPUTime) / float64(meas.WallTime)
		if share < tc.lo || share > tc.hi {
			t.Errorf("%s share %.3f outside [%v,%v]", tc.vid, share, tc.lo, tc.hi)
		}
	}
}

func TestProfileStoresRegister(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "busy", workload.Spinner(5*time.Millisecond), nil)
	r.m.StartProfile("busy")
	r.advance(500 * time.Millisecond)
	meas, err := r.m.CollectProfile("busy")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.tm.Registers().Read(CPUTimeRegister)
	if err != nil {
		t.Fatal(err)
	}
	if reg != uint64(meas.CPUTime/time.Microsecond) {
		t.Fatalf("CPU_measure register %d != measurement %v", reg, meas.CPUTime)
	}
}

func TestCollectWithoutStartFails(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "vm", workload.Idle(), nil)
	if _, err := r.m.CollectProfile("vm"); err == nil {
		t.Fatal("profile collected without a window")
	}
	if _, err := r.m.CollectIntervalHistogram("vm"); err == nil {
		t.Fatal("histogram collected without a watch")
	}
	if err := r.m.StartProfile("ghost"); err == nil {
		t.Fatal("profile started for unknown VM")
	}
}

func TestHistogramBenignSpinnerPeaksAt30ms(t *testing.T) {
	r := newRig(t, nil)
	// Two CPU-bound co-tenants: each runs full 30ms timeslices.
	r.addVM(t, "benign", workload.Spinner(50*time.Millisecond), nil)
	r.addVM(t, "other", workload.Spinner(50*time.Millisecond), nil)
	r.advance(200 * time.Millisecond)
	r.m.StartIntervalWatch("benign")
	r.advance(2 * time.Second)
	meas, err := r.m.CollectIntervalHistogram("benign")
	if err != nil {
		t.Fatal(err)
	}
	var total, long uint64
	argmax := 0
	for i, c := range meas.Counters {
		total += c
		if i >= 9 { // intervals of 10ms and above
			long += c
		}
		if c > meas.Counters[argmax] {
			argmax = i
		}
	}
	if total == 0 {
		t.Fatal("no intervals observed")
	}
	// Benign CPU-bound VMs run long intervals: credit preemptions split some
	// timeslices at tick/accounting boundaries, but the mode stays at the
	// 30ms default interval and short symbol-like intervals are absent.
	if float64(long)/float64(total) < 0.6 {
		t.Fatalf("benign spinner: only %d of %d intervals are >=10ms (histogram %v)", long, total, meas.Counters)
	}
	if argmax != HistogramBins-1 {
		t.Fatalf("benign spinner: modal bin %d, want %d (histogram %v)", argmax, HistogramBins-1, meas.Counters)
	}
}

func TestHistogramCovertSenderIsBimodal(t *testing.T) {
	r := newRig(t, nil)
	var bits []attack.Bit
	for i := 0; i < 64; i++ {
		bits = append(bits, attack.Bit(i%2))
	}
	sender := attack.NewCovertSender(bits, true)
	recvDom := r.hv.NewDomain("receiver", 256, 0, workload.Spinner(200*time.Microsecond))
	recvDom.WakeAll()
	r.addVM(t, "victim", sender, guest.NewOS())
	r.advance(200 * time.Millisecond)
	r.m.StartIntervalWatch("victim")
	r.advance(2 * time.Second)
	meas, err := r.m.CollectIntervalHistogram("victim")
	if err != nil {
		t.Fatal(err)
	}
	// Expect mass concentrated around the 3ms and 7ms symbol bins.
	short := meas.Counters[1] + meas.Counters[2] + meas.Counters[3]
	long := meas.Counters[5] + meas.Counters[6] + meas.Counters[7]
	var total uint64
	for _, c := range meas.Counters {
		total += c
	}
	if total == 0 {
		t.Fatal("no intervals observed")
	}
	if float64(short)/float64(total) < 0.25 || float64(long)/float64(total) < 0.25 {
		t.Fatalf("expected two symbol peaks; histogram = %v", meas.Counters)
	}
	// The registers hold the same counts.
	snap := r.tm.Registers().Snapshot()
	for i := 0; i < HistogramBins; i++ {
		if snap[i] != meas.Counters[i] {
			t.Fatalf("register %d = %d, measurement %d", i, snap[i], meas.Counters[i])
		}
	}
}

func TestPlatformQuoteVerifies(t *testing.T) {
	r := newRig(t, nil)
	nonce := cryptoutil.MustNonce()
	meas, err := r.m.PlatformEvidence("vm-1", properties.KindPlatformQuote, nonce)
	if err != nil {
		t.Fatal(err)
	}
	q := &tpm.Quote{Nonce: nonce, Sig: meas.QuoteSig}
	for i, p := range meas.QuotePCR {
		q.PCRs = append(q.PCRs, int(p))
		q.Values = append(q.Values, meas.QuoteVal[i])
	}
	if err := tpm.VerifyQuote(q, r.tm.TPM().AIK(), nonce); err != nil {
		t.Fatalf("platform quote does not verify: %v", err)
	}
	if len(meas.LogNames) < len(StandardPlatform()) {
		t.Fatalf("measurement log too short: %v", meas.LogNames)
	}
}

func TestImageDigest(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "vm-7", workload.Idle(), nil)
	meas, err := r.m.ImageDigest("vm-7")
	if err != nil {
		t.Fatal(err)
	}
	if meas.Digest != sha256.Sum256([]byte("vm-7")) {
		t.Fatal("image digest differs from registration")
	}
	if _, err := r.m.ImageDigest("ghost"); err == nil {
		t.Fatal("digest for unknown VM")
	}
}

func TestMonitorKernelCollect(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "vm", workload.Spinner(5*time.Millisecond), guest.NewOS())
	req, err := properties.MapToMeasurements(properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := r.m.Collect("vm", req, cryptoutil.MustNonce(), r.advance)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Kind != properties.KindCPUTime {
		t.Fatalf("collected %+v", ms)
	}
	if ms[0].WallTime != properties.DefaultWindow {
		t.Fatalf("window %v, want %v", ms[0].WallTime, properties.DefaultWindow)
	}
}

func TestMonitorKernelWindowedNeedsDriver(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "vm", workload.Idle(), nil)
	req, _ := properties.MapToMeasurements(properties.CovertChannelFreedom)
	if _, err := r.m.Collect("vm", req, cryptoutil.MustNonce(), nil); err == nil {
		t.Fatal("windowed collection without clock driver succeeded")
	}
}

func TestMonitorKernelRejectsUnknownKind(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "vm", workload.Idle(), nil)
	req := properties.Request{Kinds: []properties.MeasurementKind{"bogus"}}
	if _, err := r.m.Collect("vm", req, cryptoutil.MustNonce(), r.advance); err == nil {
		t.Fatal("bogus measurement kind accepted")
	}
}

func TestRegisterCollectorValidation(t *testing.T) {
	if err := RegisterCollector(properties.KindCPUTime, func(vm *VM, n [16]byte) (properties.Measurement, error) {
		return properties.Measurement{}, nil
	}); err == nil {
		t.Fatal("built-in kind overridden")
	}
	if err := RegisterCollector("custom-k", nil); err == nil {
		t.Fatal("nil collector accepted")
	}
	ok := func(vm *VM, n [16]byte) (properties.Measurement, error) {
		return properties.Measurement{Kind: "custom-k"}, nil
	}
	if err := RegisterCollector("custom-k", ok); err != nil {
		t.Fatal(err)
	}
	defer UnregisterCollector("custom-k")
	if err := RegisterCollector("custom-k", ok); err == nil {
		t.Fatal("duplicate collector accepted")
	}
}

func TestCustomCollectorThroughMonitorKernel(t *testing.T) {
	const kind properties.MeasurementKind = "custom-probe"
	if err := RegisterCollector(kind, func(vm *VM, n [16]byte) (properties.Measurement, error) {
		return properties.Measurement{Kind: kind, Tasks: []string{vm.Vid}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	defer UnregisterCollector(kind)
	r := newRig(t, nil)
	r.addVM(t, "vm-c", workload.Idle(), guest.NewOS())
	ms, err := r.m.Collect("vm-c", properties.Request{Kinds: []properties.MeasurementKind{kind}}, cryptoutil.MustNonce(), r.advance)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Kind != kind || ms[0].Tasks[0] != "vm-c" {
		t.Fatalf("custom collection = %+v", ms)
	}
}

func TestBusWatchBinsLockTrain(t *testing.T) {
	r := newRig(t, nil)
	var bits []attack.Bit
	for i := 0; i < 16; i++ {
		bits = append(bits, attack.Bit(i%2))
	}
	r.addVM(t, "vm-b", attack.NewBusCovertSender(bits, true), nil)
	r.advance(100 * time.Millisecond)
	if err := r.m.StartBusWatch("vm-b", time.Second); err != nil {
		t.Fatal(err)
	}
	r.advance(time.Second)
	meas, err := r.m.CollectBusTrace("vm-b")
	if err != nil {
		t.Fatal(err)
	}
	if meas.Kind != properties.KindBusLockTrace || len(meas.Counters) != HistogramBins {
		t.Fatalf("measurement shape: %+v", meas)
	}
	var total uint64
	for _, c := range meas.Counters {
		total += c
	}
	// 100 slots/s, half "1" at 60 locks => ~3000 locks over the window.
	if total < 2000 || total > 4000 {
		t.Fatalf("bus trace total %d, want ~3000", total)
	}
	if _, err := r.m.CollectBusTrace("vm-b"); err == nil {
		t.Fatal("double collect succeeded")
	}
	if err := r.m.StartBusWatch("ghost", time.Second); err == nil {
		t.Fatal("bus watch armed for unknown VM")
	}
}

func TestBusWatchIdleVMIsQuiet(t *testing.T) {
	r := newRig(t, nil)
	r.addVM(t, "vm-q", workload.Idle(), nil)
	if err := r.m.StartBusWatch("vm-q", time.Second); err != nil {
		t.Fatal(err)
	}
	r.advance(time.Second)
	meas, err := r.m.CollectBusTrace("vm-q")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range meas.Counters {
		if c != 0 {
			t.Fatalf("idle VM has %d locks in bin %d", c, i)
		}
	}
}
