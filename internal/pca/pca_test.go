package pca

import (
	"crypto/rand"
	"strings"
	"testing"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/trust"
)

func setup(t *testing.T) (*PCA, *trust.Module) {
	t.Helper()
	ca, err := New("pca", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trust.NewModule("server-1", 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ca.RegisterServer(m.Name(), m.IdentityKey())
	return ca, m
}

func TestCertifyGenuineRequest(t *testing.T) {
	ca, m := setup(t)
	sess, req, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Certify(req)
	if err != nil {
		t.Fatalf("genuine request rejected: %v", err)
	}
	if err := VerifyAttestationCert(cert, ca.Name(), ca.PublicKey(), sess.Public()); err != nil {
		t.Fatalf("issued certificate does not verify: %v", err)
	}
}

func TestCertificateIsAnonymous(t *testing.T) {
	ca, m := setup(t)
	_, req, _ := m.NewSession()
	cert, err := ca.Certify(req)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cert.Subject, "server-1") {
		t.Fatalf("certificate subject %q reveals the server identity", cert.Subject)
	}
}

func TestRejectUnknownServer(t *testing.T) {
	ca, _ := setup(t)
	rogue, err := trust.NewModule("rogue", 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, req, _ := rogue.NewSession()
	if _, err := ca.Certify(req); err == nil {
		t.Fatal("request from unregistered server accepted")
	}
}

func TestRejectForgedRequest(t *testing.T) {
	ca, m := setup(t)
	_, req, _ := m.NewSession()
	req.Sig[0] ^= 1
	if _, err := ca.Certify(req); err == nil {
		t.Fatal("forged request accepted")
	}
	if _, err := ca.Certify(nil); err == nil {
		t.Fatal("nil request accepted")
	}
}

func TestRejectImpersonation(t *testing.T) {
	// A registered-but-malicious server must not obtain a certificate for a
	// key it does not control under another server's name.
	ca, m := setup(t)
	mallory, _ := trust.NewModule("mallory", 0, rand.Reader)
	ca.RegisterServer(mallory.Name(), mallory.IdentityKey())
	_, req, _ := mallory.NewSession()
	req.Server = m.Name() // claim to be server-1
	if _, err := ca.Certify(req); err == nil {
		t.Fatal("impersonated request accepted")
	}
}

func TestVerifyAttestationCertChecksKeyAndPurpose(t *testing.T) {
	ca, m := setup(t)
	sess, req, _ := m.NewSession()
	cert, _ := ca.Certify(req)
	other, _, _ := m.NewSession()
	if err := VerifyAttestationCert(cert, ca.Name(), ca.PublicKey(), other.Public()); err == nil {
		t.Fatal("certificate accepted for a different attestation key")
	}
	cert.Purpose = "something-else"
	if err := VerifyAttestationCert(cert, ca.Name(), ca.PublicKey(), sess.Public()); err == nil {
		t.Fatal("certificate with wrong purpose accepted (and tampering undetected)")
	}
}

func TestSerialsIncrease(t *testing.T) {
	ca, m := setup(t)
	_, r1, _ := m.NewSession()
	_, r2, _ := m.NewSession()
	c1, _ := ca.Certify(r1)
	c2, _ := ca.Certify(r2)
	if c2.Serial <= c1.Serial {
		t.Fatalf("serials not increasing: %d then %d", c1.Serial, c2.Serial)
	}
	if c1.Subject == c2.Subject {
		t.Fatal("two certificates share an anonymous subject")
	}
}

// TestSerialsSurviveRestart is the regression test for the in-memory
// serial counter: a restarted pCA (same identity, same ledger) used to
// reissue anon-1, anon-2, … and break the serial uniqueness every verifier
// assumes. SetLedger must recover the high-water mark from KindCertIssue
// entries before the first post-restart issuance.
func TestSerialsSurviveRestart(t *testing.T) {
	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = byte(i)
	}
	id, err := cryptoutil.IdentityFromSeed("pca", seed)
	if err != nil {
		t.Fatal(err)
	}
	led, err := ledger.Open(ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()

	m, err := trust.NewModule("server-1", 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	ca := NewWithIdentity(id)
	if err := ca.SetLedger(led, nil); err != nil {
		t.Fatal(err)
	}
	ca.RegisterServer(m.Name(), m.IdentityKey())
	var last uint64
	subjects := map[string]bool{}
	for i := 0; i < 5; i++ {
		_, req, _ := m.NewSession()
		c, err := ca.Certify(req)
		if err != nil {
			t.Fatal(err)
		}
		last = c.Serial
		subjects[c.Subject] = true
	}

	// "Restart": a fresh process reconstructs the pCA from its escrowed
	// identity and the surviving ledger.
	ca2 := NewWithIdentity(id)
	if err := ca2.SetLedger(led, nil); err != nil {
		t.Fatal(err)
	}
	if hw := ca2.SerialHighWater(); hw != last {
		t.Fatalf("recovered high-water mark %d, want %d", hw, last)
	}
	ca2.RegisterServer(m.Name(), m.IdentityKey())
	for i := 0; i < 5; i++ {
		_, req, _ := m.NewSession()
		c, err := ca2.Certify(req)
		if err != nil {
			t.Fatal(err)
		}
		if c.Serial <= last {
			t.Fatalf("post-restart serial %d not above pre-restart high-water %d", c.Serial, last)
		}
		last = c.Serial
		if subjects[c.Subject] {
			t.Fatalf("post-restart certificate reused anonymous subject %q", c.Subject)
		}
		subjects[c.Subject] = true
	}
}

// TestCertifyCachesSessions: re-certifying the same (server, session key)
// returns the identical certificate without consuming a serial, so N
// shards appraising one server don't turn the pCA into a bottleneck.
func TestCertifyCachesSessions(t *testing.T) {
	ca, m := setup(t)
	sess, req, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ca.Certify(req)
	if err != nil {
		t.Fatal(err)
	}
	before := cryptoutil.Ops()
	c2, err := ca.Certify(req)
	if err != nil {
		t.Fatal(err)
	}
	delta := cryptoutil.Ops().Sub(before)
	if c2 != c1 {
		t.Fatal("repeat certification did not return the cached certificate")
	}
	if delta.Sign != 0 || delta.Verify != 0 {
		t.Fatalf("cache hit still did crypto: %d signs, %d verifies", delta.Sign, delta.Verify)
	}
	st := ca.CertStats()
	if st.Issued != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v, want 1 issued / 1 cache hit", st)
	}
	if err := VerifyAttestationCert(c2, ca.Name(), ca.PublicKey(), sess.Public()); err != nil {
		t.Fatal(err)
	}
	// A different session from the same server is a different key: no hit.
	_, req2, _ := m.NewSession()
	c3, err := ca.Certify(req2)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Serial == c1.Serial {
		t.Fatal("distinct session keys shared a serial")
	}
}
