package pca

import (
	"crypto/rand"
	"strings"
	"testing"

	"cloudmonatt/internal/trust"
)

func setup(t *testing.T) (*PCA, *trust.Module) {
	t.Helper()
	ca, err := New("pca", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trust.NewModule("server-1", 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ca.RegisterServer(m.Name(), m.IdentityKey())
	return ca, m
}

func TestCertifyGenuineRequest(t *testing.T) {
	ca, m := setup(t)
	sess, req, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Certify(req)
	if err != nil {
		t.Fatalf("genuine request rejected: %v", err)
	}
	if err := VerifyAttestationCert(cert, ca.Name(), ca.PublicKey(), sess.Public()); err != nil {
		t.Fatalf("issued certificate does not verify: %v", err)
	}
}

func TestCertificateIsAnonymous(t *testing.T) {
	ca, m := setup(t)
	_, req, _ := m.NewSession()
	cert, err := ca.Certify(req)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cert.Subject, "server-1") {
		t.Fatalf("certificate subject %q reveals the server identity", cert.Subject)
	}
}

func TestRejectUnknownServer(t *testing.T) {
	ca, _ := setup(t)
	rogue, err := trust.NewModule("rogue", 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, req, _ := rogue.NewSession()
	if _, err := ca.Certify(req); err == nil {
		t.Fatal("request from unregistered server accepted")
	}
}

func TestRejectForgedRequest(t *testing.T) {
	ca, m := setup(t)
	_, req, _ := m.NewSession()
	req.Sig[0] ^= 1
	if _, err := ca.Certify(req); err == nil {
		t.Fatal("forged request accepted")
	}
	if _, err := ca.Certify(nil); err == nil {
		t.Fatal("nil request accepted")
	}
}

func TestRejectImpersonation(t *testing.T) {
	// A registered-but-malicious server must not obtain a certificate for a
	// key it does not control under another server's name.
	ca, m := setup(t)
	mallory, _ := trust.NewModule("mallory", 0, rand.Reader)
	ca.RegisterServer(mallory.Name(), mallory.IdentityKey())
	_, req, _ := mallory.NewSession()
	req.Server = m.Name() // claim to be server-1
	if _, err := ca.Certify(req); err == nil {
		t.Fatal("impersonated request accepted")
	}
}

func TestVerifyAttestationCertChecksKeyAndPurpose(t *testing.T) {
	ca, m := setup(t)
	sess, req, _ := m.NewSession()
	cert, _ := ca.Certify(req)
	other, _, _ := m.NewSession()
	if err := VerifyAttestationCert(cert, ca.Name(), ca.PublicKey(), other.Public()); err == nil {
		t.Fatal("certificate accepted for a different attestation key")
	}
	cert.Purpose = "something-else"
	if err := VerifyAttestationCert(cert, ca.Name(), ca.PublicKey(), sess.Public()); err == nil {
		t.Fatal("certificate with wrong purpose accepted (and tampering undetected)")
	}
}

func TestSerialsIncrease(t *testing.T) {
	ca, m := setup(t)
	_, r1, _ := m.NewSession()
	_, r2, _ := m.NewSession()
	c1, _ := ca.Certify(r1)
	c2, _ := ca.Certify(r2)
	if c2.Serial <= c1.Serial {
		t.Fatalf("serials not increasing: %d then %d", c1.Serial, c2.Serial)
	}
	if c1.Subject == c2.Subject {
		t.Fatal("two certificates share an anonymous subject")
	}
}
