// Package pca implements the privacy Certificate Authority of CloudMonatt
// (paper §3.2.3, §3.4.2). The pCA knows the long-term identity key VKs of
// every provisioned cloud server. When a Trust Module mints a per-session
// attestation key AVKs, the pCA verifies the identity signature on the
// request and issues a certificate that vouches for the key *anonymously*:
// the certificate subject is a serial number, never the server name, so an
// attestation cannot be used to locate a victim VM's host (paper: an
// attacker must not learn placement from the protocol, cf. Ristenpart et
// al. co-location attacks).
package pca

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/trust"
)

// PurposeAttestationKey is the certificate purpose for session AVKs.
const PurposeAttestationKey = "cloudmonatt-attestation-key"

// certCacheSize bounds the issued-certificate cache. One live session per
// (server, shard) pair is the steady state, so even a large fleet stays
// far under this; the bound only guards against a session-thrashing
// client turning the cache into a leak.
const certCacheSize = 4096

// PCA is the privacy Certificate Authority.
type PCA struct {
	identity *cryptoutil.Identity

	mu      sync.RWMutex
	servers map[string]ed25519.PublicKey
	serial  uint64
	ledger  *ledger.Ledger
	now     func() time.Duration

	// cache maps Hash(server, session key) → the issued certificate, so
	// repeat certifications of a still-live session key (N shards
	// appraising the same server, or a server re-presenting its session)
	// skip the identity-signature verification and the signing, and do
	// not burn a fresh serial. Idempotent re-issue is safe: the
	// certificate binds only the public key, so the same request can only
	// ever yield an equivalent certificate.
	cache      map[[32]byte]*cryptoutil.Certificate
	cacheOrder [][32]byte // FIFO eviction order
	stats      Stats
}

// Stats counts pCA certification work.
type Stats struct {
	Issued    uint64 // certificates signed (serials consumed)
	CacheHits uint64 // certifications answered from the session cache
}

// New creates a pCA with a fresh identity drawn from r.
func New(name string, r io.Reader) (*PCA, error) {
	id, err := cryptoutil.NewIdentity(name, r)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	return NewWithIdentity(id), nil
}

// NewWithIdentity creates a pCA around an existing identity. A restarted
// pCA must come back with the same key pair (its certificates are verified
// against the escrowed public key), so restart paths reconstruct the
// identity and hand it in here rather than minting a fresh one.
func NewWithIdentity(id *cryptoutil.Identity) *PCA {
	return &PCA{
		identity: id,
		servers:  make(map[string]ed25519.PublicKey),
		cache:    make(map[[32]byte]*cryptoutil.Certificate),
	}
}

// Name returns the CA's name as it appears in issued certificates.
func (p *PCA) Name() string { return p.identity.Name }

// PublicKey returns the key verifiers use to check issued certificates.
func (p *PCA) PublicKey() ed25519.PublicKey { return p.identity.Public() }

// RegisterServer records a provisioned cloud server's identity key. In a
// deployment this happens when the server is installed in the data center
// and its Trust Module's VKs is escrowed.
func (p *PCA) RegisterServer(name string, key ed25519.PublicKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.servers[name] = append(ed25519.PublicKey(nil), key...)
}

// Certify validates a session-key certification request against the
// registered identity key of the requesting server and, if genuine, issues
// an anonymous certificate for the attestation key. Re-certifying a
// (server, key) pair this pCA already certified returns the cached
// certificate without consuming a serial.
func (p *PCA) Certify(req *trust.CertRequest) (*cryptoutil.Certificate, error) {
	if req == nil {
		return nil, fmt.Errorf("pca: nil request")
	}
	cacheKey := cryptoutil.Hash("pca-cert-cache", []byte(req.Server), req.Key)
	p.mu.RLock()
	vk, ok := p.servers[req.Server]
	cached := p.cache[cacheKey]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pca: unknown server %q", req.Server)
	}
	if cached != nil {
		p.mu.Lock()
		p.stats.CacheHits++
		p.mu.Unlock()
		return cached, nil
	}
	if err := trust.VerifyCertRequest(req, vk); err != nil {
		return nil, fmt.Errorf("pca: rejecting request from %q: %w", req.Server, err)
	}
	p.mu.Lock()
	if cached := p.cache[cacheKey]; cached != nil {
		// A concurrent certification of the same session won the race.
		p.stats.CacheHits++
		p.mu.Unlock()
		return cached, nil
	}
	p.serial++
	serial := p.serial
	p.stats.Issued++
	p.mu.Unlock()
	subject := fmt.Sprintf("anon-%d", serial)
	cert := cryptoutil.IssueCertificate(p.identity, subject, PurposeAttestationKey, req.Key, serial)
	p.mu.Lock()
	if _, dup := p.cache[cacheKey]; !dup {
		p.cache[cacheKey] = cert
		p.cacheOrder = append(p.cacheOrder, cacheKey)
		if len(p.cacheOrder) > certCacheSize {
			delete(p.cache, p.cacheOrder[0])
			p.cacheOrder = p.cacheOrder[1:]
		}
	}
	p.mu.Unlock()
	p.recordIssuance(subject, serial)
	return cert, nil
}

// SetLedger routes certificate issuances into the evidence ledger and
// recovers the serial high-water mark from prior KindCertIssue entries.
// The serial counter was in-memory only: a restarted pCA would reissue
// anon-1, anon-2, … and silently break the serial uniqueness every
// verifier assumes. now supplies the virtual event time (the pCA has no
// clock of its own).
func (p *PCA) SetLedger(l *ledger.Ledger, now func() time.Duration) error {
	var high uint64
	if l != nil {
		issued, err := l.Query(ledger.Filter{Kind: ledger.KindCertIssue})
		if err != nil {
			return fmt.Errorf("pca: recovering serial high-water mark: %w", err)
		}
		for _, e := range issued {
			var rec struct {
				Serial uint64 `json:"serial"`
			}
			if json.Unmarshal(e.Payload, &rec) == nil && rec.Serial > high {
				high = rec.Serial
			}
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ledger, p.now = l, now
	if high > p.serial {
		p.serial = high
	}
	return nil
}

// SerialHighWater returns the last serial issued (or recovered).
func (p *PCA) SerialHighWater() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.serial
}

// CertStats snapshots the certification counters.
func (p *PCA) CertStats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.stats
}

// recordIssuance appends the issuance evidence, best-effort. The entry
// deliberately names only the anonymous subject and serial — recording the
// requesting server here would undo the privacy the pCA exists to provide
// (paper §3.4.2).
func (p *PCA) recordIssuance(subject string, serial uint64) {
	p.mu.RLock()
	l, now := p.ledger, p.now
	p.mu.RUnlock()
	if l == nil {
		return
	}
	var at time.Duration
	if now != nil {
		at = now()
	}
	payload, err := json.Marshal(struct {
		Subject string `json:"subject"`
		Serial  uint64 `json:"serial"`
		Purpose string `json:"purpose"`
	}{subject, serial, PurposeAttestationKey})
	if err != nil {
		return
	}
	l.Append(ledger.Entry{At: at, Kind: ledger.KindCertIssue, Payload: payload})
}

// VerifyAttestationCert checks that cert is a genuine attestation-key
// certificate from this CA (by name/key) for the given key.
func VerifyAttestationCert(cert *cryptoutil.Certificate, caName string, caKey, avk ed25519.PublicKey) error {
	return VerifyAttestationCertWith(cert, caName, caKey, avk, cryptoutil.Direct)
}

// VerifyAttestationCertWith is VerifyAttestationCert with a pluggable
// Verifier: concurrent appraisals presenting the same session certificate
// coalesce into one signature check under a BatchVerifier.
func VerifyAttestationCertWith(cert *cryptoutil.Certificate, caName string, caKey, avk ed25519.PublicKey, v cryptoutil.Verifier) error {
	if err := cryptoutil.VerifyCertificateWith(cert, caName, caKey, v); err != nil {
		return err
	}
	if cert.Purpose != PurposeAttestationKey {
		return fmt.Errorf("pca: certificate purpose %q, want %q", cert.Purpose, PurposeAttestationKey)
	}
	if !cryptoutil.KeyEqual(cert.Key, avk) {
		return fmt.Errorf("pca: certificate does not cover the presented attestation key")
	}
	return nil
}
