// Package pca implements the privacy Certificate Authority of CloudMonatt
// (paper §3.2.3, §3.4.2). The pCA knows the long-term identity key VKs of
// every provisioned cloud server. When a Trust Module mints a per-session
// attestation key AVKs, the pCA verifies the identity signature on the
// request and issues a certificate that vouches for the key *anonymously*:
// the certificate subject is a serial number, never the server name, so an
// attestation cannot be used to locate a victim VM's host (paper: an
// attacker must not learn placement from the protocol, cf. Ristenpart et
// al. co-location attacks).
package pca

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/trust"
)

// PurposeAttestationKey is the certificate purpose for session AVKs.
const PurposeAttestationKey = "cloudmonatt-attestation-key"

// PCA is the privacy Certificate Authority.
type PCA struct {
	identity *cryptoutil.Identity

	mu      sync.Mutex
	servers map[string]ed25519.PublicKey
	serial  uint64
	ledger  *ledger.Ledger
	now     func() time.Duration
}

// New creates a pCA with a fresh identity drawn from r.
func New(name string, r io.Reader) (*PCA, error) {
	id, err := cryptoutil.NewIdentity(name, r)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	return &PCA{identity: id, servers: make(map[string]ed25519.PublicKey)}, nil
}

// Name returns the CA's name as it appears in issued certificates.
func (p *PCA) Name() string { return p.identity.Name }

// PublicKey returns the key verifiers use to check issued certificates.
func (p *PCA) PublicKey() ed25519.PublicKey { return p.identity.Public() }

// RegisterServer records a provisioned cloud server's identity key. In a
// deployment this happens when the server is installed in the data center
// and its Trust Module's VKs is escrowed.
func (p *PCA) RegisterServer(name string, key ed25519.PublicKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.servers[name] = append(ed25519.PublicKey(nil), key...)
}

// Certify validates a session-key certification request against the
// registered identity key of the requesting server and, if genuine, issues
// an anonymous certificate for the attestation key.
func (p *PCA) Certify(req *trust.CertRequest) (*cryptoutil.Certificate, error) {
	if req == nil {
		return nil, fmt.Errorf("pca: nil request")
	}
	p.mu.Lock()
	vk, ok := p.servers[req.Server]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pca: unknown server %q", req.Server)
	}
	if err := trust.VerifyCertRequest(req, vk); err != nil {
		return nil, fmt.Errorf("pca: rejecting request from %q: %w", req.Server, err)
	}
	p.mu.Lock()
	p.serial++
	serial := p.serial
	p.mu.Unlock()
	subject := fmt.Sprintf("anon-%d", serial)
	cert := cryptoutil.IssueCertificate(p.identity, subject, PurposeAttestationKey, req.Key, serial)
	p.recordIssuance(subject, serial)
	return cert, nil
}

// SetLedger routes certificate issuances into the evidence ledger. now
// supplies the virtual event time (the pCA has no clock of its own).
func (p *PCA) SetLedger(l *ledger.Ledger, now func() time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ledger, p.now = l, now
}

// recordIssuance appends the issuance evidence, best-effort. The entry
// deliberately names only the anonymous subject and serial — recording the
// requesting server here would undo the privacy the pCA exists to provide
// (paper §3.4.2).
func (p *PCA) recordIssuance(subject string, serial uint64) {
	p.mu.Lock()
	l, now := p.ledger, p.now
	p.mu.Unlock()
	if l == nil {
		return
	}
	var at time.Duration
	if now != nil {
		at = now()
	}
	payload, err := json.Marshal(struct {
		Subject string `json:"subject"`
		Serial  uint64 `json:"serial"`
		Purpose string `json:"purpose"`
	}{subject, serial, PurposeAttestationKey})
	if err != nil {
		return
	}
	l.Append(ledger.Entry{At: at, Kind: ledger.KindCertIssue, Payload: payload})
}

// VerifyAttestationCert checks that cert is a genuine attestation-key
// certificate from this CA (by name/key) for the given key.
func VerifyAttestationCert(cert *cryptoutil.Certificate, caName string, caKey, avk ed25519.PublicKey) error {
	return VerifyAttestationCertWith(cert, caName, caKey, avk, cryptoutil.Direct)
}

// VerifyAttestationCertWith is VerifyAttestationCert with a pluggable
// Verifier: concurrent appraisals presenting the same session certificate
// coalesce into one signature check under a BatchVerifier.
func VerifyAttestationCertWith(cert *cryptoutil.Certificate, caName string, caKey, avk ed25519.PublicKey, v cryptoutil.Verifier) error {
	if err := cryptoutil.VerifyCertificateWith(cert, caName, caKey, v); err != nil {
		return err
	}
	if cert.Purpose != PurposeAttestationKey {
		return fmt.Errorf("pca: certificate purpose %q, want %q", cert.Purpose, PurposeAttestationKey)
	}
	if !cryptoutil.KeyEqual(cert.Key, avk) {
		return fmt.Errorf("pca: certificate does not cover the presented attestation key")
	}
	return nil
}
