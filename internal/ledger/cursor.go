package ledger

// Cursor streams the committed chain in sequence order, starting at the
// compaction base. It is the replay primitive crash recovery is built on:
// the controller walks every retained entry once, folding intents and
// decisions back into its in-memory state, without materializing the
// whole chain the way Query does.
//
// A cursor reads committed state only; entries appended after the cursor
// was positioned are returned as the walk reaches them (each Next re-reads
// the current head).
type Cursor struct {
	l    *Ledger
	next uint64
}

// Cursor returns a cursor positioned at the first retained entry
// (base.Seq+1). Entries compacted away are not replayable; recovery that
// needs them must start from the compaction snapshot they were folded
// into.
func (l *Ledger) Cursor() *Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return &Cursor{l: l, next: l.base.Seq + 1}
}

// CursorFrom returns a cursor positioned at seq (clamped below to the
// first retained entry).
func (l *Ledger) CursorFrom(seq uint64) *Cursor {
	c := l.Cursor()
	if seq > c.next {
		c.next = seq
	}
	return c
}

// Next returns the next committed entry. ok is false when the cursor has
// reached the head; a later Next may return more if the chain has grown.
func (c *Cursor) Next() (Entry, bool, error) {
	c.l.mu.Lock()
	head := c.l.headSeq
	c.l.mu.Unlock()
	if c.next > head {
		return Entry{}, false, nil
	}
	e, err := c.l.Entry(c.next)
	if err != nil {
		return Entry{}, false, err
	}
	c.next++
	return e, true, nil
}

// Seq reports the sequence number the next call to Next will read.
func (c *Cursor) Seq() uint64 { return c.next }
