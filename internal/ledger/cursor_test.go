package ledger

import "testing"

func TestCursorWalksChainInOrder(t *testing.T) {
	l := mustOpen(t, Options{})
	entries := appendN(t, l, 7)

	c := l.Cursor()
	for i, want := range entries {
		e, ok, err := c.Next()
		if err != nil || !ok {
			t.Fatalf("Next %d = ok=%v err=%v", i, ok, err)
		}
		if e.Seq != want.Seq || e.Hash != want.Hash {
			t.Fatalf("entry %d: seq %d hash %x, want seq %d hash %x", i, e.Seq, e.Hash, want.Seq, want.Hash)
		}
	}
	if _, ok, err := c.Next(); ok || err != nil {
		t.Fatalf("cursor past head: ok=%v err=%v", ok, err)
	}

	// The cursor observes appends made after it reached the head.
	more := appendN(t, l, 2)
	e, ok, err := c.Next()
	if err != nil || !ok || e.Seq != more[0].Seq {
		t.Fatalf("post-append Next = %+v ok=%v err=%v", e, ok, err)
	}
}

func TestCursorEmptyLedger(t *testing.T) {
	l := mustOpen(t, Options{})
	c := l.Cursor()
	if _, ok, err := c.Next(); ok || err != nil {
		t.Fatalf("empty ledger: ok=%v err=%v", ok, err)
	}
}

func TestCursorStartsAtCompactionBase(t *testing.T) {
	// Tiny segments so Compact can actually retire some.
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, MaxSegmentBytes: 128})
	appendN(t, l, 10)
	if err := l.Compact(6); err != nil {
		t.Fatal(err)
	}
	baseSeq, _ := func() (uint64, [32]byte) { return l.base.Seq, l.base.Hash }()
	if baseSeq == 0 {
		t.Fatal("compaction retired nothing; segment sizing assumption broken")
	}
	c := l.Cursor()
	e, ok, err := c.Next()
	if err != nil || !ok || e.Seq != baseSeq+1 {
		t.Fatalf("first retained entry seq = %d (ok=%v err=%v), want %d", e.Seq, ok, err, baseSeq+1)
	}
	n := uint64(1)
	for {
		_, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 10-baseSeq {
		t.Fatalf("walked %d retained entries, want %d", n, 10-baseSeq)
	}

	cf := l.CursorFrom(9)
	e, ok, err = cf.Next()
	if err != nil || !ok || e.Seq != 9 {
		t.Fatalf("CursorFrom(9) first = %d (ok=%v err=%v)", e.Seq, ok, err)
	}
}
