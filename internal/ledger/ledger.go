// Package ledger is the evidence layer behind CloudMonatt's Property
// Certification Module (paper §3.2.3, §3.4): an append-only, hash-chained
// attestation evidence ledger. Every appraisal report, remediation event
// and pCA certificate issuance is recorded as an entry carrying
// H(prevHash ‖ payload), so the full attestation history is provable after
// the fact: any single-bit mutation of a committed entry breaks the chain,
// and an auditor can independently replay it (cmd/monatt-ledger).
//
// Writes go through a group-commit writer: concurrent appenders enqueue
// onto a batch and block; one of them becomes the committer and flushes the
// whole batch with a single serialization + write + fsync, so heavy
// traffic amortizes the durability cost (the classic WAL group commit).
// Storage is segmented; recovery after a crash truncates a torn tail back
// to the longest valid prefix, and compaction retires old segments behind
// a snapshot of the chain state. Checkpoints (head seq + hash) are
// ed25519-signable for out-of-band anchoring.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/metrics"
)

// Kind classifies an evidence entry.
type Kind string

// The entry kinds produced across the stack.
const (
	// KindAppraisal is one appraised attestation report (attestsrv).
	KindAppraisal Kind = "appraisal"
	// KindRemediation is one executed Response Module action (controller):
	// termination, suspension, migration, or resume.
	KindRemediation Kind = "remediation"
	// KindLaunch is one launch decision (controller).
	KindLaunch Kind = "launch"
	// KindCertIssue is one pCA attestation-key certificate issuance.
	KindCertIssue Kind = "cert-issue"
	// KindDegraded is one stale report served because the attestation
	// infrastructure was unreachable (controller graceful degradation).
	KindDegraded Kind = "degraded"
	// KindRPCFault is one observed fault-tolerance event on an RPC channel:
	// a retried call or a circuit-breaker transition.
	KindRPCFault Kind = "rpc-fault"
	// KindIntent is one two-phase control-plane intent (controller): a
	// "begin" entry appended before a state-changing operation executes and
	// an "end" entry appended once it completes. A begin without a matching
	// end marks an operation torn by a crash; recovery replays the chain
	// and finishes (or cleans up after) exactly those.
	KindIntent Kind = "intent"
)

// Entry is one committed evidence record. Seq, PrevHash and Hash are
// assigned by the ledger at commit time.
type Entry struct {
	Seq      uint64
	At       time.Duration // virtual time of the recorded event
	Kind     Kind
	Vid      string
	Prop     string
	Trace    string // obs trace ID joining this evidence to its timing spans
	Payload  []byte
	PrevHash [32]byte
	Hash     [32]byte
}

// entryHash computes Hash = H(prevHash ‖ seq ‖ at ‖ kind ‖ vid ‖ prop ‖
// trace ‖ payload) with the domain-separated injective encoding of
// cryptoutil.Hash.
func entryHash(prev [32]byte, seq uint64, at time.Duration, kind Kind, vid, prop, trace string, payload []byte) [32]byte {
	var seqB, atB [8]byte
	binary.BigEndian.PutUint64(seqB[:], seq)
	binary.BigEndian.PutUint64(atB[:], uint64(at))
	return cryptoutil.Hash("ledger-entry", prev[:], seqB[:], atB[:], []byte(kind), []byte(vid), []byte(prop), []byte(trace), payload)
}

// --- on-disk frame format ---
//
//	u32 frameLen                (bytes after this field)
//	u64 seq
//	u64 at                      (virtual nanoseconds)
//	u16 len(kind)  ‖ kind
//	u16 len(vid)   ‖ vid
//	u16 len(prop)  ‖ prop
//	u16 len(trace) ‖ trace
//	u32 len(payload) ‖ payload
//	prevHash[32]
//	hash[32]
//
// The trailing hashes make every frame self-authenticating: recovery can
// tell a torn or mutated record from a good one without a separate CRC.

const (
	frameHeader   = 4
	maxSmallField = 1 << 16
	maxPayload    = 1 << 24
)

func frameSize(e *Entry) int {
	return 8 + 8 + 2 + len(e.Kind) + 2 + len(e.Vid) + 2 + len(e.Prop) + 2 + len(e.Trace) + 4 + len(e.Payload) + 32 + 32
}

func appendFrame(buf []byte, e *Entry) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameSize(e)))
	buf = binary.BigEndian.AppendUint64(buf, e.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.At))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Kind)))
	buf = append(buf, e.Kind...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Vid)))
	buf = append(buf, e.Vid...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Prop)))
	buf = append(buf, e.Prop...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Trace)))
	buf = append(buf, e.Trace...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Payload)))
	buf = append(buf, e.Payload...)
	buf = append(buf, e.PrevHash[:]...)
	buf = append(buf, e.Hash[:]...)
	return buf
}

// decodeFrame parses one frame body (after the length prefix).
func decodeFrame(body []byte) (Entry, error) {
	var e Entry
	take := func(n int) ([]byte, bool) {
		if len(body) < n {
			return nil, false
		}
		out := body[:n]
		body = body[n:]
		return out, true
	}
	fixed, ok := take(16)
	if !ok {
		return e, errors.New("ledger: short frame")
	}
	e.Seq = binary.BigEndian.Uint64(fixed[:8])
	e.At = time.Duration(binary.BigEndian.Uint64(fixed[8:]))
	str := func() (string, bool) {
		lb, ok := take(2)
		if !ok {
			return "", false
		}
		b, ok := take(int(binary.BigEndian.Uint16(lb)))
		return string(b), ok
	}
	kind, ok1 := str()
	vid, ok2 := str()
	prop, ok3 := str()
	trace, ok6 := str()
	if !ok1 || !ok2 || !ok3 || !ok6 {
		return e, errors.New("ledger: short frame")
	}
	e.Kind, e.Vid, e.Prop, e.Trace = Kind(kind), vid, prop, trace
	plb, ok := take(4)
	if !ok {
		return e, errors.New("ledger: short frame")
	}
	pl, ok := take(int(binary.BigEndian.Uint32(plb)))
	if !ok {
		return e, errors.New("ledger: short frame")
	}
	if len(pl) > 0 {
		e.Payload = append([]byte(nil), pl...)
	}
	prev, ok4 := take(32)
	h, ok5 := take(32)
	if !ok4 || !ok5 || len(body) != 0 {
		return e, errors.New("ledger: malformed frame")
	}
	copy(e.PrevHash[:], prev)
	copy(e.Hash[:], h)
	return e, nil
}

// --- snapshot (compaction base) ---

// SnapshotFile is the auxiliary file naming the chain state that precedes
// the oldest retained segment.
const SnapshotFile = "SNAPSHOT"

var snapMagic = []byte("MONATT-LEDGER-SNAP1\n")

// snapshot is the chain state at a compaction boundary: entries up to and
// including Seq have been retired; Hash is the hash of entry Seq (or the
// zero hash when Seq == 0, the genesis state).
type snapshot struct {
	Seq  uint64
	Hash [32]byte
}

func encodeSnapshot(s snapshot) []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, s.Seq)
	return append(buf, s.Hash[:]...)
}

func decodeSnapshot(data []byte) (snapshot, error) {
	var s snapshot
	if len(data) != len(snapMagic)+8+32 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return s, errors.New("ledger: malformed snapshot")
	}
	data = data[len(snapMagic):]
	s.Seq = binary.BigEndian.Uint64(data[:8])
	copy(s.Hash[:], data[8:])
	return s, nil
}

// --- ledger ---

// Options configures a ledger.
type Options struct {
	// Dir is the storage directory. Empty selects an in-process store:
	// fully functional (chaining, recovery semantics, queries) but not
	// durable across the process.
	Dir string
	// ReadOnly opens an existing on-disk ledger for auditing: appends and
	// compaction are rejected, and a torn tail is an error, not repaired.
	ReadOnly bool
	// MaxSegmentBytes rolls the active segment when it exceeds this size.
	// Default 1 MiB.
	MaxSegmentBytes int64
	// NoSync skips the per-flush fsync (benchmarks; never production).
	NoSync bool
	// Metrics receives append/flush latency and batch-size summaries.
	// A private registry is created when nil.
	Metrics *metrics.Registry
	// Now supplies the clock used for append/flush latency measurement.
	// The simulator injects its virtual clock here so latency summaries
	// are reproducible under seeded replay; nil falls back to wall time.
	Now func() time.Time
}

// ErrClosed is returned by operations on a closed ledger.
var ErrClosed = errors.New("ledger: closed")

type segment struct {
	name     string
	file     segFile
	firstSeq uint64
	size     int64
}

// loc addresses one committed frame.
type loc struct {
	seg int
	off int64
	n   int32
}

type waiter struct {
	in    Entry
	start time.Time
	out   Entry
	err   error
	done  chan struct{}
}

// Ledger is the append-only hash-chained evidence ledger.
type Ledger struct {
	opts Options
	st   store

	reg       *metrics.Registry
	appendSum *metrics.Summary
	flushSum  *metrics.Summary
	batchSum  *metrics.IntSummary

	mu         sync.Mutex
	cond       *sync.Cond // signaled when a commit round finishes
	closed     bool
	committing bool
	queue      []*waiter

	base     snapshot // chain state before the first indexed entry
	headSeq  uint64
	headHash [32]byte

	segs     []*segment
	locs     []loc // locs[i] addresses seq base.Seq+1+i
	postings map[string][]uint64
}

// Open opens (creating or recovering as needed) the ledger described by
// opts. In read-write mode a torn tail left by a crash is truncated back
// to the longest valid prefix before the ledger accepts new appends.
func Open(opts Options) (*Ledger, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 1 << 20
	}
	var st store
	var err error
	if opts.Dir == "" {
		if opts.ReadOnly {
			return nil, errors.New("ledger: read-only requires a directory")
		}
		st = newMemStore()
	} else {
		st, err = newDirStore(opts.Dir, opts.ReadOnly)
		if err != nil {
			return nil, err
		}
	}
	return open(opts, st)
}

func open(opts Options, st store) (*Ledger, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	l := &Ledger{
		opts:      opts,
		st:        st,
		reg:       reg,
		appendSum: reg.Summary("ledger/append"),
		flushSum:  reg.Summary("ledger/flush"),
		batchSum:  reg.IntSummary("ledger/batch-size"),
		postings:  make(map[string][]uint64),
	}
	l.cond = sync.NewCond(&l.mu)

	if data, ok, err := st.ReadAux(SnapshotFile); err != nil {
		return nil, err
	} else if ok {
		if l.base, err = decodeSnapshot(data); err != nil {
			return nil, err
		}
	}
	l.headSeq, l.headHash = l.base.Seq, l.base.Hash

	names, err := st.Segments()
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		f, err := st.Open(name)
		if err != nil {
			return nil, err
		}
		seg := &segment{name: name, file: f, firstSeq: l.headSeq + 1}
		good, err := l.scanSegment(seg, len(l.segs))
		if err != nil {
			if opts.ReadOnly {
				return nil, fmt.Errorf("ledger: segment %s: %w", name, err)
			}
			// Crash recovery: keep the longest valid prefix. The bad
			// suffix of this segment is truncated and any later segments
			// (which can no longer chain) are dropped.
			if good == 0 {
				f.Close()
				if rerr := st.Remove(name); rerr != nil {
					return nil, rerr
				}
			} else {
				if terr := f.Truncate(good); terr != nil {
					return nil, terr
				}
				seg.size = good
				l.segs = append(l.segs, seg)
			}
			for _, later := range names[i+1:] {
				if rerr := st.Remove(later); rerr != nil {
					return nil, rerr
				}
			}
			return l, nil
		}
		seg.size = good
		l.segs = append(l.segs, seg)
	}
	return l, nil
}

// scanSegment replays one segment's frames, extending the chain state and
// index. It returns the offset of the first invalid byte (== size when the
// segment is fully valid) and an error describing why scanning stopped
// early, if it did.
func (l *Ledger) scanSegment(seg *segment, segIdx int) (int64, error) {
	size, err := seg.file.Size()
	if err != nil {
		return 0, err
	}
	var off int64
	var hdr [frameHeader]byte
	for off < size {
		if size-off < frameHeader {
			return off, errors.New("torn frame header")
		}
		if _, err := io.ReadFull(io.NewSectionReader(seg.file, off, frameHeader), hdr[:]); err != nil {
			return off, err
		}
		n := int64(binary.BigEndian.Uint32(hdr[:]))
		if n <= 0 || n > frameHeader+maxPayload || off+frameHeader+n > size {
			return off, errors.New("torn or oversized frame")
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(seg.file, off+frameHeader, n), body); err != nil {
			return off, err
		}
		e, err := decodeFrame(body)
		if err != nil {
			return off, err
		}
		if e.Seq != l.headSeq+1 {
			return off, fmt.Errorf("seq %d where %d expected", e.Seq, l.headSeq+1)
		}
		if e.PrevHash != l.headHash {
			return off, fmt.Errorf("entry %d does not chain from its predecessor", e.Seq)
		}
		if e.Hash != entryHash(e.PrevHash, e.Seq, e.At, e.Kind, e.Vid, e.Prop, e.Trace, e.Payload) {
			return off, fmt.Errorf("entry %d hash mismatch", e.Seq)
		}
		l.indexEntry(&e, loc{seg: segIdx, off: off, n: int32(frameHeader + n)})
		l.headSeq, l.headHash = e.Seq, e.Hash
		off += frameHeader + n
	}
	return off, nil
}

// indexEntry records the location and postings of one committed entry.
// Callers hold l.mu or are still single-threaded (open/scan/commit role).
func (l *Ledger) indexEntry(e *Entry, lc loc) {
	l.locs = append(l.locs, lc)
	l.postings["v:"+e.Vid] = append(l.postings["v:"+e.Vid], e.Seq)
	l.postings["k:"+string(e.Kind)] = append(l.postings["k:"+string(e.Kind)], e.Seq)
	if e.Prop != "" {
		l.postings["p:"+e.Prop] = append(l.postings["p:"+e.Prop], e.Seq)
	}
	if e.Trace != "" {
		l.postings["t:"+e.Trace] = append(l.postings["t:"+e.Trace], e.Seq)
	}
}

// Metrics returns the registry holding the ledger's summaries.
func (l *Ledger) Metrics() *metrics.Registry { return l.reg }

// Head returns the current chain head (seq, hash).
func (l *Ledger) Head() (uint64, [32]byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.headSeq, l.headHash
}

// Len returns the number of entries currently queryable (post-compaction).
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.locs)
}

// Append durably commits one entry and returns it with Seq/PrevHash/Hash
// assigned. Concurrent appenders are group-committed: all entries queued
// while a flush is in flight are serialized and fsynced together by the
// next committer, so the per-append durability cost is amortized across
// the batch.
func (l *Ledger) Append(e Entry) (Entry, error) {
	if e.Kind == "" {
		return Entry{}, errors.New("ledger: entry kind required")
	}
	if len(e.Vid) >= maxSmallField || len(e.Prop) >= maxSmallField || len(string(e.Kind)) >= maxSmallField || len(e.Trace) >= maxSmallField {
		return Entry{}, errors.New("ledger: field too large")
	}
	if len(e.Payload) > maxPayload {
		return Entry{}, errors.New("ledger: payload too large")
	}
	if l.opts.ReadOnly {
		return Entry{}, errors.New("ledger: read-only")
	}
	w := &waiter{in: e, start: l.opts.Now(), done: make(chan struct{})}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Entry{}, ErrClosed
	}
	l.queue = append(l.queue, w)
	if l.committing {
		// A committer is active: it (or its successor) will flush us.
		l.mu.Unlock()
		<-w.done
	} else {
		// Become the committer and drain batches until the queue is empty.
		l.committing = true
		for len(l.queue) > 0 {
			batch := l.queue
			l.queue = nil
			l.mu.Unlock()
			l.commit(batch)
			l.mu.Lock()
		}
		l.committing = false
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	l.appendSum.Observe(l.opts.Now().Sub(w.start))
	return w.out, w.err
}

// commit flushes one batch: a single serialization, write and fsync for
// every queued entry. Only the committer runs here, so chain state reads
// are exclusive; mutations happen back under l.mu.
func (l *Ledger) commit(batch []*waiter) {
	flushStart := l.opts.Now()

	l.mu.Lock()
	seq, prev := l.headSeq, l.headHash
	seg, err := l.activeSegmentLocked(seq + 1)
	l.mu.Unlock()
	if err != nil {
		finishBatch(batch, err)
		return
	}

	// Serialize the whole batch against the running chain.
	buf := make([]byte, 0, 256*len(batch))
	offs := make([]loc, len(batch))
	segIdx := l.segIndex(seg)
	writeOff := seg.size
	for i, w := range batch {
		e := w.in
		seq++
		e.Seq = seq
		e.PrevHash = prev
		e.Hash = entryHash(prev, e.Seq, e.At, e.Kind, e.Vid, e.Prop, e.Trace, e.Payload)
		prev = e.Hash
		start := len(buf)
		buf = appendFrame(buf, &e)
		offs[i] = loc{seg: segIdx, off: writeOff + int64(start), n: int32(len(buf) - start)}
		w.out = e
	}

	if _, err := seg.file.Write(buf); err != nil {
		seg.file.Truncate(seg.size)
		finishBatch(batch, fmt.Errorf("ledger: write: %w", err))
		return
	}
	if !l.opts.NoSync {
		if err := seg.file.Sync(); err != nil {
			seg.file.Truncate(seg.size)
			finishBatch(batch, fmt.Errorf("ledger: fsync: %w", err))
			return
		}
	}

	// Publish: index the batch and advance the head.
	l.mu.Lock()
	for i, w := range batch {
		l.indexEntry(&w.out, offs[i])
	}
	seg.size += int64(len(buf))
	l.headSeq = seq
	l.headHash = prev
	l.mu.Unlock()

	finishBatch(batch, nil)
	l.flushSum.Observe(l.opts.Now().Sub(flushStart))
	l.batchSum.Observe(int64(len(batch)))
}

func finishBatch(batch []*waiter, err error) {
	for _, w := range batch {
		if err != nil {
			w.err = err
			w.out = Entry{}
		}
		close(w.done)
	}
}

// activeSegmentLocked returns the segment to append to, rolling to a new
// one when the active segment is over the size threshold.
func (l *Ledger) activeSegmentLocked(nextSeq uint64) (*segment, error) {
	if n := len(l.segs); n > 0 && l.segs[n-1].size < l.opts.MaxSegmentBytes {
		return l.segs[n-1], nil
	}
	name := segName(nextSeq)
	f, err := l.st.Create(name)
	if err != nil {
		return nil, err
	}
	seg := &segment{name: name, file: f, firstSeq: nextSeq}
	l.segs = append(l.segs, seg)
	return seg, nil
}

func (l *Ledger) segIndex(seg *segment) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, s := range l.segs {
		if s == seg {
			return i
		}
	}
	return -1
}

// --- queries ---

// Filter selects entries. Zero fields match everything; From/To bound the
// virtual event time inclusively (To == 0 means unbounded above).
type Filter struct {
	Vid   string
	Kind  Kind
	Prop  string
	Trace string
	From  time.Duration
	To    time.Duration
	Limit int
}

func (f *Filter) match(e *Entry) bool {
	if f.Vid != "" && e.Vid != f.Vid {
		return false
	}
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	if f.Prop != "" && e.Prop != f.Prop {
		return false
	}
	if f.Trace != "" && e.Trace != f.Trace {
		return false
	}
	if e.At < f.From {
		return false
	}
	if f.To > 0 && e.At > f.To {
		return false
	}
	return true
}

// Query returns the committed entries matching f in chain order, using the
// smallest applicable posting list (by VM, kind, or property) as the
// candidate set.
func (l *Ledger) Query(f Filter) ([]Entry, error) {
	l.mu.Lock()
	var cands []uint64
	narrowed := false
	consider := func(key string) {
		p, ok := l.postings[key]
		if !narrowed || (ok && len(p) < len(cands)) {
			cands, narrowed = p, true
		}
		if !ok {
			cands = nil
		}
	}
	if f.Vid != "" {
		consider("v:" + f.Vid)
	}
	if f.Kind != "" {
		consider("k:" + string(f.Kind))
	}
	if f.Prop != "" {
		consider("p:" + f.Prop)
	}
	if f.Trace != "" {
		consider("t:" + f.Trace)
	}
	if !narrowed {
		cands = make([]uint64, 0, len(l.locs))
		for i := range l.locs {
			cands = append(cands, l.base.Seq+1+uint64(i))
		}
	} else {
		cands = append([]uint64(nil), cands...)
	}
	l.mu.Unlock()

	var out []Entry
	for _, seq := range cands {
		e, err := l.Entry(seq)
		if err != nil {
			return nil, err
		}
		if !f.match(&e) {
			continue
		}
		out = append(out, e)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out, nil
}

// Entry reads one committed entry by sequence number.
func (l *Ledger) Entry(seq uint64) (Entry, error) {
	l.mu.Lock()
	if seq <= l.base.Seq || seq > l.base.Seq+uint64(len(l.locs)) {
		l.mu.Unlock()
		return Entry{}, fmt.Errorf("ledger: no entry %d", seq)
	}
	lc := l.locs[seq-l.base.Seq-1]
	file := l.segs[lc.seg].file
	l.mu.Unlock()

	frame := make([]byte, lc.n)
	if _, err := io.ReadFull(io.NewSectionReader(file, lc.off, int64(len(frame))), frame); err != nil {
		return Entry{}, err
	}
	// The length prefix is part of the committed bytes: a mutated prefix is
	// framing corruption even though the hash only covers the fields.
	if binary.BigEndian.Uint32(frame[:frameHeader]) != uint32(lc.n-frameHeader) {
		return Entry{}, fmt.Errorf("ledger: entry %d frame length corrupted", seq)
	}
	return decodeFrame(frame[frameHeader:])
}

// --- verification ---

// Verify replays the whole retained chain from the compaction base,
// recomputing every entry hash and link, and checks the result against the
// in-memory head. It returns the number of entries verified. Any mutation
// of a committed byte — payload, metadata, or either hash — fails it.
func (l *Ledger) Verify() (int, error) {
	l.mu.Lock()
	base := l.base
	headSeq, headHash := l.headSeq, l.headHash
	l.mu.Unlock()

	prev := base.Hash
	n := 0
	for seq := base.Seq + 1; seq <= headSeq; seq++ {
		e, err := l.Entry(seq)
		if err != nil {
			return n, fmt.Errorf("ledger: verify at %d: %w", seq, err)
		}
		if e.Seq != seq {
			return n, fmt.Errorf("ledger: verify: entry %d records seq %d", seq, e.Seq)
		}
		if e.PrevHash != prev {
			return n, fmt.Errorf("ledger: verify: chain broken at %d", seq)
		}
		want := entryHash(prev, e.Seq, e.At, e.Kind, e.Vid, e.Prop, e.Trace, e.Payload)
		if e.Hash != want {
			return n, fmt.Errorf("ledger: verify: hash mismatch at %d", seq)
		}
		prev = e.Hash
		n++
	}
	if prev != headHash {
		return n, errors.New("ledger: verify: head hash mismatch")
	}
	return n, nil
}

// Checkpoint is a signed chain head: anchoring it out of band commits the
// operator to the entire history below it.
type Checkpoint struct {
	Seq    uint64
	Hash   [32]byte
	Signer string
	Sig    []byte
}

func checkpointBody(seq uint64, hash [32]byte, signer string) []byte {
	var seqB [8]byte
	binary.BigEndian.PutUint64(seqB[:], seq)
	sum := cryptoutil.Hash("ledger-checkpoint", seqB[:], hash[:], []byte(signer))
	return sum[:]
}

// Checkpoint signs the current chain head with signer's identity key.
func (l *Ledger) Checkpoint(signer *cryptoutil.Identity) Checkpoint {
	seq, hash := l.Head()
	return Checkpoint{
		Seq:    seq,
		Hash:   hash,
		Signer: signer.Name,
		Sig:    signer.Sign(checkpointBody(seq, hash, signer.Name)),
	}
}

// VerifyCheckpoint checks cp's signature under pub.
func VerifyCheckpoint(cp Checkpoint, pub []byte) error {
	return VerifyCheckpointWith(cp, pub, cryptoutil.Direct)
}

// VerifyCheckpointWith is VerifyCheckpoint with a pluggable Verifier, so
// an auditor replaying many anchored checkpoints can batch the signature
// checks.
func VerifyCheckpointWith(cp Checkpoint, pub []byte, v cryptoutil.Verifier) error {
	if !v.Verify(pub, checkpointBody(cp.Seq, cp.Hash, cp.Signer), cp.Sig) {
		return errors.New("ledger: checkpoint signature invalid")
	}
	return nil
}

// --- compaction ---

// Compact retires sealed segments whose entries all precede keepFrom,
// recording the chain state at the boundary in the snapshot file. Verify
// and queries afterwards cover seqs > the new base; the snapshot hash
// keeps the retained suffix anchored to the full history.
func (l *Ledger) Compact(keepFrom uint64) error {
	if l.opts.ReadOnly {
		return errors.New("ledger: read-only")
	}
	l.mu.Lock()
	for l.committing {
		l.cond.Wait()
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// A segment is removable if it is sealed (not the last) and every one
	// of its entries is below keepFrom (i.e. the next segment starts at or
	// below keepFrom).
	removable := 0
	for removable < len(l.segs)-1 && l.segs[removable+1].firstSeq <= keepFrom {
		removable++
	}
	if removable == 0 {
		l.mu.Unlock()
		return nil
	}
	boundary := l.segs[removable].firstSeq - 1 // last retired seq
	l.mu.Unlock()

	bEntry, err := l.Entry(boundary)
	if err != nil {
		return err
	}
	snap := snapshot{Seq: boundary, Hash: bEntry.Hash}
	if err := l.st.WriteAux(SnapshotFile, encodeSnapshot(snap)); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	retired := l.segs[:removable]
	l.segs = append([]*segment(nil), l.segs[removable:]...)
	drop := int(boundary - l.base.Seq)
	l.locs = append([]loc(nil), l.locs[drop:]...)
	for i := range l.locs {
		l.locs[i].seg -= removable
	}
	for key, seqs := range l.postings {
		kept := seqs[:0]
		for _, s := range seqs {
			if s > boundary {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(l.postings, key)
		} else {
			l.postings[key] = kept
		}
	}
	l.base = snap
	for _, seg := range retired {
		seg.file.Close()
		if err := l.st.Remove(seg.name); err != nil {
			return err
		}
	}
	return nil
}

// Close waits for in-flight commits and releases the segment files.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.committing {
		l.cond.Wait()
	}
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	for _, seg := range l.segs {
		if err := seg.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- auditing ---

// AuditResult summarizes an independent chain replay.
type AuditResult struct {
	BaseSeq  uint64
	HeadSeq  uint64
	HeadHash [32]byte
	Entries  int
}

// Audit opens the on-disk ledger at dir read-only and replays its chain
// from the snapshot base, failing on any broken link, mutated entry, or
// torn tail. It is the auditor's entry point (cmd/monatt-ledger verify):
// it shares no state with the writing process.
func Audit(dir string) (AuditResult, error) {
	l, err := Open(Options{Dir: dir, ReadOnly: true})
	if err != nil {
		return AuditResult{}, err
	}
	defer l.Close()
	n, err := l.Verify()
	if err != nil {
		return AuditResult{}, err
	}
	seq, hash := l.Head()
	return AuditResult{BaseSeq: l.base.Seq, HeadSeq: seq, HeadHash: hash, Entries: n}, nil
}
