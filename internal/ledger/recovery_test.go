package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fillLedger writes n entries to a fresh on-disk ledger and returns the
// directory and the committed entries.
func fillLedger(t *testing.T, n int, segBytes int64) (string, []Entry) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ledger")
	l, err := Open(Options{Dir: dir, MaxSegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := l.Append(Entry{
			At:      time.Duration(i) * time.Millisecond,
			Kind:    KindAppraisal,
			Vid:     fmt.Sprintf("vm-%04d", i),
			Prop:    "runtime-integrity",
			Payload: []byte(fmt.Sprintf(`{"seq":%d}`, i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, entries
}

func lastSegment(t *testing.T, dir string) (string, int64) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, e := range ents {
		if isSegName(e.Name()) {
			name = e.Name() // sorted ascending: keep the last
		}
	}
	if name == "" {
		t.Fatal("no segments on disk")
	}
	st, err := os.Stat(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, name), st.Size()
}

// TestRecoveryTruncatesTornTail simulates a kill during append: the last
// frame is half-written. Reopening must keep the longest valid prefix and
// the chain must verify.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	const n = 12
	dir, entries := fillLedger(t, n, 1<<20)
	seg, size := lastSegment(t, dir)

	// Tear the tail: chop off the second half of the final frame.
	lastFrame := int64(frameHeader + frameSize(&entries[n-1]))
	if err := os.Truncate(seg, size-lastFrame/2); err != nil {
		t.Fatal(err)
	}

	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, hash := l.Head()
	if seq != n-1 || hash != entries[n-2].Hash {
		t.Fatalf("recovered head %d, want %d", seq, n-1)
	}
	if got, err := l.Verify(); err != nil || got != n-1 {
		t.Fatalf("post-recovery Verify = %d, %v", got, err)
	}
	// The ledger accepts appends again and they chain from the kept prefix.
	e, err := l.Append(Entry{Kind: KindRemediation, Vid: "vm-new"})
	if err != nil || e.Seq != n || e.PrevHash != entries[n-2].Hash {
		t.Fatalf("post-recovery append %+v, %v", e, err)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryCorruptTailByte corrupts a byte inside the final frame (not
// a clean truncation). Recovery must still cut back to the longest valid
// prefix.
func TestRecoveryCorruptTailByte(t *testing.T) {
	const n = 8
	dir, entries := fillLedger(t, n, 1<<20)
	seg, size := lastSegment(t, dir)

	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the last frame's fields.
	lastFrame := int64(frameHeader + frameSize(&entries[n-1]))
	off := size - lastFrame + frameHeader + 20
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if seq, _ := l.Head(); seq != n-1 {
		t.Fatalf("recovered head %d, want %d", seq, n-1)
	}
	if got, err := l.Verify(); err != nil || got != n-1 {
		t.Fatalf("post-recovery Verify = %d, %v", got, err)
	}
}

// TestRecoveryMidChainCorruptionDropsSuffix corrupts an entry in a sealed
// (non-final) segment: everything after it can no longer chain, so
// recovery keeps only the prefix before the corruption and removes the
// unverifiable later segments.
func TestRecoveryMidChainCorruptionDropsSuffix(t *testing.T) {
	const n = 30
	dir, _ := fillLedger(t, n, 256) // tiny segments: several rolls
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if isSegName(e.Name()) {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %v", segs)
	}
	// Corrupt the first byte of the second segment's first frame body.
	target := filepath.Join(dir, segs[1])
	f, err := os.OpenFile(target, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], frameHeader); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], frameHeader); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, _ := l.Head()
	if seq == 0 || seq >= n {
		t.Fatalf("recovered head %d, want a proper prefix of %d", seq, n)
	}
	if got, err := l.Verify(); err != nil || got != int(seq) {
		t.Fatalf("post-recovery Verify = %d, %v (head %d)", got, err, seq)
	}
	// The corrupt and later segments are gone from disk.
	left, _ := os.ReadDir(dir)
	for _, e := range left {
		if e.Name() == segs[1] || e.Name() == segs[2] {
			t.Fatalf("unverifiable segment %s still present", e.Name())
		}
	}
}

// TestAuditRejectsTornLedger: the read-only auditor must refuse a torn
// tail rather than silently repairing it.
func TestAuditRejectsTornLedger(t *testing.T) {
	dir, _ := fillLedger(t, 6, 1<<20)
	seg, size := lastSegment(t, dir)
	if err := os.Truncate(seg, size-10); err != nil {
		t.Fatal(err)
	}
	if _, err := Audit(dir); err == nil {
		t.Fatal("audit accepted a torn ledger")
	}
	// A writing reopen repairs it; the auditor is then satisfied.
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if res, err := Audit(dir); err != nil || res.HeadSeq != 5 {
		t.Fatalf("audit after repair = %+v, %v", res, err)
	}
}
