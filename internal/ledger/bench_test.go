package ledger

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// BenchmarkLedgerAppend measures group-commit throughput under parallel
// appenders. More concurrent appenders means larger amortized batches per
// flush; the mean observed batch size is reported alongside ns/op so
// future PRs can track how well the committer coalesces load.
func BenchmarkLedgerAppend(b *testing.B) {
	payload := make([]byte, 256)
	for _, appenders := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("appenders=%d", appenders), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), MaxSegmentBytes: 64 << 20, NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / appenders
			if per == 0 {
				per = 1
			}
			for g := 0; g < appenders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					vid := fmt.Sprintf("vm-%04d", g)
					for i := 0; i < per; i++ {
						if _, err := l.Append(Entry{Kind: KindAppraisal, Vid: vid, Prop: "runtime-integrity", Payload: payload}); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(l.Metrics().IntSummary("ledger/batch-size").Mean(), "entries/flush")
			if _, err := l.Verify(); err != nil {
				b.Fatal(err)
			}
		})
	}
	_ = runtime.NumCPU()
}

// BenchmarkLedgerAppendFsync is the durable variant: every flush fsyncs,
// so batch amortization is what keeps throughput up.
func BenchmarkLedgerAppendFsync(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), MaxSegmentBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(Entry{Kind: KindAppraisal, Vid: "vm-0001", Payload: []byte("x")}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(l.Metrics().IntSummary("ledger/batch-size").Mean(), "entries/flush")
}

// BenchmarkLedgerVerify measures full-chain replay cost.
func BenchmarkLedgerVerify(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 2048; i++ {
		if _, err := l.Append(Entry{Kind: KindAppraisal, Vid: "vm-0001", Payload: []byte("payload")}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
