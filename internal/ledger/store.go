package ledger

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// store abstracts where segment files live. dirStore persists them on disk
// with real fsync (production/auditing); memStore keeps them in process
// (hermetic tests and the default in-process testbed). Both present the
// same byte-exact segment format, so every recovery and verification path
// is exercised identically against either backing.
type store interface {
	// Segments lists segment names in ascending order.
	Segments() ([]string, error)
	// Open opens an existing segment.
	Open(name string) (segFile, error)
	// Create creates a new empty segment.
	Create(name string) (segFile, error)
	// Remove deletes a segment (compaction).
	Remove(name string) error
	// ReadAux reads an auxiliary file (the snapshot); ok=false if absent.
	ReadAux(name string) (data []byte, ok bool, err error)
	// WriteAux atomically replaces an auxiliary file.
	WriteAux(name string, data []byte) error
}

// segFile is one append-only segment. Writes go at the end; reads are
// random-access so queries never disturb the writer.
type segFile interface {
	io.ReaderAt
	io.Writer
	Size() (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

const (
	segPrefix = "seg-"
	segSuffix = ".log"
)

// segName formats the segment holding entries from firstSeq.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func isSegName(name string) bool {
	return strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix)
}

// --- disk-backed store ---

type dirStore struct {
	dir      string
	readOnly bool
}

func newDirStore(dir string, readOnly bool) (*dirStore, error) {
	if !readOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("ledger: creating %s: %w", dir, err)
		}
	}
	return &dirStore{dir: dir, readOnly: readOnly}, nil
}

func (d *dirStore) Segments() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		if os.IsNotExist(err) && d.readOnly {
			return nil, fmt.Errorf("ledger: no ledger at %s", d.dir)
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && isSegName(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func (d *dirStore) Open(name string) (segFile, error) {
	flag := os.O_RDWR
	if d.readOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(filepath.Join(d.dir, name), flag, 0o644)
	if err != nil {
		return nil, err
	}
	return &osSeg{f: f, readOnly: d.readOnly}, nil
}

func (d *dirStore) Create(name string) (segFile, error) {
	if d.readOnly {
		return nil, fmt.Errorf("ledger: store is read-only")
	}
	f, err := os.OpenFile(filepath.Join(d.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &osSeg{f: f}, nil
}

func (d *dirStore) Remove(name string) error {
	if d.readOnly {
		return fmt.Errorf("ledger: store is read-only")
	}
	return os.Remove(filepath.Join(d.dir, name))
}

func (d *dirStore) ReadAux(name string) ([]byte, bool, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, name))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (d *dirStore) WriteAux(name string, data []byte) error {
	if d.readOnly {
		return fmt.Errorf("ledger: store is read-only")
	}
	tmp := filepath.Join(d.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(d.dir, name))
}

// osSeg adapts *os.File. The write offset is tracked explicitly so appends
// and ReadAt never race over the file position.
type osSeg struct {
	mu       sync.Mutex
	f        *os.File
	readOnly bool
	size     int64
	sized    bool
}

func (s *osSeg) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }

func (s *osSeg) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sized {
		st, err := s.f.Stat()
		if err != nil {
			return 0, err
		}
		s.size, s.sized = st.Size(), true
	}
	n, err := s.f.WriteAt(p, s.size)
	s.size += int64(n)
	return n, err
}

func (s *osSeg) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sized {
		return s.size, nil
	}
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	s.size, s.sized = st.Size(), true
	return s.size, nil
}

func (s *osSeg) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Truncate(size); err != nil {
		return err
	}
	s.size, s.sized = size, true
	return nil
}

func (s *osSeg) Sync() error  { return s.f.Sync() }
func (s *osSeg) Close() error { return s.f.Close() }

// --- in-memory store ---

// memStore keeps segments as byte slices. It backs the default testbed
// (no LedgerDir configured) and lets crash tests corrupt bytes directly.
type memStore struct {
	mu    sync.Mutex
	files map[string]*memSeg
	aux   map[string][]byte
}

func newMemStore() *memStore {
	return &memStore{files: make(map[string]*memSeg), aux: make(map[string][]byte)}
}

func (m *memStore) Segments() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name := range m.files {
		if isSegName(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (m *memStore) Open(name string) (segFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("ledger: no segment %q", name)
	}
	return s, nil
}

func (m *memStore) Create(name string) (segFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		return nil, fmt.Errorf("ledger: segment %q exists", name)
	}
	s := &memSeg{}
	m.files[name] = s
	return s, nil
}

func (m *memStore) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *memStore) ReadAux(name string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.aux[name]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

func (m *memStore) WriteAux(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.aux[name] = append([]byte(nil), data...)
	return nil
}

type memSeg struct {
	mu  sync.Mutex
	buf []byte
}

func (s *memSeg) ReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= int64(len(s.buf)) {
		return 0, io.EOF
	}
	n := copy(p, s.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (s *memSeg) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, p...)
	return len(p), nil
}

func (s *memSeg) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.buf)), nil
}

func (s *memSeg) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < 0 || size > int64(len(s.buf)) {
		return fmt.Errorf("ledger: bad truncate size %d", size)
	}
	s.buf = s.buf[:size]
	return nil
}

func (s *memSeg) Sync() error  { return nil }
func (s *memSeg) Close() error { return nil }
