package ledger

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cloudmonatt/internal/cryptoutil"
)

func mustOpen(t *testing.T, opts Options) *Ledger {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Ledger, n int) []Entry {
	t.Helper()
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := l.Append(Entry{
			At:      time.Duration(i) * time.Second,
			Kind:    KindAppraisal,
			Vid:     fmt.Sprintf("vm-%04d", i%3),
			Prop:    "runtime-integrity",
			Payload: []byte(fmt.Sprintf(`{"i":%d}`, i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestAppendChainsAndVerifies(t *testing.T) {
	l := mustOpen(t, Options{})
	entries := appendN(t, l, 10)
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d got seq %d", i, e.Seq)
		}
		if i > 0 && e.PrevHash != entries[i-1].Hash {
			t.Fatalf("entry %d does not chain", i)
		}
	}
	n, err := l.Verify()
	if err != nil || n != 10 {
		t.Fatalf("Verify = %d, %v", n, err)
	}
	seq, hash := l.Head()
	if seq != 10 || hash != entries[9].Hash {
		t.Fatalf("head = %d %x", seq, hash)
	}
}

func TestAppendValidation(t *testing.T) {
	l := mustOpen(t, Options{})
	if _, err := l.Append(Entry{}); err == nil {
		t.Fatal("entry without kind accepted")
	}
	if _, err := l.Append(Entry{Kind: KindLaunch, Payload: make([]byte, maxPayload+1)}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestQueryByVidKindPropTime(t *testing.T) {
	l := mustOpen(t, Options{})
	appendN(t, l, 9) // vids vm-0000..vm-0002 round robin
	if _, err := l.Append(Entry{At: 100 * time.Second, Kind: KindRemediation, Vid: "vm-0001", Prop: "cpu-availability"}); err != nil {
		t.Fatal(err)
	}

	byVid, err := l.Query(Filter{Vid: "vm-0001"})
	if err != nil || len(byVid) != 4 {
		t.Fatalf("by vid: %d entries, %v", len(byVid), err)
	}
	byKind, err := l.Query(Filter{Kind: KindRemediation})
	if err != nil || len(byKind) != 1 || byKind[0].Vid != "vm-0001" {
		t.Fatalf("by kind: %+v, %v", byKind, err)
	}
	byProp, err := l.Query(Filter{Prop: "cpu-availability"})
	if err != nil || len(byProp) != 1 {
		t.Fatalf("by prop: %d entries, %v", len(byProp), err)
	}
	// Combined narrowing: vid + kind.
	combined, err := l.Query(Filter{Vid: "vm-0001", Kind: KindAppraisal})
	if err != nil || len(combined) != 3 {
		t.Fatalf("combined: %d entries, %v", len(combined), err)
	}
	// Time range over the appraisals (At = 0s..8s).
	ranged, err := l.Query(Filter{From: 2 * time.Second, To: 4 * time.Second})
	if err != nil || len(ranged) != 3 {
		t.Fatalf("ranged: %d entries, %v", len(ranged), err)
	}
	limited, err := l.Query(Filter{Kind: KindAppraisal, Limit: 2})
	if err != nil || len(limited) != 2 {
		t.Fatalf("limited: %d entries, %v", len(limited), err)
	}
	none, err := l.Query(Filter{Vid: "ghost"})
	if err != nil || len(none) != 0 {
		t.Fatalf("ghost vid matched: %+v", none)
	}
}

func TestConcurrentAppendersGroupCommit(t *testing.T) {
	l := mustOpen(t, Options{})
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := l.Append(Entry{Kind: KindAppraisal, Vid: fmt.Sprintf("vm-%d", g)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := l.Verify(); err != nil || n != goroutines*perG {
		t.Fatalf("Verify = %d, %v", n, err)
	}
	if got := l.Metrics().IntSummary("ledger/batch-size").Count(); got == 0 {
		t.Fatal("no batch-size observations recorded")
	}
	if got := l.Metrics().Summary("ledger/append").Count(); got != goroutines*perG {
		t.Fatalf("append summary count = %d", got)
	}
}

func TestSingleBitMutationDetected(t *testing.T) {
	// Flip one bit at every byte offset of a committed chain in turn; every
	// single mutation must fail Verify.
	base := mustOpen(t, Options{})
	appendN(t, base, 5)
	ms := base.st.(*memStore)
	names, _ := ms.Segments()
	if len(names) != 1 {
		t.Fatalf("segments: %v", names)
	}
	seg := ms.files[names[0]]
	size := len(seg.buf)
	for off := 0; off < size; off++ {
		seg.buf[off] ^= 0x01
		if _, err := base.Verify(); err == nil {
			t.Fatalf("bit flip at offset %d/%d not detected", off, size)
		}
		seg.buf[off] ^= 0x01
	}
	if n, err := base.Verify(); err != nil || n != 5 {
		t.Fatalf("restored chain fails: %d, %v", n, err)
	}
}

func TestSignedCheckpoint(t *testing.T) {
	l := mustOpen(t, Options{})
	appendN(t, l, 3)
	id := cryptoutil.MustIdentity("auditor-anchor")
	cp := l.Checkpoint(id)
	if cp.Seq != 3 {
		t.Fatalf("checkpoint seq %d", cp.Seq)
	}
	if err := VerifyCheckpoint(cp, id.Public()); err != nil {
		t.Fatal(err)
	}
	forged := cp
	forged.Seq++
	if err := VerifyCheckpoint(forged, id.Public()); err == nil {
		t.Fatal("forged checkpoint accepted")
	}
	other := cryptoutil.MustIdentity("impostor")
	if err := VerifyCheckpoint(cp, other.Public()); err == nil {
		t.Fatal("checkpoint verified under wrong key")
	}
}

func TestSegmentRollAndCompaction(t *testing.T) {
	// Tiny segments force rolls; compaction must retire sealed segments,
	// keep queries over the suffix working, and keep Verify green.
	l := mustOpen(t, Options{MaxSegmentBytes: 256})
	appendN(t, l, 30)
	segsBefore, _ := l.st.Segments()
	if len(segsBefore) < 3 {
		t.Fatalf("expected multiple segments, got %v", segsBefore)
	}
	if err := l.Compact(20); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := l.st.Segments()
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("compaction removed nothing: %v -> %v", segsBefore, segsAfter)
	}
	if n, err := l.Verify(); err != nil || n == 0 || n > 30 {
		t.Fatalf("post-compaction Verify = %d, %v", n, err)
	}
	// The suffix stays queryable and new appends still chain.
	es, err := l.Query(Filter{Vid: "vm-0000"})
	if err != nil || len(es) == 0 {
		t.Fatalf("post-compaction query: %d, %v", len(es), err)
	}
	for _, e := range es {
		if e.Seq <= l.base.Seq {
			t.Fatalf("query returned retired seq %d (base %d)", e.Seq, l.base.Seq)
		}
	}
	if _, err := l.Append(Entry{Kind: KindLaunch, Vid: "vm-9999"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskReopenPreservesChain(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	l := mustOpen(t, Options{Dir: dir, MaxSegmentBytes: 512})
	entries := appendN(t, l, 20)
	headSeq, headHash := l.Head()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, MaxSegmentBytes: 512})
	seq, hash := re.Head()
	if seq != headSeq || hash != headHash {
		t.Fatalf("reopen head = %d, want %d", seq, headSeq)
	}
	if n, err := re.Verify(); err != nil || n != 20 {
		t.Fatalf("reopen Verify = %d, %v", n, err)
	}
	got, err := re.Entry(entries[7].Seq)
	if err != nil || got.Vid != entries[7].Vid || string(got.Payload) != string(entries[7].Payload) {
		t.Fatalf("reopen Entry(8) = %+v, %v", got, err)
	}
	// Appends continue the chain across the restart.
	e, err := re.Append(Entry{Kind: KindRemediation, Vid: "vm-0001"})
	if err != nil || e.Seq != headSeq+1 || e.PrevHash != headHash {
		t.Fatalf("post-reopen append %+v, %v", e, err)
	}

	// Audit replays the same chain independently.
	res, err := Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeadSeq != headSeq+1 || res.Entries != 21 {
		t.Fatalf("audit = %+v", res)
	}
}

func TestReadOnlyRejectsMutation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	l := mustOpen(t, Options{Dir: dir})
	appendN(t, l, 2)
	l.Close()

	ro := mustOpen(t, Options{Dir: dir, ReadOnly: true})
	if _, err := ro.Append(Entry{Kind: KindLaunch}); err == nil {
		t.Fatal("read-only append accepted")
	}
	if err := ro.Compact(2); err == nil {
		t.Fatal("read-only compact accepted")
	}
	if n, err := ro.Verify(); err != nil || n != 2 {
		t.Fatalf("read-only Verify = %d, %v", n, err)
	}
}

func TestClosedLedgerRejectsAppends(t *testing.T) {
	l := mustOpen(t, Options{})
	appendN(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Kind: KindLaunch}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
}
