// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives the Xen-like hypervisor model (internal/xen) and the
// modeled-latency cloud pipeline (internal/cloudsim). Time is virtual: an
// event loop pops timestamped events from a priority queue and advances the
// clock to each event's due time, so simulated minutes execute in real
// microseconds and every run is reproducible from its RNG seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time measured as a duration since the start of
// the simulation. It deliberately reuses time.Duration so call sites can use
// the familiar literals (30*time.Millisecond etc.).
type Time = time.Duration

// Event is a scheduled callback. Fire runs when the simulation clock reaches
// the event's due time.
type Event struct {
	due  Time
	seq  uint64 // tie-break: FIFO among events with equal due time
	fire func()

	index     int // heap index; -1 when not queued
	cancelled bool
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Due returns the virtual time at which the event is scheduled to fire.
func (e *Event) Due() Time { return e.due }

// eventQueue is a min-heap ordered by (due, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].due != q[j].due {
		return q[i].due < q[j].due
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewKernel returns a kernel whose random source is seeded deterministically.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source. All stochastic
// model decisions must draw from this source so runs replay identically.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far (useful in tests and
// as a progress/liveness measure).
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events currently queued (including
// cancelled events that have not yet been popped).
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fire to run at absolute virtual time due. Scheduling in the
// past (before Now) panics: it indicates a model bug, not a runtime
// condition a caller could handle.
func (k *Kernel) At(due Time, fire func()) *Event {
	if due < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", due, k.now))
	}
	e := &Event{due: due, seq: k.seq, fire: fire, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fire to run delay after the current time.
func (k *Kernel) After(delay Time, fire func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.At(k.now+delay, fire)
}

// Halt stops the currently executing Run/RunUntil after the in-flight event
// completes. Pending events remain queued.
func (k *Kernel) Halt() { k.halted = true }

// Step executes the single earliest pending non-cancelled event and returns
// true, or returns false if the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancelled {
			continue
		}
		k.now = e.due
		k.fired++
		e.fire()
		return true
	}
	return false
}

// RunUntil executes events in timestamp order until the queue is exhausted
// or the next event is due strictly after deadline. The clock is left at
// min(deadline, last event time ≥ previous now): after RunUntil returns,
// Now() == deadline when the simulation reached it.
func (k *Kernel) RunUntil(deadline Time) {
	k.halted = false
	for !k.halted {
		// Skip cancelled events without advancing time.
		for len(k.queue) > 0 && k.queue[0].cancelled {
			heap.Pop(&k.queue)
		}
		if len(k.queue) == 0 || k.queue[0].due > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Run executes events until the queue is empty or Halt is called.
func (k *Kernel) Run() {
	k.halted = false
	for !k.halted && k.Step() {
	}
}
