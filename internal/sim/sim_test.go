package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyKernel(t *testing.T) {
	k := NewKernel(1)
	if k.Step() {
		t.Fatal("Step on empty kernel should return false")
	}
	if k.Now() != 0 {
		t.Fatalf("Now = %v, want 0", k.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(30*time.Millisecond, func() { got = append(got, 3) })
	k.At(10*time.Millisecond, func() { got = append(got, 1) })
	k.At(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.At(5*time.Millisecond, func() {
		k.After(7*time.Millisecond, func() { at = k.Now() })
	})
	k.Run()
	if at != 12*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 12ms", at)
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.At(time.Millisecond, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	e.Cancel() // double cancel is a no-op
}

func TestCancelFromEarlierEvent(t *testing.T) {
	k := NewKernel(1)
	fired := false
	later := k.At(10*time.Millisecond, func() { fired = true })
	k.At(5*time.Millisecond, func() { later.Cancel() })
	k.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, d := range []Time{time.Millisecond, 5 * time.Millisecond, 50 * time.Millisecond} {
		d := d
		k.At(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(10 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want deadline 10ms", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	// Continue to the remaining event.
	k.RunUntil(time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second RunUntil, want 3", len(fired))
	}
	if k.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", k.Now())
	}
}

func TestRunUntilEventExactlyAtDeadline(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.At(10*time.Millisecond, func() { fired = true })
	k.RunUntil(10 * time.Millisecond)
	if !fired {
		t.Fatal("event due exactly at deadline did not fire")
	}
}

func TestHalt(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.At(1*time.Millisecond, func() { count++; k.Halt() })
	k.At(2*time.Millisecond, func() { count++ })
	k.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (halted after first event)", count)
	}
	k.Run() // resume
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5*time.Millisecond, func() {})
	})
	k.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewKernel(1).After(-time.Millisecond, func() {})
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewKernel(42), NewKernel(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed kernels diverged")
		}
	}
}

func TestFiredCount(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 25; i++ {
		k.After(Time(i)*time.Millisecond, func() {})
	}
	k.Run()
	if k.Fired() != 25 {
		t.Fatalf("Fired = %d, want 25", k.Fired())
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestQuickEventOrderProperty(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		if len(delaysMS) == 0 {
			return true
		}
		k := NewKernel(7)
		var seen []Time
		var max Time
		for _, d := range delaysMS {
			due := Time(d) * time.Millisecond
			if due > max {
				max = due
			}
			k.At(due, func() { seen = append(seen, k.Now()) })
		}
		k.Run()
		if len(seen) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to fire.
func TestQuickCancelSubsetProperty(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%40) + 1
		k := NewKernel(3)
		fired := make([]bool, count)
		events := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			events[i] = k.At(Time(i)*time.Millisecond, func() { fired[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i%64)) != 0 {
				events[i].Cancel()
			}
		}
		k.Run()
		for i := 0; i < count; i++ {
			cancelled := mask&(1<<uint(i%64)) != 0
			if fired[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelThroughput(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Millisecond, func() {})
		k.Step()
	}
}
