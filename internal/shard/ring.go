// Package shard implements the consistent-hash ring that spreads the
// attestation plane across N Attestation Servers. The paper pins each
// cloud server cluster to one Attestation Server (§3.2.3); at fleet scale
// that static split rebalances badly — adding a server re-shards
// everything. The ring instead hashes the *VM id* onto a circle of virtual
// nodes, so ownership follows the VM (not its host), Join/Leave moves only
// ~K/N of the assignments, and the epoch number lets in-flight requests
// detect that they were routed under a stale membership view (cf. the
// scalable-attestation architecture of arXiv:2304.00382).
package shard

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"cloudmonatt/internal/cryptoutil"
)

// DefaultVirtualNodes is the per-node vnode count when NewRing gets 0.
// 160 points per node keeps the per-node load imbalance (which shrinks as
// 1/sqrt(vnodes)) under ~10%, so the remap-bound property test can use a
// tight epsilon without flaking across seeds.
const DefaultVirtualNodes = 160

// point is one virtual node on the circle.
type point struct {
	hash uint64
	node string
}

// Ring is a seeded consistent-hash ring with virtual nodes. Placement is
// fully deterministic in (seed, membership): two rings built with the same
// seed and the same Join sequence agree on every lookup, which is how the
// controller and the Attestation Servers share a routing view without a
// coordination service. Safe for concurrent use.
type Ring struct {
	seed   int64
	vnodes int

	mu     sync.RWMutex
	epoch  uint64
	nodes  map[string]bool
	points []point // sorted by hash
}

// NewRing creates an empty ring. vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(seed int64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{seed: seed, vnodes: vnodes, nodes: make(map[string]bool)}
}

// hash64 derives a circle position from the ring's seed and the given
// fields, via the domain-separated SHA-256 the rest of the repo uses.
// Cryptographic hashing is deliberate: vnode placement must look uniform
// even for adversarially similar node names ("shard-1" vs "shard-2").
func (r *Ring) hash64(domain string, fields ...[]byte) uint64 {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(r.seed))
	h := cryptoutil.Hash(domain, append([][]byte{seed[:]}, fields...)...)
	return binary.BigEndian.Uint64(h[:8])
}

// Join adds a node and its virtual nodes to the ring, bumping the epoch.
// Joining a present node is a no-op (the epoch does not move). Returns the
// resulting epoch.
func (r *Ring) Join(node string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return r.epoch
	}
	r.nodes[node] = true
	var idx [8]byte
	for i := 0; i < r.vnodes; i++ {
		binary.BigEndian.PutUint64(idx[:], uint64(i))
		r.points = append(r.points, point{hash: r.hash64("shard-vnode", []byte(node), idx[:]), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.epoch++
	return r.epoch
}

// Leave removes a node and its virtual nodes, bumping the epoch. Removing
// an absent node is a no-op. Returns the resulting epoch.
func (r *Ring) Leave(node string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return r.epoch
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.epoch++
	return r.epoch
}

// Lookup returns the node owning key under the current membership, and the
// epoch that view belongs to. ok is false on an empty ring.
func (r *Ring) Lookup(key string) (node string, epoch uint64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", r.epoch, false
	}
	h := r.hash64("shard-key", []byte(key))
	// First vnode clockwise of the key's position, wrapping at the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, r.epoch, true
}

// Owns reports whether node owns key under the current membership. An
// empty ring owns nothing.
func (r *Ring) Owns(node, key string) bool {
	owner, _, ok := r.Lookup(key)
	return ok && owner == node
}

// Epoch returns the membership epoch: it increments on every effective
// Join or Leave, so a request stamped with an older epoch was routed under
// a view that no longer holds.
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Clone returns an independent ring frozen at the receiver's current
// membership and epoch. Tests use a clone as a deliberately stale routing
// view: mutate the original and the clone keeps answering with the old
// placement, which is exactly what a distributed client sees mid-rebalance.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{seed: r.seed, vnodes: r.vnodes, epoch: r.epoch, nodes: make(map[string]bool, len(r.nodes))}
	for n := range r.nodes {
		c.nodes[n] = true
	}
	c.points = append([]point(nil), r.points...)
	return c
}

func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("shard.Ring{nodes=%d vnodes=%d epoch=%d}", len(r.nodes), r.vnodes, r.epoch)
}
