package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// WrongShardError is returned by an Attestation Server when it receives a
// request for a VM the ring no longer (or never) assigned to it. It names
// the owner under the responder's current view plus that view's epoch, so
// a client routed under a stale ring can re-resolve and retry directly
// against the named owner without refreshing its whole view first.
//
// The error crosses the RPC boundary as a handler refusal (rpc.RemoteError),
// which the safe-retry taxonomy deliberately never retries at the transport
// layer: re-sending the same bytes to the same shard cannot succeed. The
// redirect is a routing decision and lives in the controller.
type WrongShardError struct {
	Key   string // the VM id that was misrouted
	Owner string // owning node under the responder's view ("" if unknown)
	Epoch uint64 // responder's ring epoch
}

// wrongShardMarker starts the machine-parseable tail of Error(). It must
// survive fmt wrapping and the RemoteError round-trip, so ParseWrongShard
// scans for the marker anywhere in the string.
const wrongShardMarker = "wrong-shard "

func (e *WrongShardError) Error() string {
	return fmt.Sprintf("shard: %skey=%s owner=%s epoch=%d", wrongShardMarker, e.Key, e.Owner, e.Epoch)
}

// ParseWrongShard recovers a WrongShardError from an error string that
// crossed the wire (e.g. rpc.RemoteError.Msg). Returns false if the string
// does not carry the wrong-shard marker or the fields don't parse.
func ParseWrongShard(msg string) (*WrongShardError, bool) {
	i := strings.Index(msg, wrongShardMarker)
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len(wrongShardMarker):]
	fields := strings.Fields(rest)
	e := &WrongShardError{}
	seen := 0
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "key":
			e.Key = v
			seen++
		case "owner":
			e.Owner = v
			seen++
		case "epoch":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, false
			}
			e.Epoch = n
			seen++
		}
	}
	if seen < 3 {
		return nil, false
	}
	return e, true
}
