package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("vm-%04d", i)
	}
	return out
}

func assignments(r *Ring, ks []string) map[string]string {
	out := make(map[string]string, len(ks))
	for _, k := range ks {
		n, _, ok := r.Lookup(k)
		if !ok {
			continue
		}
		out[k] = n
	}
	return out
}

// TestRingRemapBound is the consistency property that justifies the ring:
// adding or removing one node out of N moves only ~K/N keys, not a full
// reshuffle. With 160 vnodes the expected imbalance is small, so a 1.5x
// slack over the ideal K/N bound is generous enough to hold across seeds.
func TestRingRemapBound(t *testing.T) {
	const K = 4000
	ks := keys(K)
	for _, seed := range []int64{1, 7, 42, 1234} {
		for _, n := range []int{2, 4, 8} {
			r := NewRing(seed, 0)
			for i := 0; i < n; i++ {
				r.Join(fmt.Sprintf("shard-%d", i))
			}
			before := assignments(r, ks)

			// Join: keys may move only onto the new node.
			r.Join("shard-new")
			after := assignments(r, ks)
			moved := 0
			for k, owner := range after {
				if owner != before[k] {
					moved++
					if owner != "shard-new" {
						t.Fatalf("seed=%d n=%d: key %s moved %s->%s on join of shard-new", seed, n, k, before[k], owner)
					}
				}
			}
			bound := int(float64(K) / float64(n+1) * 1.5)
			if moved > bound {
				t.Errorf("seed=%d n=%d join: moved %d keys, bound %d", seed, n, moved, bound)
			}
			if moved == 0 {
				t.Errorf("seed=%d n=%d join: no keys moved to the new node", seed, n)
			}

			// Leave: exactly the departed node's keys move, nothing else.
			r.Leave("shard-new")
			restored := assignments(r, ks)
			for k, owner := range restored {
				if owner != before[k] {
					t.Fatalf("seed=%d n=%d: key %s at %s after leave, was %s before join", seed, n, k, owner, before[k])
				}
			}
		}
	}
}

// TestRingDeterministic: same seed + same membership (even via a different
// join order) => identical lookups. Different seed => a different placement.
func TestRingDeterministic(t *testing.T) {
	ks := keys(512)
	a := NewRing(99, 0)
	b := NewRing(99, 0)
	for _, n := range []string{"s0", "s1", "s2", "s3"} {
		a.Join(n)
	}
	for _, n := range []string{"s3", "s1", "s0", "s2"} {
		b.Join(n)
	}
	for _, k := range ks {
		an, _, _ := a.Lookup(k)
		bn, _, _ := b.Lookup(k)
		if an != bn {
			t.Fatalf("key %s: ring a says %s, ring b says %s", k, an, bn)
		}
	}
	c := NewRing(100, 0)
	for _, n := range []string{"s0", "s1", "s2", "s3"} {
		c.Join(n)
	}
	diff := 0
	for _, k := range ks {
		an, _, _ := a.Lookup(k)
		cn, _, _ := c.Lookup(k)
		if an != cn {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical placement for all 512 keys")
	}
}

func TestRingBalance(t *testing.T) {
	const K = 8000
	r := NewRing(5, 0)
	for i := 0; i < 4; i++ {
		r.Join(fmt.Sprintf("s%d", i))
	}
	load := make(map[string]int)
	for _, k := range keys(K) {
		n, _, _ := r.Lookup(k)
		load[n]++
	}
	ideal := K / 4
	for n, c := range load {
		if c < ideal/2 || c > ideal*2 {
			t.Errorf("node %s owns %d keys, ideal %d (load badly skewed)", n, c, ideal)
		}
	}
}

func TestRingEpochAndMembership(t *testing.T) {
	r := NewRing(1, 8)
	if _, _, ok := r.Lookup("vm-1"); ok {
		t.Fatal("empty ring claimed to own a key")
	}
	if e := r.Join("a"); e != 1 {
		t.Fatalf("epoch after first join = %d, want 1", e)
	}
	if e := r.Join("a"); e != 1 {
		t.Fatalf("duplicate join bumped epoch to %d", e)
	}
	if e := r.Join("b"); e != 2 {
		t.Fatalf("epoch after second join = %d, want 2", e)
	}
	if e := r.Leave("missing"); e != 2 {
		t.Fatalf("leave of absent node bumped epoch to %d", e)
	}
	if e := r.Leave("a"); e != 3 {
		t.Fatalf("epoch after leave = %d, want 3", e)
	}
	if got := r.Nodes(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Nodes() = %v, want [b]", got)
	}
	n, e, ok := r.Lookup("vm-1")
	if !ok || n != "b" || e != 3 {
		t.Fatalf("Lookup on single-node ring = (%s, %d, %v)", n, e, ok)
	}
	if !r.Owns("b", "vm-1") || r.Owns("a", "vm-1") {
		t.Fatal("Owns disagrees with Lookup")
	}
}

// TestRingCloneIsFrozen: a clone keeps answering with the membership it was
// taken at — the stale-view behavior the misroute protocol is tested with.
func TestRingCloneIsFrozen(t *testing.T) {
	r := NewRing(3, 0)
	r.Join("s0")
	r.Join("s1")
	frozen := r.Clone()
	if frozen.Epoch() != r.Epoch() {
		t.Fatal("clone epoch differs at clone time")
	}
	r.Join("s2")
	if frozen.Epoch() == r.Epoch() {
		t.Fatal("mutating the original moved the clone's epoch")
	}
	for _, n := range frozen.Nodes() {
		if n == "s2" {
			t.Fatal("clone saw a node joined after the clone")
		}
	}
	for _, k := range keys(256) {
		n, _, _ := frozen.Lookup(k)
		if n == "s2" {
			t.Fatalf("frozen clone routed %s to the post-clone node", k)
		}
	}
}

func TestWrongShardErrorRoundTrip(t *testing.T) {
	e := &WrongShardError{Key: "vm-0017", Owner: "shard-3", Epoch: 42}
	msg := fmt.Sprintf("rpc: remote: appraise refused: %v", e)
	got, ok := ParseWrongShard(msg)
	if !ok {
		t.Fatalf("ParseWrongShard failed on %q", msg)
	}
	if *got != *e {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
	if _, ok := ParseWrongShard("rpc: remote: unknown vm"); ok {
		t.Fatal("ParseWrongShard matched an unrelated error")
	}
	if _, ok := ParseWrongShard("wrong-shard key=x"); ok {
		t.Fatal("ParseWrongShard accepted a truncated message")
	}
}
