package metrics

import "testing"

// BenchmarkCounterInc measures the uncontended counter hot path.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncParallel measures the contended counter hot path
// (retry/breaker/degradation counters are bumped from many goroutines).
func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
