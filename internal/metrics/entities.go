package metrics

// KnownEntities is the closed set of first segments ("entities") a metric
// name may start with. The entity names the subsystem that owns the
// metric; dashboards and alert rules group by it, so an ad-hoc entity
// ("appraise-backend/...") silently falls outside every panel. Both the
// runtime registry consumers and the metricsname analyzer read this one
// table — add the entity here first when a new subsystem grows metrics.
var KnownEntities = map[string]bool{
	"attestsrv":  true, // attestation server RPC plumbing
	"appraise":   true, // property appraisal latency and outcomes
	"periodic":   true, // periodic-attestation engine
	"ledger":     true, // append-only attestation ledger
	"controller": true, // cloud controller operations
	"reconcile":  true, // reconciliation loop
}
