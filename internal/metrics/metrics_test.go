package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("zero-value summary not empty")
	}
	s.Observe(10 * time.Millisecond)
	s.Observe(20 * time.Millisecond)
	s.Observe(30 * time.Millisecond)
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 30*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 20*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := s.Quantile(0); q != 10*time.Millisecond {
		t.Fatalf("p0 = %v", q)
	}
	if q := s.Quantile(1); q != 30*time.Millisecond {
		t.Fatalf("p100 = %v", q)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("String: %s", s.String())
	}
}

// TestQuantileTable pins the interpolated quantiles for known inputs. The
// old nearest-rank truncation returned p95=95ms and p99=99ms for 1..100
// (rank always rounded down); interpolation lands between the neighbors.
func TestQuantileTable(t *testing.T) {
	oneTo := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(i+1) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name    string
		samples []time.Duration
		q       float64
		want    time.Duration
	}{
		{"p50 of 1..100", oneTo(100), 0.50, 50500 * time.Microsecond},
		{"p95 of 1..100", oneTo(100), 0.95, 95050 * time.Microsecond},
		{"p99 of 1..100", oneTo(100), 0.99, 99010 * time.Microsecond},
		{"p50 of 1..3", oneTo(3), 0.50, 2 * time.Millisecond},
		{"p75 of 1..2", oneTo(2), 0.75, 1750 * time.Microsecond},
		{"p99 of 1..10", oneTo(10), 0.99, 9910 * time.Microsecond},
		{"p0 clamps low", oneTo(10), -1, time.Millisecond},
		{"p100 clamps high", oneTo(10), 2, 10 * time.Millisecond},
		{"single sample", oneTo(1), 0.95, time.Millisecond},
	}
	for _, tc := range cases {
		var s Summary
		for _, d := range tc.samples {
			s.Observe(d)
		}
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestIntQuantileTable pins IntSummary quantiles: interpolated, then
// rounded to the nearest integer.
func TestIntQuantileTable(t *testing.T) {
	var s IntSummary
	for i := int64(1); i <= 100; i++ {
		s.Observe(i)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 51}, // pos 49.5 → 50.5 rounds to 51
		{0.95, 95}, // pos 94.05 → 95.05 rounds to 95
		{0.99, 99}, // pos 98.01 → 99.01 rounds to 99
		{0, 1},
		{1, 100},
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("IntSummary.Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	var empty IntSummary
	if empty.Quantile(0.5) != 0 {
		t.Error("empty IntSummary quantile not 0")
	}
}

func TestSummaryBounded(t *testing.T) {
	var s Summary
	for i := 0; i < 3*maxSamples; i++ {
		s.Observe(time.Duration(i))
	}
	if s.Count() != uint64(3*maxSamples) {
		t.Fatalf("Count = %d", s.Count())
	}
	s.mu.Lock()
	n := len(s.samples)
	s.mu.Unlock()
	if n > maxSamples {
		t.Fatalf("samples grew to %d", n)
	}
	if s.Max() != time.Duration(3*maxSamples-1) {
		t.Fatalf("Max lost: %v", s.Max())
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(ms []uint16) bool {
		var s Summary
		for _, m := range ms {
			s.Observe(time.Duration(m) * time.Microsecond)
		}
		return s.Quantile(0.1) <= s.Quantile(0.5) &&
			s.Quantile(0.5) <= s.Quantile(0.9) &&
			s.Min() <= s.Quantile(0.5) && s.Quantile(0.5) <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	var s Summary
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 4000 {
		t.Fatalf("lost observations: %d", s.Count())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Summary("b").Observe(time.Second)
	r.Summary("a").Observe(time.Second)
	if r.Summary("a") != r.Summary("a") {
		t.Fatal("Summary not idempotent")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if out := r.Render(); !strings.Contains(out, "a") || !strings.Contains(out, "n=1") {
		t.Fatalf("Render: %s", out)
	}
}
