package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("zero-value summary not empty")
	}
	s.Observe(10 * time.Millisecond)
	s.Observe(20 * time.Millisecond)
	s.Observe(30 * time.Millisecond)
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 30*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 20*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := s.Quantile(0); q != 10*time.Millisecond {
		t.Fatalf("p0 = %v", q)
	}
	if q := s.Quantile(1); q != 30*time.Millisecond {
		t.Fatalf("p100 = %v", q)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("String: %s", s.String())
	}
}

func TestSummaryBounded(t *testing.T) {
	var s Summary
	for i := 0; i < 3*maxSamples; i++ {
		s.Observe(time.Duration(i))
	}
	if s.Count() != uint64(3*maxSamples) {
		t.Fatalf("Count = %d", s.Count())
	}
	s.mu.Lock()
	n := len(s.samples)
	s.mu.Unlock()
	if n > maxSamples {
		t.Fatalf("samples grew to %d", n)
	}
	if s.Max() != time.Duration(3*maxSamples-1) {
		t.Fatalf("Max lost: %v", s.Max())
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(ms []uint16) bool {
		var s Summary
		for _, m := range ms {
			s.Observe(time.Duration(m) * time.Microsecond)
		}
		return s.Quantile(0.1) <= s.Quantile(0.5) &&
			s.Quantile(0.5) <= s.Quantile(0.9) &&
			s.Min() <= s.Quantile(0.5) && s.Quantile(0.5) <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	var s Summary
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 4000 {
		t.Fatalf("lost observations: %d", s.Count())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Summary("b").Observe(time.Second)
	r.Summary("a").Observe(time.Second)
	if r.Summary("a") != r.Summary("a") {
		t.Fatal("Summary not idempotent")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if out := r.Render(); !strings.Contains(out, "a") || !strings.Contains(out, "n=1") {
		t.Fatalf("Render: %s", out)
	}
}
