package metrics

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReservoirRetainsWholeStream distinguishes Algorithm R from the old
// deterministic ring overwrite (`samples[count%maxSamples] = v`). Feed a
// strictly increasing stream of 3·maxSamples values: the ring scheme keeps
// exactly the most recent 4096-observation window, so every retained
// sample is ≥ 2·maxSamples and the retained median sits around
// 2.5·maxSamples. A true reservoir retains each observation with equal
// probability maxSamples/count, so roughly a third of the retained set
// comes from each third of the stream.
func TestReservoirRetainsWholeStream(t *testing.T) {
	total := 3 * maxSamples
	var s Summary
	for i := 0; i < total; i++ {
		s.Observe(time.Duration(i))
	}
	sn := s.Snapshot()
	if len(sn.Samples) != maxSamples {
		t.Fatalf("retained %d samples, want %d", len(sn.Samples), maxSamples)
	}

	lastWindowStart := time.Duration(2 * maxSamples)
	early := 0
	for _, v := range sn.Samples {
		if v < lastWindowStart {
			early++
		}
	}
	// Expected early count ≈ 2/3·maxSamples (~2731). The ring scheme gives
	// exactly 0. Any threshold well above 0 and below the expectation
	// distinguishes them; a third of maxSamples is far beyond noise.
	if early < maxSamples/3 {
		t.Fatalf("only %d retained samples predate the last window; reservoir degenerated to a sliding window", early)
	}
	// The retained median must reflect the whole stream (~1.5·maxSamples),
	// not the last window (~2.5·maxSamples).
	if p50 := sn.Quantile(0.5); p50 >= lastWindowStart {
		t.Fatalf("p50 = %v sits inside the last window; want a whole-stream median", p50)
	}
}

// TestIntReservoirRetainsWholeStream is the same check for IntSummary.
func TestIntReservoirRetainsWholeStream(t *testing.T) {
	total := 3 * maxSamples
	var s IntSummary
	for i := 0; i < total; i++ {
		s.Observe(int64(i))
	}
	sn := s.Snapshot()
	early := 0
	for _, v := range sn.Samples {
		if v < int64(2*maxSamples) {
			early++
		}
	}
	if early < maxSamples/3 {
		t.Fatalf("only %d retained samples predate the last window", early)
	}
}

// TestReservoirDeterministic pins that the fixed-seed PRNG makes the
// retained sample set identical across runs — the property the seeded
// simulation depends on.
func TestReservoirDeterministic(t *testing.T) {
	feed := func() SummarySnapshot {
		var s Summary
		for i := 0; i < 3*maxSamples; i++ {
			s.Observe(time.Duration(i))
		}
		return s.Snapshot()
	}
	a, b := feed(), feed()
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i], b.Samples[i])
		}
	}
}

// TestSnapshotNotTorn hammers a summary with concurrent observations of a
// single constant value while snapshotting. Because every observation is
// the same v, any internally consistent view satisfies Sum == Count·v and
// Min == Max == v; the old render path read each field under its own lock
// acquisition, so a concurrent Observe could land between the reads and
// break the identity. Run with -race to also catch raw data races.
func TestSnapshotNotTorn(t *testing.T) {
	const v = 3 * time.Millisecond
	var s Summary
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s.Observe(v)
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		sn := s.Snapshot()
		if sn.Sum != time.Duration(sn.Count)*v {
			t.Errorf("torn snapshot: count=%d sum=%v", sn.Count, sn.Sum)
			break
		}
		if sn.Count > 0 && (sn.Min != v || sn.Max != v) {
			t.Errorf("torn snapshot: min=%v max=%v", sn.Min, sn.Max)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestIntSnapshotNotTorn is the same invariant for IntSummary, exercising
// Render (which now consumes snapshots) concurrently as well.
func TestIntSnapshotNotTorn(t *testing.T) {
	const v = int64(7)
	r := NewRegistry()
	s := r.IntSummary("torn")
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s.Observe(v)
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		sn := s.Snapshot()
		if sn.Sum != int64(sn.Count)*v {
			t.Errorf("torn snapshot: count=%d sum=%d", sn.Count, sn.Sum)
			break
		}
		_ = r.Render()
	}
	stop.Store(true)
	wg.Wait()
}

// TestCounterConcurrent pins that the atomic counter loses nothing under
// contention.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if got := c.Value(); got != 8005 {
		t.Fatalf("Counter = %d, want 8005", got)
	}
}

// TestRegistrySnapshot checks the exporter-facing consistent view.
func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Summary("lat").Observe(time.Second)
	r.Summary("lat").Observe(3 * time.Second)
	r.IntSummary("batch").Observe(4)
	r.Counter("retries").Add(9)
	snap := r.Snapshot()
	if len(snap.Summaries) != 1 || snap.Summaries[0].Name != "lat" {
		t.Fatalf("Summaries = %+v", snap.Summaries)
	}
	if got := snap.Summaries[0].Mean(); got != 2*time.Second {
		t.Fatalf("lat mean = %v", got)
	}
	if len(snap.IntSummaries) != 1 || snap.IntSummaries[0].Count != 1 {
		t.Fatalf("IntSummaries = %+v", snap.IntSummaries)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 {
		t.Fatalf("Counters = %+v", snap.Counters)
	}
	if out := r.Render(); !strings.Contains(out, "retries") || !strings.Contains(out, "n=9") {
		t.Fatalf("Render: %s", out)
	}
}
