// Package metrics provides the timing instrumentation the paper obtains
// from OpenStack Ceilometer (§7): bounded duration summaries with
// percentiles, grouped in a registry. The Attestation Server records every
// appraisal's virtual-time cost per property; benches and operators read
// the summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxSamples bounds a summary's memory; when full, reservoir-style
// replacement keeps the summary representative without growing.
const maxSamples = 4096

// Summary accumulates duration observations.
type Summary struct {
	mu      sync.Mutex
	samples []time.Duration
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Observe records one duration.
func (s *Summary) Observe(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.sum += d
	if s.count == 1 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	if len(s.samples) < maxSamples {
		s.samples = append(s.samples, d)
		return
	}
	// Deterministic replacement keyed by the running count: cheap and
	// unbiased enough for operational percentiles.
	s.samples[int(s.count)%maxSamples] = d
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Mean returns the average observation.
func (s *Summary) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.sum / time.Duration(s.count)
}

// Min returns the smallest observation.
func (s *Summary) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest observation.
func (s *Summary) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the retained samples,
// linearly interpolated between the two nearest order statistics. (The
// previous nearest-rank truncation `int(q·(n-1))` always rounded the rank
// down, biasing p95/p99 low on small sample sets.)
func (s *Summary) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return time.Duration(interpolate(q, len(sorted), func(i int) float64 { return float64(sorted[i]) }) + 0.5)
}

// String renders the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		s.Count(), s.Mean().Round(time.Millisecond),
		s.Quantile(0.5).Round(time.Millisecond), s.Quantile(0.95).Round(time.Millisecond),
		s.Min().Round(time.Millisecond), s.Max().Round(time.Millisecond))
}

// IntSummary accumulates dimensionless integer observations (batch sizes,
// queue depths) with the same bounded-reservoir scheme as Summary.
type IntSummary struct {
	mu      sync.Mutex
	samples []int64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// Observe records one value.
func (s *IntSummary) Observe(v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.sum += v
	if s.count == 1 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if len(s.samples) < maxSamples {
		s.samples = append(s.samples, v)
		return
	}
	s.samples[int(s.count)%maxSamples] = v
}

// Count returns the number of observations.
func (s *IntSummary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Mean returns the average observation.
func (s *IntSummary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Min returns the smallest observation.
func (s *IntSummary) Min() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest observation.
func (s *IntSummary) Max() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the retained samples,
// linearly interpolated between the two nearest order statistics and
// rounded to the nearest integer.
func (s *IntSummary) Quantile(q float64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return int64(math.Round(interpolate(q, len(sorted), func(i int) float64 { return float64(sorted[i]) })))
}

// interpolate computes the q-quantile of n sorted values (read through at)
// by linear interpolation between the two nearest order statistics; q is
// clamped to [0, 1].
func interpolate(q float64, n int, at func(int) float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if hi >= n {
		hi = n - 1
	}
	if lo == hi {
		return at(lo)
	}
	frac := pos - float64(lo)
	return at(lo) + frac*(at(hi)-at(lo))
}

// String renders the summary compactly.
func (s *IntSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d min=%d max=%d",
		s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Min(), s.Max())
}

// Counter is a monotonically increasing event count (retries, breaker
// trips, stale reports served).
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// String renders the counter.
func (c *Counter) String() string { return fmt.Sprintf("n=%d", c.Value()) }

// Registry groups named summaries.
type Registry struct {
	mu           sync.Mutex
	summaries    map[string]*Summary
	intSummaries map[string]*IntSummary
	counters     map[string]*Counter
}

// NewRegistry allocates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		summaries:    make(map[string]*Summary),
		intSummaries: make(map[string]*IntSummary),
		counters:     make(map[string]*Counter),
	}
}

// Summary returns (creating if needed) the named summary.
func (r *Registry) Summary(name string) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.summaries[name]
	if !ok {
		s = &Summary{}
		r.summaries[name] = s
	}
	return s
}

// IntSummary returns (creating if needed) the named integer summary.
func (r *Registry) IntSummary(name string) *IntSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.intSummaries[name]
	if !ok {
		s = &IntSummary{}
		r.intSummaries[name] = s
	}
	return s
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterNames lists the registered counters in sorted order.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Names lists the registered duration summaries in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.summaries))
	for n := range r.summaries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IntNames lists the registered integer summaries in sorted order.
func (r *Registry) IntNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.intSummaries))
	for n := range r.intSummaries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Render prints every summary.
func (r *Registry) Render() string {
	var b strings.Builder
	for _, n := range r.Names() {
		fmt.Fprintf(&b, "%-40s %s\n", n, r.Summary(n).String())
	}
	for _, n := range r.IntNames() {
		fmt.Fprintf(&b, "%-40s %s\n", n, r.IntSummary(n).String())
	}
	for _, n := range r.CounterNames() {
		fmt.Fprintf(&b, "%-40s %s\n", n, r.Counter(n).String())
	}
	return b.String()
}
