// Package metrics provides the timing instrumentation the paper obtains
// from OpenStack Ceilometer (§7): bounded duration summaries with
// percentiles, grouped in a registry. The Attestation Server records every
// appraisal's virtual-time cost per property; benches, the /metrics
// exporter and operators read the summaries.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSamples bounds a summary's memory; once full, Algorithm R reservoir
// sampling keeps every observation equally likely to be retained.
const maxSamples = 4096

// reservoirSeed seeds each summary's private PRNG. A fixed seed keeps the
// retained sample set reproducible run-to-run — the same property the
// deterministic simulation demands of every other random draw — while
// still giving each observation the uniform maxSamples/count retention
// probability Algorithm R guarantees.
const reservoirSeed = 0x6d6f6e6174745253 // "monattRS"

// Summary accumulates duration observations.
type Summary struct {
	mu      sync.Mutex
	samples []time.Duration
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	rng     *rand.Rand
}

// Observe records one duration.
func (s *Summary) Observe(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.sum += d
	if s.count == 1 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	if len(s.samples) < maxSamples {
		s.samples = append(s.samples, d)
		return
	}
	// Algorithm R: the t-th observation replaces a random reservoir slot
	// with probability maxSamples/t, so every observation — not just the
	// most recent window — is retained with equal probability. (The old
	// `samples[count%maxSamples] = d` deterministic ring silently reduced
	// the "reservoir" to a sliding window of the last 4096 observations.)
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(reservoirSeed))
	}
	if j := s.rng.Int63n(int64(s.count)); j < maxSamples {
		s.samples[j] = d
	}
}

// SummarySnapshot is a consistent point-in-time copy of a Summary, taken
// under one lock acquisition so count/sum/min/max/samples all describe the
// same observation set.
type SummarySnapshot struct {
	Count   uint64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Samples []time.Duration // sorted ascending
}

// Snapshot copies the summary's state under a single lock acquisition.
// Renders and exporters must use this: reading Count/Mean/Quantile through
// separate calls lets a concurrent Observe land between them, producing
// torn lines where n and mean describe different populations.
func (s *Summary) Snapshot() SummarySnapshot {
	s.mu.Lock()
	snap := SummarySnapshot{
		Count:   s.count,
		Sum:     s.sum,
		Min:     s.min,
		Max:     s.max,
		Samples: append([]time.Duration(nil), s.samples...),
	}
	s.mu.Unlock()
	sort.Slice(snap.Samples, func(i, j int) bool { return snap.Samples[i] < snap.Samples[j] })
	return snap
}

// Mean returns the snapshot's average observation.
func (sn SummarySnapshot) Mean() time.Duration {
	if sn.Count == 0 {
		return 0
	}
	return sn.Sum / time.Duration(sn.Count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the retained samples,
// linearly interpolated between the two nearest order statistics.
func (sn SummarySnapshot) Quantile(q float64) time.Duration {
	if len(sn.Samples) == 0 {
		return 0
	}
	return time.Duration(interpolate(q, len(sn.Samples), func(i int) float64 { return float64(sn.Samples[i]) }) + 0.5)
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Mean returns the average observation.
func (s *Summary) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.sum / time.Duration(s.count)
}

// Min returns the smallest observation.
func (s *Summary) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest observation.
func (s *Summary) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the retained samples,
// linearly interpolated between the two nearest order statistics. (The
// previous nearest-rank truncation `int(q·(n-1))` always rounded the rank
// down, biasing p95/p99 low on small sample sets.)
func (s *Summary) Quantile(q float64) time.Duration {
	return s.Snapshot().Quantile(q)
}

// String renders the summary compactly from one consistent snapshot.
func (s *Summary) String() string {
	sn := s.Snapshot()
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		sn.Count, sn.Mean().Round(time.Millisecond),
		sn.Quantile(0.5).Round(time.Millisecond), sn.Quantile(0.95).Round(time.Millisecond),
		sn.Min.Round(time.Millisecond), sn.Max.Round(time.Millisecond))
}

// IntSummary accumulates dimensionless integer observations (batch sizes,
// queue depths) with the same bounded-reservoir scheme as Summary.
type IntSummary struct {
	mu      sync.Mutex
	samples []int64
	count   uint64
	sum     int64
	min     int64
	max     int64
	rng     *rand.Rand
}

// Observe records one value.
func (s *IntSummary) Observe(v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.sum += v
	if s.count == 1 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if len(s.samples) < maxSamples {
		s.samples = append(s.samples, v)
		return
	}
	// Algorithm R; see Summary.Observe.
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(reservoirSeed))
	}
	if j := s.rng.Int63n(int64(s.count)); j < maxSamples {
		s.samples[j] = v
	}
}

// IntSummarySnapshot is a consistent point-in-time copy of an IntSummary.
type IntSummarySnapshot struct {
	Count   uint64
	Sum     int64
	Min     int64
	Max     int64
	Samples []int64 // sorted ascending
}

// Snapshot copies the summary's state under a single lock acquisition.
func (s *IntSummary) Snapshot() IntSummarySnapshot {
	s.mu.Lock()
	snap := IntSummarySnapshot{
		Count:   s.count,
		Sum:     s.sum,
		Min:     s.min,
		Max:     s.max,
		Samples: append([]int64(nil), s.samples...),
	}
	s.mu.Unlock()
	sort.Slice(snap.Samples, func(i, j int) bool { return snap.Samples[i] < snap.Samples[j] })
	return snap
}

// Mean returns the snapshot's average observation.
func (sn IntSummarySnapshot) Mean() float64 {
	if sn.Count == 0 {
		return 0
	}
	return float64(sn.Sum) / float64(sn.Count)
}

// Quantile returns the q-quantile of the retained samples, linearly
// interpolated and rounded to the nearest integer.
func (sn IntSummarySnapshot) Quantile(q float64) int64 {
	if len(sn.Samples) == 0 {
		return 0
	}
	return int64(math.Round(interpolate(q, len(sn.Samples), func(i int) float64 { return float64(sn.Samples[i]) })))
}

// Count returns the number of observations.
func (s *IntSummary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Mean returns the average observation.
func (s *IntSummary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Min returns the smallest observation.
func (s *IntSummary) Min() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest observation.
func (s *IntSummary) Max() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the retained samples,
// linearly interpolated between the two nearest order statistics and
// rounded to the nearest integer.
func (s *IntSummary) Quantile(q float64) int64 {
	return s.Snapshot().Quantile(q)
}

// interpolate computes the q-quantile of n sorted values (read through at)
// by linear interpolation between the two nearest order statistics; q is
// clamped to [0, 1].
func interpolate(q float64, n int, at func(int) float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if hi >= n {
		hi = n - 1
	}
	if lo == hi {
		return at(lo)
	}
	frac := pos - float64(lo)
	return at(lo) + frac*(at(hi)-at(lo))
}

// String renders the summary compactly from one consistent snapshot.
func (s *IntSummary) String() string {
	sn := s.Snapshot()
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d min=%d max=%d",
		sn.Count, sn.Mean(), sn.Quantile(0.5), sn.Quantile(0.95), sn.Min, sn.Max)
}

// Counter is a monotonically increasing event count (retries, breaker
// trips, stale reports served). Lock-free: the hot paths (every RPC
// attempt, every nonce admission) only need an atomic add.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// String renders the counter.
func (c *Counter) String() string { return fmt.Sprintf("n=%d", c.Value()) }

// Registry groups named summaries.
type Registry struct {
	mu           sync.Mutex
	summaries    map[string]*Summary
	intSummaries map[string]*IntSummary
	counters     map[string]*Counter
}

// NewRegistry allocates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		summaries:    make(map[string]*Summary),
		intSummaries: make(map[string]*IntSummary),
		counters:     make(map[string]*Counter),
	}
}

// Summary returns (creating if needed) the named summary.
func (r *Registry) Summary(name string) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.summaries[name]
	if !ok {
		s = &Summary{}
		r.summaries[name] = s
	}
	return s
}

// IntSummary returns (creating if needed) the named integer summary.
func (r *Registry) IntSummary(name string) *IntSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.intSummaries[name]
	if !ok {
		s = &IntSummary{}
		r.intSummaries[name] = s
	}
	return s
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterNames lists the registered counters in sorted order.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Names lists the registered duration summaries in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.summaries))
	for n := range r.summaries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IntNames lists the registered integer summaries in sorted order.
func (r *Registry) IntNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.intSummaries))
	for n := range r.intSummaries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegistrySnapshot is a point-in-time copy of every instrument in a
// registry, each instrument internally consistent. Names are sorted.
type RegistrySnapshot struct {
	Summaries    []NamedSummary
	IntSummaries []NamedIntSummary
	Counters     []NamedCounter
}

// NamedSummary pairs a summary snapshot with its registry name.
type NamedSummary struct {
	Name string
	SummarySnapshot
}

// NamedIntSummary pairs an integer summary snapshot with its registry name.
type NamedIntSummary struct {
	Name string
	IntSummarySnapshot
}

// NamedCounter pairs a counter value with its registry name.
type NamedCounter struct {
	Name  string
	Value int64
}

// Snapshot captures every registered instrument. Each instrument snapshot
// is taken under that instrument's lock, so each exported line is
// self-consistent (the cross-instrument view is best-effort, as with any
// scrape-based exporter).
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	for _, n := range r.Names() {
		snap.Summaries = append(snap.Summaries, NamedSummary{Name: n, SummarySnapshot: r.Summary(n).Snapshot()})
	}
	for _, n := range r.IntNames() {
		snap.IntSummaries = append(snap.IntSummaries, NamedIntSummary{Name: n, IntSummarySnapshot: r.IntSummary(n).Snapshot()})
	}
	for _, n := range r.CounterNames() {
		snap.Counters = append(snap.Counters, NamedCounter{Name: n, Value: r.Counter(n).Value()})
	}
	return snap
}

// Render prints every instrument from one registry snapshot.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	var b strings.Builder
	for _, s := range snap.Summaries {
		fmt.Fprintf(&b, "%-40s n=%d mean=%v p50=%v p95=%v min=%v max=%v\n",
			s.Name, s.Count, s.Mean().Round(time.Millisecond),
			s.Quantile(0.5).Round(time.Millisecond), s.Quantile(0.95).Round(time.Millisecond),
			s.Min.Round(time.Millisecond), s.Max.Round(time.Millisecond))
	}
	for _, s := range snap.IntSummaries {
		fmt.Fprintf(&b, "%-40s n=%d mean=%.1f p50=%d p95=%d min=%d max=%d\n",
			s.Name, s.Count, s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Min, s.Max)
	}
	for _, c := range snap.Counters {
		fmt.Fprintf(&b, "%-40s n=%d\n", c.Name, c.Value)
	}
	return b.String()
}
