package attestsrv_test

import (
	"testing"
	"time"

	"cloudmonatt/internal/attestsrv"
	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/wire"
)

func newTB(t *testing.T, opts cloudsim.Options) (*cloudsim.Testbed, string) {
	t.Helper()
	tb, err := cloudsim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := tb.NewCustomer("tester")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cu.Launch(controller.LaunchRequest{
		ImageName: "cirros", Flavor: "small", Workload: "database",
		Props: properties.All, MinShare: 0.2, Pin: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("launch failed: %s", res.Reason)
	}
	return tb, res.Vid
}

func appraise(tb *cloudsim.Testbed, vid, server string, p properties.Property) (*wire.Report, error) {
	return tb.Attest.Appraise(wire.AppraisalRequest{
		Vid: vid, ServerID: server, Prop: p, N2: cryptoutil.MustNonce(),
	})
}

func TestAppraiseValidations(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 41})
	srv, err := tb.Ctrl.VMServer(vid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := appraise(tb, vid, "no-such-server", properties.RuntimeIntegrity); err == nil {
		t.Fatal("unknown server accepted")
	}
	if _, err := appraise(tb, "ghost-vm", srv, properties.RuntimeIntegrity); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if _, err := appraise(tb, vid, srv, "bogus-prop"); err == nil {
		t.Fatal("bogus property accepted")
	}
}

func TestAppraiseReplayRejected(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 42})
	srv, _ := tb.Ctrl.VMServer(vid)
	n2 := cryptoutil.MustNonce()
	req := wire.AppraisalRequest{Vid: vid, ServerID: srv, Prop: properties.RuntimeIntegrity, N2: n2}
	if _, err := tb.Attest.Appraise(req); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Attest.Appraise(req); err == nil {
		t.Fatal("replayed N2 accepted")
	}
}

func TestAppraiseReportSignedByAttestServer(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 43})
	srv, _ := tb.Ctrl.VMServer(vid)
	n2 := cryptoutil.MustNonce()
	rep, err := tb.Attest.Appraise(wire.AppraisalRequest{
		Vid: vid, ServerID: srv, Prop: properties.RuntimeIntegrity, N2: n2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The controller's trust anchor for reports is the attestation server
	// key the testbed provisioned; VerifyReport must pass under it.
	if rep.ServerID != srv || rep.Vid != vid {
		t.Fatalf("report fields: %+v", rep)
	}
	if rep.Q2 != wire.ComputeQ2(rep.Vid, rep.ServerID, rep.Prop, rep.Verdict, rep.N2) {
		t.Fatal("Q2 mismatch")
	}
}

func TestServerCapabilityGating(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 44})
	srv, _ := tb.Ctrl.VMServer(vid)
	// Re-register the server with reduced capabilities.
	var rec attestsrv.ServerRecord
	for _, r := range tb.Attest.Servers() {
		if r.Name == srv {
			rec = r
		}
	}
	rec.Properties = []properties.Property{properties.StartupIntegrity}
	tb.Attest.RegisterServer(rec)
	if _, err := appraise(tb, vid, srv, properties.CPUAvailability); err == nil {
		t.Fatal("appraised a property the server cannot monitor")
	}
	if !tb.Attest.ServerSupports(srv, properties.StartupIntegrity) {
		t.Fatal("capability lookup broken")
	}
	if tb.Attest.ServerSupports(srv, properties.CPUAvailability) {
		t.Fatal("capability reduction not applied")
	}
}

func TestPeriodicEngine(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 45})
	srv, _ := tb.Ctrl.VMServer(vid)
	if err := tb.Attest.StartPeriodic(vid, srv, properties.CPUAvailability, 0); err == nil {
		t.Fatal("zero frequency accepted")
	}
	if err := tb.Attest.StartPeriodic(vid, srv, properties.CPUAvailability, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	due, ok := tb.Attest.NextDue()
	if !ok {
		t.Fatal("no pending deadline after start")
	}
	if due <= tb.Clock.Now() {
		t.Fatalf("deadline %v not in the future", due)
	}
	// Nothing runs before its time.
	if got := tb.Attest.RunDue(); len(got) != 0 {
		t.Fatalf("RunDue fired early: %d", len(got))
	}
	tb.RunFor(13 * time.Second)
	results := tb.Attest.FetchPeriodic(vid, properties.CPUAvailability)
	if len(results) < 2 {
		t.Fatalf("only %d periodic results over 13s at 4s frequency", len(results))
	}
	// Stop returns undelivered results and disarms.
	tb.RunFor(5 * time.Second)
	left := tb.Attest.StopPeriodic(vid, properties.CPUAvailability)
	if len(left) == 0 {
		t.Fatal("no undelivered results at stop")
	}
	if _, ok := tb.Attest.NextDue(); ok {
		t.Fatal("deadline still armed after stop")
	}
	if tb.Attest.StopPeriodic(vid, properties.CPUAvailability) != nil {
		t.Fatal("double stop returned results")
	}
}

func TestForgetVMDropsPeriodic(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 46})
	srv, _ := tb.Ctrl.VMServer(vid)
	if err := tb.Attest.StartPeriodic(vid, srv, properties.CPUAvailability, time.Second); err != nil {
		t.Fatal(err)
	}
	tb.Attest.ForgetVM(vid)
	if _, ok := tb.Attest.NextDue(); ok {
		t.Fatal("periodic task survived ForgetVM")
	}
	if _, err := appraise(tb, vid, srv, properties.RuntimeIntegrity); err == nil {
		t.Fatal("appraised a forgotten VM")
	}
}

func TestPeriodicRandomIntervals(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 47})
	srv, _ := tb.Ctrl.VMServer(vid)
	if err := tb.Attest.StartPeriodicRandom(vid, srv, properties.CPUAvailability, 0); err == nil {
		t.Fatal("zero frequency accepted")
	}
	if err := tb.Attest.StartPeriodicRandom(vid, srv, properties.CPUAvailability, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	// Collect a number of inter-report gaps; they must vary (random mode)
	// and stay within [freq/2, 3*freq/2] plus the per-round appraisal time.
	tb.RunFor(60 * time.Second)
	reports := tb.Attest.FetchPeriodic(vid, properties.CPUAvailability)
	if len(reports) < 6 {
		t.Fatalf("only %d random-interval reports over 60s at ~4s mean", len(reports))
	}
	tb.Attest.StopPeriodic(vid, properties.CPUAvailability)
}

func TestMetricsRecordAppraisals(t *testing.T) {
	tb, vid := newTB(t, cloudsim.Options{Seed: 48})
	srv, _ := tb.Ctrl.VMServer(vid)
	for i := 0; i < 3; i++ {
		if _, err := appraise(tb, vid, srv, properties.RuntimeIntegrity); err != nil {
			t.Fatal(err)
		}
	}
	s := tb.Attest.Metrics().Summary("appraise/" + string(properties.RuntimeIntegrity))
	// The testbed launch already appraised startup integrity; runtime
	// integrity has exactly our three.
	if s.Count() != 3 {
		t.Fatalf("appraisal metric count %d, want 3", s.Count())
	}
	if s.Mean() <= 0 {
		t.Fatal("appraisal metric has no duration")
	}
}
