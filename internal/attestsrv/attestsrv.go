// Package attestsrv implements the CloudMonatt Attestation Server (paper
// §3.2.3): the attestation requester and appraiser. It maps requested
// security properties to measurement requests, collects signed evidence
// from cloud servers over secure channels, validates the quote chain,
// interprets measurements into health verdicts (Property Interpretation
// Module), signs attestation reports (Property Certification Module), and
// runs the periodic-attestation engine.
package attestsrv

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/interpret"
	"cloudmonatt/internal/latency"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/metrics"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/secchan"
	"cloudmonatt/internal/server"
	"cloudmonatt/internal/shard"
	"cloudmonatt/internal/trust/driver"
	"cloudmonatt/internal/trust/driver/sevsnp"
	"cloudmonatt/internal/vclock"
	"cloudmonatt/internal/wire"
)

// ServerRecord is one provisioned cloud server in the oat database.
type ServerRecord struct {
	Name string
	Addr string
	// IdentityKey (VKs) authenticates the secure channel to the server.
	IdentityKey []byte
	// AIK verifies the server's platform evidence: the TPM AIK, the vTPM
	// hardware endorsement key, or the VCEK, per Backend.
	AIK []byte
	// Backend is the server's provisioned trust backend (empty = the
	// classic TPM Trust Module).
	Backend driver.Backend
	// Properties lists the security properties the server can monitor.
	Properties []properties.Property
}

// BackendOrDefault returns the record's backend, defaulting to tpm.
func (r *ServerRecord) BackendOrDefault() driver.Backend {
	if r.Backend == "" {
		return driver.BackendTPM
	}
	return r.Backend
}

// Supports reports whether the server can monitor property p.
func (r *ServerRecord) Supports(p properties.Property) bool {
	for _, q := range r.Properties {
		if q == p {
			return true
		}
	}
	return false
}

// VMRecord holds the per-VM appraisal references (from the nova database:
// what the customer declared at launch).
type VMRecord struct {
	Vid           string
	ExpectedImage [32]byte
	TaskAllowlist []string
	MinCPUShare   float64
}

// Config configures the Attestation Server.
type Config struct {
	Identity *cryptoutil.Identity
	PCAName  string
	PCAKey   []byte
	Network  rpc.Network
	Clock    *vclock.Clock
	Latency  *latency.Model
	Verify   secchan.VerifyPeer
	Rand     io.Reader
	// Ledger, when set, receives one evidence entry per appraised report
	// (the durable trail behind the Property Certification Module).
	Ledger *ledger.Ledger
	// CallTimeout bounds each measurement RPC attempt in real time. 0
	// applies the rpc default (30s); negative disables the bound.
	CallTimeout time.Duration
	// Retry tunes per-call retries on the channels to cloud servers.
	Retry rpc.RetryPolicy
	// Breaker tunes the per-server circuit breakers.
	Breaker rpc.BreakerPolicy
	// Periodic tunes the periodic monitoring engine (worker pool size,
	// per-server in-flight cap, result buffer bound).
	Periodic PeriodicConfig
	// MinTCB is the minimum platform security version accepted from
	// confidential-VM backends — the firmware-rollback floor. Zero means
	// the sev-snp backend's fleet-current version.
	MinTCB driver.TCBVersion
	// Obs, when set, receives one span per appraisal stage (entity
	// "attest-server") plus a root span per periodic tick.
	Obs *obs.Store
	// Batch, when set, routes evidence-signature and certificate checks
	// through a shared BatchVerifier: concurrent appraisals coalesce
	// identical certificate verifications and fan distinct signature
	// checks across cores. Nil verifies inline.
	Batch *cryptoutil.BatchVerifier
	// Resume enables secure-channel session resumption on the measurement
	// channels: reconnects to a cloud server ride a ticket instead of
	// re-running the asymmetric handshake.
	Resume bool
	// Ring, when set, makes this server one shard of a sharded attestation
	// plane: VM-addressed requests for VMs the ring assigns elsewhere are
	// refused with a WrongShardError naming the owner, instead of being
	// served from possibly-stale local state.
	Ring *shard.Ring
	// ShardName is this server's name on the Ring. Empty defaults to the
	// identity name.
	ShardName string
}

// verifier returns the signature verifier appraisals should use.
func (c Config) verifier() cryptoutil.Verifier {
	if c.Batch != nil {
		return c.Batch
	}
	return cryptoutil.Direct
}

// Server is the Attestation Server.
type Server struct {
	cfg Config

	mu       sync.Mutex
	servers  map[string]*ServerRecord
	vms      map[string]*VMRecord
	clients  map[string]*rpc.ReconnectClient
	sessions *secchan.SessionCache // resumption tickets, nil unless cfg.Resume
	replay   *cryptoutil.ReplayCache

	periodic *periodicEngine
	metrics  *metrics.Registry
	tracer   *obs.Tracer
}

// New creates an Attestation Server.
func New(cfg Config) *Server {
	if cfg.Ring != nil && cfg.ShardName == "" && cfg.Identity != nil {
		cfg.ShardName = cfg.Identity.Name
	}
	s := &Server{
		cfg:     cfg,
		servers: make(map[string]*ServerRecord),
		vms:     make(map[string]*VMRecord),
		clients: make(map[string]*rpc.ReconnectClient),
		replay:  cryptoutil.NewReplayCache(4096),
		metrics: metrics.NewRegistry(),
		tracer:  obs.NewTracer(cfg.Obs, "attest-server", cfg.Clock.Now),
	}
	if cfg.Resume {
		s.sessions = secchan.NewSessionCache()
	}
	s.periodic = newPeriodicEngine(cfg.Periodic, s.cfg.Clock.Now, s.drawJitter, s.appraiseOnce, s.metrics, s.tracer)
	return s
}

// onRPCEvent counts retries and breaker transitions on the measurement
// channels and records them as evidence.
func (s *Server) onRPCEvent(ev rpc.Event) {
	switch ev.Kind {
	case rpc.EventRetry:
		s.metrics.Counter("attestsrv/rpc-retries").Inc()
	case rpc.EventBreaker:
		s.metrics.Counter("attestsrv/rpc-breaker-transitions").Inc()
		if ev.To == rpc.BreakerOpen {
			s.metrics.Counter("attestsrv/rpc-breaker-opens").Inc()
		}
	}
	if s.cfg.Ledger == nil {
		return
	}
	errMsg := ""
	if ev.Err != nil {
		errMsg = ev.Err.Error()
	}
	payload, err := json.Marshal(struct {
		Event   string `json:"event"`
		Peer    string `json:"peer"`
		Method  string `json:"method,omitempty"`
		Attempt int    `json:"attempt,omitempty"`
		Err     string `json:"err,omitempty"`
		From    string `json:"from,omitempty"`
		To      string `json:"to,omitempty"`
	}{string(ev.Kind), ev.Peer, ev.Method, ev.Attempt, errMsg, breakerName(ev, true), breakerName(ev, false)})
	if err != nil {
		return
	}
	s.cfg.Ledger.Append(ledger.Entry{
		At:      s.cfg.Clock.Now(),
		Kind:    ledger.KindRPCFault,
		Payload: payload,
	})
}

func breakerName(ev rpc.Event, from bool) string {
	if ev.Kind != rpc.EventBreaker {
		return ""
	}
	if from {
		return ev.From.String()
	}
	return ev.To.String()
}

// Metrics exposes the appraisal-timing registry (virtual-time cost of each
// appraisal per property — the Ceilometer view of §7).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// Health reports the Attestation Server's liveness and the breaker state of
// its measurement channels, for the operator /healthz endpoint.
func (s *Server) Health() obs.EntityHealth {
	s.mu.Lock()
	names := make([]string, 0, len(s.clients))
	for name := range s.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	h := obs.EntityHealth{Entity: "attest-server", Alive: true}
	for _, name := range names {
		h.Peers = append(h.Peers, obs.PeerHealth{Peer: s.clients[name].Peer(), Breaker: s.clients[name].BreakerState().String()})
	}
	s.mu.Unlock()
	return h
}

// RegisterServer records a provisioned cloud server (its address, identity
// key, TPM AIK, and monitoring capabilities).
func (s *Server) RegisterServer(rec ServerRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := rec
	s.servers[rec.Name] = &cp
}

// Servers lists the registered cloud servers.
func (s *Server) Servers() []ServerRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ServerRecord, 0, len(s.servers))
	for _, r := range s.servers {
		out = append(out, *r)
	}
	return out
}

// ServerSupports reports whether a registered server can monitor p.
func (s *Server) ServerSupports(name string, p properties.Property) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.servers[name]
	return ok && r.Supports(p)
}

// RegisterVM records the appraisal references for a VM.
func (s *Server) RegisterVM(rec VMRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := rec
	s.vms[rec.Vid] = &cp
}

// RebindVM points a VM's periodic tasks at its new host after a migration,
// so ongoing monitoring follows the VM through its lifecycle (paper §5.3).
func (s *Server) RebindVM(vid, serverID string) {
	s.periodic.rebind(vid, serverID)
}

// ForgetVM drops a VM's records and any periodic tasks (termination).
func (s *Server) ForgetVM(vid string) {
	s.mu.Lock()
	delete(s.vms, vid)
	s.mu.Unlock()
	s.periodic.forget(vid)
}

// client returns the fault-tolerant channel to a server (connections are
// established lazily per call).
func (s *Server) client(rec *ServerRecord) *rpc.ReconnectClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[rec.Name]; ok {
		return c
	}
	c := rpc.NewReconnectClient(rpc.ClientConfig{
		Network: s.cfg.Network,
		Addr:    rec.Addr,
		Peer:    "server-" + rec.Name,
		Secchan: secchan.Config{
			Identity: s.cfg.Identity,
			Verify:   s.cfg.Verify,
			Rand:     s.cfg.Rand,
			Session:  s.sessions,
		},
		Retry:       s.cfg.Retry,
		Breaker:     s.cfg.Breaker,
		CallTimeout: s.cfg.CallTimeout,
		OnEvent:     s.onRPCEvent,
	})
	s.clients[rec.Name] = c
	return c
}

// Appraise serves one attestation (the middle of Fig. 3): request
// measurements from the VM's cloud server, validate the signed evidence,
// interpret it, and return the signed report for the controller.
//
// Virtual-time accounting: the two protocol RTTs, the server-side quote and
// certification costs, and the interpretation cost are advanced here; a
// windowed measurement additionally advances the clock inside the cloud
// server's Monitor Kernel. Together these compose the attestation-stage
// latency of Fig. 9 (≈ latency.Model.AttestationExchange plus the window).
func (s *Server) Appraise(req wire.AppraisalRequest) (*wire.Report, error) {
	return s.AppraiseTraced(obs.SpanContext{}, req)
}

// AppraiseTraced is Appraise recording its work as an "appraise" span under
// parent (the controller's span context carried in the rpc envelope), with
// each measurement RPC attempt nesting beneath it.
func (s *Server) AppraiseTraced(parent obs.SpanContext, req wire.AppraisalRequest) (rep *wire.Report, err error) {
	start := s.cfg.Clock.Now()
	sp := s.tracer.Start(parent, "appraise")
	sp.SetVM(req.Vid, string(req.Prop))
	defer func() {
		s.metrics.Summary("appraise/" + string(req.Prop)).Observe(s.cfg.Clock.Now() - start)
		if err != nil {
			sp.EndErr(err)
		} else if rep != nil && !rep.Verdict.Healthy {
			sp.End("unhealthy")
		} else {
			sp.End("")
		}
	}()
	if !properties.Valid(req.Prop) {
		return nil, fmt.Errorf("attestsrv: unsupported property %q", req.Prop)
	}
	if !s.replay.Check(req.N2) {
		return nil, fmt.Errorf("attestsrv: replayed request nonce")
	}
	s.mu.Lock()
	srvRec, okS := s.servers[req.ServerID]
	vmRec, okV := s.vms[req.Vid]
	s.mu.Unlock()
	if !okS {
		return nil, fmt.Errorf("attestsrv: unknown cloud server %q", req.ServerID)
	}
	if !okV {
		return nil, fmt.Errorf("attestsrv: no references for VM %q", req.Vid)
	}
	backend := srvRec.BackendOrDefault()
	sp.Annotate("backend", string(backend))
	s.metrics.Counter("appraise/backend-" + string(backend)).Inc()
	if !driver.Attestable(backend, req.Prop) {
		// The paper's V_fail: the property is outside the backend's
		// capability map, so there is no measurement to request. The signed
		// report says so explicitly — distinct from healthy and from
		// compromised — and the attempt is ledgered like any appraisal.
		s.metrics.Counter("appraise/unattestable").Inc()
		verdict := properties.UnattestableVerdict(req.Prop, string(backend))
		s.recordAppraisal(&req, verdict, sp.Context().Trace)
		return wire.BuildReport(s.cfg.Identity, req.Vid, req.ServerID, req.Prop, verdict, req.N2), nil
	}
	if !srvRec.Supports(req.Prop) {
		return nil, fmt.Errorf("attestsrv: server %s cannot monitor %s", req.ServerID, req.Prop)
	}

	rM, err := driver.MapToMeasurements(backend, req.Prop)
	if err != nil {
		return nil, err
	}
	c := s.client(srvRec)

	if lat := s.cfg.Latency; lat != nil {
		s.cfg.Clock.Advance(lat.HopRTT + lat.QuoteCost + lat.CertifyCost)
	}
	// The whole measurement exchange — every retry and its backoff — is
	// bounded so a wedged cloud server degrades this appraisal instead of
	// pinning an attestation worker forever.
	per := s.cfg.CallTimeout
	if per <= 0 {
		per = 30 * time.Second
	}
	attempts := s.cfg.Retry.MaxAttempts
	if attempts <= 0 {
		attempts = 4 // rpc default
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(attempts)*per+5*time.Second)
	defer cancel()
	// N3 is regenerated for every retry attempt, so a re-issued measurement
	// request is a fresh challenge, never a replay.
	var n3 cryptoutil.Nonce
	var ev wire.Evidence
	if err := c.CallFresh(obs.ContextWith(ctx, sp), server.MethodMeasure, func(int) (any, error) {
		n, err := cryptoutil.NewNonce(s.cfg.Rand)
		if err != nil {
			return nil, err
		}
		n3 = n
		return wire.MeasureRequest{Vid: req.Vid, Req: rM, N3: n}, nil
	}, &ev); err != nil {
		return nil, fmt.Errorf("attestsrv: measurement collection failed: %w", err)
	}
	if err := wire.VerifyEvidenceWith(&ev, s.cfg.PCAName, ed25519.PublicKey(s.cfg.PCAKey), req.Vid, rM, n3, s.cfg.verifier()); err != nil {
		return nil, fmt.Errorf("attestsrv: rejecting evidence: %w", err)
	}
	if ev.Backend != string(backend) {
		return nil, fmt.Errorf("attestsrv: evidence claims backend %q, server %s is provisioned as %q",
			ev.Backend, req.ServerID, backend)
	}

	if lat := s.cfg.Latency; lat != nil {
		s.cfg.Clock.Advance(lat.InterpretCost)
	}
	minTCB := s.cfg.MinTCB
	if minTCB.IsZero() {
		minTCB = sevsnp.CurrentTCB
	}
	verdict := interpret.Interpret(req.Prop, ev.Measurements, n3, interpret.References{
		ServerAIK:      ed25519.PublicKey(srvRec.AIK),
		PlatformGolden: interpret.GoldenPlatform(),
		ExpectedImage:  vmRec.ExpectedImage,
		Vid:            req.Vid,
		TaskAllowlist:  vmRec.TaskAllowlist,
		MinCPUShare:    vmRec.MinCPUShare,
		Backend:        backend,
		MinTCB:         minTCB,
	})
	s.recordAppraisal(&req, verdict, sp.Context().Trace)
	return wire.BuildReport(s.cfg.Identity, req.Vid, req.ServerID, req.Prop, verdict, req.N2), nil
}

// recordAppraisal appends one evidence entry for an appraised report.
// Appends are best-effort: a full or failing evidence store must not stop
// the attestation path itself (the report is still signed and delivered).
func (s *Server) recordAppraisal(req *wire.AppraisalRequest, v properties.Verdict, trace string) {
	if s.cfg.Ledger == nil {
		return
	}
	payload, err := json.Marshal(struct {
		Server       string `json:"server"`
		Backend      string `json:"backend,omitempty"`
		Healthy      bool   `json:"healthy"`
		Unattestable bool   `json:"unattestable,omitempty"`
		Class        string `json:"class,omitempty"`
		Reason       string `json:"reason,omitempty"`
	}{req.ServerID, v.Backend, v.Healthy, v.Unattestable, string(v.Class), v.Reason})
	if err != nil {
		return
	}
	s.cfg.Ledger.Append(ledger.Entry{
		At:      s.cfg.Clock.Now(),
		Kind:    ledger.KindAppraisal,
		Vid:     req.Vid,
		Prop:    string(req.Prop),
		Trace:   trace,
		Payload: payload,
	})
}

// --- periodic attestation engine (paper §3.2.1, §5.2) ---
//
// The engine itself lives in periodic.go; the Server supplies the clock,
// the unpredictable jitter source, and the appraisal path.

func taskKey(vid string, p properties.Property) string { return vid + "|" + string(p) }

// StartPeriodic arms periodic attestation of (vid, prop) at the given
// frequency.
func (s *Server) StartPeriodic(vid, serverID string, p properties.Property, freq time.Duration) error {
	return s.periodic.start(vid, serverID, p, freq, false)
}

// StartPeriodicRandom arms periodic attestation at random intervals with
// the given mean frequency, so the schedule is unpredictable to a
// co-resident attacker.
func (s *Server) StartPeriodicRandom(vid, serverID string, p properties.Property, freq time.Duration) error {
	return s.periodic.start(vid, serverID, p, freq, true)
}

// drawJitter draws a uniform value in [0, max) from crypto-grade entropy —
// the schedule must be unpredictable to the adversary, so the simulation
// RNG (which an attacker could re-derive) is deliberately not used.
func (s *Server) drawJitter(max int64) int64 {
	if max <= 0 {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(s.cfg.Rand, buf[:]); err != nil {
		return max / 2
	}
	v := int64(uint64(buf[0])<<56|uint64(buf[1])<<48|uint64(buf[2])<<40|uint64(buf[3])<<32|
		uint64(buf[4])<<24|uint64(buf[5])<<16|uint64(buf[6])<<8|uint64(buf[7])) & (1<<62 - 1)
	return v % max
}

// appraiseOnce is the engine's appraisal path: generate a fresh N2 and run
// the full appraisal. A nonce failure is an appraisal failure — the engine
// has already rescheduled the task, so entropy exhaustion can never pin a
// task permanently due (the hot loop the linear scheduler had).
func (s *Server) appraiseOnce(parent obs.SpanContext, vid, serverID string, p properties.Property) (*wire.Report, error) {
	n2, err := cryptoutil.NewNonce(s.cfg.Rand)
	if err != nil {
		s.metrics.Counter("periodic/nonce-failures").Inc()
		return nil, fmt.Errorf("attestsrv: periodic nonce: %w", err)
	}
	return s.AppraiseTraced(parent, wire.AppraisalRequest{Vid: vid, ServerID: serverID, Prop: p, N2: n2})
}

// StopPeriodic disarms a periodic attestation and returns any undelivered
// results.
func (s *Server) StopPeriodic(vid string, p properties.Property) []*wire.Report {
	return s.StopPeriodicBatch(vid, p).Reports
}

// StopPeriodicBatch is StopPeriodic with the loss accounting (dropped
// reports, shed ticks) accumulated since the last drain.
func (s *Server) StopPeriodicBatch(vid string, p properties.Property) PeriodicBatch {
	return s.periodic.stop(vid, p)
}

// FetchPeriodic drains the accumulated fresh results for (vid, prop).
func (s *Server) FetchPeriodic(vid string, p properties.Property) []*wire.Report {
	return s.FetchPeriodicBatch(vid, p).Reports
}

// FetchPeriodicBatch is FetchPeriodic with the loss accounting (dropped
// reports, shed ticks) accumulated since the last drain.
func (s *Server) FetchPeriodicBatch(vid string, p properties.Property) PeriodicBatch {
	return s.periodic.fetch(vid, p)
}

// RunDue appraises every periodic task whose deadline has passed — due
// tasks run concurrently on the engine's bounded worker pool — and returns
// the reports committed for still-live tasks in this pass. The testbed
// calls it as virtual time advances.
func (s *Server) RunDue() []*wire.Report {
	return s.periodic.runDue()
}

// NextDue returns the earliest pending periodic deadline, or false if no
// periodic tasks are armed.
func (s *Server) NextDue() (time.Duration, bool) {
	return s.periodic.nextDue()
}

// --- sharded attestation plane ---

// Shard returns this server's name on the ring ("" when unsharded).
func (s *Server) Shard() string { return s.cfg.ShardName }

// checkOwner enforces ring ownership for a VM-addressed request. Nil ring
// (unsharded deployment) or local ownership passes; otherwise the caller
// gets a WrongShardError naming the owner under this shard's current view,
// so it can retry against the right shard without a view refresh.
func (s *Server) checkOwner(vid string) error {
	r := s.cfg.Ring
	if r == nil {
		return nil
	}
	owner, epoch, ok := r.Lookup(vid)
	if ok && owner == s.cfg.ShardName {
		return nil
	}
	s.metrics.Counter("attestsrv/wrong-shard-rejections").Inc()
	return &shard.WrongShardError{Key: vid, Owner: owner, Epoch: epoch}
}

// ShardState is the portable slice of a shard's VM-addressed state: the
// appraisal reference records and the armed periodic streams for a set of
// VMs. It is what moves between shards on a rebalance.
type ShardState struct {
	VMs   []VMRecord
	Tasks []PeriodicTaskState
}

// ExportNotOwned removes and returns the state of every VM the ring no
// longer assigns to this shard. In-flight periodic appraisals of exported
// tasks resolve as counted stopped-discards locally; all future ticks
// belong to the importing shard. On a nil ring it exports nothing.
func (s *Server) ExportNotOwned() ShardState {
	r := s.cfg.Ring
	if r == nil {
		return ShardState{}
	}
	moved := func(vid string) bool { return !r.Owns(s.cfg.ShardName, vid) }
	var st ShardState
	s.mu.Lock()
	for vid, rec := range s.vms {
		if moved(vid) {
			st.VMs = append(st.VMs, *rec)
			delete(s.vms, vid)
		}
	}
	s.mu.Unlock()
	st.Tasks = s.periodic.exportWhere(moved)
	return st
}

// ImportShardState installs handed-off VM state. VM records overwrite (they
// are immutable launch references, so last-write is identical); task
// imports are idempotent — a (vid, prop) stream already armed here is left
// untouched, so a retried handoff cannot double-arm. Returns how many
// tasks were newly armed.
func (s *Server) ImportShardState(st ShardState) int {
	s.mu.Lock()
	for i := range st.VMs {
		cp := st.VMs[i]
		s.vms[cp.Vid] = &cp
	}
	s.mu.Unlock()
	armed := 0
	for _, t := range st.Tasks {
		if s.periodic.importTask(t) {
			armed++
		}
	}
	return armed
}

// PeriodicTaskKeys lists the armed (vid, prop) streams; the churn race test
// uses it to prove a handoff conserved the task set.
func (s *Server) PeriodicTaskKeys() []string {
	return s.periodic.taskKeys()
}
