package attestsrv

// Engine-level tests: the periodic monitoring engine with a stub appraisal
// path and a manually advanced clock, so scheduling, shedding, and
// stop-vs-in-flight races are pinned without the cost (or nondeterminism)
// of real crypto appraisals. CI runs this file under -race.

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudmonatt/internal/metrics"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/wire"
)

// testClock is a manually advanced virtual clock safe for concurrent use.
type testClock struct{ ns atomic.Int64 }

func (c *testClock) now() time.Duration      { return time.Duration(c.ns.Load()) }
func (c *testClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func (c *testClock) set(d time.Duration)     { c.ns.Store(int64(d)) }
func noJitter(max int64) int64               { return max / 2 }
func okAppraise(obs.SpanContext, string, string, properties.Property) (*wire.Report, error) {
	return &wire.Report{}, nil
}

// TestPeriodicEngineChurnRace arms >1000 tasks across 8 servers and churns
// start/stop/fetch from several goroutines while a ticker drives runDue.
// It pins the engine's core invariants under -race:
//
//   - a stopped task never delivers another report until re-armed;
//   - every drain is bounded by ResultBuffer;
//   - every due tick resolves to exactly one counted outcome:
//     ticks == produced + skipped + failures + stopped-discards.
func TestPeriodicEngineChurnRace(t *testing.T) {
	const (
		nTasks   = 1024
		nServers = 8
		buffer   = 4
		churners = 8
	)
	var clock testClock
	reg := metrics.NewRegistry()
	var fail atomic.Int64
	appraise := func(_ obs.SpanContext, vid, serverID string, p properties.Property) (*wire.Report, error) {
		// A deterministic slice of appraisals fails, exercising the
		// failure-reschedule path alongside the happy path.
		if fail.Add(1)%17 == 0 {
			return nil, errors.New("synthetic appraisal failure")
		}
		return &wire.Report{Vid: vid, ServerID: serverID, Prop: p}, nil
	}
	e := newPeriodicEngine(PeriodicConfig{Workers: 16, ServerInflight: 4, ResultBuffer: buffer},
		clock.now, noJitter, appraise, reg, nil)

	vid := func(i int) string { return fmt.Sprintf("vm-%04d", i) }
	srv := func(i int) string { return fmt.Sprintf("cloud-server-%d", i%nServers+1) }
	for i := 0; i < nTasks; i++ {
		if err := e.start(vid(i), srv(i), properties.CPUAvailability, time.Second, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Ticker: advance virtual time and run the due set. runDue waits for
	// its dispatched batch, so when this loop exits every outcome of every
	// tick it issued has been committed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			clock.advance(500 * time.Millisecond)
			e.runDue()
		}
	}()
	// Churners: each owns the disjoint task set i ≡ g (mod churners), so
	// per-task operations are sequential and post-stop fetches must drain
	// empty until the task is re-armed.
	errs := make(chan error, churners)
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				for i := g; i < nTasks; i += churners {
					b := e.fetch(vid(i), properties.CPUAvailability)
					if len(b.Reports) > buffer {
						errs <- fmt.Errorf("fetch drained %d > buffer %d", len(b.Reports), buffer)
						return
					}
					if i%5 != round%5 {
						continue
					}
					if b = e.stop(vid(i), properties.CPUAvailability); len(b.Reports) > buffer {
						errs <- fmt.Errorf("stop drained %d > buffer %d", len(b.Reports), buffer)
						return
					}
					// Stopped: no further delivery, even while the engine
					// keeps ticking other tasks (and possibly finishes an
					// in-flight appraisal of this one).
					if b = e.fetch(vid(i), properties.CPUAvailability); len(b.Reports) != 0 {
						errs <- fmt.Errorf("report delivered for stopped task %s", vid(i))
						return
					}
					if err := e.start(vid(i), srv(i), properties.CPUAvailability, time.Second, i%2 == 0); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ticks := reg.Counter("periodic/ticks").Value()
	produced := reg.Counter("periodic/produced").Value()
	skipped := reg.Counter("periodic/skipped").Value()
	failures := reg.Counter("periodic/failures").Value()
	discards := reg.Counter("periodic/stopped-discards").Value()
	if ticks == 0 {
		t.Fatal("no ticks fired")
	}
	if ticks != produced+skipped+failures+discards {
		t.Fatalf("outcome accounting broken: ticks=%d produced=%d skipped=%d failures=%d discards=%d",
			ticks, produced, skipped, failures, discards)
	}
	// Final sweep: every surviving ring is within bound.
	for i := 0; i < nTasks; i++ {
		if b := e.stop(vid(i), properties.CPUAvailability); len(b.Reports) > buffer {
			t.Fatalf("final drain of %s: %d > buffer %d", vid(i), len(b.Reports), buffer)
		}
	}
}

// TestPeriodicStopDiscardsInFlightResult pins the stop/deliver race the
// linear scheduler had: stopping a task while its appraisal is in flight
// must discard the late result, not deliver it after the customer already
// received the final drain.
func TestPeriodicStopDiscardsInFlightResult(t *testing.T) {
	var clock testClock
	started := make(chan struct{})
	release := make(chan struct{})
	reg := metrics.NewRegistry()
	appraise := func(obs.SpanContext, string, string, properties.Property) (*wire.Report, error) {
		close(started)
		<-release
		return &wire.Report{}, nil
	}
	e := newPeriodicEngine(PeriodicConfig{}, clock.now, noJitter, appraise, reg, nil)
	if err := e.start("vm-1", "s1", properties.CPUAvailability, time.Second, false); err != nil {
		t.Fatal(err)
	}
	clock.set(2 * time.Second)
	done := make(chan []*wire.Report, 1)
	go func() { done <- e.runDue() }()
	<-started
	if b := e.stop("vm-1", properties.CPUAvailability); len(b.Reports) != 0 {
		t.Fatalf("final drain returned %d reports for a task with nothing buffered", len(b.Reports))
	}
	close(release)
	if produced := <-done; len(produced) != 0 {
		t.Fatalf("runDue returned %d reports for a stopped task", len(produced))
	}
	if n := reg.Counter("periodic/stopped-discards").Value(); n != 1 {
		t.Fatalf("stopped-discards = %d, want 1", n)
	}
	if b := e.fetch("vm-1", properties.CPUAvailability); len(b.Reports) != 0 {
		t.Fatal("report resurrected after stop")
	}
}

// TestPeriodicSkipsWhileInFlight pins the shedding semantics: a deadline
// arriving while the previous appraisal of the same task is still running
// is skipped and counted, not queued into a pileup.
func TestPeriodicSkipsWhileInFlight(t *testing.T) {
	var clock testClock
	started := make(chan struct{})
	release := make(chan struct{})
	reg := metrics.NewRegistry()
	appraise := func(obs.SpanContext, string, string, properties.Property) (*wire.Report, error) {
		close(started)
		<-release
		return &wire.Report{}, nil
	}
	e := newPeriodicEngine(PeriodicConfig{}, clock.now, noJitter, appraise, reg, nil)
	if err := e.start("vm-1", "s1", properties.CPUAvailability, time.Second, false); err != nil {
		t.Fatal(err)
	}
	clock.set(1500 * time.Millisecond)
	done := make(chan []*wire.Report, 1)
	go func() { done <- e.runDue() }()
	<-started
	// The appraisal is pinned in flight; the next deadline passes.
	clock.set(3 * time.Second)
	if out := e.runDue(); len(out) != 0 {
		t.Fatalf("shed tick produced %d reports", len(out))
	}
	if n := reg.Counter("periodic/skipped").Value(); n != 1 {
		t.Fatalf("skipped = %d, want 1", n)
	}
	close(release)
	if produced := <-done; len(produced) != 1 {
		t.Fatalf("slow appraisal produced %d reports, want 1", len(produced))
	}
	b := e.fetch("vm-1", properties.CPUAvailability)
	if len(b.Reports) != 1 || b.Skipped != 1 {
		t.Fatalf("fetch = %d reports, skipped %d; want 1 and 1", len(b.Reports), b.Skipped)
	}
	// Loss accounting resets on drain.
	if b = e.fetch("vm-1", properties.CPUAvailability); b.Skipped != 0 {
		t.Fatalf("skipped not reset on drain: %d", b.Skipped)
	}
}

// TestPeriodicFailureRescheduling pins the fix for the nonce-failure hot
// loop: an appraisal that errors must still advance the task's deadline, so
// a driver polling NextDue/RunDue makes progress instead of spinning on a
// permanently due task.
func TestPeriodicFailureRescheduling(t *testing.T) {
	var clock testClock
	reg := metrics.NewRegistry()
	boom := func(obs.SpanContext, string, string, properties.Property) (*wire.Report, error) {
		return nil, errors.New("entropy exhausted")
	}
	e := newPeriodicEngine(PeriodicConfig{}, clock.now, noJitter, boom, reg, nil)
	if err := e.start("vm-1", "s1", properties.CPUAvailability, time.Second, false); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		clock.set(time.Duration(i) * time.Second)
		if out := e.runDue(); len(out) != 0 {
			t.Fatalf("failing appraisal produced reports: %d", len(out))
		}
		nd, ok := e.nextDue()
		if !ok {
			t.Fatal("task vanished from the queue")
		}
		if nd <= clock.now() {
			t.Fatalf("deadline %v not advanced past now %v after failure %d — hot loop", nd, clock.now(), i)
		}
		// Re-running at the same instant must be a no-op, not a re-fire.
		e.runDue()
	}
	if n := reg.Counter("periodic/failures").Value(); n != 5 {
		t.Fatalf("failures = %d, want 5", n)
	}
	if n := reg.Counter("periodic/ticks").Value(); n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
}

// TestPeriodicRingDropsOldest pins the bounded-buffer semantics: a customer
// that never fetches loses the oldest reports, counted per task and
// surfaced on the next drain.
func TestPeriodicRingDropsOldest(t *testing.T) {
	var clock testClock
	reg := metrics.NewRegistry()
	var seq atomic.Int64
	appraise := func(_ obs.SpanContext, vid, serverID string, p properties.Property) (*wire.Report, error) {
		return &wire.Report{Vid: fmt.Sprintf("r%d", seq.Add(1))}, nil
	}
	e := newPeriodicEngine(PeriodicConfig{ResultBuffer: 3}, clock.now, noJitter, appraise, reg, nil)
	if err := e.start("vm-1", "s1", properties.CPUAvailability, time.Second, false); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		clock.set(time.Duration(i) * time.Second)
		e.runDue()
	}
	b := e.fetch("vm-1", properties.CPUAvailability)
	if len(b.Reports) != 3 {
		t.Fatalf("drained %d reports, want 3", len(b.Reports))
	}
	if b.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", b.Dropped)
	}
	// Oldest-first eviction: the survivors are the newest three, in order.
	for i, want := range []string{"r6", "r7", "r8"} {
		if b.Reports[i].Vid != want {
			t.Fatalf("survivor %d = %s, want %s", i, b.Reports[i].Vid, want)
		}
	}
	if n := reg.Counter("periodic/dropped").Value(); n != 5 {
		t.Fatalf("dropped counter = %d, want 5", n)
	}
}

// BenchmarkPeriodicEngine measures one runDue pass over a large armed fleet
// (10k tasks across 32 servers) where only a staggered slice is due per
// tick. The heap makes each pass O(due · log n): per-tick cost tracks the
// due set, not the armed count.
func BenchmarkPeriodicEngine(b *testing.B) {
	for _, armed := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("armed%d", armed), func(b *testing.B) {
			const nServers = 32
			var clock testClock
			reg := metrics.NewRegistry()
			e := newPeriodicEngine(PeriodicConfig{Workers: 16, ServerInflight: 8, ResultBuffer: 4},
				clock.now, noJitter, okAppraise, reg, nil)
			for i := 0; i < armed; i++ {
				vid := fmt.Sprintf("vm-%05d", i)
				srv := fmt.Sprintf("cloud-server-%d", i%nServers+1)
				if err := e.start(vid, srv, properties.CPUAvailability, time.Second, false); err != nil {
					b.Fatal(err)
				}
			}
			// Stagger deadlines uniformly across a 1s period so each 10ms
			// tick finds ~armed/100 tasks due.
			e.mu.Lock()
			for i, tk := range e.queue {
				tk.nextDue = time.Duration(i%100) * 10 * time.Millisecond
			}
			heap.Init(&e.queue)
			e.mu.Unlock()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.advance(10 * time.Millisecond)
				e.runDue()
			}
			b.StopTimer()
			ticks := reg.Counter("periodic/ticks").Value()
			if b.N > 0 && ticks > 0 {
				b.ReportMetric(float64(ticks)/float64(b.N), "appraisals/tick")
			}
		})
	}
}
