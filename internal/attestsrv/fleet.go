package attestsrv

import (
	"time"

	"cloudmonatt/internal/metrics"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/wire"
)

// FleetEngine exposes the periodic monitoring engine standalone: one shard's
// scheduler without the appraisal stack behind it. The fleet-scale shard
// benchmark and the churn race test drive it directly — they need the
// engine's exact shedding, accounting and handoff semantics at task counts
// where running full appraisals per tick would measure crypto, not
// scheduling.
type FleetEngine struct {
	e *periodicEngine
}

// NewFleetEngine builds a standalone engine on the given clock and
// appraisal function. jitter may be nil when no task uses random intervals.
func NewFleetEngine(cfg PeriodicConfig, now func() time.Duration, jitter func(max int64) int64, appraise func(vid, serverID string, p properties.Property) (*wire.Report, error)) *FleetEngine {
	if jitter == nil {
		jitter = func(max int64) int64 { return max / 2 }
	}
	fn := func(_ obs.SpanContext, vid, serverID string, p properties.Property) (*wire.Report, error) {
		return appraise(vid, serverID, p)
	}
	return &FleetEngine{e: newPeriodicEngine(cfg, now, jitter, fn, metrics.NewRegistry(), obs.NewTracer(nil, "fleet", now))}
}

// Start arms periodic attestation of (vid, prop) at fixed frequency.
func (f *FleetEngine) Start(vid, serverID string, p properties.Property, freq time.Duration) error {
	return f.e.start(vid, serverID, p, freq, false)
}

// StartRandom arms periodic attestation at random intervals around the
// mean frequency (drawn from the engine's jitter source), so fleet-scale
// load spreads instead of ticking in lockstep.
func (f *FleetEngine) StartRandom(vid, serverID string, p properties.Property, freq time.Duration) error {
	return f.e.start(vid, serverID, p, freq, true)
}

// Stop disarms (vid, prop) and returns the undelivered batch.
func (f *FleetEngine) Stop(vid string, p properties.Property) PeriodicBatch {
	return f.e.stop(vid, p)
}

// RunDue dispatches and waits for every due task, returning the committed
// reports.
func (f *FleetEngine) RunDue() []*wire.Report {
	return f.e.runDue()
}

// NextDue returns the earliest pending deadline.
func (f *FleetEngine) NextDue() (time.Duration, bool) {
	return f.e.nextDue()
}

// ExportWhere disarms and returns every task whose VM the predicate says to
// move (the shard-handoff primitive).
func (f *FleetEngine) ExportWhere(move func(vid string) bool) []PeriodicTaskState {
	return f.e.exportWhere(move)
}

// Import arms one handed-off task at its preserved deadline; false means
// the stream was already armed here (idempotent retry).
func (f *FleetEngine) Import(st PeriodicTaskState) bool {
	return f.e.importTask(st)
}

// TaskKeys lists the armed (vid, prop) keys.
func (f *FleetEngine) TaskKeys() []string {
	return f.e.taskKeys()
}

// Metrics exposes the engine's counters (ticks, produced, skipped,
// failures, stopped-discards, dropped).
func (f *FleetEngine) Metrics() *metrics.Registry {
	return f.e.reg
}
