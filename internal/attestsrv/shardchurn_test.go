package attestsrv

// Shard-churn handoff race: two standalone periodic engines play two shards
// of a ring while ownership flips under live dispatch. The invariants under
// -race: every armed stream survives every handoff on exactly one engine
// (none lost, none double-armed), and both engines' tick accounting stays
// exact — an exported in-flight appraisal must land as a stopped-discard,
// never as a produced report on the wrong shard and never as a leak.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/shard"
	"cloudmonatt/internal/wire"
)

func TestShardChurnHandoffRace(t *testing.T) {
	// One physical core serializes goroutines enough to hide interleavings;
	// force real preemption so exports race actual in-flight dispatches.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	const (
		streams = 120
		rounds  = 60
		freq    = 2 * time.Millisecond
	)
	var clock atomic.Int64
	now := func() time.Duration { return time.Duration(clock.Load()) }
	appraise := func(vid, serverID string, p properties.Property) (*wire.Report, error) {
		return &wire.Report{Vid: vid, ServerID: serverID, Prop: p}, nil
	}
	engines := map[string]*FleetEngine{
		"shard-a": NewFleetEngine(PeriodicConfig{Workers: 4}, now, nil, appraise),
		"shard-b": NewFleetEngine(PeriodicConfig{Workers: 4}, now, nil, appraise),
	}
	// The ring decides placement; flipping the generation remaps every
	// stream deterministically without pausing dispatch.
	rings := [2]*shard.Ring{shard.NewRing(1, 0), shard.NewRing(2, 0)}
	for _, r := range rings {
		r.Join("shard-a")
		r.Join("shard-b")
	}
	var gen atomic.Int32
	ownerOf := func(vid string) string {
		owner, _, _ := rings[gen.Load()%2].Lookup(vid)
		return owner
	}

	vids := make([]string, streams)
	for i := range vids {
		vids[i] = fmt.Sprintf("vm-%03d", i)
		if err := engines[ownerOf(vids[i])].Start(vids[i], "srv", properties.CPUAvailability, freq); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func(e *FleetEngine) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					e.RunDue()
				}
			}
		}(e)
	}

	// Churn loop: advance the clock so dispatches are live, flip the ring
	// generation, and hand off every stream the new generation reassigns.
	for round := 0; round < rounds; round++ {
		clock.Add(int64(freq))
		gen.Add(1)
		for name, e := range engines {
			exported := e.ExportWhere(func(vid string) bool { return ownerOf(vid) != name })
			for _, st := range exported {
				if !engines[ownerOf(st.Vid)].Import(st) {
					t.Errorf("round %d: stream %s/%s double-armed on %s", round, st.Vid, st.Prop, ownerOf(st.Vid))
				}
			}
		}
	}
	close(stop)
	wg.Wait()

	// No stream lost, none duplicated, each on its current owner.
	seen := make(map[string]string)
	for name, e := range engines {
		for _, k := range e.TaskKeys() {
			if prev, dup := seen[k]; dup {
				t.Fatalf("stream %q armed on both %s and %s", k, prev, name)
			}
			seen[k] = name
		}
	}
	if len(seen) != streams {
		t.Fatalf("churn lost streams: %d of %d armed", len(seen), streams)
	}
	for _, vid := range vids {
		k := vid + "|" + string(properties.CPUAvailability)
		if owner := seen[k]; owner != ownerOf(vid) {
			t.Fatalf("stream %q on %s, ring owns it to %s", k, owner, ownerOf(vid))
		}
	}

	// Exact accounting on both engines: every tick resolved as produced,
	// skipped, failed, or discarded-by-stop (the export path) — an in-flight
	// appraisal crossing a handoff must not leak or double-count.
	produced := int64(0)
	for name, e := range engines {
		reg := e.Metrics()
		ticks := reg.Counter("periodic/ticks").Value()
		resolved := reg.Counter("periodic/produced").Value() +
			reg.Counter("periodic/skipped").Value() +
			reg.Counter("periodic/failures").Value() +
			reg.Counter("periodic/stopped-discards").Value()
		if ticks != resolved {
			t.Fatalf("%s accounting: ticks=%d resolved=%d", name, ticks, resolved)
		}
		produced += reg.Counter("periodic/produced").Value()
	}
	if produced == 0 {
		t.Fatal("no reports produced under churn — the race never ran")
	}
}
