package attestsrv

import (
	"fmt"
	"net"
	"time"

	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/secchan"
	"cloudmonatt/internal/wire"
)

// RPC methods served by the Attestation Server (for the Cloud Controller).
//
// Every method below is vm-addressed: the handler gates on ring ownership
// of the VM id (checkOwner), so a call landing on the wrong shard draws a
// typed WrongShardError. The marker is machine-read by monatt-vet's
// shardroute analyzer — call sites must reach these through an
// attestRoute/callRouted pair, never a raw rpc client.
const (
	MethodAppraise      = "appraise"       // vm-addressed
	MethodRegisterVM    = "register-vm"    // vm-addressed
	MethodForgetVM      = "forget-vm"      // vm-addressed
	MethodPeriodicStart = "periodic-start" // vm-addressed
	MethodPeriodicStop  = "periodic-stop"  // vm-addressed
	MethodPeriodicFetch = "periodic-fetch" // vm-addressed
	MethodRebindVM      = "rebind-vm"      // vm-addressed
)

// RebindRequest re-points a VM's periodic tasks after migration.
type RebindRequest struct {
	Vid      string
	ServerID string
}

// PeriodicControl starts or addresses a periodic attestation task.
type PeriodicControl struct {
	Vid      string
	ServerID string
	Prop     properties.Property
	Freq     time.Duration
	Random   bool
}

// Handler returns the RPC dispatch for the Attestation Server.
//
// Every VM-addressed method is gated on ring ownership (checkOwner) at the
// RPC boundary, not inside the Server methods: in-process periodic
// appraisals of a task exported mid-flight must still resolve through the
// engine's stopped-discard accounting rather than erroring. A misrouted
// request is refused with a WrongShardError, which reaches the caller as a
// handler refusal (rpc.RemoteError) — deliberately outside the transport
// retry taxonomy, since re-sending the same bytes here can never succeed.
func (s *Server) Handler() rpc.Handler {
	return func(peer rpc.Peer, method string, body []byte) ([]byte, error) {
		switch method {
		case MethodAppraise:
			var req wire.AppraisalRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := s.checkOwner(req.Vid); err != nil {
				return nil, err
			}
			rep, err := s.AppraiseTraced(peer.Trace, req)
			if err != nil {
				return nil, err
			}
			return rpc.Encode(rep)
		case MethodRegisterVM:
			var rec VMRecord
			if err := rpc.Decode(body, &rec); err != nil {
				return nil, err
			}
			if err := s.checkOwner(rec.Vid); err != nil {
				return nil, err
			}
			s.RegisterVM(rec)
			return rpc.Encode(true)
		case MethodForgetVM:
			var req struct{ Vid string }
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := s.checkOwner(req.Vid); err != nil {
				return nil, err
			}
			s.ForgetVM(req.Vid)
			return rpc.Encode(true)
		case MethodPeriodicStart:
			var req PeriodicControl
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := s.checkOwner(req.Vid); err != nil {
				return nil, err
			}
			var err error
			if req.Random {
				err = s.StartPeriodicRandom(req.Vid, req.ServerID, req.Prop, req.Freq)
			} else {
				err = s.StartPeriodic(req.Vid, req.ServerID, req.Prop, req.Freq)
			}
			if err != nil {
				return nil, err
			}
			return rpc.Encode(true)
		case MethodPeriodicStop:
			var req PeriodicControl
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := s.checkOwner(req.Vid); err != nil {
				return nil, err
			}
			return rpc.Encode(s.StopPeriodicBatch(req.Vid, req.Prop))
		case MethodPeriodicFetch:
			var req PeriodicControl
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := s.checkOwner(req.Vid); err != nil {
				return nil, err
			}
			return rpc.Encode(s.FetchPeriodicBatch(req.Vid, req.Prop))
		case MethodRebindVM:
			var req RebindRequest
			if err := rpc.Decode(body, &req); err != nil {
				return nil, err
			}
			if err := s.checkOwner(req.Vid); err != nil {
				return nil, err
			}
			s.RebindVM(req.Vid, req.ServerID)
			return rpc.Encode(true)
		}
		return nil, fmt.Errorf("attestsrv: unknown method %q", method)
	}
}

// Serve starts the Attestation Server's RPC endpoint on l.
func (s *Server) Serve(l net.Listener, verify secchan.VerifyPeer) {
	go rpc.Serve(l, secchan.Config{Identity: s.cfg.Identity, Verify: verify, Rand: s.cfg.Rand}, s.Handler())
}
