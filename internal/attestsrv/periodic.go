package attestsrv

// The periodic monitoring engine (paper §3.2.1, §5.2, evaluated §7.2):
// "continuous security health monitoring" of every VM in the cloud. The
// original driver was a linear map scan that appraised due tasks
// sequentially; at cloud scale (the paper's pitch is whole-cloud periodic
// attestation) that is O(n) per tick with zero fan-out. This engine keeps
// the armed tasks in a min-heap keyed by next deadline, so finding the due
// set costs O(due · log n), and runs due appraisals through a bounded
// worker pool with a per-cloud-server in-flight cap, so one slow attester
// cannot starve monitoring of the rest of the fleet.
//
// Overload semantics are explicit:
//
//   - Fixed-rate scheduling: a task's next deadline is armed when it is
//     dispatched, not when its appraisal finishes, so a slow appraisal does
//     not silently stretch the monitoring interval.
//   - Shedding: when a deadline arrives while the previous appraisal of the
//     same task is still in flight, the tick is skipped and counted
//     (periodic/skipped) instead of queueing a pileup.
//   - Bounded buffers: per-task result rings drop the oldest undelivered
//     report when full and count the loss (periodic/dropped), so a customer
//     that never fetches cannot grow the server without bound.
//
// Every due deadline therefore resolves to exactly one outcome: a report
// committed to the ring, a skip, an appraisal failure, or a discard because
// the task was stopped mid-flight. The engine counts each, and the race
// test pins ticks == produced + skipped + failed + discarded.

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"cloudmonatt/internal/metrics"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/wire"
)

// PeriodicConfig tunes the periodic monitoring engine.
type PeriodicConfig struct {
	// Workers bounds how many appraisals run concurrently across all cloud
	// servers. Default 8.
	Workers int
	// ServerInflight bounds concurrent appraisals per cloud server, so a
	// slow or partitioned server consumes at most this many workers.
	// Default 2.
	ServerInflight int
	// ResultBuffer bounds each task's undelivered-result ring; the oldest
	// report is dropped (and counted) when a new one arrives at a full
	// ring. Default 64.
	ResultBuffer int
}

func (c PeriodicConfig) withDefaults() PeriodicConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.ServerInflight <= 0 {
		c.ServerInflight = 2
	}
	if c.ResultBuffer <= 0 {
		c.ResultBuffer = 64
	}
	return c
}

// PeriodicBatch is one drain of a task's undelivered results, with the
// loss accounting accumulated since the previous drain.
type PeriodicBatch struct {
	Reports []*wire.Report
	// Dropped counts reports evicted from the bounded ring since the last
	// drain (the customer fetched too rarely for the buffer size).
	Dropped uint64
	// Skipped counts due ticks shed since the last drain because the
	// previous appraisal of this task was still in flight.
	Skipped uint64
}

// periodicTask is one armed (vid, property) monitoring stream.
type periodicTask struct {
	vid      string
	serverID string
	prop     properties.Property
	freq     time.Duration
	random   bool // randomize each interval (Table 1's "random intervals")

	nextDue time.Duration
	heapIdx int  // position in the deadline heap; -1 when not queued
	running bool // an appraisal is in flight
	stopped bool // disarmed; in-flight results must be discarded

	// Bounded result ring: ring[head] is the oldest undelivered report.
	ring    []*wire.Report
	head    int
	n       int
	dropped uint64 // evictions since last drain
	skipped uint64 // shed ticks since last drain
}

// interval returns the next gap: the fixed frequency, or — in random mode —
// uniform in [freq/2, 3·freq/2], so an attacker cannot time malicious
// activity to dodge the measurement windows (paper §3.2.1, §4.4.3).
func (t *periodicTask) interval(draw func(max int64) int64) time.Duration {
	if !t.random {
		return t.freq
	}
	if t.freq/2 <= 0 {
		return t.freq
	}
	return t.freq/2 + time.Duration(draw(int64(t.freq)))
}

// push appends a report to the ring, evicting the oldest when full.
func (t *periodicTask) push(rep *wire.Report, cap int) (evicted bool) {
	if len(t.ring) == 0 {
		t.ring = make([]*wire.Report, cap)
	}
	if t.n == len(t.ring) {
		t.ring[t.head] = rep
		t.head = (t.head + 1) % len(t.ring)
		t.dropped++
		return true
	}
	t.ring[(t.head+t.n)%len(t.ring)] = rep
	t.n++
	return false
}

// drain removes and returns all buffered reports in arrival order.
func (t *periodicTask) drain() []*wire.Report {
	if t.n == 0 {
		return nil
	}
	out := make([]*wire.Report, 0, t.n)
	for i := 0; i < t.n; i++ {
		idx := (t.head + i) % len(t.ring)
		out = append(out, t.ring[idx])
		t.ring[idx] = nil
	}
	t.head, t.n = 0, 0
	return out
}

// --- deadline heap ---

// dueHeap is a min-heap of tasks ordered by nextDue (container/heap).
type dueHeap []*periodicTask

func (h dueHeap) Len() int           { return len(h) }
func (h dueHeap) Less(i, j int) bool { return h[i].nextDue < h[j].nextDue }
func (h dueHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *dueHeap) Push(x any)        { t := x.(*periodicTask); t.heapIdx = len(*h); *h = append(*h, t) }
func (h *dueHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}

// --- engine ---

// appraiseFunc runs one appraisal of (vid, prop) against a cloud server,
// recording its spans under parent (the engine's per-tick root span). The
// engine injects the Attestation Server's full appraisal path here;
// benchmarks and the scheduler race test inject stubs.
type appraiseFunc func(parent obs.SpanContext, vid, serverID string, p properties.Property) (*wire.Report, error)

// periodicEngine is the concurrent monitoring engine.
type periodicEngine struct {
	cfg      PeriodicConfig
	now      func() time.Duration
	jitter   func(max int64) int64
	appraise appraiseFunc
	reg      *metrics.Registry
	tracer   *obs.Tracer // nil (no-op) when observability is unset

	// workerSem bounds total in-flight appraisals.
	workerSem chan struct{}

	mu        sync.Mutex
	tasks     map[string]*periodicTask
	queue     dueHeap
	serverSem map[string]chan struct{} // per-cloud-server in-flight caps
	inflight  int
}

func newPeriodicEngine(cfg PeriodicConfig, now func() time.Duration, jitter func(int64) int64, appraise appraiseFunc, reg *metrics.Registry, tracer *obs.Tracer) *periodicEngine {
	cfg = cfg.withDefaults()
	return &periodicEngine{
		cfg:       cfg,
		now:       now,
		jitter:    jitter,
		appraise:  appraise,
		reg:       reg,
		tracer:    tracer,
		workerSem: make(chan struct{}, cfg.Workers),
		tasks:     make(map[string]*periodicTask),
		serverSem: make(map[string]chan struct{}),
	}
}

// start arms (vid, prop). Re-arming an existing stream replaces it: the old
// task is stopped (any in-flight result is discarded) and its buffer is
// abandoned.
func (e *periodicEngine) start(vid, serverID string, p properties.Property, freq time.Duration, random bool) error {
	if freq <= 0 {
		return fmt.Errorf("attestsrv: periodic frequency must be positive")
	}
	t := &periodicTask{
		vid:      vid,
		serverID: serverID,
		prop:     p,
		freq:     freq,
		random:   random,
		heapIdx:  -1,
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := taskKey(vid, p)
	if old, ok := e.tasks[key]; ok {
		e.unlink(old)
	}
	t.nextDue = e.now() + t.interval(e.jitter)
	e.tasks[key] = t
	heap.Push(&e.queue, t)
	return nil
}

// unlink disarms a task in place: out of the heap, marked stopped so an
// in-flight appraisal discards its result. Caller holds e.mu.
func (e *periodicEngine) unlink(t *periodicTask) {
	t.stopped = true
	if t.heapIdx >= 0 {
		heap.Remove(&e.queue, t.heapIdx)
	}
}

// stop disarms (vid, prop) and returns the undelivered results with their
// loss accounting. A missing task returns an empty batch.
func (e *periodicEngine) stop(vid string, p properties.Property) PeriodicBatch {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := taskKey(vid, p)
	t, ok := e.tasks[key]
	if !ok {
		return PeriodicBatch{}
	}
	delete(e.tasks, key)
	e.unlink(t)
	return e.drainLocked(t)
}

// fetch drains the undelivered results for (vid, prop).
func (e *periodicEngine) fetch(vid string, p properties.Property) PeriodicBatch {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[taskKey(vid, p)]
	if !ok {
		return PeriodicBatch{}
	}
	return e.drainLocked(t)
}

func (e *periodicEngine) drainLocked(t *periodicTask) PeriodicBatch {
	b := PeriodicBatch{Reports: t.drain(), Dropped: t.dropped, Skipped: t.skipped}
	t.dropped, t.skipped = 0, 0
	return b
}

// PeriodicTaskState is the portable snapshot of one armed monitoring
// stream: everything a shard needs to continue the stream exactly where
// its previous owner left it — the preserved deadline (no re-jitter, so a
// handoff cannot stretch a measurement interval), the undelivered reports,
// and the loss accounting.
type PeriodicTaskState struct {
	Vid      string
	ServerID string
	Prop     properties.Property
	Freq     time.Duration
	Random   bool
	NextDue  time.Duration
	Reports  []*wire.Report
	Dropped  uint64
	Skipped  uint64
}

// exportWhere disarms and returns every task whose VM the predicate says
// to move. In-flight appraisals of exported tasks resolve as counted
// stopped-discards here — the importing shard owns all future ticks, so
// a report landing after export would risk double delivery.
func (e *periodicEngine) exportWhere(move func(vid string) bool) []PeriodicTaskState {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []PeriodicTaskState
	for key, t := range e.tasks {
		if !move(t.vid) {
			continue
		}
		delete(e.tasks, key)
		e.unlink(t)
		out = append(out, PeriodicTaskState{
			Vid:      t.vid,
			ServerID: t.serverID,
			Prop:     t.prop,
			Freq:     t.freq,
			Random:   t.random,
			NextDue:  t.nextDue,
			Reports:  t.drain(),
			Dropped:  t.dropped,
			Skipped:  t.skipped,
		})
	}
	return out
}

// importTask arms a handed-off task at its preserved deadline. Returns
// false without touching anything if (vid, prop) is already armed here:
// that guard is what makes a retried handoff idempotent — an import can
// never double-arm a stream.
func (e *periodicEngine) importTask(st PeriodicTaskState) bool {
	if st.Freq <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := taskKey(st.Vid, st.Prop)
	if _, ok := e.tasks[key]; ok {
		return false
	}
	t := &periodicTask{
		vid:      st.Vid,
		serverID: st.ServerID,
		prop:     st.Prop,
		freq:     st.Freq,
		random:   st.Random,
		nextDue:  st.NextDue,
		heapIdx:  -1,
		dropped:  st.Dropped,
		skipped:  st.Skipped,
	}
	for _, rep := range st.Reports {
		if t.push(rep, e.cfg.ResultBuffer) {
			e.reg.Counter("periodic/dropped").Inc()
		}
	}
	e.tasks[key] = t
	heap.Push(&e.queue, t)
	return true
}

// taskKeys lists the armed (vid, prop) keys; tests use it to assert a
// handoff conserved the task set.
func (e *periodicEngine) taskKeys() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.tasks))
	for k := range e.tasks {
		out = append(out, k)
	}
	return out
}

// rebind points a VM's tasks at its new host after a migration.
func (e *periodicEngine) rebind(vid, serverID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range e.tasks {
		if t.vid == vid {
			t.serverID = serverID
		}
	}
}

// forget disarms every task of a VM (termination).
func (e *periodicEngine) forget(vid string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, t := range e.tasks {
		if t.vid == vid {
			delete(e.tasks, key)
			e.unlink(t)
		}
	}
}

// nextDue returns the earliest pending deadline (heap peek, O(1)).
func (e *periodicEngine) nextDue() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].nextDue, true
}

// serverSemFor returns the per-server in-flight semaphore. Caller holds
// e.mu.
func (e *periodicEngine) serverSemFor(serverID string) chan struct{} {
	sem, ok := e.serverSem[serverID]
	if !ok {
		sem = make(chan struct{}, e.cfg.ServerInflight)
		e.serverSem[serverID] = sem
	}
	return sem
}

// runDue dispatches every task whose deadline has passed to the worker
// pool, waits for the dispatched batch, and returns the reports committed
// for still-live tasks. Each popped deadline resolves to exactly one
// outcome (report, skip, failure, or stopped-discard), every one counted.
func (e *periodicEngine) runDue() []*wire.Report {
	now := e.now()
	type dispatch struct {
		t        *periodicTask
		serverID string
		sem      chan struct{}
	}
	var batch []dispatch
	e.mu.Lock()
	for len(e.queue) > 0 && e.queue[0].nextDue <= now {
		t := heap.Pop(&e.queue).(*periodicTask)
		e.reg.Counter("periodic/ticks").Inc()
		// Fixed-rate: the next deadline is armed at dispatch, so the
		// monitoring interval is not stretched by appraisal time.
		t.nextDue = now + t.interval(e.jitter)
		heap.Push(&e.queue, t)
		if t.running {
			// Previous appraisal still in flight: shed this tick. The shed
			// tick still gets a (zero-length) trace so overload is visible
			// per request, not just as a counter.
			t.skipped++
			e.reg.Counter("periodic/skipped").Inc()
			ssp := e.tracer.Start(obs.SpanContext{}, "periodic")
			ssp.SetVM(t.vid, string(t.prop))
			ssp.Annotate("engine", "skipped")
			ssp.End("skipped")
			continue
		}
		t.running = true
		batch = append(batch, dispatch{t: t, serverID: t.serverID, sem: e.serverSemFor(t.serverID)})
	}
	if len(batch) > 0 || len(e.tasks) > 0 {
		e.reg.IntSummary("periodic/due-batch").Observe(int64(len(batch)))
	}
	e.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}

	var (
		wg       sync.WaitGroup
		prodMu   sync.Mutex
		produced []*wire.Report
	)
	for _, d := range batch {
		wg.Add(1)
		go func(d dispatch) {
			defer wg.Done()
			// Server slot first, pool slot second: tasks queued behind one
			// slow cloud server wait on its cap without pinning a worker.
			d.sem <- struct{}{}
			defer func() { <-d.sem }()
			e.workerSem <- struct{}{}
			defer func() { <-e.workerSem }()

			e.mu.Lock()
			e.inflight++
			e.reg.IntSummary("periodic/inflight").Observe(int64(e.inflight))
			e.mu.Unlock()

			// Each tick is its own trace: the engine, not a customer,
			// originates the request, so the root span is minted here.
			sp := e.tracer.Start(obs.SpanContext{}, "periodic")
			sp.SetVM(d.t.vid, string(d.t.prop))
			rep, err := e.appraise(sp.Context(), d.t.vid, d.serverID, d.t.prop)

			e.mu.Lock()
			e.inflight--
			d.t.running = false
			switch {
			case d.t.stopped:
				// Stopped (or replaced/forgotten) while we appraised: the
				// customer already received the final drain — never deliver
				// a report for a stopped task.
				e.reg.Counter("periodic/stopped-discards").Inc()
				sp.Annotate("engine", "stopped-discard")
				sp.End("discarded")
			case err != nil:
				e.reg.Counter("periodic/failures").Inc()
				sp.Annotate("engine", "failure")
				sp.EndErr(err)
			default:
				if d.t.push(rep, e.cfg.ResultBuffer) {
					e.reg.Counter("periodic/dropped").Inc()
				}
				e.reg.Counter("periodic/produced").Inc()
				sp.Annotate("engine", "produced")
				sp.End("")
				e.mu.Unlock()
				prodMu.Lock()
				produced = append(produced, rep)
				prodMu.Unlock()
				return
			}
			e.mu.Unlock()
		}(d)
	}
	wg.Wait()
	return produced
}
