// Package baseline implements the pre-CloudMonatt state of the art the
// paper compares against (§2.2): vTPM-based *binary* attestation, where the
// customer attests the VM directly through its virtual TPM and an in-guest
// measurement agent.
//
// The flow is faithful to the classic design — and therefore inherits its
// two structural blind spots, which the comparison bench demonstrates:
//
//  1. the measurement agent runs *inside* the guest OS, so once the guest
//     is compromised, the agent reports what the attacker lets it see
//     (a rootkit's hidden processes never reach the vTPM);
//  2. the vTPM only sees the VM itself, so attacks mounted from the VM's
//     *environment* — co-resident covert channels, scheduler starvation —
//     are entirely outside its measurement model.
package baseline

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/guest"
	"cloudmonatt/internal/tpm"
	"cloudmonatt/internal/vtpm"
)

// PCR assignments inside the virtual TPM.
const (
	vpcrBoot  = 0 // guest boot chain, extended at VM boot
	vpcrTasks = 8 // running-task measurements, extended by the in-guest agent
)

// Agent is the in-guest measurement agent: the component the TCG
// integrity-measurement architecture requires inside the attested system.
// It can only measure what the guest OS shows it.
type Agent struct {
	vid  string
	g    *guest.OS
	inst *vtpm.Instance
}

// Install provisions a vTPM instance for the VM and measures the guest's
// boot chain into it (the launch-time phase of binary attestation).
func Install(mgr *vtpm.Manager, vid string, g *guest.OS) (*Agent, error) {
	inst, err := mgr.Create(vid)
	if err != nil {
		return nil, err
	}
	for _, c := range g.BootChain() {
		if _, err := inst.TPM.Measure(vpcrBoot, c.Name, c.Data); err != nil {
			return nil, err
		}
	}
	return &Agent{vid: vid, g: g, inst: inst}, nil
}

// MeasureRuntime extends the current task list into the vTPM — as the guest
// OS reports it. A rootkit that filters itself from in-guest queries is
// invisible here; this is the design flaw, not a bug.
func (a *Agent) MeasureRuntime() ([]string, error) {
	if err := a.inst.TPM.ResetPCR(vpcrTasks); err != nil {
		return nil, err
	}
	var names []string
	for _, p := range a.g.GuestVisibleTasks() {
		names = append(names, p.Name)
		if _, err := a.inst.TPM.Measure(vpcrTasks, "task:"+p.Name, []byte(p.Name)); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// Evidence is the binary-attestation response the guest returns to the
// customer: a vTPM quote, the measurement log explaining it, the reported
// task list, and the endorsement chaining the vAIK to hardware.
type Evidence struct {
	Vid         string
	Quote       *tpm.Quote
	Log         []tpm.Event
	Tasks       []string
	VAIK        []byte
	Endorsement []byte
}

// Attest serves a customer's challenge: measure, quote, respond.
func (a *Agent) Attest(nonce cryptoutil.Nonce) (*Evidence, error) {
	tasks, err := a.MeasureRuntime()
	if err != nil {
		return nil, err
	}
	q, err := a.inst.TPM.GenerateQuote([]int{vpcrBoot, vpcrTasks}, nonce)
	if err != nil {
		return nil, err
	}
	return &Evidence{
		Vid:         a.vid,
		Quote:       q,
		Log:         a.inst.TPM.Log(),
		Tasks:       tasks,
		VAIK:        append([]byte(nil), a.inst.TPM.AIK()...),
		Endorsement: a.inst.Endorsement,
	}, nil
}

// References is what the customer knows: the hardware endorsement key, the
// pristine guest boot-chain digests, and the expected task set.
type References struct {
	HardwareKey   ed25519.PublicKey
	GoldenBoot    map[string][32]byte
	TaskAllowlist []string
}

// Verdict is the customer's binary-attestation conclusion.
type Verdict struct {
	Healthy bool
	Reason  string
}

// Verify is the customer-side appraisal of binary-attestation evidence:
// endorsement chain, quote signature and nonce, log replay, and comparison
// with the golden values. It is *sound for what it can see* — the blind
// spots are in what never reaches the evidence.
func Verify(ev *Evidence, nonce cryptoutil.Nonce, refs References) (Verdict, error) {
	if ev == nil {
		return Verdict{}, errors.New("baseline: nil evidence")
	}
	if err := vtpm.VerifyEndorsement(refs.HardwareKey, ev.Vid, ed25519.PublicKey(ev.VAIK), ev.Endorsement); err != nil {
		return Verdict{}, err
	}
	if err := tpm.VerifyQuote(ev.Quote, ed25519.PublicKey(ev.VAIK), nonce); err != nil {
		return Verdict{}, err
	}
	replayed := tpm.ReplayLog(ev.Log)
	for i, pcr := range ev.Quote.PCRs {
		if replayed[pcr] != ev.Quote.Values[i] {
			return Verdict{}, fmt.Errorf("baseline: log does not explain PCR %d", pcr)
		}
	}
	// Boot-chain appraisal: every boot event must be known-good.
	for _, e := range ev.Log {
		if e.PCR != vpcrBoot {
			continue
		}
		if golden, ok := refs.GoldenBoot[e.Description]; !ok || e.Measurement != golden {
			return Verdict{Healthy: false, Reason: "guest boot component " + e.Description + " modified"}, nil
		}
	}
	// Task appraisal against the allowlist — of the *reported* tasks.
	allowed := make(map[string]bool, len(refs.TaskAllowlist))
	for _, n := range refs.TaskAllowlist {
		allowed[n] = true
	}
	for _, task := range ev.Tasks {
		if !allowed[task] {
			return Verdict{Healthy: false, Reason: "unknown task " + task}, nil
		}
	}
	return Verdict{Healthy: true, Reason: "binary measurements match golden values"}, nil
}

// GoldenBoot computes the pristine guest boot references.
func GoldenBoot() map[string][32]byte {
	out := make(map[string][32]byte)
	for _, c := range guest.NewOS().BootChain() {
		out[c.Name] = sha256.Sum256(c.Data)
	}
	return out
}

// Supports reports whether binary attestation can evidence a given threat
// at all. The environment-level threats return false: there is no vTPM
// measurement that could carry them — the structural limitation CloudMonatt
// exists to fix.
func Supports(threat string) bool {
	switch threat {
	case "boot-tamper", "visible-malware":
		return true
	case "rootkit", "covert-channel", "cpu-starvation":
		return false
	}
	return false
}
