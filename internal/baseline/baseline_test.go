package baseline

import (
	"crypto/rand"
	"testing"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/guest"
	"cloudmonatt/internal/vtpm"
)

func rig(t *testing.T, g *guest.OS) (*Agent, References) {
	t.Helper()
	mgr, err := vtpm.NewManager("srv", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := Install(mgr, "vm-1", g)
	if err != nil {
		t.Fatal(err)
	}
	return agent, References{
		HardwareKey:   mgr.HardwareKey(),
		GoldenBoot:    GoldenBoot(),
		TaskAllowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
	}
}

func attest(t *testing.T, a *Agent, refs References) Verdict {
	t.Helper()
	nonce := cryptoutil.MustNonce()
	ev, err := a.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Verify(ev, nonce, refs)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCleanGuestHealthy(t *testing.T) {
	a, refs := rig(t, guest.NewOS())
	if v := attest(t, a, refs); !v.Healthy {
		t.Fatalf("clean guest judged unhealthy: %v", v)
	}
}

func TestDetectsBootTamper(t *testing.T) {
	g := guest.NewOS()
	if err := g.TamperBootChain("guest-kernel"); err != nil {
		t.Fatal(err)
	}
	a, refs := rig(t, g)
	if v := attest(t, a, refs); v.Healthy {
		t.Fatal("tampered boot chain passed binary attestation")
	}
}

func TestDetectsVisibleMalware(t *testing.T) {
	g := guest.NewOS()
	a, refs := rig(t, g)
	g.Spawn("cryptominer")
	if v := attest(t, a, refs); v.Healthy {
		t.Fatal("visible malware passed binary attestation")
	}
}

// TestRootkitBlindSpot documents the structural flaw: the in-guest agent
// reports the guest-visible task list, so a rootkit that hides from the
// guest OS is invisible to binary attestation. (CloudMonatt's VMI path
// catches this — see interpret.TestRuntimeIntegrityDetectsRootkit.)
func TestRootkitBlindSpot(t *testing.T) {
	g := guest.NewOS()
	a, refs := rig(t, g)
	g.InfectRootkit("stealth-miner")
	v := attest(t, a, refs)
	if !v.Healthy {
		t.Fatalf("expected the baseline to MISS the rootkit (its defining blind spot); got %v", v)
	}
}

func TestVerifyRejectsForgery(t *testing.T) {
	a, refs := rig(t, guest.NewOS())
	nonce := cryptoutil.MustNonce()
	ev, err := a.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	// Stale nonce.
	if _, err := Verify(ev, cryptoutil.MustNonce(), refs); err == nil {
		t.Fatal("replayed evidence accepted")
	}
	// Tampered log.
	ev2, _ := a.Attest(nonce)
	_ = ev2
	nonce2 := cryptoutil.MustNonce()
	ev3, _ := a.Attest(nonce2)
	ev3.Log[0].Measurement[0] ^= 1
	if _, err := Verify(ev3, nonce2, refs); err == nil {
		t.Fatal("tampered log accepted")
	}
	// Nil evidence.
	if _, err := Verify(nil, nonce, refs); err == nil {
		t.Fatal("nil evidence accepted")
	}
	// Foreign hardware root.
	otherMgr, _ := vtpm.NewManager("other", rand.Reader)
	badRefs := refs
	badRefs.HardwareKey = otherMgr.HardwareKey()
	nonce3 := cryptoutil.MustNonce()
	ev4, _ := a.Attest(nonce3)
	if _, err := Verify(ev4, nonce3, badRefs); err == nil {
		t.Fatal("evidence accepted under foreign hardware root")
	}
}

func TestSupportsMatrix(t *testing.T) {
	for threat, want := range map[string]bool{
		"boot-tamper":     true,
		"visible-malware": true,
		"rootkit":         false,
		"covert-channel":  false,
		"cpu-starvation":  false,
		"unknown":         false,
	} {
		if got := Supports(threat); got != want {
			t.Errorf("Supports(%q) = %v, want %v", threat, got, want)
		}
	}
}

func TestRuntimeRemeasurementIsFresh(t *testing.T) {
	// The task PCR is reset and re-extended per attestation, so a process
	// that exits no longer taints later attestations.
	g := guest.NewOS()
	a, refs := rig(t, g)
	p := g.Spawn("cryptominer")
	if v := attest(t, a, refs); v.Healthy {
		t.Fatal("malware missed while running")
	}
	if err := g.Kill(p.PID); err != nil {
		t.Fatal(err)
	}
	if v := attest(t, a, refs); !v.Healthy {
		t.Fatalf("guest still unhealthy after malware exited: %v", v)
	}
}
