package binenc

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUint8(b, 0xC1)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendUint32(b, 0xDEADBEEF)
	b = AppendUint64(b, 1<<63|42)
	b = AppendBytes(b, []byte("payload"))
	b = AppendBytes(b, nil)
	b = AppendString(b, "name")

	r := NewReader(b)
	if got := r.Uint8(); got != 0xC1 {
		t.Fatalf("Uint8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 1<<63|42 {
		t.Fatalf("Uint64 = %#x", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Bytes = %q", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("empty field decoded to %v, want nil", got)
	}
	if got := r.String(); got != "name" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestTruncatedAndTrailing(t *testing.T) {
	r := NewReader([]byte{0, 0, 0, 9, 'x'})
	if got := r.Bytes(); got != nil || r.Err() == nil {
		t.Fatalf("truncated field: got %v err %v", got, r.Err())
	}
	if !errors.Is(r.Done(), ErrTruncated) {
		t.Fatalf("Done after truncation: %v", r.Done())
	}

	r = NewReader([]byte{7, 8})
	r.Uint8()
	if err := r.Done(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing bytes not rejected: %v", err)
	}
}

func TestBoolRejectsNonCanonical(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if !errors.Is(r.Err(), ErrNonCanonical) {
		t.Fatalf("Bool(2) err = %v", r.Err())
	}
}

func TestErrorsStick(t *testing.T) {
	r := NewReader(nil)
	r.Uint64()
	if r.Err() == nil {
		t.Fatal("no error on empty read")
	}
	// Every later read is a no-op returning zero values.
	if r.Uint32() != 0 || r.Bytes() != nil || r.String() != "" || r.Uint8() != 0 {
		t.Fatal("reads after error returned non-zero values")
	}
}

func TestCountBoundsAllocation(t *testing.T) {
	// A count claiming 2^31 elements over a 4-byte remainder must fail
	// instead of sizing a slice from attacker input.
	var b []byte
	b = AppendUint32(b, 1<<31)
	b = append(b, 1, 2, 3, 4)
	r := NewReader(b)
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("hostile count admitted: n=%d err=%v", n, r.Err())
	}

	b = AppendUint32(nil, 2)
	b = append(b, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
	r = NewReader(b)
	if n := r.Count(8); n != 2 || r.Err() != nil {
		t.Fatalf("honest count rejected: n=%d err=%v", n, r.Err())
	}
}

func TestFixed(t *testing.T) {
	var dst [4]byte
	r := NewReader([]byte{1, 2, 3, 4})
	r.Fixed(dst[:])
	if dst != [4]byte{1, 2, 3, 4} || r.Done() != nil {
		t.Fatalf("Fixed: %v %v", dst, r.Done())
	}
	r = NewReader([]byte{1, 2})
	r.Fixed(dst[:])
	if r.Err() == nil {
		t.Fatal("short Fixed read not rejected")
	}
}
