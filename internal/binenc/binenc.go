// Package binenc provides the append/cursor primitives behind the
// hand-rolled binary wire codec: big-endian fixed-width integers and
// u32-length-prefixed byte fields, in the style of secchan's packFields.
//
// The encoder side is a family of Append functions so callers can reuse
// one buffer across messages (zero allocations at steady state). The
// decoder side is a strict cursor: every read is bounds-checked, boolean
// and presence bytes admit only 0/1, and Done rejects trailing bytes, so a
// successful decode of a whole message implies the input is exactly the
// canonical encoding of the decoded value (decode∘encode == identity).
// That bijection is what the codec fuzzers pin.
package binenc

import "errors"

// Magic is the first byte of every binary-codec message. A gob stream can
// never start with it — gob's leading segment-length uvarint puts the first
// byte below 0x80 or at 0xF8..0xFF — so one byte discriminates the two
// codecs during the migration window.
const Magic = 0xC1

// Version is the current binary wire-format version.
const Version = 1

// ErrHeader reports a message whose magic/version/tag header does not
// match what the decoder expects.
var ErrHeader = errors.New("binenc: bad message header")

// ErrTruncated reports a read past the end of the input.
var ErrTruncated = errors.New("binenc: truncated input")

// ErrTrailing reports unconsumed bytes after a complete message.
var ErrTrailing = errors.New("binenc: trailing bytes after message")

// ErrNonCanonical reports an input byte outside its canonical range (a
// boolean or presence byte that is neither 0 nor 1).
var ErrNonCanonical = errors.New("binenc: non-canonical encoding")

// AppendUint8 appends one raw byte.
func AppendUint8(b []byte, v byte) []byte { return append(b, v) }

// AppendHeader appends the three-byte message header: magic, version, tag.
func AppendHeader(b []byte, tag byte) []byte {
	return append(b, Magic, Version, tag)
}

// AppendBool appends a canonical boolean byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendUint32 appends v big-endian.
func AppendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendUint64 appends v big-endian.
func AppendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendBytes appends a u32 length prefix followed by p.
func AppendBytes(b []byte, p []byte) []byte {
	b = AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendString appends a u32 length prefix followed by the string bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// Reader is a strict decoding cursor over one encoded message. Methods
// record the first error and become no-ops afterwards, so a decoder can
// read a whole message unconditionally and check Err (or Done) once.
type Reader struct {
	b   []byte
	err error
}

// NewReader starts a cursor over b. The Reader borrows b; it never copies
// or mutates it.
func NewReader(b []byte) Reader { return Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Done returns nil only when the whole input was consumed without error.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrTrailing
	}
	return nil
}

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.b) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// Uint8 reads one raw byte.
func (r *Reader) Uint8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a canonical boolean byte, rejecting values other than 0/1.
func (r *Reader) Bool() bool {
	p := r.take(1)
	if p == nil {
		return false
	}
	switch p[0] {
	case 0:
		return false
	case 1:
		return true
	}
	r.err = ErrNonCanonical
	return false
}

// Uint32 reads a big-endian u32.
func (r *Reader) Uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3])
}

// Uint64 reads a big-endian u64.
func (r *Reader) Uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return uint64(p[0])<<56 | uint64(p[1])<<48 | uint64(p[2])<<40 | uint64(p[3])<<32 |
		uint64(p[4])<<24 | uint64(p[5])<<16 | uint64(p[6])<<8 | uint64(p[7])
}

// BytesView reads a length-prefixed field and returns a slice borrowing
// the input buffer — valid only while the input is. An empty field decodes
// to nil (the canonical form: AppendBytes encodes nil and empty alike).
func (r *Reader) BytesView() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	return r.take(int(n))
}

// Bytes reads a length-prefixed field into freshly owned memory.
func (r *Reader) Bytes() []byte {
	v := r.BytesView()
	if v == nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// String reads a length-prefixed field as a string.
func (r *Reader) String() string {
	v := r.BytesView()
	if v == nil {
		return ""
	}
	return string(v)
}

// Fixed reads exactly len(dst) raw bytes (no length prefix) into dst.
// Fixed-width fields (hashes, nonces) skip the prefix: the width is a
// protocol constant, so the encoding stays injective without it.
func (r *Reader) Fixed(dst []byte) {
	p := r.take(len(dst))
	if p != nil {
		copy(dst, p)
	}
}

// Header consumes and checks the three-byte message header against tag.
func (r *Reader) Header(tag byte) {
	p := r.take(3)
	if p == nil {
		return
	}
	if p[0] != Magic || p[1] != Version || p[2] != tag {
		r.err = ErrHeader
	}
}

// Fail records err as the cursor's error if none is set yet. Message
// decoders use it for semantic canonicality violations (e.g. unsorted map
// keys) that the byte-level primitives cannot see.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Count reads a u32 element count and bounds it against the remaining
// input (each element needs at least min bytes), so a hostile count can
// never drive a huge allocation from a short message.
func (r *Reader) Count(min int) int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if int64(n)*int64(min) > int64(len(r.b)) {
		r.err = ErrTruncated
		return 0
	}
	return int(n)
}
