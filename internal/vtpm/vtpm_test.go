package vtpm

import (
	"crypto/rand"
	"testing"

	"cloudmonatt/internal/cryptoutil"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager("srv", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateGetDestroy(t *testing.T) {
	m := newMgr(t)
	inst, err := m.Create("vm-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("vm-1"); err == nil {
		t.Fatal("duplicate instance created")
	}
	got, err := m.Get("vm-1")
	if err != nil || got != inst {
		t.Fatalf("Get: %v %v", got, err)
	}
	m.Destroy("vm-1")
	if _, err := m.Get("vm-1"); err == nil {
		t.Fatal("destroyed instance still retrievable")
	}
	if _, err := m.Create("vm-1"); err != nil {
		t.Fatalf("re-create after destroy: %v", err)
	}
}

func TestInstancesAreIsolated(t *testing.T) {
	m := newMgr(t)
	a, _ := m.Create("vm-a")
	b, _ := m.Create("vm-b")
	a.TPM.Measure(0, "x", []byte("x"))
	pa, _ := a.TPM.ReadPCR(0)
	pb, _ := b.TPM.ReadPCR(0)
	if pa == pb {
		t.Fatal("extend in one vTPM visible in another")
	}
	if cryptoutil.KeyEqual(a.TPM.AIK(), b.TPM.AIK()) {
		t.Fatal("vTPM instances share a vAIK")
	}
}

func TestEndorsementChain(t *testing.T) {
	m := newMgr(t)
	inst, _ := m.Create("vm-1")
	if err := VerifyEndorsement(m.HardwareKey(), "vm-1", inst.TPM.AIK(), inst.Endorsement); err != nil {
		t.Fatalf("genuine endorsement rejected: %v", err)
	}
	// Wrong VM binding.
	if err := VerifyEndorsement(m.HardwareKey(), "vm-2", inst.TPM.AIK(), inst.Endorsement); err == nil {
		t.Fatal("endorsement accepted for the wrong VM")
	}
	// Foreign hardware root.
	other := newMgr(t)
	if err := VerifyEndorsement(other.HardwareKey(), "vm-1", inst.TPM.AIK(), inst.Endorsement); err == nil {
		t.Fatal("endorsement accepted under foreign hardware key")
	}
	// Attacker-minted vAIK.
	rogue := cryptoutil.MustIdentity("rogue")
	if err := VerifyEndorsement(m.HardwareKey(), "vm-1", rogue.Public(), inst.Endorsement); err == nil {
		t.Fatal("unendorsed vAIK accepted")
	}
}
