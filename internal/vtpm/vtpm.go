// Package vtpm implements virtual TPM multiplexing (Berger et al., cited
// as [8] in the paper §2.2): each VM gets its own software TPM instance
// whose attestation identity key is certified by the *hardware* TPM's AIK,
// so a remote verifier can attest a VM directly, the pre-CloudMonatt way.
//
// The paper's argument — which this package exists to demonstrate — is
// that vTPM-based attestation "cannot monitor the security conditions of
// the VM's environment" and that its in-guest measurement agent "needs
// modification of the guest OS [which is] highly susceptible to attacks".
// internal/baseline builds the classic binary-attestation flow on top of
// this package, and the comparison bench shows which attacks it misses.
package vtpm

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"sync"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/tpm"
)

// Instance is one VM's virtual TPM.
type Instance struct {
	Vid string
	// TPM is the virtual PCR bank and quote engine; its AIK is the vAIK.
	TPM *tpm.TPM
	// Endorsement is the hardware TPM owner's signature over the vAIK,
	// chaining the virtual TPM to the physical root of trust.
	Endorsement []byte
}

// Manager multiplexes virtual TPM instances on one hardware trust root.
type Manager struct {
	hwAIK *cryptoutil.Identity // stands in for the hardware TPM's AIK
	rand  io.Reader

	mu        sync.Mutex
	instances map[string]*Instance
}

// NewManager creates a vTPM manager anchored in a hardware key drawn from r.
func NewManager(serverName string, r io.Reader) (*Manager, error) {
	hw, err := cryptoutil.NewIdentity(serverName+"-hwtpm", r)
	if err != nil {
		return nil, fmt.Errorf("vtpm: %w", err)
	}
	return &Manager{hwAIK: hw, rand: r, instances: make(map[string]*Instance)}, nil
}

// HardwareKey returns the endorsement-verification key of the hardware root.
func (m *Manager) HardwareKey() ed25519.PublicKey { return m.hwAIK.Public() }

// endorsementBody is what the hardware root signs for a vAIK.
func endorsementBody(vid string, vaik ed25519.PublicKey) []byte {
	sum := cryptoutil.Hash("vtpm-endorse", []byte(vid), vaik)
	return sum[:]
}

// Create provisions a fresh virtual TPM for a VM and endorses its vAIK.
func (m *Manager) Create(vid string) (*Instance, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.instances[vid]; dup {
		return nil, fmt.Errorf("vtpm: instance for %s exists", vid)
	}
	vt, err := tpm.New(m.rand)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		Vid:         vid,
		TPM:         vt,
		Endorsement: m.hwAIK.Sign(endorsementBody(vid, vt.AIK())),
	}
	m.instances[vid] = inst
	return inst, nil
}

// Get returns a VM's instance.
func (m *Manager) Get(vid string) (*Instance, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.instances[vid]
	if !ok {
		return nil, fmt.Errorf("vtpm: no instance for %s", vid)
	}
	return inst, nil
}

// Destroy removes a VM's instance (VM termination).
func (m *Manager) Destroy(vid string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.instances, vid)
}

// VerifyEndorsement checks that a vAIK is chained to the hardware root.
func VerifyEndorsement(hwKey ed25519.PublicKey, vid string, vaik ed25519.PublicKey, sig []byte) error {
	if !cryptoutil.Verify(hwKey, endorsementBody(vid, vaik), sig) {
		return fmt.Errorf("vtpm: endorsement of %s's vAIK invalid", vid)
	}
	return nil
}
