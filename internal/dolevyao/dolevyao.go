// Package dolevyao implements a concrete network attacker in the standard
// Dolev-Yao model (paper §3.3 adversary 2): it owns the network between any
// two CloudMonatt entities and can eavesdrop on, tamper with, drop, replay
// and inject frames. Plugged into rpc.MemNetwork's Intercept hook, it
// attacks the *real* protocol implementation; the tests then assert that
// every active manipulation is detected and that passive observation yields
// only ciphertext.
package dolevyao

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
)

// Direction labels the flow of a captured frame.
type Direction int

// Frame flow directions.
const (
	ClientToServer Direction = iota
	ServerToClient
)

// Frame is one captured protocol frame (length-delimited payload).
type Frame struct {
	Dir     Direction
	Index   int // per-direction sequence number
	Payload []byte
}

// Transform decides what the attacker does with frame n flowing in one
// direction: return (replacement frames, true) to substitute — an empty
// slice drops the frame — or (nil, false) to pass it through unchanged.
type Transform func(n int, payload []byte) ([][]byte, bool)

// Attacker is a man-in-the-middle for framed connections.
type Attacker struct {
	mu     sync.Mutex
	frames []Frame

	// C2S and S2C are the active manipulation hooks (nil = pass-through).
	C2S Transform
	S2C Transform
}

// Observed returns everything the attacker has captured so far.
func (a *Attacker) Observed() []Frame {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Frame(nil), a.frames...)
}

// ObservedPayloads concatenates every captured payload (for "does the
// plaintext appear anywhere" assertions).
func (a *Attacker) ObservedPayloads() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []byte
	for _, f := range a.frames {
		out = append(out, f.Payload...)
	}
	return out
}

func (a *Attacker) record(dir Direction, idx int, payload []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.frames = append(a.frames, Frame{Dir: dir, Index: idx, Payload: append([]byte(nil), payload...)})
}

// Intercept is the rpc.MemNetwork hook: it splices the attacker between the
// two ends of a new connection.
func (a *Attacker) Intercept(addr string, client, server net.Conn) (net.Conn, net.Conn) {
	// Fresh pipes facing the application; the attacker pumps between them
	// and the original pair is unused.
	client.Close()
	server.Close()
	appClient, atkClientSide := net.Pipe()
	appServer, atkServerSide := net.Pipe()
	go a.pump(atkClientSide, atkServerSide, ClientToServer, a.transform(ClientToServer))
	go a.pump(atkServerSide, atkClientSide, ServerToClient, a.transform(ServerToClient))
	return appClient, appServer
}

func (a *Attacker) transform(dir Direction) Transform {
	if dir == ClientToServer {
		return a.C2S
	}
	return a.S2C
}

// pump forwards frames from src to dst, recording and transforming.
func (a *Attacker) pump(src, dst net.Conn, dir Direction, tf Transform) {
	defer dst.Close()
	for n := 0; ; n++ {
		payload, err := readFrame(src)
		if err != nil {
			return
		}
		a.record(dir, n, payload)
		outs := [][]byte{payload}
		if tf != nil {
			if repl, act := tf(n, payload); act {
				outs = repl
			}
		}
		for _, out := range outs {
			if err := writeFrame(dst, out); err != nil {
				return
			}
		}
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 1<<22 {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// --- canned attacks ---

// TamperFrame flips a bit in frame n.
func TamperFrame(n int) Transform {
	return func(i int, payload []byte) ([][]byte, bool) {
		if i != n || len(payload) == 0 {
			return nil, false
		}
		mut := append([]byte(nil), payload...)
		mut[len(mut)/2] ^= 0x01
		return [][]byte{mut}, true
	}
}

// TamperFrom flips a bit in every frame from index n onward (e.g. n=2
// spares the handshake and corrupts all data records).
func TamperFrom(n int) Transform {
	return func(i int, payload []byte) ([][]byte, bool) {
		if i < n || len(payload) == 0 {
			return nil, false
		}
		mut := append([]byte(nil), payload...)
		mut[len(mut)/2] ^= 0x01
		return [][]byte{mut}, true
	}
}

// DropFrame silently discards frame n.
func DropFrame(n int) Transform {
	return func(i int, payload []byte) ([][]byte, bool) {
		if i != n {
			return nil, false
		}
		return nil, true
	}
}

// ReplayFrame duplicates frame n (delivers it twice): a later legitimate
// frame is then out of sequence at the receiver.
func ReplayFrame(n int) Transform {
	return func(i int, payload []byte) ([][]byte, bool) {
		if i != n {
			return nil, false
		}
		return [][]byte{payload, payload}, true
	}
}

// InjectBefore delivers a forged payload before frame n.
func InjectBefore(n int, forged []byte) Transform {
	return func(i int, payload []byte) ([][]byte, bool) {
		if i != n {
			return nil, false
		}
		return [][]byte{forged, payload}, true
	}
}

// SwapFrames buffers frame n and emits it after frame n+1 (reordering).
func SwapFrames(n int) Transform {
	var held []byte
	return func(i int, payload []byte) ([][]byte, bool) {
		switch i {
		case n:
			held = append([]byte(nil), payload...)
			return [][]byte{}, true
		case n + 1:
			return [][]byte{payload, held}, true
		}
		return nil, false
	}
}
