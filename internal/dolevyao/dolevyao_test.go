package dolevyao

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"strings"
	"testing"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/secchan"
)

type pingReq struct{ Secret string }
type pingResp struct{ Echo string }

const secretText = "SUPER-SECRET-ATTESTATION-REPORT-R"

// rig starts an echo server on a MemNetwork owned by the attacker and
// returns a dialer.
func rig(t *testing.T, atk *Attacker) func() (*rpc.Client, error) {
	t.Helper()
	n := rpc.NewMemNetwork()
	n.Intercept = atk.Intercept
	server := cryptoutil.MustIdentity("server")
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	verify := func(name string, key ed25519.PublicKey) error { return nil }
	go rpc.Serve(l, secchan.Config{Identity: server, Verify: verify}, func(peer rpc.Peer, method string, body []byte) ([]byte, error) {
		var req pingReq
		if err := rpc.Decode(body, &req); err != nil {
			return nil, err
		}
		return rpc.Encode(pingResp{Echo: req.Secret})
	})
	client := cryptoutil.MustIdentity("client")
	return func() (*rpc.Client, error) {
		return rpc.Dial(n, "srv", secchan.Config{Identity: client, Verify: verify})
	}
}

func TestPassiveAttackerSeesOnlyCiphertext(t *testing.T) {
	atk := &Attacker{}
	dial := rig(t, atk)
	c, err := dial()
	if err != nil {
		t.Fatalf("handshake under passive attacker failed: %v", err)
	}
	defer c.Close()
	var resp pingResp
	if err := c.Call("ping", pingReq{Secret: secretText}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Echo != secretText {
		t.Fatalf("echo %q", resp.Echo)
	}
	obs := atk.ObservedPayloads()
	if len(obs) == 0 {
		t.Fatal("attacker observed nothing — interception broken")
	}
	if bytes.Contains(obs, []byte(secretText)) {
		t.Fatal("secret appears in clear on the wire")
	}
	if bytes.Contains(obs, []byte("ping")) {
		t.Fatal("method name appears in clear on the wire")
	}
}

func TestTamperedDataFrameDetected(t *testing.T) {
	// Frames 0,1 C2S are the handshake (hello, finish); frame 2 is the
	// first encrypted request.
	atk := &Attacker{C2S: TamperFrame(2)}
	dial := rig(t, atk)
	c, err := dial()
	if err != nil {
		t.Fatalf("handshake failed: %v", err)
	}
	defer c.Close()
	var resp pingResp
	if err := c.Call("ping", pingReq{Secret: "x"}, &resp); err == nil {
		t.Fatal("tampered request produced a successful call")
	}
}

func TestTamperedHandshakeDetected(t *testing.T) {
	atk := &Attacker{C2S: TamperFrame(0)}
	dial := rig(t, atk)
	c, err := dial()
	if err == nil {
		// Client side may not fail until the server's (never-arriving)
		// response; a call must fail at the latest.
		defer c.Close()
		if cerr := c.Call("ping", pingReq{Secret: "x"}, &pingResp{}); cerr == nil {
			t.Fatal("tampered handshake went unnoticed")
		}
	}
}

func TestReplayedFrameDetected(t *testing.T) {
	atk := &Attacker{C2S: ReplayFrame(2)}
	dial := rig(t, atk)
	c, err := dial()
	if err != nil {
		t.Fatalf("handshake failed: %v", err)
	}
	defer c.Close()
	// First call may succeed (original copy arrives first), but the server
	// kills the channel on the replayed record, so a subsequent call fails.
	var resp pingResp
	err1 := c.Call("ping", pingReq{Secret: "a"}, &resp)
	err2 := c.Call("ping", pingReq{Secret: "b"}, &resp)
	if err1 == nil && err2 == nil {
		t.Fatal("replayed record never detected")
	}
}

func TestInjectedFrameDetected(t *testing.T) {
	forged := []byte("totally-legit-attestation-report")
	atk := &Attacker{S2C: InjectBefore(1, forged)}
	dial := rig(t, atk)
	c, err := dial()
	if err != nil {
		t.Fatalf("handshake failed: %v", err)
	}
	defer c.Close()
	var resp pingResp
	if err := c.Call("ping", pingReq{Secret: "x"}, &resp); err == nil {
		t.Fatal("injected reply accepted")
	}
}

func TestReorderedFramesDetected(t *testing.T) {
	// Reordering stalls a request/response protocol, so test at the secure-
	// channel layer: the client streams two records back-to-back, the
	// attacker swaps them, and the receiver must reject the out-of-sequence
	// record.
	atk := &Attacker{C2S: SwapFrames(2)}
	n := rpc.NewMemNetwork()
	n.Intercept = atk.Intercept
	serverID := cryptoutil.MustIdentity("server")
	clientID := cryptoutil.MustIdentity("client")
	verify := func(name string, key ed25519.PublicKey) error { return nil }
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	result := make(chan error, 1)
	go func() {
		raw, err := l.Accept()
		if err != nil {
			result <- err
			return
		}
		conn, err := secchan.Server(raw, secchan.Config{Identity: serverID, Verify: verify})
		if err != nil {
			result <- err
			return
		}
		if _, err := conn.ReadMsg(); err != nil {
			result <- nil // rejected first delivered (swapped) record: good
			return
		}
		_, err = conn.ReadMsg()
		if err == nil {
			result <- errSwappedAccepted
			return
		}
		result <- nil
	}()
	raw, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := secchan.Client(raw, secchan.Config{Identity: clientID, Verify: verify})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteMsg([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMsg([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := <-result; err != nil {
		t.Fatal(err)
	}
}

var errSwappedAccepted = errors.New("swapped records accepted in order")

func TestDroppedFrameStallsNotForges(t *testing.T) {
	atk := &Attacker{S2C: DropFrame(1)}
	dial := rig(t, atk)
	c, err := dial()
	if err != nil {
		t.Fatalf("handshake failed: %v", err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		var resp pingResp
		done <- c.Call("ping", pingReq{Secret: "x"}, &resp)
	}()
	select {
	case err := <-done:
		// Acceptable outcomes: an error (connection torn down) — but never a
		// successful call with attacker-controlled content.
		if err == nil {
			t.Fatal("call succeeded despite dropped response")
		}
	default:
		// Blocked forever = denial of service, which Dolev-Yao attackers can
		// always achieve; not a protocol failure.
	}
}

func TestObservedFrameAccounting(t *testing.T) {
	atk := &Attacker{}
	dial := rig(t, atk)
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp pingResp
	if err := c.Call("ping", pingReq{Secret: "x"}, &resp); err != nil {
		t.Fatal(err)
	}
	frames := atk.Observed()
	var c2s, s2c int
	for _, f := range frames {
		switch f.Dir {
		case ClientToServer:
			c2s++
		case ServerToClient:
			s2c++
		}
	}
	// hello + finish + request = 3 client frames; server hello + reply = 2.
	if c2s < 3 || s2c < 2 {
		t.Fatalf("frame accounting off: c2s=%d s2c=%d", c2s, s2c)
	}
	var summary strings.Builder
	for _, f := range frames {
		if f.Payload == nil {
			t.Fatal("captured frame without payload")
		}
		summary.WriteByte(byte('0' + int(f.Dir)))
	}
	if summary.Len() != len(frames) {
		t.Fatal("inconsistent capture")
	}
}
