// Package driver defines the pluggable trust-backend subsystem. The paper
// models the Trust Module as a single TPM-like device per cloud server, but
// real clouds attest heterogeneous hardware — hardware TPMs, per-VM virtual
// TPMs, SEV-SNP confidential VMs — through per-backend drivers (cf. "Remote
// attestation of SEV-SNP confidential VMs using e-vTPMs", arXiv:2303.16463).
//
// A Driver is the attester side: it provisions the backend's attestation
// key, measures the platform boot chain and VM images, and produces the
// platform evidence (quote, vTPM quote, or attestation report) bound to the
// verifier's nonce. The verifier side is the per-backend startup appraiser
// plus the capability map: which security properties of the paper's catalog
// the backend can evidence at all. A property outside a backend's
// capability map yields the paper's V_fail — `unattestable` — rather than a
// healthy-or-compromised verdict.
//
// Backends self-register from their package init, so linking a backend
// package (tpmdrv, vtpmdrv, sevsnp) is what makes it available; the
// backend type travels in wire messages, ledger entries, traces and
// metrics end to end.
package driver

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/tpm"
)

// Backend names one trust-backend type. The string form is what travels in
// wire messages and ledger payloads.
type Backend string

const (
	// BackendTPM is the paper's Trust Module: a hardware TPM measuring the
	// platform boot chain, quoting under the module's AIK.
	BackendTPM Backend = "tpm"
	// BackendVTPM is pre-CloudMonatt virtual-TPM multiplexing (paper §2.2):
	// each VM gets a software TPM whose vAIK the hardware root endorses.
	BackendVTPM Backend = "vtpm"
	// BackendSEVSNP is a simulated SEV-SNP confidential-VM backend: evidence
	// is a launch measurement + platform version (TCB/firmware SVN) report
	// signed by a VCEK-style per-server key.
	BackendSEVSNP Backend = "sev-snp"
)

// ParseBackend resolves a backend name to a registered backend type.
func ParseBackend(s string) (Backend, error) {
	b := Backend(s)
	regMu.RLock()
	_, ok := registry[b]
	regMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("driver: unknown trust backend %q (have %v)", s, Backends())
	}
	return b, nil
}

// TCBVersion is the platform security-version vector a confidential-VM
// backend reports: the secure-processor bootloader, trusted OS, SNP
// firmware and microcode SVNs. A platform is acceptable only if every
// component is at or above the verifier's floor — the defense against the
// "Insecure Until Proven Updated" firmware-rollback attack
// (arXiv:1908.11680).
type TCBVersion struct {
	Bootloader uint8
	TEE        uint8
	SNP        uint8
	Microcode  uint8
}

// AtLeast reports whether every component of t meets the floor min.
func (t TCBVersion) AtLeast(min TCBVersion) bool {
	return t.Bootloader >= min.Bootloader && t.TEE >= min.TEE &&
		t.SNP >= min.SNP && t.Microcode >= min.Microcode
}

// IsZero reports whether no version is set.
func (t TCBVersion) IsZero() bool { return t == TCBVersion{} }

// String renders the vector as bootloader.tee.snp.microcode.
func (t TCBVersion) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", t.Bootloader, t.TEE, t.SNP, t.Microcode)
}

// Config provisions a driver for one cloud server.
type Config struct {
	// ServerName names the server the backend is rooted in.
	ServerName string
	// Rand is the entropy source for backend key generation.
	Rand io.Reader
	// TPM, when the server already provisioned a Trust Module, is its
	// embedded TPM; the tpm backend roots in it so evidence matches the
	// module's AIK. Other backends ignore it.
	TPM *tpm.TPM
	// TCB is the platform security version a confidential-VM backend
	// reports (zero = the backend's fleet-current version). Setting an old
	// version models a stale-firmware / rollback scenario.
	TCB TCBVersion
}

// Driver is the attester side of one trust backend on one cloud server.
type Driver interface {
	// Backend returns the backend type.
	Backend() Backend
	// AttestationKey is the public key the verifier checks platform
	// evidence under (TPM AIK, vTPM hardware endorsement key, or VCEK),
	// registered in the Attestation Server's database at provisioning.
	AttestationKey() []byte
	// BootMeasure records one platform boot-chain component into the
	// backend's measurement store. Backends whose evidence does not cover
	// the host platform accept and ignore it.
	BootMeasure(name string, data []byte) error
	// AddVM records a VM's pristine image measurement before launch.
	AddVM(vid string, imageDigest [32]byte) error
	// RemoveVM forgets a VM (termination or migration away).
	RemoveVM(vid string)
	// PlatformEvidence produces the backend's platform/startup evidence for
	// the VM, bound to the verifier's nonce.
	PlatformEvidence(vid string, nonce cryptoutil.Nonce) (properties.Measurement, error)
}

// Refs are the verifier-side appraisal references for one VM's startup
// evidence (the backend-relevant subset of interpret.References, kept free
// of an interpret import so backends stay leaf packages).
type Refs struct {
	// AttestationKey is the registered key for the attested server.
	AttestationKey []byte
	// PlatformGolden maps platform component names to known-good digests.
	PlatformGolden map[string][32]byte
	// ApprovedVersions lists additional acceptable platform catalogs.
	ApprovedVersions []map[string][32]byte
	// ExpectedImage is the pristine digest of the VM's image.
	ExpectedImage [32]byte
	// Vid is the attested VM's identifier.
	Vid string
	// MinTCB is the minimum acceptable platform security version for
	// confidential-VM backends (zero accepts any version).
	MinTCB TCBVersion
}

// AppraiseFunc appraises a backend's startup evidence into a verdict.
type AppraiseFunc func(ms []properties.Measurement, nonce cryptoutil.Nonce, refs Refs) properties.Verdict

// Registration describes one backend to the registry.
type Registration struct {
	// New opens the backend's driver on a cloud server.
	New func(Config) (Driver, error)
	// Caps is the backend's capability map: for each built-in property it
	// can evidence, the measurement request that backs it. A built-in
	// property absent from the map is unattestable on this backend.
	Caps map[properties.Property]properties.Request
	// AppraiseStartup is the verifier-side interpreter for the backend's
	// startup evidence.
	AppraiseStartup AppraiseFunc
}

var (
	regMu    sync.RWMutex
	registry = map[Backend]Registration{}
)

// Register installs a backend. Backends register from init; a duplicate
// registration is a programming error.
func Register(b Backend, reg Registration) error {
	if b == "" || reg.New == nil || reg.AppraiseStartup == nil {
		return fmt.Errorf("driver: incomplete registration for backend %q", b)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b]; dup {
		return fmt.Errorf("driver: backend %q already registered", b)
	}
	registry[b] = reg
	return nil
}

// MustRegister is Register for package init paths.
func MustRegister(b Backend, reg Registration) {
	if err := Register(b, reg); err != nil {
		panic(err)
	}
}

// Backends lists the registered backend types in stable order.
func Backends() []Backend {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Backend, 0, len(registry))
	for b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func lookup(b Backend) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	reg, ok := registry[b]
	return reg, ok
}

// Open provisions the backend's driver on a cloud server.
func Open(b Backend, cfg Config) (Driver, error) {
	reg, ok := lookup(b)
	if !ok {
		return nil, fmt.Errorf("driver: unknown trust backend %q (have %v)", b, Backends())
	}
	return reg.New(cfg)
}

// builtin reports whether p is one of the paper's built-in properties.
func builtin(p properties.Property) bool {
	for _, q := range properties.All {
		if p == q {
			return true
		}
	}
	return false
}

// ErrUnattestable marks a property a backend cannot evidence: the paper's
// V_fail outcome, distinct from both healthy and compromised.
var ErrUnattestable = errors.New("driver: property not attestable on this backend")

// Attestable reports whether backend b can evidence property p at all.
// Custom (registered-extension) properties are collected and interpreted by
// backend-independent monitor tools, so every backend attests them.
func Attestable(b Backend, p properties.Property) bool {
	if !builtin(p) {
		return true
	}
	reg, ok := lookup(b)
	if !ok {
		return false
	}
	_, ok = reg.Caps[p]
	return ok
}

// AttestableProps lists the built-in properties backend b can evidence, in
// the catalog's order (the server's monitoring capabilities as provisioned
// in the Attestation Server and controller databases).
func AttestableProps(b Backend) []properties.Property {
	reg, ok := lookup(b)
	if !ok {
		return nil
	}
	var out []properties.Property
	for _, p := range properties.All {
		if _, ok := reg.Caps[p]; ok {
			out = append(out, p)
		}
	}
	return out
}

// MapToMeasurements is the per-backend property→measurement mapping (paper
// §4.1 generalized across backend types): the measurement request rM that
// evidences p on backend b. Unattestable built-ins return ErrUnattestable;
// custom properties fall back to the extension registry's mapping.
func MapToMeasurements(b Backend, p properties.Property) (properties.Request, error) {
	reg, ok := lookup(b)
	if !ok {
		return properties.Request{}, fmt.Errorf("driver: unknown trust backend %q", b)
	}
	if req, ok := reg.Caps[p]; ok {
		return req, nil
	}
	if builtin(p) {
		return properties.Request{}, fmt.Errorf("%w: %s on %s", ErrUnattestable, p, b)
	}
	return properties.MapToMeasurements(p)
}

// AppraiseStartup dispatches startup-evidence appraisal to backend b's
// interpreter.
func AppraiseStartup(b Backend, ms []properties.Measurement, nonce cryptoutil.Nonce, refs Refs) properties.Verdict {
	reg, ok := lookup(b)
	if !ok {
		return properties.Verdict{
			Property: properties.StartupIntegrity,
			Healthy:  false,
			Class:    properties.FailurePlatform,
			Reason:   fmt.Sprintf("unknown trust backend %q", b),
		}
	}
	return reg.AppraiseStartup(ms, nonce, refs)
}
