// Conformance suite: every registered trust backend must satisfy the same
// attester/verifier contract — evidence over a fresh nonce appraises
// healthy, evidence is single-use (wrong nonce rejected), tampered
// evidence is rejected, and a wrong image is blamed on the image. Backend-
// specific scenarios (the sev-snp firmware rollback) and the capability
// matrix ride along, plus the per-backend appraisal-cost benchmarks behind
// EXPERIMENTS.md.
package driver_test

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"testing"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/trust/driver"
	"cloudmonatt/internal/trust/driver/sevsnp"
	_ "cloudmonatt/internal/trust/driver/tpmdrv"
	_ "cloudmonatt/internal/trust/driver/vtpmdrv"
)

// platform is the boot chain each conformance driver measures; golden is
// its known-good catalog on the verifier side.
var platform = map[string][]byte{
	"firmware":        []byte("seabios-1.7 pristine"),
	"hypervisor":      []byte("xen-4.2 pristine"),
	"host-os":         []byte("dom0-linux-3.8 pristine"),
	"platform-config": []byte("cloudmonatt-node.conf v1"),
}

func goldenPlatform() map[string][32]byte {
	out := make(map[string][32]byte, len(platform))
	for name, data := range platform {
		out[name] = sha256.Sum256(data)
	}
	return out
}

// openDriver provisions backend b as a cloud server would: boot chain
// measured, one VM added.
func openDriver(t testing.TB, b driver.Backend, tcb driver.TCBVersion, image [32]byte) driver.Driver {
	t.Helper()
	drv, err := driver.Open(b, driver.Config{ServerName: "conformance-" + string(b), Rand: rand.Reader, TCB: tcb})
	if err != nil {
		t.Fatalf("open %s: %v", b, err)
	}
	for name, data := range platform {
		if err := drv.BootMeasure(name, data); err != nil {
			t.Fatalf("boot-measuring %s: %v", name, err)
		}
	}
	if err := drv.AddVM("vm-1", image); err != nil {
		t.Fatalf("adding VM: %v", err)
	}
	return drv
}

// collect gathers the startup-integrity measurement set exactly as the
// Monitor Module does: the driver's platform evidence plus the directly
// reported image digest.
func collect(t testing.TB, drv driver.Driver, nonce cryptoutil.Nonce, image [32]byte) []properties.Measurement {
	t.Helper()
	ev, err := drv.PlatformEvidence("vm-1", nonce)
	if err != nil {
		t.Fatalf("platform evidence: %v", err)
	}
	return []properties.Measurement{ev, {Kind: properties.KindImageDigest, Digest: image}}
}

func refsFor(drv driver.Driver, image [32]byte) driver.Refs {
	return driver.Refs{
		AttestationKey: drv.AttestationKey(),
		PlatformGolden: goldenPlatform(),
		ExpectedImage:  image,
		Vid:            "vm-1",
		MinTCB:         sevsnp.CurrentTCB,
	}
}

// tamper flips one bit of the signed evidence payload, whichever field the
// backend carries it in.
func tamper(ms []properties.Measurement) {
	for i := range ms {
		switch {
		case len(ms[i].Report) > 0:
			ms[i].Report = append([]byte(nil), ms[i].Report...)
			ms[i].Report[20] ^= 0x01 // inside the launch-hash field
			return
		case len(ms[i].QuoteVal) > 0:
			vals := append([][32]byte(nil), ms[i].QuoteVal...)
			vals[0][0] ^= 0x01
			ms[i].QuoteVal = vals
			return
		}
	}
	panic("no signed evidence to tamper with")
}

func TestConformance(t *testing.T) {
	backends := driver.Backends()
	if len(backends) < 3 {
		t.Fatalf("expected tpm, vtpm and sev-snp registered, have %v", backends)
	}
	image := sha256.Sum256([]byte("pristine-image"))
	for _, b := range backends {
		t.Run(string(b), func(t *testing.T) {
			drv := openDriver(t, b, driver.TCBVersion{}, image)
			if drv.Backend() != b {
				t.Fatalf("driver reports backend %s, opened %s", drv.Backend(), b)
			}
			refs := refsFor(drv, image)

			t.Run("fresh-nonce-healthy", func(t *testing.T) {
				// Two rounds: evidence generation must work repeatedly, each
				// bound to its own fresh nonce.
				for round := 0; round < 2; round++ {
					nonce := cryptoutil.MustNonce()
					v := driver.AppraiseStartup(b, collect(t, drv, nonce, image), nonce, refs)
					if !v.Healthy {
						t.Fatalf("round %d: healthy evidence appraised unhealthy: %s", round, v.Reason)
					}
					if v.Unattestable {
						t.Fatalf("round %d: healthy evidence marked unattestable", round)
					}
				}
			})

			t.Run("wrong-nonce-rejected", func(t *testing.T) {
				ms := collect(t, drv, cryptoutil.MustNonce(), image)
				v := driver.AppraiseStartup(b, ms, cryptoutil.MustNonce(), refs)
				if v.Healthy {
					t.Fatal("evidence for another nonce appraised healthy (replay accepted)")
				}
				if v.Class != properties.FailurePlatform {
					t.Fatalf("replay blamed on %q, want platform", v.Class)
				}
			})

			t.Run("tampered-evidence-rejected", func(t *testing.T) {
				nonce := cryptoutil.MustNonce()
				ms := collect(t, drv, nonce, image)
				tamper(ms)
				v := driver.AppraiseStartup(b, ms, nonce, refs)
				if v.Healthy {
					t.Fatal("tampered evidence appraised healthy")
				}
			})

			t.Run("wrong-image-blames-image", func(t *testing.T) {
				wrong := sha256.Sum256([]byte("trojaned-image"))
				drv2 := openDriver(t, b, driver.TCBVersion{}, wrong)
				nonce := cryptoutil.MustNonce()
				v := driver.AppraiseStartup(b, collect(t, drv2, nonce, wrong), nonce, refsFor(drv2, image))
				if v.Healthy {
					t.Fatal("wrong image appraised healthy")
				}
				if v.Class != properties.FailureImage {
					t.Fatalf("wrong image blamed on %q, want image", v.Class)
				}
			})

			t.Run("missing-evidence-rejected", func(t *testing.T) {
				v := driver.AppraiseStartup(b, nil, cryptoutil.MustNonce(), refs)
				if v.Healthy {
					t.Fatal("empty measurement set appraised healthy")
				}
			})
		})
	}
}

// TestRollbackDetection is the sev-snp stale-firmware scenario: the
// platform's launch measurement is correct, so every measurement check
// passes, but the reported security version is below the fleet floor — the
// appraisal must fail on platform version alone ("Insecure Until Proven
// Updated", arXiv:1908.11680).
func TestRollbackDetection(t *testing.T) {
	image := sha256.Sum256([]byte("pristine-image"))
	drv := openDriver(t, driver.BackendSEVSNP, sevsnp.RolledBackTCB, image)
	refs := refsFor(drv, image)
	nonce := cryptoutil.MustNonce()
	v := driver.AppraiseStartup(driver.BackendSEVSNP, collect(t, drv, nonce, image), nonce, refs)
	if v.Healthy {
		t.Fatal("rolled-back platform appraised healthy")
	}
	if v.Class != properties.FailurePlatform {
		t.Fatalf("rollback blamed on %q, want platform", v.Class)
	}
	if v.Details["tcb"] != sevsnp.RolledBackTCB.String() || v.Details["min-tcb"] != sevsnp.CurrentTCB.String() {
		t.Fatalf("verdict details missing the version pair: %v", v.Details)
	}
	// Same platform, verifier floor lowered to the stale version: healthy —
	// the failure is the policy comparison, not the evidence.
	refs.MinTCB = sevsnp.RolledBackTCB
	v = driver.AppraiseStartup(driver.BackendSEVSNP, collect(t, drv, nonce, image), nonce, refs)
	if !v.Healthy {
		t.Fatalf("stale platform under a matching floor appraised unhealthy: %s", v.Reason)
	}
}

// TestCapabilityMatrix pins each backend's property coverage: where the
// paper's catalog is attestable, and where appraisal must yield V_fail.
func TestCapabilityMatrix(t *testing.T) {
	want := map[driver.Backend]map[properties.Property]bool{
		driver.BackendTPM: {
			properties.StartupIntegrity:     true,
			properties.RuntimeIntegrity:     true,
			properties.CovertChannelFreedom: true,
			properties.CPUAvailability:      true,
		},
		driver.BackendVTPM: {
			properties.StartupIntegrity:     true,
			properties.RuntimeIntegrity:     true,
			properties.CovertChannelFreedom: false,
			properties.CPUAvailability:      false,
		},
		driver.BackendSEVSNP: {
			properties.StartupIntegrity:     true,
			properties.RuntimeIntegrity:     false,
			properties.CovertChannelFreedom: true,
			properties.CPUAvailability:      true,
		},
	}
	for b, props := range want {
		for p, attestable := range props {
			if got := driver.Attestable(b, p); got != attestable {
				t.Errorf("Attestable(%s, %s) = %v, want %v", b, p, got, attestable)
			}
			req, err := driver.MapToMeasurements(b, p)
			if attestable {
				if err != nil {
					t.Errorf("MapToMeasurements(%s, %s): %v", b, p, err)
				} else if len(req.Kinds) == 0 {
					t.Errorf("MapToMeasurements(%s, %s): empty request", b, p)
				}
			} else if err == nil {
				t.Errorf("MapToMeasurements(%s, %s) succeeded for an unattestable property", b, p)
			}
		}
		var attestable []properties.Property
		for _, p := range properties.All {
			if props[p] {
				attestable = append(attestable, p)
			}
		}
		if got := driver.AttestableProps(b); fmt.Sprint(got) != fmt.Sprint(attestable) {
			t.Errorf("AttestableProps(%s) = %v, want %v", b, got, attestable)
		}
	}
}

// BenchmarkStartupEvidence measures per-backend evidence generation and
// reports the evidence size (EXPERIMENTS.md appraisal-cost table).
func BenchmarkStartupEvidence(b *testing.B) {
	image := sha256.Sum256([]byte("pristine-image"))
	for _, backend := range driver.Backends() {
		b.Run(string(backend), func(b *testing.B) {
			drv := openDriver(b, backend, driver.TCBVersion{}, image)
			nonce := cryptoutil.MustNonce()
			ms := collect(b, drv, nonce, image)
			var size int
			for _, m := range ms {
				size += len(m.Encode())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := drv.PlatformEvidence("vm-1", nonce); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "evidence-bytes")
		})
	}
}

// BenchmarkStartupAppraisal measures per-backend verification time over a
// fixed healthy measurement set.
func BenchmarkStartupAppraisal(b *testing.B) {
	image := sha256.Sum256([]byte("pristine-image"))
	for _, backend := range driver.Backends() {
		b.Run(string(backend), func(b *testing.B) {
			drv := openDriver(b, backend, driver.TCBVersion{}, image)
			refs := refsFor(drv, image)
			nonce := cryptoutil.MustNonce()
			ms := collect(b, drv, nonce, image)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := driver.AppraiseStartup(backend, ms, nonce, refs); !v.Healthy {
					b.Fatalf("unhealthy: %s", v.Reason)
				}
			}
		})
	}
}
