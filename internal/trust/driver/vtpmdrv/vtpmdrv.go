// Package vtpmdrv is the trust-backend driver for pre-CloudMonatt virtual
// TPM multiplexing (paper §2.2, [8]): each VM gets its own software TPM
// whose attestation key (vAIK) the hardware root endorses. Its startup
// evidence is a vTPM quote over the VM's image PCR.
//
// The capability gap is the point (and is what the paper's critique of
// vTPM attestation predicts): the evidence chain covers the VM, not the
// hosting environment. BootMeasure is accepted but produces nothing a
// verifier sees — a trojaned hypervisor is invisible to this backend — and
// the scheduler-level monitors backed by Trust Evidence Registers
// (covert-channel freedom, CPU availability) are absent from its
// capability map, so those properties appraise as unattestable (V_fail).
package vtpmdrv

import (
	"crypto/ed25519"
	"fmt"
	"strconv"
	"strings"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/tpm"
	"cloudmonatt/internal/trust/driver"
	"cloudmonatt/internal/vtpm"
)

func init() {
	driver.MustRegister(driver.BackendVTPM, driver.Registration{
		New: New,
		Caps: map[properties.Property]properties.Request{
			properties.StartupIntegrity: {Kinds: []properties.MeasurementKind{properties.KindVTPMQuote, properties.KindImageDigest}},
			// VM introspection is hypervisor-level and needs no trust
			// hardware, so runtime integrity survives on this backend.
			properties.RuntimeIntegrity: {Kinds: []properties.MeasurementKind{properties.KindTaskList}},
		},
		AppraiseStartup: AppraiseStartup,
	})
}

// Driver multiplexes per-VM virtual TPMs on one hardware endorsement root.
type Driver struct {
	mgr *vtpm.Manager
}

// New provisions the vTPM manager and its hardware endorsement key.
func New(cfg driver.Config) (driver.Driver, error) {
	mgr, err := vtpm.NewManager(cfg.ServerName, cfg.Rand)
	if err != nil {
		return nil, err
	}
	return &Driver{mgr: mgr}, nil
}

// Backend implements driver.Driver.
func (d *Driver) Backend() driver.Backend { return driver.BackendVTPM }

// AttestationKey returns the hardware endorsement-verification key the
// verifier checks vAIK endorsements under.
func (d *Driver) AttestationKey() []byte { return d.mgr.HardwareKey() }

// BootMeasure implements driver.Driver. The vTPM evidence chain does not
// cover the host platform, so platform components are accepted and
// dropped — the measurement gap the paper's §2.2 critique describes.
func (d *Driver) BootMeasure(string, []byte) error { return nil }

// AddVM provisions the VM's virtual TPM, endorses its vAIK, and extends
// the pristine image digest into the vTPM's image PCR.
func (d *Driver) AddVM(vid string, imageDigest [32]byte) error {
	inst, err := d.mgr.Create(vid)
	if err != nil {
		return err
	}
	return inst.TPM.Extend(tpm.PCRVMImage, "vm-image-"+vid, imageDigest)
}

// RemoveVM destroys the VM's vTPM instance.
func (d *Driver) RemoveVM(vid string) { d.mgr.Destroy(vid) }

// PlatformEvidence produces a vTPM quote over the VM's image PCR bound to
// the verifier's nonce, carrying the vAIK and its hardware endorsement so
// the verifier can chain the quote to the physical root of trust.
func (d *Driver) PlatformEvidence(vid string, nonce cryptoutil.Nonce) (properties.Measurement, error) {
	inst, err := d.mgr.Get(vid)
	if err != nil {
		return properties.Measurement{}, err
	}
	q, err := inst.TPM.GenerateQuote([]int{tpm.PCRVMImage}, nonce)
	if err != nil {
		return properties.Measurement{}, err
	}
	meas := properties.Measurement{
		Kind:     properties.KindVTPMQuote,
		QuoteSig: q.Sig,
		VKey:     append([]byte(nil), inst.TPM.AIK()...),
		Endorse:  append([]byte(nil), inst.Endorsement...),
	}
	for i, p := range q.PCRs {
		meas.QuotePCR = append(meas.QuotePCR, uint32(p))
		meas.QuoteVal = append(meas.QuoteVal, q.Values[i])
	}
	for _, e := range inst.TPM.Log() {
		meas.LogNames = append(meas.LogNames, fmt.Sprintf("%d:%s", e.PCR, e.Description))
		meas.LogSums = append(meas.LogSums, e.Measurement)
	}
	return meas, nil
}

func unhealthy(class properties.FailureClass, reason string, details map[string]string) properties.Verdict {
	return properties.Verdict{Property: properties.StartupIntegrity, Healthy: false, Class: class, Reason: reason, Details: details}
}

// AppraiseStartup verifies the endorsement chain (hardware root → vAIK),
// the quote under the vAIK, the log replay, and the VM image. Note what is
// *not* here: no platform components are appraised, because none are in
// the evidence — the backend's documented blind spot.
func AppraiseStartup(ms []properties.Measurement, nonce cryptoutil.Nonce, refs driver.Refs) properties.Verdict {
	quote, ok := find(ms, properties.KindVTPMQuote)
	if !ok {
		return unhealthy(properties.FailurePlatform, "missing vTPM quote", nil)
	}
	img, ok := find(ms, properties.KindImageDigest)
	if !ok {
		return unhealthy(properties.FailureImage, "missing image digest", nil)
	}
	vaik := ed25519.PublicKey(quote.VKey)
	if err := vtpm.VerifyEndorsement(ed25519.PublicKey(refs.AttestationKey), refs.Vid, vaik, quote.Endorse); err != nil {
		return unhealthy(properties.FailurePlatform, "vAIK endorsement rejected: "+err.Error(), nil)
	}
	q := &tpm.Quote{Nonce: nonce, Sig: quote.QuoteSig}
	for i, pcr := range quote.QuotePCR {
		q.PCRs = append(q.PCRs, int(pcr))
		q.Values = append(q.Values, quote.QuoteVal[i])
	}
	if err := tpm.VerifyQuote(q, vaik, nonce); err != nil {
		return unhealthy(properties.FailurePlatform, "vTPM quote rejected: "+err.Error(), nil)
	}

	// The vTPM log must explain the quoted PCR and carry our image entry.
	if len(quote.LogNames) != len(quote.LogSums) {
		return unhealthy(properties.FailurePlatform, "malformed vTPM measurement log", nil)
	}
	events := make([]tpm.Event, len(quote.LogNames))
	imageSeen := false
	for i, n := range quote.LogNames {
		idx := strings.Index(n, ":")
		if idx <= 0 {
			return unhealthy(properties.FailurePlatform, fmt.Sprintf("malformed vTPM log entry %q", n), nil)
		}
		pcr, err := strconv.Atoi(n[:idx])
		if err != nil {
			return unhealthy(properties.FailurePlatform, fmt.Sprintf("malformed vTPM log entry %q", n), nil)
		}
		desc := n[idx+1:]
		events[i] = tpm.Event{PCR: pcr, Description: desc, Measurement: quote.LogSums[i]}
		if desc == "vm-image-"+refs.Vid {
			imageSeen = true
			if !cryptoutil.ConstEqual(quote.LogSums[i][:], refs.ExpectedImage[:]) {
				return unhealthy(properties.FailureImage, "VM image measurement differs from pristine image",
					map[string]string{"component": desc})
			}
		}
	}
	replayed := tpm.ReplayLog(events)
	for i, pcr := range q.PCRs {
		if replayed[pcr] != q.Values[i] {
			return unhealthy(properties.FailurePlatform, fmt.Sprintf("vTPM log does not explain PCR %d", pcr), nil)
		}
	}
	if !imageSeen {
		return unhealthy(properties.FailureImage, "vTPM log carries no measurement for this VM's image", nil)
	}
	if !cryptoutil.ConstEqual(img.Digest[:], refs.ExpectedImage[:]) {
		return unhealthy(properties.FailureImage, "VM image digest mismatch", nil)
	}
	return properties.Verdict{Property: properties.StartupIntegrity, Healthy: true,
		Reason: "vTPM quote chains to the hardware root and the VM image matches (host platform not covered by this backend)"}
}

func find(ms []properties.Measurement, kind properties.MeasurementKind) (properties.Measurement, bool) {
	for _, m := range ms {
		if m.Kind == kind {
			return m, true
		}
	}
	return properties.Measurement{}, false
}
