// Package tpmdrv is the trust-backend driver for the paper's own Trust
// Module: a hardware TPM as the Integrity Measurement Unit's storage root.
// The attester side measures the platform boot chain and VM images into
// the TPM's PCRs and quotes them under the module's AIK; the verifier side
// is the measured-boot appraisal of case study I — quote verification, log
// replay, and component-by-component comparison against known-good builds.
package tpmdrv

import (
	"crypto/ed25519"
	"fmt"
	"strconv"
	"strings"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/tpm"
	"cloudmonatt/internal/trust/driver"
)

func init() {
	caps := make(map[properties.Property]properties.Request, len(properties.All))
	for _, p := range properties.All {
		req, err := properties.MapToMeasurements(p)
		if err != nil {
			panic(err)
		}
		// The Trust Module backend evidences the full catalog; its mapping
		// is exactly the canonical one of paper §4.1.
		caps[p] = req
	}
	driver.MustRegister(driver.BackendTPM, driver.Registration{
		New:             New,
		Caps:            caps,
		AppraiseStartup: AppraiseStartup,
	})
}

// Driver roots platform evidence in a (hardware) TPM.
type Driver struct {
	t *tpm.TPM
}

// New opens the backend. When the server already provisioned a Trust
// Module, its embedded TPM is passed in so evidence verifies under the
// module's registered AIK; otherwise a fresh TPM is initialised.
func New(cfg driver.Config) (driver.Driver, error) {
	t := cfg.TPM
	if t == nil {
		var err error
		t, err = tpm.New(cfg.Rand)
		if err != nil {
			return nil, err
		}
	}
	return &Driver{t: t}, nil
}

// Backend implements driver.Driver.
func (d *Driver) Backend() driver.Backend { return driver.BackendTPM }

// AttestationKey returns the TPM's AIK.
func (d *Driver) AttestationKey() []byte { return d.t.AIK() }

// componentPCR maps a platform component to the PCR it extends.
func componentPCR(name string) int {
	switch name {
	case "firmware":
		return tpm.PCRFirmware
	case "hypervisor":
		return tpm.PCRHypervisor
	case "host-os":
		return tpm.PCRHostOS
	default:
		return tpm.PCRConfig
	}
}

// BootMeasure measures a platform component into its boot-chain PCR.
func (d *Driver) BootMeasure(name string, data []byte) error {
	if _, err := d.t.Measure(componentPCR(name), name, data); err != nil {
		return fmt.Errorf("tpmdrv: measuring %s: %w", name, err)
	}
	return nil
}

// AddVM extends the VM's pristine image digest into the image PCR.
func (d *Driver) AddVM(vid string, imageDigest [32]byte) error {
	return d.t.Extend(tpm.PCRVMImage, "vm-image-"+vid, imageDigest)
}

// RemoveVM implements driver.Driver. PCR history is append-only: the image
// extension stays in the log, exactly as the Trust Module behaved.
func (d *Driver) RemoveVM(string) {}

// PlatformEvidence produces the measured-boot evidence: a TPM quote over
// the platform PCRs bound to the verifier's nonce, plus the measurement
// log that explains it.
func (d *Driver) PlatformEvidence(_ string, nonce cryptoutil.Nonce) (properties.Measurement, error) {
	pcrs := []int{tpm.PCRFirmware, tpm.PCRHypervisor, tpm.PCRHostOS, tpm.PCRConfig, tpm.PCRVMImage}
	q, err := d.t.GenerateQuote(pcrs, nonce)
	if err != nil {
		return properties.Measurement{}, err
	}
	meas := properties.Measurement{Kind: properties.KindPlatformQuote, QuoteSig: q.Sig}
	for i, p := range q.PCRs {
		meas.QuotePCR = append(meas.QuotePCR, uint32(p))
		meas.QuoteVal = append(meas.QuoteVal, q.Values[i])
	}
	for _, e := range d.t.Log() {
		meas.LogNames = append(meas.LogNames, fmt.Sprintf("%d:%s", e.PCR, e.Description))
		meas.LogSums = append(meas.LogSums, e.Measurement)
	}
	return meas, nil
}

func unhealthy(class properties.FailureClass, reason string, details map[string]string) properties.Verdict {
	return properties.Verdict{Property: properties.StartupIntegrity, Healthy: false, Class: class, Reason: reason, Details: details}
}

// AppraiseStartup appraises the platform quote and the VM image digest
// (case study I). The verdict distinguishes a compromised platform from a
// compromised image because the remediation differs (reschedule vs.
// reject, paper §5.1).
func AppraiseStartup(ms []properties.Measurement, nonce cryptoutil.Nonce, refs driver.Refs) properties.Verdict {
	quote, ok := find(ms, properties.KindPlatformQuote)
	if !ok {
		return unhealthy(properties.FailurePlatform, "missing platform quote", nil)
	}
	img, ok := find(ms, properties.KindImageDigest)
	if !ok {
		return unhealthy(properties.FailureImage, "missing image digest", nil)
	}

	// 1. The quote signature must verify under the server's TPM AIK and be
	// bound to our nonce.
	q := &tpm.Quote{Nonce: nonce, Sig: quote.QuoteSig}
	for i, pcr := range quote.QuotePCR {
		q.PCRs = append(q.PCRs, int(pcr))
		q.Values = append(q.Values, quote.QuoteVal[i])
	}
	if err := tpm.VerifyQuote(q, ed25519.PublicKey(refs.AttestationKey), nonce); err != nil {
		return unhealthy(properties.FailurePlatform, "platform quote rejected: "+err.Error(), nil)
	}

	// 2. The measurement log must explain the quoted PCR values.
	events, err := parseLog(quote)
	if err != nil {
		return unhealthy(properties.FailurePlatform, err.Error(), nil)
	}
	replayed := tpm.ReplayLog(events)
	for i, pcr := range q.PCRs {
		if replayed[pcr] != q.Values[i] {
			return unhealthy(properties.FailurePlatform, fmt.Sprintf("measurement log does not explain PCR %d", pcr), nil)
		}
	}

	// 3. Every logged platform component must be known-good; our VM's image
	// entry must match the expected image. (Other VMs' image entries are
	// appraised by their own attestations.)
	for i, e := range events {
		desc := quote.LogNames[i]
		name := desc[strings.Index(desc, ":")+1:]
		if strings.HasPrefix(name, "vm-image-") {
			if name == "vm-image-"+refs.Vid && !cryptoutil.ConstEqual(e.Measurement[:], refs.ExpectedImage[:]) {
				return unhealthy(properties.FailureImage, "VM image measurement differs from pristine image",
					map[string]string{"component": name})
			}
			continue
		}
		if !approvedComponent(refs, name, e.Measurement) {
			if _, known := refs.PlatformGolden[name]; !known && !knownInAnyVersion(refs, name) {
				return unhealthy(properties.FailurePlatform, "unknown software measured into platform",
					map[string]string{"component": name})
			}
			return unhealthy(properties.FailurePlatform, "platform component differs from known-good build",
				map[string]string{"component": name})
		}
	}

	// 4. Belt and braces: the directly reported image digest must also match.
	if !cryptoutil.ConstEqual(img.Digest[:], refs.ExpectedImage[:]) {
		return unhealthy(properties.FailureImage, "VM image digest mismatch", nil)
	}
	return properties.Verdict{Property: properties.StartupIntegrity, Healthy: true,
		Reason: "platform and VM image match known-good measurements"}
}

func find(ms []properties.Measurement, kind properties.MeasurementKind) (properties.Measurement, bool) {
	for _, m := range ms {
		if m.Kind == kind {
			return m, true
		}
	}
	return properties.Measurement{}, false
}

// approvedComponent checks a measured component against every approved
// catalog.
func approvedComponent(refs driver.Refs, name string, m [32]byte) bool {
	if golden, ok := refs.PlatformGolden[name]; ok && cryptoutil.ConstEqual(m[:], golden[:]) {
		return true
	}
	for _, cat := range refs.ApprovedVersions {
		if golden, ok := cat[name]; ok && cryptoutil.ConstEqual(m[:], golden[:]) {
			return true
		}
	}
	return false
}

// knownInAnyVersion reports whether any approved catalog names the component.
func knownInAnyVersion(refs driver.Refs, name string) bool {
	for _, cat := range refs.ApprovedVersions {
		if _, ok := cat[name]; ok {
			return true
		}
	}
	return false
}

// parseLog reconstructs TPM events from the measurement's
// "pcr:description" encoded log names.
func parseLog(m properties.Measurement) ([]tpm.Event, error) {
	if len(m.LogNames) != len(m.LogSums) {
		return nil, fmt.Errorf("malformed measurement log")
	}
	events := make([]tpm.Event, len(m.LogNames))
	for i, n := range m.LogNames {
		idx := strings.Index(n, ":")
		if idx <= 0 {
			return nil, fmt.Errorf("malformed log entry %q", n)
		}
		pcr, err := strconv.Atoi(n[:idx])
		if err != nil {
			return nil, fmt.Errorf("malformed log entry %q", n)
		}
		events[i] = tpm.Event{PCR: pcr, Description: n[idx+1:], Measurement: m.LogSums[i]}
	}
	return events, nil
}
