// Package sevsnp is a simulated SEV-SNP confidential-VM trust backend.
// Its platform evidence is an attestation report in the style of the AMD
// secure processor's: a launch measurement over the guest image, the
// verifier's nonce bound in as report data, and the platform's TCB
// security-version vector, all signed by a per-server VCEK-style key.
//
// The appraiser accepts a report only if the signature verifies, the
// report is bound to the fresh nonce, the launch measurement matches the
// pristine image, and the reported TCB meets the verifier's fleet-minimum
// floor. The last check is the defense against the "Insecure Until Proven
// Updated" rollback attack (arXiv:1908.11680): a platform rolled back to
// exploitable firmware still produces a correct launch measurement, so
// appraisal must fail on the platform version alone.
//
// Capability gap: SNP memory encryption defeats hypervisor-level VM
// introspection, so runtime integrity is absent from this backend's
// capability map and appraises as unattestable (V_fail).
package sevsnp

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/trust/driver"
)

// CurrentTCB is the fleet-current platform security version the simulated
// secure processor ships with; verifiers default their rollback floor to
// it.
var CurrentTCB = driver.TCBVersion{Bootloader: 3, TEE: 1, SNP: 22, Microcode: 213}

// RolledBackTCB is a stale firmware version below CurrentTCB — what a
// platform looks like after the downgrade step of a rollback attack.
var RolledBackTCB = driver.TCBVersion{Bootloader: 3, TEE: 1, SNP: 8, Microcode: 170}

// defaultPolicy is the guest policy word carried in reports (debug off,
// migration off — the bits are opaque to the simulation but signed).
const defaultPolicy uint64 = 0x30000

// reportVersion is the only report format version this package emits or
// appraises.
const reportVersion uint16 = 2

// reportMagic frames an encoded report.
var reportMagic = [4]byte{'S', 'N', 'P', 'R'}

// maxSigLen bounds the signature field in the wire format.
const maxSigLen = ed25519.SignatureSize

// Report is the simulated attestation report.
type Report struct {
	Version    uint16
	GuestSVN   uint32
	Policy     uint64
	LaunchHash [32]byte // launch measurement over the guest image
	ReportData [32]byte // verifier nonce binding
	TCB        driver.TCBVersion
	Sig        []byte // VCEK signature over the report body
}

// reportBodyLen is the encoded length up to (not including) the signature.
const reportBodyLen = 4 + 2 + 4 + 8 + 32 + 32 + 4

// encodeBody renders everything the VCEK signs.
func encodeBody(r *Report) []byte {
	out := make([]byte, 0, reportBodyLen)
	out = append(out, reportMagic[:]...)
	out = binary.BigEndian.AppendUint16(out, r.Version)
	out = binary.BigEndian.AppendUint32(out, r.GuestSVN)
	out = binary.BigEndian.AppendUint64(out, r.Policy)
	out = append(out, r.LaunchHash[:]...)
	out = append(out, r.ReportData[:]...)
	out = append(out, r.TCB.Bootloader, r.TCB.TEE, r.TCB.SNP, r.TCB.Microcode)
	return out
}

// EncodeReport renders the report canonically: the signed body followed by
// a length-prefixed signature.
func EncodeReport(r *Report) []byte {
	out := encodeBody(r)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.Sig)))
	return append(out, r.Sig...)
}

// DecodeReport parses an encoded report strictly: exact framing, bounded
// signature, no trailing bytes. It is the attacker-facing parser — a
// compromised cloud server chooses these bytes — so it must reject
// malformed input rather than guess.
func DecodeReport(data []byte) (*Report, error) {
	if len(data) < reportBodyLen+2 {
		return nil, errors.New("sevsnp: report truncated")
	}
	if [4]byte(data[:4]) != reportMagic {
		return nil, errors.New("sevsnp: bad report magic")
	}
	var r Report
	r.Version = binary.BigEndian.Uint16(data[4:6])
	r.GuestSVN = binary.BigEndian.Uint32(data[6:10])
	r.Policy = binary.BigEndian.Uint64(data[10:18])
	copy(r.LaunchHash[:], data[18:50])
	copy(r.ReportData[:], data[50:82])
	r.TCB = driver.TCBVersion{Bootloader: data[82], TEE: data[83], SNP: data[84], Microcode: data[85]}
	sigLen := int(binary.BigEndian.Uint16(data[reportBodyLen : reportBodyLen+2]))
	if sigLen > maxSigLen {
		return nil, fmt.Errorf("sevsnp: signature length %d exceeds %d", sigLen, maxSigLen)
	}
	if len(data) != reportBodyLen+2+sigLen {
		return nil, fmt.Errorf("sevsnp: report length %d does not match frame", len(data))
	}
	if sigLen > 0 {
		r.Sig = append([]byte(nil), data[reportBodyLen+2:]...)
	}
	return &r, nil
}

// SignReport signs the report body with the VCEK and stores the signature.
func SignReport(r *Report, vcek *cryptoutil.Identity) {
	r.Sig = vcek.Sign(encodeBody(r))
}

// VerifyReport checks the VCEK signature over the report body.
func VerifyReport(r *Report, vcek ed25519.PublicKey) error {
	if len(vcek) != ed25519.PublicKeySize {
		return errors.New("sevsnp: malformed VCEK public key")
	}
	if !cryptoutil.Verify(vcek, encodeBody(r), r.Sig) {
		return errors.New("sevsnp: report signature invalid")
	}
	return nil
}

// LaunchMeasurement derives the launch measurement the secure processor
// records for a guest built from the given image.
func LaunchMeasurement(imageDigest [32]byte) [32]byte {
	return cryptoutil.Hash("sev-snp-launch", imageDigest[:])
}

// NonceData derives the report-data field binding the verifier's nonce.
func NonceData(nonce cryptoutil.Nonce) [32]byte {
	return cryptoutil.Hash("sev-snp-report-data", nonce[:])
}

func init() {
	driver.MustRegister(driver.BackendSEVSNP, driver.Registration{
		New: New,
		Caps: map[properties.Property]properties.Request{
			properties.StartupIntegrity: {Kinds: []properties.MeasurementKind{properties.KindAttestationReport, properties.KindImageDigest}},
			// The scheduler-level monitors observe vCPU run segments from
			// outside the encrypted guest, so they survive on SNP hosts.
			properties.CovertChannelFreedom: {Kinds: []properties.MeasurementKind{properties.KindIntervalHistogram, properties.KindBusLockTrace}, Window: properties.DefaultWindow},
			properties.CPUAvailability:      {Kinds: []properties.MeasurementKind{properties.KindCPUTime}, Window: properties.DefaultWindow},
		},
		AppraiseStartup: AppraiseStartup,
	})
}

// Driver simulates the SEV-SNP secure processor of one cloud server.
type Driver struct {
	vcek *cryptoutil.Identity
	tcb  driver.TCBVersion

	mu       sync.Mutex
	launches map[string][32]byte
}

// New provisions the per-server VCEK and records the platform's firmware
// version (cfg.TCB; zero means fleet-current). Passing an old version
// models the rollback scenario.
func New(cfg driver.Config) (driver.Driver, error) {
	vcek, err := cryptoutil.NewIdentity(cfg.ServerName+"-vcek", cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("sevsnp: %w", err)
	}
	tcb := cfg.TCB
	if tcb.IsZero() {
		tcb = CurrentTCB
	}
	return &Driver{vcek: vcek, tcb: tcb, launches: make(map[string][32]byte)}, nil
}

// Backend implements driver.Driver.
func (d *Driver) Backend() driver.Backend { return driver.BackendSEVSNP }

// AttestationKey returns the VCEK public key.
func (d *Driver) AttestationKey() []byte { return d.vcek.Public() }

// BootMeasure implements driver.Driver. The hypervisor stack is outside
// the SNP trust boundary — the secure processor vouches for the guest and
// its own firmware, not the host software — so host components are
// accepted and dropped.
func (d *Driver) BootMeasure(string, []byte) error { return nil }

// AddVM records the guest's launch measurement.
func (d *Driver) AddVM(vid string, imageDigest [32]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.launches[vid]; dup {
		return fmt.Errorf("sevsnp: launch context for %s exists", vid)
	}
	d.launches[vid] = LaunchMeasurement(imageDigest)
	return nil
}

// RemoveVM forgets the guest's launch context.
func (d *Driver) RemoveVM(vid string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.launches, vid)
}

// PlatformEvidence produces the signed attestation report for the guest,
// bound to the verifier's nonce.
func (d *Driver) PlatformEvidence(vid string, nonce cryptoutil.Nonce) (properties.Measurement, error) {
	d.mu.Lock()
	lm, ok := d.launches[vid]
	d.mu.Unlock()
	if !ok {
		return properties.Measurement{}, fmt.Errorf("sevsnp: no launch context for %s", vid)
	}
	r := &Report{
		Version:    reportVersion,
		GuestSVN:   1,
		Policy:     defaultPolicy,
		LaunchHash: lm,
		ReportData: NonceData(nonce),
		TCB:        d.tcb,
	}
	SignReport(r, d.vcek)
	return properties.Measurement{Kind: properties.KindAttestationReport, Report: EncodeReport(r)}, nil
}

func unhealthy(class properties.FailureClass, reason string, details map[string]string) properties.Verdict {
	return properties.Verdict{Property: properties.StartupIntegrity, Healthy: false, Class: class, Reason: reason, Details: details}
}

// AppraiseStartup appraises an attestation report: signature, nonce
// binding, launch measurement against the pristine image, and — last, so
// the rollback case demonstrably passes every measurement check first —
// the platform version against the fleet floor.
func AppraiseStartup(ms []properties.Measurement, nonce cryptoutil.Nonce, refs driver.Refs) properties.Verdict {
	var meas properties.Measurement
	found := false
	for _, m := range ms {
		if m.Kind == properties.KindAttestationReport {
			meas, found = m, true
			break
		}
	}
	if !found {
		return unhealthy(properties.FailurePlatform, "missing attestation report", nil)
	}
	r, err := DecodeReport(meas.Report)
	if err != nil {
		return unhealthy(properties.FailurePlatform, "malformed attestation report: "+err.Error(), nil)
	}
	if err := VerifyReport(r, ed25519.PublicKey(refs.AttestationKey)); err != nil {
		return unhealthy(properties.FailurePlatform, "attestation report rejected: "+err.Error(), nil)
	}
	if r.Version != reportVersion {
		return unhealthy(properties.FailurePlatform, fmt.Sprintf("unsupported report version %d", r.Version), nil)
	}
	want := NonceData(nonce)
	if !cryptoutil.ConstEqual(r.ReportData[:], want[:]) {
		return unhealthy(properties.FailurePlatform, "report not bound to the verifier nonce (replay?)", nil)
	}
	expect := LaunchMeasurement(refs.ExpectedImage)
	if !cryptoutil.ConstEqual(r.LaunchHash[:], expect[:]) {
		return unhealthy(properties.FailureImage, "launch measurement differs from pristine image", nil)
	}
	for _, m := range ms {
		if m.Kind == properties.KindImageDigest && !cryptoutil.ConstEqual(m.Digest[:], refs.ExpectedImage[:]) {
			return unhealthy(properties.FailureImage, "VM image digest mismatch", nil)
		}
	}
	if !r.TCB.AtLeast(refs.MinTCB) {
		return unhealthy(properties.FailurePlatform,
			fmt.Sprintf("platform security version %s below the fleet minimum %s (firmware rollback)", r.TCB, refs.MinTCB),
			map[string]string{"tcb": r.TCB.String(), "min-tcb": refs.MinTCB.String()})
	}
	return properties.Verdict{Property: properties.StartupIntegrity, Healthy: true,
		Reason:  "launch measurement and platform security version match policy",
		Details: map[string]string{"tcb": r.TCB.String()}}
}
