package sevsnp_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/trust/driver"
	"cloudmonatt/internal/trust/driver/sevsnp"
)

// The attestation report travels inside wire.Evidence from the cloud
// server to the appraiser; a compromised cloud server chooses its bytes,
// so DecodeReport is attacker-facing and must survive arbitrary input.
// The target decodes fuzzed bytes and, when a decode succeeds, pushes the
// result through re-encoding (must round-trip), signature verification and
// the full startup appraisal — none of which may panic.

func fuzzIdentity(name string) *cryptoutil.Identity {
	seed := cryptoutil.Hash("fuzz-seed", []byte(name))
	id, err := cryptoutil.IdentityFromSeed(name, seed[:])
	if err != nil {
		panic(err)
	}
	return id
}

func fuzzNonce(tag string) cryptoutil.Nonce {
	var n cryptoutil.Nonce
	sum := cryptoutil.Hash("fuzz-nonce", []byte(tag))
	copy(n[:], sum[:])
	return n
}

func reportSeeds() [][]byte {
	vcek := fuzzIdentity("seed-vcek")
	image := cryptoutil.Hash("seed-image")
	signed := &sevsnp.Report{
		Version:    2,
		GuestSVN:   1,
		Policy:     0x30000,
		LaunchHash: sevsnp.LaunchMeasurement(image),
		ReportData: sevsnp.NonceData(fuzzNonce("seed")),
		TCB:        sevsnp.CurrentTCB,
	}
	sevsnp.SignReport(signed, vcek)
	valid := sevsnp.EncodeReport(signed)

	unsigned := *signed
	unsigned.Sig = nil
	stale := *signed
	stale.TCB = sevsnp.RolledBackTCB
	sevsnp.SignReport(&stale, vcek)

	// An oversize signature-length claim, a truncated frame, and trailing
	// garbage exercise the three framing rejections.
	overclaim := append([]byte(nil), valid...)
	overclaim[len(valid)-len(signed.Sig)-2] = 0xFF
	return [][]byte{
		valid,
		sevsnp.EncodeReport(&unsigned),
		sevsnp.EncodeReport(&stale),
		overclaim,
		valid[:20],
		append(append([]byte(nil), valid...), 0x00),
		{},
	}
}

func FuzzReportDecode(f *testing.F) {
	for _, s := range reportSeeds() {
		f.Add(s)
	}
	vcek := fuzzIdentity("fuzz-vcek").Public()
	image := cryptoutil.Hash("fuzz-image")
	nonce := fuzzNonce("fuzz")
	refs := driver.Refs{
		AttestationKey: vcek,
		ExpectedImage:  image,
		Vid:            "vm-1",
		MinTCB:         sevsnp.CurrentTCB,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := sevsnp.DecodeReport(data)
		if err == nil {
			// Strict framing means decode/encode is a bijection on the
			// accepted set: re-encoding must reproduce the input bytes.
			if !bytes.Equal(sevsnp.EncodeReport(r), data) {
				t.Fatalf("decoded report does not re-encode to its input")
			}
			_ = sevsnp.VerifyReport(r, vcek)
		}
		// The appraiser sees the raw bytes before any decode: it must
		// return a verdict, never panic, whatever the report claims.
		v := sevsnp.AppraiseStartup([]properties.Measurement{
			{Kind: properties.KindAttestationReport, Report: data},
		}, nonce, refs)
		if v.Healthy {
			t.Fatalf("fuzzed report appraised healthy: %s", v.Reason)
		}
	})
}

// TestRegenFuzzSeeds rewrites the committed seed corpus under
// testdata/fuzz from the real report builders. Run with REGEN_FUZZ_SEEDS=1
// after changing the report format.
func TestRegenFuzzSeeds(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_SEEDS") == "" {
		t.Skip("set REGEN_FUZZ_SEEDS=1 to rewrite testdata/fuzz seeds")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReportDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range reportSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
