package trust

import (
	"crypto/rand"
	"sync"
	"testing"
	"testing/quick"

	"cloudmonatt/internal/cryptoutil"
)

func newModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule("server-1", 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistersBasicOps(t *testing.T) {
	r := NewRegisters(4)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if err := r.Add(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(2, 3); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read(2)
	if err != nil || v != 8 {
		t.Fatalf("Read = %d,%v want 8", v, err)
	}
	if err := r.Set(0, 42); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	want := []uint64{42, 0, 8, 0}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", snap, want)
		}
	}
	r.Clear()
	for i, v := range r.Snapshot() {
		if v != 0 {
			t.Fatalf("register %d not cleared: %d", i, v)
		}
	}
}

func TestRegistersBounds(t *testing.T) {
	r := NewRegisters(2)
	if err := r.Add(-1, 1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := r.Set(2, 1); err == nil {
		t.Fatal("out-of-range Set accepted")
	}
	if _, err := r.Read(99); err == nil {
		t.Fatal("out-of-range Read accepted")
	}
}

func TestRegistersDefaultSize(t *testing.T) {
	if n := NewRegisters(0).Len(); n != DefaultRegisters {
		t.Fatalf("default register count %d, want %d", n, DefaultRegisters)
	}
}

func TestRegistersSnapshotIsolated(t *testing.T) {
	r := NewRegisters(2)
	r.Set(0, 7)
	snap := r.Snapshot()
	snap[0] = 99
	if v, _ := r.Read(0); v != 7 {
		t.Fatal("mutating a snapshot changed the register bank")
	}
}

func TestQuickRegisterAccumulation(t *testing.T) {
	// Property: the register equals the sum of all Adds (mod 2^64).
	f := func(deltas []uint16) bool {
		r := NewRegisters(1)
		var want uint64
		for _, d := range deltas {
			r.Add(0, uint64(d))
			want += uint64(d)
		}
		got, _ := r.Read(0)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistersConcurrentAdds(t *testing.T) {
	r := NewRegisters(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add(0, 1)
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Read(0); v != 8000 {
		t.Fatalf("concurrent adds lost updates: %d", v)
	}
}

func TestSessionKeyDistinctFromIdentity(t *testing.T) {
	m := newModule(t)
	s1, req1, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if cryptoutil.KeyEqual(s1.Public(), m.IdentityKey()) {
		t.Fatal("session key equals identity key — server anonymity broken")
	}
	if cryptoutil.KeyEqual(s1.Public(), s2.Public()) {
		t.Fatal("two sessions share a key")
	}
	if req1.Server != "server-1" {
		t.Fatalf("request names %q", req1.Server)
	}
}

func TestCertRequestVerification(t *testing.T) {
	m := newModule(t)
	_, req, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCertRequest(req, m.IdentityKey()); err != nil {
		t.Fatalf("genuine request rejected: %v", err)
	}
	other := newModule(t)
	if err := VerifyCertRequest(req, other.IdentityKey()); err == nil {
		t.Fatal("request accepted under wrong identity key")
	}
	forged := *req
	forged.Server = "server-2"
	if err := VerifyCertRequest(&forged, m.IdentityKey()); err == nil {
		t.Fatal("request with altered server name accepted")
	}
	if err := VerifyCertRequest(nil, m.IdentityKey()); err == nil {
		t.Fatal("nil request accepted")
	}
}

func TestSessionSigning(t *testing.T) {
	m := newModule(t)
	s, _, _ := m.NewSession()
	msg := []byte("evidence")
	sig := s.Sign(msg)
	if !cryptoutil.Verify(s.Public(), msg, sig) {
		t.Fatal("session signature does not verify")
	}
	if cryptoutil.Verify(m.IdentityKey(), msg, sig) {
		t.Fatal("session signature verifies under identity key")
	}
}

func TestModuleNonces(t *testing.T) {
	m := newModule(t)
	a, err := m.Nonce()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Nonce()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two nonces identical")
	}
}

func TestModuleHasTPM(t *testing.T) {
	m := newModule(t)
	if m.TPM() == nil {
		t.Fatal("module has no TPM")
	}
	if m.Name() != "server-1" {
		t.Fatalf("Name = %q", m.Name())
	}
	if m.Registers().Len() != DefaultRegisters {
		t.Fatalf("register count %d", m.Registers().Len())
	}
}
