package guest

import "testing"

func TestFreshGuestViewsAgree(t *testing.T) {
	g := NewOS()
	truth, visible := g.TrueTasks(), g.GuestVisibleTasks()
	if len(truth) != len(visible) {
		t.Fatalf("pristine guest views differ: %d vs %d", len(truth), len(visible))
	}
	if hidden := HiddenTasks(truth, visible); len(hidden) != 0 {
		t.Fatalf("pristine guest has hidden tasks: %v", hidden)
	}
}

func TestRootkitHidesFromGuestView(t *testing.T) {
	g := NewOS()
	rk := g.InfectRootkit("kworker-evil")
	truth, visible := g.TrueTasks(), g.GuestVisibleTasks()
	if len(truth) != len(visible)+1 {
		t.Fatalf("true view %d, visible %d; want exactly one hidden", len(truth), len(visible))
	}
	hidden := HiddenTasks(truth, visible)
	if len(hidden) != 1 || hidden[0].PID != rk.PID || hidden[0].Name != "kworker-evil" {
		t.Fatalf("hidden diff = %v", hidden)
	}
}

func TestVisibleMalwareAppearsInBothViews(t *testing.T) {
	g := NewOS()
	g.Spawn("cryptominer")
	if hidden := HiddenTasks(g.TrueTasks(), g.GuestVisibleTasks()); len(hidden) != 0 {
		t.Fatalf("visible process reported as hidden: %v", hidden)
	}
}

func TestSpawnAndKill(t *testing.T) {
	g := NewOS()
	p := g.Spawn("nginx")
	if err := g.Kill(p.PID); err != nil {
		t.Fatal(err)
	}
	if err := g.Kill(p.PID); err == nil {
		t.Fatal("double kill succeeded")
	}
	for _, q := range g.TrueTasks() {
		if q.PID == p.PID {
			t.Fatal("killed process still listed")
		}
	}
}

func TestTasksSortedByPID(t *testing.T) {
	g := NewOS()
	for i := 0; i < 10; i++ {
		g.Spawn("w")
	}
	tasks := g.TrueTasks()
	for i := 1; i < len(tasks); i++ {
		if tasks[i].PID <= tasks[i-1].PID {
			t.Fatal("task list not sorted by PID")
		}
	}
}

func TestBootChainTamperChangesDigest(t *testing.T) {
	g := NewOS()
	before := g.BootChain()
	if err := g.TamperBootChain("guest-kernel"); err != nil {
		t.Fatal(err)
	}
	after := g.BootChain()
	if before[0].Digest() == after[0].Digest() {
		t.Fatal("tampering did not change the kernel digest")
	}
	if before[1].Digest() != after[1].Digest() {
		t.Fatal("tampering changed an unrelated component")
	}
	if err := g.TamperBootChain("nosuch"); err == nil {
		t.Fatal("tampering unknown component succeeded")
	}
}

func TestBootChainCopied(t *testing.T) {
	g := NewOS()
	chain := g.BootChain()
	chain[0].Data[0] ^= 1
	if g.BootChain()[0].Digest() == chain[0].Digest() {
		t.Fatal("external mutation reached the guest boot chain")
	}
}
