// Package guest models the inside of a guest VM for the runtime-integrity
// case study (paper §4.3): a boot chain of measured components and a
// process table. The crucial semantics are the two views of the task list:
//
//   - the in-guest view, what a (possibly compromised) guest OS reports to
//     its user — a rootkit hides its processes here;
//   - the true view, what hypervisor-level VM introspection reconstructs
//     from the VM's memory, which the rootkit cannot falsify.
//
// The diff between the two views is the malware evidence CloudMonatt's VMI
// monitor reports.
package guest

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
)

// Process is one entry of the guest's task table.
type Process struct {
	PID    int
	Name   string
	Hidden bool // a rootkit process that filters itself from in-guest queries
}

// BootComponent is one measured element of the guest boot chain.
type BootComponent struct {
	Name string
	Data []byte
}

// Digest returns the measurement of the component.
func (b BootComponent) Digest() [32]byte { return sha256.Sum256(b.Data) }

// OS is a running guest operating system instance.
type OS struct {
	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process
	boot    []BootComponent
}

// NewOS boots a guest with the standard service set.
func NewOS() *OS {
	g := &OS{nextPID: 100, procs: make(map[int]*Process)}
	for _, name := range []string{"init", "sshd", "cron", "rsyslogd", "agetty"} {
		g.spawnLocked(name, false)
	}
	g.boot = []BootComponent{
		{Name: "guest-kernel", Data: []byte("guest-kernel v5.4 pristine")},
		{Name: "guest-initrd", Data: []byte("guest-initrd pristine")},
	}
	return g
}

func (g *OS) spawnLocked(name string, hidden bool) *Process {
	p := &Process{PID: g.nextPID, Name: name, Hidden: hidden}
	g.nextPID++
	g.procs[p.PID] = p
	return p
}

// Spawn starts a visible process and returns it.
func (g *OS) Spawn(name string) *Process {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spawnLocked(name, false)
}

// Kill removes a process by PID.
func (g *OS) Kill(pid int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.procs[pid]; !ok {
		return fmt.Errorf("guest: no such process %d", pid)
	}
	delete(g.procs, pid)
	return nil
}

// InfectRootkit plants a rootkit process: it runs (true view) but hides
// itself from in-guest queries.
func (g *OS) InfectRootkit(name string) *Process {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spawnLocked(name, true)
}

// TamperBootChain corrupts a boot component, modeling malware inserted into
// the VM image or guest kernel (startup-integrity case study).
func (g *OS) TamperBootChain(component string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.boot {
		if g.boot[i].Name == component {
			g.boot[i].Data = append(g.boot[i].Data, []byte(" +malware")...)
			return nil
		}
	}
	return fmt.Errorf("guest: no boot component %q", component)
}

// BootChain returns a deep copy of the guest's measured boot components.
func (g *OS) BootChain() []BootComponent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]BootComponent, len(g.boot))
	for i, b := range g.boot {
		out[i] = BootComponent{Name: b.Name, Data: append([]byte(nil), b.Data...)}
	}
	return out
}

// GuestVisibleTasks is the task list as reported from *inside* the guest:
// rootkit processes filter themselves out. This is what the customer sees
// when querying the (compromised) guest OS.
func (g *OS) GuestVisibleTasks() []Process {
	return g.tasks(false)
}

// TrueTasks is the task list as reconstructed by hypervisor-level VM
// introspection from guest memory: it includes hidden processes.
func (g *OS) TrueTasks() []Process {
	return g.tasks(true)
}

func (g *OS) tasks(includeHidden bool) []Process {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []Process
	for _, p := range g.procs {
		if p.Hidden && !includeHidden {
			continue
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// HiddenTasks returns the processes present in the true view but absent
// from the guest-visible view — direct rootkit evidence.
func HiddenTasks(truth, visible []Process) []Process {
	seen := make(map[int]bool, len(visible))
	for _, p := range visible {
		seen[p.PID] = true
	}
	var out []Process
	for _, p := range truth {
		if !seen[p.PID] {
			out = append(out, p)
		}
	}
	return out
}
