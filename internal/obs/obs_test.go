package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced virtual clock for tracer tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestMintTraceDeterministic(t *testing.T) {
	a := MintTrace([]byte("nonce-1"))
	b := MintTrace([]byte("nonce-1"))
	c := MintTrace([]byte("nonce-2"))
	if a != b {
		t.Fatalf("same seed minted different traces: %s vs %s", a, b)
	}
	if a == c {
		t.Fatalf("different seeds minted the same trace: %s", a)
	}
	if len(a) != 16 {
		t.Fatalf("trace ID %q: want 16 hex chars", a)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	tr := NewTracer(nil, "x", nil)
	if tr != nil {
		t.Fatal("NewTracer with nil store should return nil")
	}
	if got := tr.Entity(); got != "" {
		t.Fatalf("nil tracer entity = %q", got)
	}
	sp := tr.Start(SpanContext{}, "work")
	if sp != nil {
		t.Fatal("nil tracer should start nil spans")
	}
	// Every ActiveSpan method must tolerate nil.
	sp.SetVM("vm-1", "p")
	sp.Annotate("k", "v")
	child := sp.Child("sub")
	if child != nil {
		t.Fatal("nil span should produce nil children")
	}
	sp.End("")
	sp.EndErr(fmt.Errorf("boom"))
	if sc := sp.Context(); sc.Traced() {
		t.Fatalf("nil span context = %+v", sc)
	}
	// Context propagation round-trips nil without panicking.
	ctx := ContextWith(context.Background(), sp)
	if got := FromContext(ctx); got != nil {
		t.Fatal("nil span should not be stored in context")
	}
}

func TestSpanLifecycleAndPropagation(t *testing.T) {
	clock := &fakeClock{}
	st := NewStore(16)
	tr := NewTracer(st, "controller", clock.Now)

	root := tr.Start(SpanContext{Trace: "t1", Span: "parent9"}, "attest")
	root.SetVM("vm-7", "runtime-integrity")
	clock.advance(10 * time.Millisecond)
	child := root.Child("verify")
	clock.advance(5 * time.Millisecond)
	child.End("")
	root.Annotate("degraded", "stale-report")
	clock.advance(time.Millisecond)
	root.End("degraded")
	root.End("ignored") // second End must not publish again

	spans := st.Spans("t1")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	c, r := spans[0], spans[1] // oldest-first: child ended before root
	if c.Name != "verify" || c.Parent != r.ID {
		t.Fatalf("child span %+v not parented to root %q", c, r.ID)
	}
	if r.Parent != "parent9" || r.Trace != "t1" {
		t.Fatalf("root span did not keep propagated context: %+v", r)
	}
	if r.Vid != "vm-7" || r.Prop != "runtime-integrity" {
		t.Fatalf("root span lost VM tags: %+v", r)
	}
	if r.Outcome != "degraded" || c.Outcome != "ok" {
		t.Fatalf("outcomes = root %q, child %q", r.Outcome, c.Outcome)
	}
	if c.Start < r.Start || c.End > r.End {
		t.Fatalf("child [%v,%v] not nested in root [%v,%v]", c.Start, c.End, r.Start, r.End)
	}
	if len(r.Notes) != 1 || r.Notes[0].Key != "degraded" {
		t.Fatalf("root notes = %+v", r.Notes)
	}
}

func TestTracerMintsRootTraceWithoutParent(t *testing.T) {
	clock := &fakeClock{}
	st := NewStore(16)
	tr := NewTracer(st, "engine", clock.Now)
	a := tr.Start(SpanContext{}, "periodic")
	b := tr.Start(SpanContext{}, "periodic")
	if !a.Context().Traced() || !b.Context().Traced() {
		t.Fatal("parentless spans should mint fresh traces")
	}
	if a.Context().Trace == b.Context().Trace {
		t.Fatal("two parentless spans should land in distinct traces")
	}
	a.End("")
	b.End("")
	if got := len(st.Traces(TraceFilter{CompleteOnly: true})); got != 2 {
		t.Fatalf("got %d complete traces, want 2", got)
	}
}

func TestStoreDropsOldest(t *testing.T) {
	clock := &fakeClock{}
	st := NewStore(4)
	tr := NewTracer(st, "e", clock.Now)
	for i := 0; i < 10; i++ {
		sp := tr.Start(SpanContext{Trace: fmt.Sprintf("t%d", i)}, "w")
		clock.advance(time.Millisecond)
		sp.End("")
	}
	if st.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", st.Len())
	}
	if st.Dropped() != 6 || st.Total() != 10 {
		t.Fatalf("Dropped=%d Total=%d, want 6/10", st.Dropped(), st.Total())
	}
	if got := st.Spans("t0"); len(got) != 0 {
		t.Fatalf("oldest span survived eviction: %+v", got)
	}
	if got := st.Spans("t9"); len(got) != 1 {
		t.Fatalf("newest span missing: %+v", got)
	}
}

func TestStoreDefaultCapacity(t *testing.T) {
	for _, c := range []int{0, -5} {
		if got := len(NewStore(c).ring); got != DefaultStoreCapacity {
			t.Fatalf("NewStore(%d) capacity = %d, want %d", c, got, DefaultStoreCapacity)
		}
	}
}

func TestTracesFilterAndOrder(t *testing.T) {
	clock := &fakeClock{}
	st := NewStore(32)
	tr := NewTracer(st, "api", clock.Now)

	// Trace A: complete, vm-1.
	a := tr.Start(SpanContext{}, "api:attest")
	a.SetVM("vm-1", "p")
	clock.advance(time.Millisecond)
	a.End("")

	// Trace B: complete, vm-2, starts later than A.
	clock.advance(time.Millisecond)
	b := tr.Start(SpanContext{}, "api:attest")
	b.SetVM("vm-2", "p")
	clock.advance(time.Millisecond)
	b.End("")

	// Trace C: child recorded but root never ended — incomplete.
	c := tr.Start(SpanContext{}, "api:attest")
	c.SetVM("vm-3", "p")
	cc := c.Child("inner")
	cc.End("")

	all := st.Traces(TraceFilter{})
	if len(all) != 3 {
		t.Fatalf("got %d traces, want 3", len(all))
	}
	complete := st.Traces(TraceFilter{CompleteOnly: true})
	if len(complete) != 2 {
		t.Fatalf("got %d complete traces, want 2", len(complete))
	}
	// Newest root first.
	if complete[0].Vid != "vm-2" || complete[1].Vid != "vm-1" {
		t.Fatalf("order = %s, %s; want vm-2 then vm-1", complete[0].Vid, complete[1].Vid)
	}
	byVM := st.Traces(TraceFilter{Vid: "vm-1"})
	if len(byVM) != 1 || byVM[0].Vid != "vm-1" {
		t.Fatalf("vm filter returned %+v", byVM)
	}
	limited := st.Traces(TraceFilter{CompleteOnly: true, Limit: 1})
	if len(limited) != 1 {
		t.Fatalf("limit ignored: got %d traces", len(limited))
	}
	if limited[0].Vid != "vm-2" {
		t.Fatalf("limit should keep the newest trace, got %s", limited[0].Vid)
	}
}

// TestStoreConcurrency hammers the store from concurrent recorders and
// readers; run with -race.
func TestStoreConcurrency(t *testing.T) {
	clock := &fakeClock{}
	st := NewStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := NewTracer(st, fmt.Sprintf("e%d", g), clock.Now)
			for i := 0; i < 200; i++ {
				sp := tr.Start(SpanContext{}, "w")
				sp.Annotate("i", fmt.Sprint(i))
				sp.Child("c").End("")
				sp.End("")
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				st.Traces(TraceFilter{CompleteOnly: true, Limit: 10})
				st.Len()
				clock.advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if st.Total() != 4*200*2 {
		t.Fatalf("Total = %d, want %d", st.Total(), 4*200*2)
	}
}
