package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"cloudmonatt/internal/metrics"
)

// PeerHealth reports one entity's view of one downstream peer: the
// circuit-breaker state of the ReconnectClient that talks to it.
type PeerHealth struct {
	Peer    string `json:"peer"`
	Breaker string `json:"breaker"` // closed | open | half-open
}

// QueueHealth reports the state of an entity's reconcile workqueue: how
// many keys are ready, how many wait on timers (backoff or requeue-after
// schedules), and how many the queue bound has evicted since start.
type QueueHealth struct {
	Ready   int    `json:"ready"`
	Delayed int    `json:"delayed"`
	Dropped uint64 `json:"dropped"`
}

// EntityHealth reports one entity's liveness plus its downstream peers.
type EntityHealth struct {
	Entity string       `json:"entity"`
	Alive  bool         `json:"alive"`
	Peers  []PeerHealth `json:"peers,omitempty"`
	// Queue, when present, is the entity's reconcile-queue state (the
	// controller reports its level-triggered control loop here).
	Queue *QueueHealth `json:"queue,omitempty"`
}

// AdminConfig assembles the operator surface. Every field is optional;
// absent pieces serve empty (but well-formed) responses.
type AdminConfig struct {
	// Registries maps a Prometheus metric prefix (entity name) to that
	// entity's metrics registry.
	Registries map[string]*metrics.Registry
	// Store is the shared span store backing /traces.
	Store *Store
	// Health returns per-entity liveness + breaker states for /healthz.
	Health func() []EntityHealth
}

// defaultTraceLimit bounds /traces responses unless ?limit= overrides it.
const defaultTraceLimit = 50

// AdminMux builds the operator HTTP handler:
//
//	GET /metrics        Prometheus text exposition of every registry
//	GET /healthz        JSON per-entity liveness + breaker states; 503 if
//	                    any entity reports not-alive
//	GET /traces         recent completed traces as JSON, newest first;
//	                    ?vm=<vid> filters by VM id, ?limit=<n> caps count,
//	                    ?all=1 includes traces with no ended root span
//	GET /debug/pprof/*  net/http/pprof
func AdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, cfg.Registries)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var entities []EntityHealth
		if cfg.Health != nil {
			entities = cfg.Health()
		}
		status := http.StatusOK
		for _, e := range entities {
			if !e.Alive {
				status = http.StatusServiceUnavailable
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			OK       bool           `json:"ok"`
			Entities []EntityHealth `json:"entities"`
		}{OK: status == http.StatusOK, Entities: entities})
	})

	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		f := TraceFilter{
			Vid:          r.URL.Query().Get("vm"),
			CompleteOnly: r.URL.Query().Get("all") == "",
			Limit:        defaultTraceLimit,
		}
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		var traces []Trace
		if cfg.Store != nil {
			traces = cfg.Store.Traces(f)
		}
		if traces == nil {
			traces = []Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
