// Package obs provides the per-request observability layer the paper
// delegates to OpenStack Ceilometer (§7): distributed tracing of every
// attestation across the Fig. 3 protocol chain, and the operator HTTP
// surface (cmd/monatt-cloud's -admin-addr) that exposes traces, metrics
// and health.
//
// A trace is minted at the customer-facing API — deterministically, from
// the request nonce, so simulated runs reproduce bit-for-bit (no wall
// clock, no global RNG). The trace context (trace ID + parent span ID)
// rides the rpc request envelope and the wire message headers across all
// four entities; each entity records spans (stage, entity, virtual-clock
// start/end, outcome, fault-tolerance annotations) into a shared bounded
// in-memory Store. In a real multi-machine deployment each entity would
// own a store and a collector would join them; the in-process cloud shares
// one, exactly like the evidence ledger.
package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the propagated trace context: which trace a request
// belongs to and which span is its parent. The zero value means "not
// traced" (Trace == "").
type SpanContext struct {
	Trace string
	Span  string
}

// Traced reports whether the context names a trace.
func (sc SpanContext) Traced() bool { return sc.Trace != "" }

// MintTrace derives a trace ID from seed bytes (the customer's request
// nonce N1): deterministic under the seeded nonce machinery, unique per
// request, and wall-clock free.
func MintTrace(seed []byte) string {
	sum := sha256.Sum256(append([]byte("monatt-trace\x00"), seed...))
	return hex.EncodeToString(sum[:8])
}

// Annotation is one key=value note on a span (retry attempts, breaker
// trips, degraded serves, periodic-engine outcomes).
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed unit of work inside a trace. Start and End are
// virtual-clock times.
type Span struct {
	Trace   string        `json:"trace"`
	ID      string        `json:"id"`
	Parent  string        `json:"parent,omitempty"`
	Entity  string        `json:"entity"`
	Name    string        `json:"name"`
	Vid     string        `json:"vid,omitempty"`
	Prop    string        `json:"prop,omitempty"`
	Start   time.Duration `json:"start_ns"`
	End     time.Duration `json:"end_ns"`
	Outcome string        `json:"outcome"`
	Notes   []Annotation  `json:"notes,omitempty"`
}

// Duration is the span's virtual-time extent.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// Tracer mints spans for one entity. A nil Tracer is valid and records
// nothing, so entities assembled without observability pay no branches at
// call sites.
type Tracer struct {
	store  *Store
	entity string
	now    func() time.Duration
	seq    atomic.Uint64
}

// NewTracer creates a tracer recording into store under the entity name.
// It returns nil when store is nil (tracing disabled).
func NewTracer(store *Store, entity string, now func() time.Duration) *Tracer {
	if store == nil {
		return nil
	}
	return &Tracer{store: store, entity: entity, now: now}
}

// Entity returns the entity name, or "" for a nil tracer.
func (t *Tracer) Entity() string {
	if t == nil {
		return ""
	}
	return t.entity
}

// Start opens a span under parent. When parent does not name a trace, the
// span becomes the root of a fresh trace whose ID is derived from the
// entity name and a per-tracer sequence number — deterministic given call
// order, which the single-threaded simulation paths guarantee. A nil
// tracer returns a nil span; all ActiveSpan methods tolerate nil.
func (t *Tracer) Start(parent SpanContext, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	n := t.seq.Add(1)
	sp := &ActiveSpan{tracer: t}
	sp.span = Span{
		Trace:  parent.Trace,
		ID:     fmt.Sprintf("%s#%d", t.entity, n),
		Parent: parent.Span,
		Entity: t.entity,
		Name:   name,
		Start:  t.now(),
	}
	if sp.span.Trace == "" {
		sp.span.Trace = MintTrace([]byte(sp.span.ID))
		sp.span.Parent = ""
	}
	return sp
}

// ActiveSpan is an open span. It is safe for concurrent annotation; End
// publishes it to the store exactly once.
type ActiveSpan struct {
	mu     sync.Mutex
	tracer *Tracer
	span   Span
	ended  bool
}

// Context returns the propagation context naming this span as parent.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.span.Trace, Span: s.span.ID}
}

// SetVM tags the span with the VM and property it concerns.
func (s *ActiveSpan) SetVM(vid, prop string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.Vid, s.span.Prop = vid, prop
	s.mu.Unlock()
}

// Annotate appends a key=value note.
func (s *ActiveSpan) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.Notes = append(s.span.Notes, Annotation{Key: key, Value: value})
	s.mu.Unlock()
}

// Child opens a new span under this one, in the same tracer.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return s.tracer.Start(s.Context(), name)
}

// End closes the span with the given outcome ("" means "ok") and commits
// it to the store. Second and later Ends are no-ops.
func (s *ActiveSpan) End(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if outcome == "" {
		outcome = "ok"
	}
	s.span.Outcome = outcome
	s.span.End = s.tracer.now()
	sp := s.span
	s.mu.Unlock()
	s.tracer.store.add(sp)
}

// EndErr is End with an error: nil ends "ok", non-nil ends with the error
// text.
func (s *ActiveSpan) EndErr(err error) {
	if err != nil {
		s.End("error: " + err.Error())
		return
	}
	s.End("")
}

// --- context propagation (rpc attempt spans) ---

type ctxKey struct{}

// ContextWith returns ctx carrying the span; the rpc client uses it to
// record per-attempt child spans and to stamp the trace context into the
// request envelope.
func ContextWith(ctx context.Context, sp *ActiveSpan) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *ActiveSpan {
	sp, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return sp
}
