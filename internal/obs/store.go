package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultStoreCapacity bounds the in-memory span ring when callers pass 0.
const DefaultStoreCapacity = 8192

// Store is a bounded, drop-oldest ring of completed spans shared by every
// entity in the in-process cloud. Queries reassemble traces on demand;
// nothing is indexed ahead of time because the ring is small and the
// operator surface reads it rarely compared to how often spans land.
type Store struct {
	mu      sync.Mutex
	ring    []Span
	head    int // next write position
	n       int // spans currently held
	dropped uint64
	total   uint64
}

// NewStore creates a store holding at most capacity completed spans
// (DefaultStoreCapacity when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{ring: make([]Span, capacity)}
}

func (st *Store) add(sp Span) {
	st.mu.Lock()
	if st.n == len(st.ring) {
		st.dropped++
	} else {
		st.n++
	}
	st.ring[st.head] = sp
	st.head = (st.head + 1) % len(st.ring)
	st.total++
	st.mu.Unlock()
}

// Len returns the number of spans currently held.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.n
}

// Dropped returns how many spans were evicted to stay within capacity.
func (st *Store) Dropped() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// Total returns how many spans were ever recorded.
func (st *Store) Total() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// snapshot copies the held spans oldest-first.
func (st *Store) snapshot() []Span {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Span, 0, st.n)
	start := st.head - st.n
	if start < 0 {
		start += len(st.ring)
	}
	for i := 0; i < st.n; i++ {
		out = append(out, st.ring[(start+i)%len(st.ring)])
	}
	return out
}

// Spans returns every held span belonging to the trace, oldest-first.
func (st *Store) Spans(trace string) []Span {
	var out []Span
	for _, sp := range st.snapshot() {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// Trace is an assembled view of one trace: its spans plus roll-up fields
// derived from the root span.
type Trace struct {
	ID       string        `json:"id"`
	Vid      string        `json:"vid,omitempty"`
	Prop     string        `json:"prop,omitempty"`
	Name     string        `json:"name"`
	Outcome  string        `json:"outcome"`
	Start    time.Duration `json:"start_ns"`
	End      time.Duration `json:"end_ns"`
	Complete bool          `json:"complete"`
	Spans    []Span        `json:"spans"`
}

// TraceFilter narrows Traces; zero fields match everything.
type TraceFilter struct {
	Vid          string // match traces whose root (or any span) carries this VM id
	CompleteOnly bool   // only traces whose root span has ended
	Limit        int    // keep at most this many, newest first (0 = all)
}

// Traces groups held spans by trace ID and returns assembled traces,
// newest root first. A trace is complete when its root span (Parent == "")
// has been recorded; spans of still-open roots show up once the root ends.
func (st *Store) Traces(f TraceFilter) []Trace {
	byTrace := make(map[string][]Span)
	order := make([]string, 0, 16) // trace IDs in first-seen (oldest) order
	for _, sp := range st.snapshot() {
		if _, ok := byTrace[sp.Trace]; !ok {
			order = append(order, sp.Trace)
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	out := make([]Trace, 0, len(order))
	for _, id := range order {
		spans := byTrace[id]
		tr := Trace{ID: id, Spans: spans}
		for i := range spans {
			sp := &spans[i]
			if tr.Vid == "" && sp.Vid != "" {
				tr.Vid, tr.Prop = sp.Vid, sp.Prop
			}
			if sp.Parent == "" {
				tr.Complete = true
				tr.Name = sp.Name
				tr.Outcome = sp.Outcome
				tr.Start, tr.End = sp.Start, sp.End
				if sp.Vid != "" {
					// The root span's tags beat whichever child landed first.
					tr.Vid, tr.Prop = sp.Vid, sp.Prop
				}
			}
		}
		if !tr.Complete {
			// Roll up bounds from whatever has landed so far.
			for i := range spans {
				if i == 0 || spans[i].Start < tr.Start {
					tr.Start = spans[i].Start
				}
				if spans[i].End > tr.End {
					tr.End = spans[i].End
				}
			}
		}
		if f.Vid != "" && tr.Vid != f.Vid {
			continue
		}
		if f.CompleteOnly && !tr.Complete {
			continue
		}
		out = append(out, tr)
	}
	// Newest root first: sort by start time descending, stable on the
	// first-seen order so equal virtual timestamps keep insertion order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}
