package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cloudmonatt/internal/metrics"
)

func adminGet(t *testing.T, cfg AdminConfig, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	AdminMux(cfg).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func TestAdminMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("retries").Add(3)
	for i := 1; i <= 100; i++ {
		reg.Summary("appraise/vm-integrity").Observe(time.Duration(i) * time.Millisecond)
	}
	cfg := AdminConfig{Registries: map[string]*metrics.Registry{"controller": reg}}

	rec := adminGet(t, cfg, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not Prometheus text exposition", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"controller_retries_total 3",
		`controller_appraise_vm_integrity_seconds{quantile="0.5"}`,
		`controller_appraise_vm_integrity_seconds{quantile="0.95"}`,
		"controller_appraise_vm_integrity_seconds_count 100",
		"# TYPE controller_appraise_vm_integrity_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestAdminHealthz(t *testing.T) {
	healthy := func() []EntityHealth {
		return []EntityHealth{
			{Entity: "controller", Alive: true, Peers: []PeerHealth{{Peer: "server-0", Breaker: "closed"}}},
			{Entity: "attest-server", Alive: true},
		}
	}
	rec := adminGet(t, AdminConfig{Health: healthy}, "/healthz")
	if rec.Code != 200 {
		t.Fatalf("healthy status = %d", rec.Code)
	}
	var got struct {
		OK       bool           `json:"ok"`
		Entities []EntityHealth `json:"entities"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !got.OK || len(got.Entities) != 2 || got.Entities[0].Peers[0].Breaker != "closed" {
		t.Fatalf("healthz body = %+v", got)
	}

	sick := func() []EntityHealth {
		return []EntityHealth{{Entity: "controller", Alive: false}}
	}
	if rec := adminGet(t, AdminConfig{Health: sick}, "/healthz"); rec.Code != 503 {
		t.Fatalf("unhealthy status = %d, want 503", rec.Code)
	}
}

func TestAdminTraces(t *testing.T) {
	clock := &fakeClock{}
	st := NewStore(32)
	tr := NewTracer(st, "api", clock.Now)
	for i, vid := range []string{"vm-1", "vm-2"} {
		sp := tr.Start(SpanContext{}, "api:attest")
		sp.SetVM(vid, "p")
		clock.advance(time.Duration(i+1) * time.Millisecond)
		sp.End("")
	}
	open := tr.Start(SpanContext{}, "api:attest") // root never ends
	open.Child("inner").End("")
	cfg := AdminConfig{Store: st}

	var traces []Trace
	rec := adminGet(t, cfg, "/traces")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("default view returned %d traces, want 2 complete", len(traces))
	}

	rec = adminGet(t, cfg, "/traces?vm=vm-1")
	traces = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Vid != "vm-1" {
		t.Fatalf("?vm= filter returned %+v", traces)
	}

	rec = adminGet(t, cfg, "/traces?all=1")
	traces = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("?all=1 returned %d traces, want 3", len(traces))
	}

	if rec := adminGet(t, cfg, "/traces?limit=bogus"); rec.Code != 400 {
		t.Fatalf("bad limit status = %d, want 400", rec.Code)
	}
	if rec := adminGet(t, cfg, "/traces?limit=-1"); rec.Code != 400 {
		t.Fatalf("negative limit status = %d, want 400", rec.Code)
	}

	// Empty store must serve [] — not null.
	rec = adminGet(t, AdminConfig{}, "/traces")
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("empty store body = %q, want []", rec.Body.String())
	}
}
