package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cloudmonatt/internal/metrics"
)

// promQuantiles are the quantile labels exported per summary.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// sanitizeMetricName maps registry names (e.g. "attest/appraise.one-time")
// onto the Prometheus metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every registry in regs as Prometheus text
// exposition (version 0.0.4). Duration summaries export in seconds as
// <prefix>_<name>_seconds with {quantile} series plus _sum/_count;
// integer summaries likewise (unitless); counters export as
// <prefix>_<name>_total. Each line comes from a consistent
// metrics.Snapshot, so count, sum and quantiles always describe the same
// observation set. Registries render in sorted prefix order so scrapes
// are stable.
func WritePrometheus(w io.Writer, regs map[string]*metrics.Registry) {
	prefixes := make([]string, 0, len(regs))
	for p := range regs {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		if regs[prefix] == nil {
			continue
		}
		snap := regs[prefix].Snapshot()
		for _, s := range snap.Summaries {
			full := sanitizeMetricName(prefix+"_"+s.Name) + "_seconds"
			fmt.Fprintf(w, "# TYPE %s summary\n", full)
			for _, q := range promQuantiles {
				fmt.Fprintf(w, "%s{quantile=%q} %g\n", full, fmt.Sprintf("%g", q), s.Quantile(q).Seconds())
			}
			fmt.Fprintf(w, "%s_sum %g\n", full, s.Sum.Seconds())
			fmt.Fprintf(w, "%s_count %d\n", full, s.Count)
		}
		for _, s := range snap.IntSummaries {
			full := sanitizeMetricName(prefix + "_" + s.Name)
			fmt.Fprintf(w, "# TYPE %s summary\n", full)
			for _, q := range promQuantiles {
				fmt.Fprintf(w, "%s{quantile=%q} %d\n", full, fmt.Sprintf("%g", q), s.Quantile(q))
			}
			fmt.Fprintf(w, "%s_sum %d\n", full, s.Sum)
			fmt.Fprintf(w, "%s_count %d\n", full, s.Count)
		}
		for _, c := range snap.Counters {
			full := sanitizeMetricName(prefix+"_"+c.Name) + "_total"
			fmt.Fprintf(w, "# TYPE %s counter\n", full)
			fmt.Fprintf(w, "%s %d\n", full, c.Value)
		}
	}
}
