// Package protoverif is a bounded symbolic protocol verifier in the
// Dolev-Yao model, standing in for the ProVerif verification of the
// CloudMonatt attestation protocol (paper §7.2.2). It models the protocol's
// message trace in a small term algebra, computes the attacker's knowledge
// closure (analysis), decides term derivability (synthesis), and checks the
// six secrecy / integrity / authentication properties the paper verifies.
//
// The verifier is deliberately falsifiable: weakened protocol variants
// (plaintext reports, reused nonces, leaked session keys, unsigned reports)
// must — and do — produce violations, demonstrating that the checks have
// discriminating power.
package protoverif

import (
	"sort"
	"strings"
)

// Op is a term constructor.
type Op string

// Term constructors of the algebra.
const (
	OpName Op = "name" // atomic value: keys, nonces, payloads
	OpPair Op = "pair" // tupling (right-nested for n-tuples)
	OpSEnc Op = "senc" // symmetric encryption: senc(k, m)
	OpSign Op = "sign" // signature: sign(sk, m) — reveals m, proves sk
	OpHash Op = "hash" // cryptographic hash
	OpPK   Op = "pk"   // public key of a private key
)

// Term is an immutable symbolic message.
type Term struct {
	Op   Op
	Atom string // for OpName
	Args []*Term
}

// Name makes an atomic term.
func Name(s string) *Term { return &Term{Op: OpName, Atom: s} }

// Pair tuples terms (right-nested).
func Pair(ts ...*Term) *Term {
	if len(ts) == 0 {
		return Name("nil")
	}
	if len(ts) == 1 {
		return ts[0]
	}
	return &Term{Op: OpPair, Args: []*Term{ts[0], Pair(ts[1:]...)}}
}

// SEnc symmetrically encrypts m under k.
func SEnc(k, m *Term) *Term { return &Term{Op: OpSEnc, Args: []*Term{k, m}} }

// Sign signs m with private key sk.
func Sign(sk, m *Term) *Term { return &Term{Op: OpSign, Args: []*Term{sk, m}} }

// Hash hashes m.
func Hash(m *Term) *Term { return &Term{Op: OpHash, Args: []*Term{m}} }

// PK derives the public key of sk.
func PK(sk *Term) *Term { return &Term{Op: OpPK, Args: []*Term{sk}} }

// key returns a canonical string for set membership.
func (t *Term) key() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	b.WriteString(string(t.Op))
	if t.Op == OpName {
		b.WriteByte(':')
		b.WriteString(t.Atom)
		return
	}
	b.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		a.write(b)
	}
	b.WriteByte(')')
}

// String renders the term readably.
func (t *Term) String() string { return t.key() }

// Equal reports structural equality.
func (t *Term) Equal(u *Term) bool { return t.key() == u.key() }

// Knowledge is the attacker's analyzed knowledge set.
type Knowledge struct {
	terms map[string]*Term
}

// NewKnowledge builds the analysis closure of the initial set: everything
// derivable by *decomposition* —
//
//	pair(a,b) ⇒ a, b
//	sign(sk,m) ⇒ m            (signatures are not confidential)
//	senc(k,m) ⇒ m  if k known (keys may become known later ⇒ fixpoint)
//	pk(sk) stays as-is
func NewKnowledge(initial []*Term) *Knowledge {
	k := &Knowledge{terms: make(map[string]*Term)}
	for _, t := range initial {
		k.terms[t.key()] = t
	}
	for {
		added := false
		for _, t := range snapshot(k.terms) {
			switch t.Op {
			case OpPair:
				added = k.add(t.Args[0]) || added
				added = k.add(t.Args[1]) || added
			case OpSign:
				added = k.add(t.Args[1]) || added
			case OpSEnc:
				if k.has(t.Args[0]) {
					added = k.add(t.Args[1]) || added
				}
			}
		}
		if !added {
			return k
		}
	}
}

func snapshot(m map[string]*Term) []*Term {
	keys := make([]string, 0, len(m))
	for s := range m {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	out := make([]*Term, len(keys))
	for i, s := range keys {
		out[i] = m[s]
	}
	return out
}

func (k *Knowledge) add(t *Term) bool {
	s := t.key()
	if _, ok := k.terms[s]; ok {
		return false
	}
	k.terms[s] = t
	return true
}

func (k *Knowledge) has(t *Term) bool {
	_, ok := k.terms[t.key()]
	return ok
}

// CanDerive decides synthesis: whether the attacker can construct t from
// the analyzed knowledge by composition —
//
//	pair: both components derivable
//	senc: key and message derivable
//	sign: private key and message derivable
//	hash: message derivable
//	pk:   private key derivable, or the public key itself known
func (k *Knowledge) CanDerive(t *Term) bool {
	if k.has(t) {
		return true
	}
	switch t.Op {
	case OpPair, OpSEnc, OpSign:
		return k.CanDerive(t.Args[0]) && k.CanDerive(t.Args[1])
	case OpHash:
		return k.CanDerive(t.Args[0])
	case OpPK, OpEPub:
		return k.CanDerive(t.Args[0])
	case OpDH:
		return k.canDeriveDH(t)
	}
	return false
}

// Size returns the number of analyzed terms (for reporting).
func (k *Knowledge) Size() int { return len(k.terms) }
