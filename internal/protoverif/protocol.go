package protoverif

import "fmt"

// Variant selects the protocol (or a deliberately weakened mutant used to
// show the verifier detects real flaws).
type Variant int

// Protocol variants.
const (
	// Full is the CloudMonatt protocol as specified in Fig. 3.
	Full Variant = iota
	// NoEncryption sends every message in the clear (no Kx/Ky/Kz).
	NoEncryption
	// ReusedNonces uses the same nonces in every session.
	ReusedNonces
	// LeakedSessionKey models a broken key exchange: the attacker learns Kx.
	LeakedSessionKey
	// UnsignedReports omits the controller/attestation-server signatures,
	// relying on channel encryption alone.
	UnsignedReports
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Full:
		return "full"
	case NoEncryption:
		return "no-encryption"
	case ReusedNonces:
		return "reused-nonces"
	case LeakedSessionKey:
		return "leaked-session-key"
	case UnsignedReports:
		return "unsigned-reports"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Session holds the symbolic values of one attestation request.
type Session struct {
	N1, N2, N3 *Term
	P, M, R    *Term // property, measurements, report
	Trace      []*Term
}

// Model is the symbolic CloudMonatt system: long-term keys, the per-
// connection channel keys, two attestation requests over the same channels
// (to test cross-request replay — the scenario the protocol nonces exist
// for), and the attacker's knowledge.
type Model struct {
	Variant Variant

	SKCust, SKC, SKA, SKS, ASKS, SKPCA *Term
	Vid, ServerID                      *Term
	Kx, Ky, Kz                         *Term // per-connection session keys

	S1, S2 *Session
	K      *Knowledge
}

// NewModel builds the message trace of two honest sessions under the given
// variant and computes the attacker's knowledge closure.
func NewModel(v Variant) *Model {
	m := &Model{
		Variant:  v,
		SKCust:   Name("sk_customer"),
		SKC:      Name("sk_controller"),
		SKA:      Name("sk_attestsrv"),
		SKS:      Name("sk_server"),
		ASKS:     Name("ask_session"),
		SKPCA:    Name("sk_pca"),
		Vid:      Name("vid"),
		ServerID: Name("server_I"),
		Kx:       Name("kx"),
		Ky:       Name("ky"),
		Kz:       Name("kz"),
	}
	m.S1 = m.session(1, v)
	m.S2 = m.session(2, v)

	// Attacker initial knowledge: public identities and keys, own material.
	initial := []*Term{
		m.Vid, m.ServerID,
		PK(m.SKCust), PK(m.SKC), PK(m.SKA), PK(m.SKS), PK(m.ASKS), PK(m.SKPCA),
		Name("sk_attacker"), Name("n_attacker"), Name("r_fake"), Name("p_fake"), Name("m_fake"),
	}
	if v == LeakedSessionKey {
		initial = append(initial, m.Kx)
	}
	initial = append(initial, m.S1.Trace...)
	initial = append(initial, m.S2.Trace...)
	m.K = NewKnowledge(initial)
	return m
}

// session builds the network trace of one honest run.
func (m *Model) session(i int, v Variant) *Session {
	s := &Session{
		P: Name("prop"),
		M: Name(fmt.Sprintf("meas_%d", i)),
		R: Name(fmt.Sprintf("report_%d", i)),
	}
	suffix := fmt.Sprintf("_%d", i)
	if v == ReusedNonces {
		suffix = "" // both sessions share nonce names
	}
	s.N1 = Name("n1" + suffix)
	s.N2 = Name("n2" + suffix)
	s.N3 = Name("n3" + suffix)

	enc := func(k, payload *Term) *Term {
		if v == NoEncryption {
			return payload
		}
		return SEnc(k, payload)
	}
	sign := func(sk, payload *Term) *Term {
		if v == UnsignedReports {
			return payload
		}
		return Sign(sk, payload)
	}
	rM := Name("req_measurements")

	q3 := Hash(Pair(m.Vid, rM, s.M, s.N3))
	q2 := Hash(Pair(m.Vid, m.ServerID, s.P, s.R, s.N2))
	q1 := Hash(Pair(m.Vid, s.P, s.R, s.N1))
	cert := Sign(m.SKPCA, PK(m.ASKS)) // pCA certificate for the session key

	s.Trace = []*Term{
		// 1. customer → controller
		enc(m.Kx, Pair(m.Vid, s.P, s.N1)),
		// 2. controller → attestation server
		enc(m.Ky, Pair(m.Vid, m.ServerID, s.P, s.N2)),
		// 3. attestation server → cloud server
		enc(m.Kz, Pair(m.Vid, rM, s.N3)),
		// 4. cloud server → attestation server (signed evidence + cert)
		enc(m.Kz, Pair(sign(m.ASKS, Pair(m.Vid, rM, s.M, s.N3, q3)), cert)),
		// 5. attestation server → controller (signed report)
		enc(m.Ky, sign(m.SKA, Pair(m.Vid, m.ServerID, s.P, s.R, s.N2, q2))),
		// 6. controller → customer (signed final report)
		enc(m.Kx, sign(m.SKC, Pair(m.Vid, s.P, s.R, s.N1, q1))),
	}
	return s
}

// message6 builds the term a customer in session s accepts for report r:
// the shape check of VerifyCustomerReport in symbolic form.
func (m *Model) message6(s *Session, r *Term) *Term {
	q1 := Hash(Pair(m.Vid, s.P, r, s.N1))
	payload := Pair(m.Vid, s.P, r, s.N1, q1)
	var signed *Term
	if m.Variant == UnsignedReports {
		signed = payload
	} else {
		signed = Sign(m.SKC, payload)
	}
	if m.Variant == NoEncryption {
		return signed
	}
	return SEnc(m.Kx, signed)
}

// Finding is one violated property.
type Finding struct {
	Property string
	Detail   string
}

// Check verifies the six properties of §7.2.2 and returns all violations
// (none for the Full protocol).
func (m *Model) Check() []Finding {
	var out []Finding
	secret := func(label string, t *Term) {
		if m.K.CanDerive(t) {
			out = append(out, Finding{Property: "secrecy", Detail: label + " derivable by attacker"})
		}
	}

	// Property 1: session keys and private identity keys stay secret.
	secret("Kx", m.Kx)
	secret("Ky", m.Ky)
	secret("Kz", m.Kz)
	secret("SK_customer", m.SKCust)
	secret("SK_controller", m.SKC)
	secret("SK_attestsrv", m.SKA)
	secret("SK_server", m.SKS)
	secret("ASK_session", m.ASKS)

	// Property 2: P, M, R stay secret.
	secret("P", m.S1.P)
	secret("M", m.S1.M)
	secret("R", m.S1.R)

	// Property 3 (integrity): the attacker cannot make the customer accept
	// a fabricated report r_fake in session 2.
	forged := m.message6(m.S2, Name("r_fake"))
	if m.K.CanDerive(forged) {
		out = append(out, Finding{Property: "integrity", Detail: "attacker can forge an acceptable customer report"})
	}
	// ... nor replay session 1's genuine report into session 2.
	replayed := m.message6(m.S2, m.S1.R)
	genuine := m.message6(m.S2, m.S2.R)
	if !replayed.Equal(genuine) && m.K.CanDerive(replayed) {
		out = append(out, Finding{Property: "integrity", Detail: "session-1 report replays into session 2"})
	}

	// Properties 4–6 (authentication): impersonating an entity on any hop
	// requires signing that hop's handshake transcript with the entity's
	// identity key.
	for _, e := range []struct {
		label string
		sk    *Term
	}{
		{"customer<->controller (customer)", m.SKCust},
		{"customer<->controller (controller)", m.SKC},
		{"controller<->attestsrv (attestsrv)", m.SKA},
		{"attestsrv<->cloudserver (cloudserver)", m.SKS},
	} {
		transcript := Name("handshake_transcript")
		if m.K.CanDerive(Sign(e.sk, transcript)) {
			out = append(out, Finding{Property: "authentication", Detail: "attacker can impersonate " + e.label})
		}
	}
	return out
}
