package protoverif

import "sort"

// Diffie-Hellman support for modeling the secure-channel handshake that
// establishes the session keys Kx/Ky/Kz. dh(a, pub(b)) and dh(b, pub(a))
// denote the same shared secret; DH normalizes the term so structural
// equality captures the commutativity.
//
// Constructors:
//
//	EPub(x)  — the public half of ephemeral exponent x
//	DH(x, EPub(y)) — the shared secret of exponents x and y
//	KDF(m)   — key derivation (hash-like)

// OpEPub and OpDH extend the term algebra for the handshake model.
const (
	OpEPub Op = "epub" // public ephemeral of a private exponent
	OpDH   Op = "dh"   // Diffie-Hellman shared secret (normalized)
)

// EPub makes the public half of a private exponent.
func EPub(x *Term) *Term { return &Term{Op: OpEPub, Args: []*Term{x}} }

// DH builds the shared secret of a private exponent and a peer public
// ephemeral, normalized over the two exponents so both derivations are
// structurally equal.
func DH(priv, peerPub *Term) *Term {
	if peerPub.Op != OpEPub {
		// Attacker may try dh against a non-ephemeral term; keep the raw
		// shape (it will never equal an honest secret).
		return &Term{Op: OpDH, Args: []*Term{priv, peerPub}}
	}
	exps := []*Term{priv, peerPub.Args[0]}
	sort.Slice(exps, func(i, j int) bool { return exps[i].key() < exps[j].key() })
	return &Term{Op: OpDH, Args: exps}
}

// KDF derives a symmetric key from a shared secret and a transcript.
func KDF(secret, transcript *Term) *Term {
	return &Term{Op: OpHash, Args: []*Term{Pair(Name("kdf"), secret, transcript)}}
}

// CanDeriveDH extends synthesis with the DH rule: the attacker can build
// dh(x,y) only knowing one *private* exponent and the other side's public
// ephemeral. Knowledge.CanDerive handles this through canDeriveDH below.
func (k *Knowledge) canDeriveDH(t *Term) bool {
	if t.Op != OpDH || len(t.Args) != 2 {
		return false
	}
	x, y := t.Args[0], t.Args[1]
	// Normalized honest form: both args are private exponents. Deriving it
	// needs one exponent plus the other's public half.
	if k.CanDerive(x) && k.CanDerive(EPub(y)) {
		return true
	}
	if k.CanDerive(y) && k.CanDerive(EPub(x)) {
		return true
	}
	return false
}

// HandshakeModel is the symbolic secchan handshake between a client C and
// server S (internal/secchan's 3-message flow), with the attacker fully
// controlling the network.
type HandshakeModel struct {
	Signed bool // transcript signatures present (the real protocol) or not

	SKC, SKS *Term // long-term identity keys
	EC, ES   *Term // honest ephemeral exponents
	EA       *Term // attacker's ephemeral exponent
	Kx       *Term // the session key the honest run derives
	K        *Knowledge
}

// NewHandshakeModel builds one honest handshake run (observed by the
// attacker) and the attacker's initial knowledge.
func NewHandshakeModel(signed bool) *HandshakeModel {
	m := &HandshakeModel{
		Signed: signed,
		SKC:    Name("sk_client"),
		SKS:    Name("sk_server"),
		EC:     Name("e_client"),
		ES:     Name("e_server"),
		EA:     Name("e_attacker"),
	}
	transcript := Hash(Pair(EPub(m.EC), EPub(m.ES)))
	m.Kx = KDF(DH(m.EC, EPub(m.ES)), transcript)

	trace := []*Term{
		EPub(m.EC), // hello_c
		EPub(m.ES), // hello_s
	}
	if signed {
		trace = append(trace,
			Sign(m.SKS, transcript), // server's transcript signature
			Sign(m.SKC, transcript), // client's finish signature
		)
	}
	initial := append(trace,
		PK(m.SKC), PK(m.SKS),
		m.EA, EPub(m.EA),
		Name("attacker_payload"),
		Name("kdf"), // public protocol constant
	)
	m.K = NewKnowledge(initial)
	return m
}

// SessionKeySecret reports whether the honest session key is underivable.
func (m *HandshakeModel) SessionKeySecret() bool {
	return !m.deriveWithDH(m.Kx)
}

// MITMPossible reports whether an active attacker can complete the
// handshake in the server's place: produce everything the client accepts —
// an ephemeral the attacker controls plus (if the protocol signs) the
// server's signature over the attacker's transcript.
func (m *HandshakeModel) MITMPossible() bool {
	attackerTranscript := Hash(Pair(EPub(m.EC), EPub(m.EA)))
	if m.Signed {
		// The client accepts only sign(SKS, transcript') — forgeable?
		if !m.deriveWithDH(Sign(m.SKS, attackerTranscript)) {
			return false
		}
	}
	// Without signatures, the attacker just needs its own ephemeral (it
	// has it) and then shares kdf(dh(e_client-side…)) with the client.
	return m.deriveWithDH(KDF(DH(m.EA, EPub(m.EC)), attackerTranscript))
}

// deriveWithDH is CanDerive extended by the DH synthesis rule at every
// composite level.
func (m *HandshakeModel) deriveWithDH(t *Term) bool {
	if m.K.has(t) {
		return true
	}
	switch t.Op {
	case OpDH:
		return m.K.canDeriveDH(t)
	case OpPair, OpSEnc, OpSign:
		return m.deriveWithDH(t.Args[0]) && m.deriveWithDH(t.Args[1])
	case OpHash, OpEPub, OpPK:
		return m.deriveWithDH(t.Args[0])
	}
	return false
}
