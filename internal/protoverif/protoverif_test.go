package protoverif

import (
	"strings"
	"testing"
)

func TestTermAlgebra(t *testing.T) {
	a, b := Name("a"), Name("b")
	if !Pair(a, b).Equal(Pair(a, b)) {
		t.Fatal("structural equality broken")
	}
	if Pair(a, b).Equal(Pair(b, a)) {
		t.Fatal("pair order ignored")
	}
	// n-tuples right-nest.
	if !Pair(a, b, Name("c")).Equal(Pair(a, Pair(b, Name("c")))) {
		t.Fatal("tuple nesting inconsistent")
	}
	if Pair(a).String() != a.String() {
		t.Fatal("singleton pair not collapsed")
	}
	if SEnc(a, b).Equal(Sign(a, b)) {
		t.Fatal("constructors collide")
	}
}

func TestAnalysisDecomposition(t *testing.T) {
	k, m := Name("k"), Name("m")
	// Attacker sees senc(k,m) and later learns k ⇒ learns m.
	kn := NewKnowledge([]*Term{SEnc(k, m), k})
	if !kn.CanDerive(m) {
		t.Fatal("decryption with known key failed")
	}
	// Without the key, m stays secret.
	kn = NewKnowledge([]*Term{SEnc(k, m)})
	if kn.CanDerive(m) {
		t.Fatal("decryption without key succeeded")
	}
	// Signatures reveal their message but not the key.
	kn = NewKnowledge([]*Term{Sign(k, m)})
	if !kn.CanDerive(m) {
		t.Fatal("signature did not reveal message")
	}
	if kn.CanDerive(k) {
		t.Fatal("signature revealed the signing key")
	}
	// Pairs decompose.
	kn = NewKnowledge([]*Term{Pair(k, m)})
	if !kn.CanDerive(k) || !kn.CanDerive(m) {
		t.Fatal("pair decomposition failed")
	}
}

func TestAnalysisFixpoint(t *testing.T) {
	// Key arrives inside another encryption: senc(k1, k2), senc(k2, m), k1.
	k1, k2, m := Name("k1"), Name("k2"), Name("m")
	kn := NewKnowledge([]*Term{SEnc(k1, k2), SEnc(k2, m), k1})
	if !kn.CanDerive(m) {
		t.Fatal("two-step decryption fixpoint failed")
	}
}

func TestSynthesis(t *testing.T) {
	k, m, s := Name("k"), Name("m"), Name("secret")
	kn := NewKnowledge([]*Term{k, m})
	if !kn.CanDerive(SEnc(k, m)) {
		t.Fatal("cannot compose encryption from known parts")
	}
	if !kn.CanDerive(Hash(Pair(k, m))) {
		t.Fatal("cannot compose hash")
	}
	if !kn.CanDerive(Sign(k, m)) {
		t.Fatal("cannot sign with known key")
	}
	if kn.CanDerive(SEnc(s, m)) {
		t.Fatal("composed encryption under unknown key")
	}
	if kn.CanDerive(s) {
		t.Fatal("derived an unknown atom")
	}
}

func TestFullProtocolHasNoViolations(t *testing.T) {
	m := NewModel(Full)
	findings := m.Check()
	if len(findings) != 0 {
		t.Fatalf("full protocol violated: %v", findings)
	}
	if m.K.Size() == 0 {
		t.Fatal("empty attacker knowledge — model not built")
	}
}

func expectViolation(t *testing.T, v Variant, property, detailFragment string) {
	t.Helper()
	findings := NewModel(v).Check()
	for _, f := range findings {
		if f.Property == property && strings.Contains(f.Detail, detailFragment) {
			return
		}
	}
	t.Fatalf("%s: expected %s violation containing %q, got %v", v, property, detailFragment, findings)
}

func TestNoEncryptionLeaksEverything(t *testing.T) {
	expectViolation(t, NoEncryption, "secrecy", "P derivable")
	expectViolation(t, NoEncryption, "secrecy", "M derivable")
	expectViolation(t, NoEncryption, "secrecy", "R derivable")
}

func TestReusedNoncesAllowReplay(t *testing.T) {
	expectViolation(t, ReusedNonces, "integrity", "replays into session 2")
}

func TestLeakedSessionKeyBreaksSecrecyButNotForgery(t *testing.T) {
	expectViolation(t, LeakedSessionKey, "secrecy", "Kx derivable")
	expectViolation(t, LeakedSessionKey, "secrecy", "R derivable")
	// The report signature still prevents forging even with the channel key:
	// no integrity *forgery* finding (replay into another session is blocked
	// by nonces).
	for _, f := range NewModel(LeakedSessionKey).Check() {
		if f.Property == "integrity" && strings.Contains(f.Detail, "forge") {
			t.Fatalf("signature did not protect integrity under leaked channel key: %v", f)
		}
	}
}

func TestUnsignedReportsSurviveOnlyViaChannel(t *testing.T) {
	// With signatures stripped but channels intact, the attacker still can't
	// forge (cannot produce senc(kx, ...)): integrity rests entirely on the
	// channel, exactly the defense-in-depth argument for signing.
	findings := NewModel(UnsignedReports).Check()
	if len(findings) != 0 {
		t.Fatalf("unsigned-but-encrypted variant flagged: %v", findings)
	}
	// But combined with a leaked channel key the forgery appears.
	m := NewModel(UnsignedReports)
	m.K = NewKnowledge(append(snapshot(m.K.terms), m.Kx))
	forged := m.message6(m.S2, Name("r_fake"))
	if !m.K.CanDerive(forged) {
		t.Fatal("leaked key + unsigned report should allow forgery")
	}
	// Whereas the Full protocol resists forgery even with the key leaked.
	fm := NewModel(Full)
	fm.K = NewKnowledge(append(snapshot(fm.K.terms), fm.Kx))
	if fm.K.CanDerive(fm.message6(fm.S2, Name("r_fake"))) {
		t.Fatal("signed report forged despite unknown signing key")
	}
}

func TestVariantStrings(t *testing.T) {
	for _, v := range []Variant{Full, NoEncryption, ReusedNonces, LeakedSessionKey, UnsignedReports} {
		if v.String() == "" || strings.HasPrefix(v.String(), "variant(") {
			t.Fatalf("missing name for variant %d", int(v))
		}
	}
	if Variant(99).String() != "variant(99)" {
		t.Fatal("fallback name broken")
	}
}

// --- secure-channel handshake model ---

func TestDHNormalization(t *testing.T) {
	x, y := Name("x"), Name("y")
	if !DH(x, EPub(y)).Equal(DH(y, EPub(x))) {
		t.Fatal("DH not commutative under normalization")
	}
	z := Name("z")
	if DH(x, EPub(y)).Equal(DH(x, EPub(z))) {
		t.Fatal("distinct DH secrets collide")
	}
}

func TestDHSynthesisRules(t *testing.T) {
	x, y := Name("x"), Name("y")
	// Knowing one exponent and the peer public half derives the secret.
	kn := NewKnowledge([]*Term{x, EPub(y)})
	if !kn.CanDerive(DH(x, EPub(y))) {
		t.Fatal("DH underivable with exponent + peer public")
	}
	// Knowing only the two public halves does not.
	kn = NewKnowledge([]*Term{EPub(x), EPub(y)})
	if kn.CanDerive(DH(x, EPub(y))) {
		t.Fatal("DH derivable from public halves alone (CDH broken)")
	}
}

func TestSignedHandshakeResistsMITM(t *testing.T) {
	m := NewHandshakeModel(true)
	if !m.SessionKeySecret() {
		t.Fatal("session key derivable by passive attacker")
	}
	if m.MITMPossible() {
		t.Fatal("signed handshake admits a man in the middle")
	}
}

func TestUnsignedHandshakeFallsToMITM(t *testing.T) {
	// The falsifiability check: strip the transcript signatures and the
	// classic unauthenticated-DH MITM appears.
	m := NewHandshakeModel(false)
	if !m.SessionKeySecret() {
		t.Fatal("even unsigned DH keeps the honest key from a passive attacker")
	}
	if !m.MITMPossible() {
		t.Fatal("unsigned handshake should be MITM-able; the model lost its teeth")
	}
}
