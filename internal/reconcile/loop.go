package reconcile

import (
	"time"

	"cloudmonatt/internal/metrics"
	"cloudmonatt/internal/obs"
)

// Result tells the loop what to do after a successful pass.
type Result struct {
	// Requeue asks for another pass soon, under the key's rate limiter
	// (exponential backoff). Use it for "made progress but not converged".
	Requeue bool
	// RequeueAfter schedules the next pass at a fixed virtual-time offset
	// (e.g. periodic re-attestation). Ignored when Requeue is set.
	RequeueAfter time.Duration
}

// Reconciler converges one key's observed state toward its desired state.
// It must be idempotent: the loop guarantees per-key serialization but
// will happily call it again for the same level.
type Reconciler func(key string) (Result, error)

// LoopConfig assembles a reconcile loop.
type LoopConfig struct {
	Queue QueueConfig
	// Reconcile is the convergence function (required).
	Reconcile Reconciler
	// Metrics receives the loop's pass-latency summary and requeue/error
	// counters (reconcile/*). Optional.
	Metrics *metrics.Registry
	// Obs, when set, records one span per reconcile pass under the given
	// Entity (default "reconcile").
	Obs    *obs.Store
	Entity string
	// MaxPassesPerDrain bounds a single ProcessReady call so a reconciler
	// that keeps re-adding its own key cannot wedge the caller. Default
	// 256.
	MaxPassesPerDrain int
}

// Loop drives Reconcilers to convergence. It runs no goroutines of its
// own: callers invoke ProcessReady from whatever context drives the
// virtual clock (a nova api request, the testbed's RunFor pump), keeping
// the whole control plane deterministic under the discrete-event kernel.
type Loop struct {
	q      *Queue
	rec    Reconciler
	tracer *obs.Tracer
	now    func() time.Duration
	max    int

	passSum      *metrics.Summary
	passes       *metrics.Counter
	requeues     *metrics.Counter
	requeueAfter *metrics.Counter
	errs         *metrics.Counter
	depthGauge   *metrics.IntSummary
	queueDrops   *metrics.Counter
	lastDropped  uint64
}

// NewLoop builds a loop. cfg.Queue.Now is required.
func NewLoop(cfg LoopConfig) *Loop {
	if cfg.MaxPassesPerDrain <= 0 {
		cfg.MaxPassesPerDrain = 256
	}
	entity := cfg.Entity
	if entity == "" {
		entity = "reconcile"
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Loop{
		q:            NewQueue(cfg.Queue),
		rec:          cfg.Reconcile,
		tracer:       obs.NewTracer(cfg.Obs, entity, cfg.Queue.Now),
		now:          cfg.Queue.Now,
		max:          cfg.MaxPassesPerDrain,
		passSum:      reg.Summary("reconcile/pass-latency"),
		passes:       reg.Counter("reconcile/passes"),
		requeues:     reg.Counter("reconcile/requeues"),
		requeueAfter: reg.Counter("reconcile/requeues-after"),
		errs:         reg.Counter("reconcile/pass-errors"),
		depthGauge:   reg.IntSummary("reconcile/queue-depth"),
		queueDrops:   reg.Counter("reconcile/queue-dropped"),
	}
}

// Enqueue marks key for reconciliation now.
func (lp *Loop) Enqueue(key string) { lp.q.Add(key) }

// EnqueueAfter schedules key for reconciliation d from now.
func (lp *Loop) EnqueueAfter(key string, d time.Duration) { lp.q.AddAfter(key, d) }

// Forget resets key's backoff (e.g. when its desired state is deleted).
func (lp *Loop) Forget(key string) { lp.q.Forget(key) }

// ProcessReady promotes due delayed keys and drains the ready list,
// running one reconcile pass per key (per-key serialized; a key re-added
// mid-pass reruns). It returns the number of passes executed.
func (lp *Loop) ProcessReady() int {
	lp.q.Promote()
	n := 0
	for n < lp.max {
		key, ok := lp.q.Get()
		if !ok {
			break
		}
		lp.pass(key)
		n++
		// A pass may have advanced the virtual clock past more deadlines.
		lp.q.Promote()
	}
	lp.depthGauge.Observe(int64(lp.q.Len()))
	if d := lp.q.Dropped(); d > lp.lastDropped {
		lp.queueDrops.Add(int64(d - lp.lastDropped))
		lp.lastDropped = d
	}
	return n
}

// pass runs one reconcile pass for key and applies its requeue decision.
func (lp *Loop) pass(key string) {
	sp := lp.tracer.Start(obs.SpanContext{}, "reconcile")
	sp.SetVM(key, "")
	start := lp.now()
	res, err := lp.rec(key)
	lp.passSum.Observe(lp.now() - start)
	lp.passes.Inc()
	lp.q.Done(key)
	if err != nil {
		lp.errs.Inc()
		lp.requeues.Inc()
		lp.q.AddRateLimited(key)
		sp.EndErr(err)
		return
	}
	lp.q.Forget(key)
	switch {
	case res.Requeue:
		lp.requeues.Inc()
		lp.q.AddRateLimited(key)
		sp.End("requeued")
	case res.RequeueAfter > 0:
		lp.requeueAfter.Inc()
		lp.q.AddAfter(key, res.RequeueAfter)
		sp.End("requeue-after")
	default:
		sp.End("")
	}
}

// NextDue reports the earliest virtual time a delayed key becomes ready.
func (lp *Loop) NextDue() (time.Duration, bool) { return lp.q.NextDue() }

// Len reports the number of keys ready to reconcile.
func (lp *Loop) Len() int { return lp.q.Len() }

// DelayedLen reports the number of keys waiting on timers.
func (lp *Loop) DelayedLen() int { return lp.q.DelayedLen() }

// Dropped reports how many ready keys the queue bound has evicted.
func (lp *Loop) Dropped() uint64 { return lp.q.Dropped() }

// Failures reports key's consecutive-failure count (its backoff level).
func (lp *Loop) Failures(key string) int { return lp.q.Failures(key) }
