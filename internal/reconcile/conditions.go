// Package reconcile provides the level-triggered reconciliation
// primitives the Cloud Controller is built on: typed conditions joining a
// VM's declared desired state to its observed state, a bounded dedup
// workqueue with per-key serialization, and a reconcile loop that drives
// registered keys toward convergence with rate-limited backoff requeues
// and explicit requeue-after scheduling.
//
// The package is deliberately a leaf: it knows nothing about VMs,
// attestation or RPC. Time is virtual — every timestamp comes from the
// injected now() func (the testbed's discrete-event clock), so a seeded
// run replays to identical transition times and backoff schedules.
package reconcile

import "time"

// ConditionType names one facet of a VM's convergence state.
type ConditionType string

// The condition types the controller maintains per VM.
const (
	// CondPlaced: the VM is spawned on a cloud server with capacity
	// reserved (observed placement matches desired).
	CondPlaced ConditionType = "Placed"
	// CondAttested: the most recent appraisal exchange completed and its
	// signed report verified (False on verification failure, Unknown when
	// the attestation infrastructure is unreachable and a stale verdict
	// is being served).
	CondAttested ConditionType = "Attested"
	// CondHealthy: the latest verified verdict found the property healthy.
	CondHealthy ConditionType = "Healthy"
	// CondRemediating: a policy response (terminate / suspend / migrate)
	// has been declared and is not yet complete.
	CondRemediating ConditionType = "Remediating"
	// CondTerminating: the teardown finalizer is set; True until every
	// external resource (host spawn, appraisal registration, capacity
	// reservation) is released.
	CondTerminating ConditionType = "Terminating"
)

// Status is a condition's tri-state value.
type Status string

// The three condition statuses, matching the Kubernetes convention.
const (
	True    Status = "True"
	False   Status = "False"
	Unknown Status = "Unknown"
)

// Condition is one typed observation about a VM, with the virtual-clock
// time of its last status transition.
type Condition struct {
	Type    ConditionType `json:"type"`
	Status  Status        `json:"status"`
	Reason  string        `json:"reason,omitempty"`
	Message string        `json:"message,omitempty"`
	// At is the virtual time the condition last changed Status. Reason and
	// message updates that keep the same status preserve At, so "how long
	// has this VM been unhealthy" is answerable from the condition alone.
	At time.Duration `json:"at"`
}

// Conditions is a VM's condition set, keyed by type.
type Conditions []Condition

// Set updates (or inserts) the condition of c.Type. The transition time
// is only advanced to now when the status actually changes; reason and
// message always take the latest values. It reports whether the status
// changed.
func (cs *Conditions) Set(now time.Duration, c Condition) bool {
	for i := range *cs {
		if (*cs)[i].Type != c.Type {
			continue
		}
		changed := (*cs)[i].Status != c.Status
		at := (*cs)[i].At
		if changed {
			at = now
		}
		(*cs)[i] = Condition{Type: c.Type, Status: c.Status, Reason: c.Reason, Message: c.Message, At: at}
		return changed
	}
	c.At = now
	*cs = append(*cs, c)
	return true
}

// Get returns the condition of type t, if present.
func (cs Conditions) Get(t ConditionType) (Condition, bool) {
	for _, c := range cs {
		if c.Type == t {
			return c, true
		}
	}
	return Condition{}, false
}

// IsTrue reports whether the condition of type t is present with status
// True.
func (cs Conditions) IsTrue(t ConditionType) bool {
	c, ok := cs.Get(t)
	return ok && c.Status == True
}

// Clone returns an independent copy of the condition set.
func (cs Conditions) Clone() Conditions {
	if cs == nil {
		return nil
	}
	return append(Conditions(nil), cs...)
}
