package reconcile

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced virtual clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration      { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t += d }

func TestConditionTransitionTime(t *testing.T) {
	var cs Conditions
	if changed := cs.Set(10, Condition{Type: CondHealthy, Status: True, Reason: "verified"}); !changed {
		t.Fatal("first set should report a change")
	}
	// Same status later: reason updates, transition time preserved.
	if changed := cs.Set(20, Condition{Type: CondHealthy, Status: True, Reason: "re-verified"}); changed {
		t.Fatal("same-status set should not report a change")
	}
	c, ok := cs.Get(CondHealthy)
	if !ok || c.At != 10 || c.Reason != "re-verified" {
		t.Fatalf("condition = %+v, want At=10 reason=re-verified", c)
	}
	// Status flip: transition time advances.
	if changed := cs.Set(30, Condition{Type: CondHealthy, Status: False, Reason: "rootkit"}); !changed {
		t.Fatal("status flip should report a change")
	}
	c, _ = cs.Get(CondHealthy)
	if c.At != 30 || c.Status != False {
		t.Fatalf("condition = %+v, want At=30 status=False", c)
	}
	if cs.IsTrue(CondHealthy) {
		t.Fatal("IsTrue after flip to False")
	}
	if _, ok := cs.Get(CondPlaced); ok {
		t.Fatal("absent condition type found")
	}
}

func TestQueueDedupAndSerialization(t *testing.T) {
	clk := &fakeClock{}
	q := NewQueue(QueueConfig{Now: clk.Now})
	q.Add("a")
	q.Add("a")
	q.Add("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", q.Len())
	}
	key, ok := q.Get()
	if !ok || key != "a" {
		t.Fatalf("Get = %q %v, want a", key, ok)
	}
	// Add while processing: marks dirty, does not enter ready.
	q.Add("a")
	if q.Len() != 1 {
		t.Fatalf("Len during processing = %d, want 1", q.Len())
	}
	if k, _ := q.Get(); k != "b" {
		t.Fatalf("second Get = %q, want b", k)
	}
	q.Done("b")
	// Done on dirty key requeues it exactly once.
	q.Done("a")
	if q.Len() != 1 {
		t.Fatalf("Len after dirty Done = %d, want 1", q.Len())
	}
	if k, _ := q.Get(); k != "a" {
		t.Fatal("dirty key not requeued")
	}
	q.Done("a")
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestQueueBoundDropsOldest(t *testing.T) {
	clk := &fakeClock{}
	q := NewQueue(QueueConfig{Now: clk.Now, Bound: 2})
	q.Add("a")
	q.Add("b")
	q.Add("c")
	if q.Len() != 2 || q.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 2/1", q.Len(), q.Dropped())
	}
	k1, _ := q.Get()
	k2, _ := q.Get()
	if k1 != "b" || k2 != "c" {
		t.Fatalf("survivors = %q %q, want b c (oldest dropped)", k1, k2)
	}
}

func TestQueueBackoffGrowthAndReset(t *testing.T) {
	clk := &fakeClock{}
	q := NewQueue(QueueConfig{Now: clk.Now, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second})
	wants := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, want := range wants {
		if got := q.backoff(i + 1); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	q.AddRateLimited("a")
	q.AddRateLimited("a") // still delayed; failures now 2
	if q.Failures("a") != 2 {
		t.Fatalf("failures = %d, want 2", q.Failures("a"))
	}
	q.Forget("a")
	if q.Failures("a") != 0 {
		t.Fatal("Forget did not reset backoff")
	}
}

func TestQueueAddAfterOrderingAndPromote(t *testing.T) {
	clk := &fakeClock{}
	q := NewQueue(QueueConfig{Now: clk.Now})
	q.AddAfter("late", 100*time.Millisecond)
	q.AddAfter("early", 10*time.Millisecond)
	// Earlier schedule for the same key wins.
	q.AddAfter("early", 500*time.Millisecond)
	due, ok := q.NextDue()
	if !ok || due != 10*time.Millisecond {
		t.Fatalf("NextDue = %v %v, want 10ms", due, ok)
	}
	q.Promote()
	if q.Len() != 0 {
		t.Fatal("nothing should promote before its due time")
	}
	clk.Advance(10 * time.Millisecond)
	q.Promote()
	if q.Len() != 1 || q.DelayedLen() != 1 {
		t.Fatalf("after first due: Len=%d DelayedLen=%d, want 1/1", q.Len(), q.DelayedLen())
	}
	if k, _ := q.Get(); k != "early" {
		t.Fatalf("promoted %q, want early", k)
	}
	q.Done("early")
	clk.Advance(90 * time.Millisecond)
	q.Promote()
	if k, _ := q.Get(); k != "late" {
		t.Fatalf("second promote got %q, want late", k)
	}
}

func TestQueueImmediateAddSupersedesDelayed(t *testing.T) {
	clk := &fakeClock{}
	q := NewQueue(QueueConfig{Now: clk.Now})
	q.AddAfter("a", time.Hour)
	q.Add("a")
	if q.DelayedLen() != 0 || q.Len() != 1 {
		t.Fatalf("DelayedLen=%d Len=%d, want 0/1", q.DelayedLen(), q.Len())
	}
}

func TestLoopConvergenceAndBackoffRequeue(t *testing.T) {
	clk := &fakeClock{}
	attempts := map[string]int{}
	lp := NewLoop(LoopConfig{
		Queue: QueueConfig{Now: clk.Now, BaseDelay: 10 * time.Millisecond},
		Reconcile: func(key string) (Result, error) {
			attempts[key]++
			if key == "flaky" && attempts[key] < 3 {
				return Result{}, errors.New("transient")
			}
			return Result{}, nil
		},
	})
	lp.Enqueue("ok")
	lp.Enqueue("flaky")
	if n := lp.ProcessReady(); n != 2 {
		t.Fatalf("passes = %d, want 2", n)
	}
	// flaky failed once: waiting on backoff, not ready.
	if lp.Len() != 0 || lp.DelayedLen() != 1 {
		t.Fatalf("Len=%d DelayedLen=%d, want 0/1", lp.Len(), lp.DelayedLen())
	}
	clk.Advance(10 * time.Millisecond)
	lp.ProcessReady() // second attempt fails, backoff doubles to 20ms
	clk.Advance(10 * time.Millisecond)
	if n := lp.ProcessReady(); n != 0 {
		t.Fatalf("ran %d passes before backoff elapsed", n)
	}
	clk.Advance(10 * time.Millisecond)
	lp.ProcessReady() // third attempt converges
	if attempts["flaky"] != 3 || attempts["ok"] != 1 {
		t.Fatalf("attempts = %v", attempts)
	}
	if lp.DelayedLen() != 0 || lp.Len() != 0 {
		t.Fatal("loop not quiescent after convergence")
	}
	if lp.Failures("flaky") != 0 {
		t.Fatal("success did not reset backoff")
	}
}

func TestLoopRequeueAfter(t *testing.T) {
	clk := &fakeClock{}
	runs := 0
	lp := NewLoop(LoopConfig{
		Queue: QueueConfig{Now: clk.Now},
		Reconcile: func(string) (Result, error) {
			runs++
			return Result{RequeueAfter: time.Second}, nil
		},
	})
	lp.Enqueue("vm-0001")
	lp.ProcessReady()
	due, ok := lp.NextDue()
	if !ok || due != clk.Now()+time.Second {
		t.Fatalf("NextDue = %v %v, want +1s", due, ok)
	}
	clk.Advance(time.Second)
	lp.ProcessReady()
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (periodic requeue-after)", runs)
	}
}

func TestLoopMaxPassesBound(t *testing.T) {
	clk := &fakeClock{}
	lp := NewLoop(LoopConfig{
		Queue:             QueueConfig{Now: clk.Now},
		MaxPassesPerDrain: 3,
		Reconcile: func(key string) (Result, error) {
			// Pathological reconciler: always wants to run again immediately.
			return Result{RequeueAfter: 0, Requeue: false}, nil
		},
	})
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		lp.Enqueue(k)
	}
	if n := lp.ProcessReady(); n != 3 {
		t.Fatalf("drain ran %d passes, want 3 (bounded)", n)
	}
	if n := lp.ProcessReady(); n != 2 {
		t.Fatalf("second drain ran %d passes, want 2", n)
	}
}
