package reconcile

import (
	"sync"
	"time"
)

// QueueConfig tunes the workqueue.
type QueueConfig struct {
	// Now is the virtual clock (required).
	Now func() time.Duration
	// Bound caps the number of distinct keys waiting in the ready list;
	// when exceeded the oldest ready key is dropped (and counted). The
	// level-triggered model makes a drop safe: a dropped key is re-added
	// the next time any event observes it off its desired state. 0 applies
	// the default (1024).
	Bound int
	// BaseDelay and MaxDelay shape the per-key exponential backoff used by
	// AddRateLimited: delay = BaseDelay << (failures-1), capped at
	// MaxDelay. Defaults: 100ms base, 1m cap (virtual time).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

const (
	defaultBound     = 1024
	defaultBaseDelay = 100 * time.Millisecond
	defaultMaxDelay  = time.Minute
)

// Queue is a bounded, deduplicating workqueue with per-key serialization
// and virtual-time delayed requeues. It mirrors the Kubernetes workqueue
// contract: a key is held by at most one reconcile pass at a time; adds
// arriving while the key is being processed mark it dirty so it runs
// exactly one more pass; duplicate adds collapse.
type Queue struct {
	cfg QueueConfig

	mu         sync.Mutex
	ready      []string                 // FIFO of runnable keys
	queued     map[string]bool          // key is in ready
	processing map[string]bool          // key is held by a pass
	dirty      map[string]bool          // re-add after current pass
	delayed    map[string]time.Duration // key -> virtual due time
	failures   map[string]int           // consecutive failures (backoff)
	dropped    uint64
}

// NewQueue builds a workqueue on the given virtual clock.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Bound <= 0 {
		cfg.Bound = defaultBound
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = defaultBaseDelay
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = defaultMaxDelay
	}
	return &Queue{
		cfg:        cfg,
		queued:     make(map[string]bool),
		processing: make(map[string]bool),
		dirty:      make(map[string]bool),
		delayed:    make(map[string]time.Duration),
		failures:   make(map[string]int),
	}
}

// Add marks key as needing reconciliation now. Adds collapse: a key
// already waiting is not duplicated, and a key currently being processed
// is marked dirty so it reruns once its pass completes.
func (q *Queue) Add(key string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.addLocked(key)
}

func (q *Queue) addLocked(key string) {
	if q.processing[key] {
		q.dirty[key] = true
		return
	}
	if q.queued[key] {
		return
	}
	// An immediate add supersedes any pending delayed retry.
	delete(q.delayed, key)
	q.queued[key] = true
	q.ready = append(q.ready, key)
	for len(q.ready) > q.cfg.Bound {
		old := q.ready[0]
		q.ready = q.ready[1:]
		delete(q.queued, old)
		q.dropped++
	}
}

// AddAfter schedules key to become ready d from now (virtual time). An
// earlier pending schedule for the same key wins; a key already ready is
// left alone (it will run sooner anyway).
func (q *Queue) AddAfter(key string, d time.Duration) {
	if d <= 0 {
		q.Add(key)
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.queued[key] {
		return
	}
	due := q.cfg.Now() + d
	if prev, ok := q.delayed[key]; ok && prev <= due {
		return
	}
	q.delayed[key] = due
}

// AddRateLimited schedules key with exponential backoff: each consecutive
// call (without an intervening Forget) doubles the delay from BaseDelay
// up to MaxDelay.
func (q *Queue) AddRateLimited(key string) {
	q.mu.Lock()
	q.failures[key]++
	n := q.failures[key]
	q.mu.Unlock()
	q.AddAfter(key, q.backoff(n))
}

// backoff computes the delay for the n-th consecutive failure (n >= 1).
func (q *Queue) backoff(n int) time.Duration {
	d := q.cfg.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if d >= q.cfg.MaxDelay {
			return q.cfg.MaxDelay
		}
	}
	if d > q.cfg.MaxDelay {
		return q.cfg.MaxDelay
	}
	return d
}

// Failures returns the consecutive-failure count backing key's backoff.
func (q *Queue) Failures(key string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failures[key]
}

// Forget resets key's backoff state after a successful pass.
func (q *Queue) Forget(key string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.failures, key)
}

// Promote moves every delayed key whose due time has arrived into the
// ready list.
func (q *Queue) Promote() {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Now()
	for key, due := range q.delayed {
		if due <= now {
			delete(q.delayed, key)
			q.addLocked(key)
		}
	}
}

// Get pops the next ready key and marks it processing. ok is false when
// nothing is ready.
func (q *Queue) Get() (key string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ready) == 0 {
		return "", false
	}
	key = q.ready[0]
	q.ready = q.ready[1:]
	delete(q.queued, key)
	q.processing[key] = true
	return key, true
}

// Done releases key after a pass. If adds arrived during the pass (the
// dirty mark) the key is immediately requeued, preserving per-key
// serialization without losing level-triggered events.
func (q *Queue) Done(key string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.processing, key)
	if q.dirty[key] {
		delete(q.dirty, key)
		q.addLocked(key)
	}
}

// NextDue returns the earliest virtual due time among delayed keys.
func (q *Queue) NextDue() (time.Duration, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var min time.Duration
	found := false
	for _, due := range q.delayed {
		if !found || due < min {
			min = due
			found = true
		}
	}
	return min, found
}

// Len reports the number of ready keys.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ready)
}

// DelayedLen reports the number of keys waiting on a timer.
func (q *Queue) DelayedLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.delayed)
}

// Dropped reports how many ready keys the bound has evicted.
func (q *Queue) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}
