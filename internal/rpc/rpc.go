// Package rpc provides the request/response layer CloudMonatt's entities
// speak over their secure channels, plus the transport abstraction that
// lets the same code run over real TCP (the cmd/ daemons) or an in-memory
// network (the in-process testbed, tests, and the Dolev-Yao attacker rig).
//
// The attestation protocol threads every request across four networked
// entities (Customer → Controller → Attestation Server → Cloud Server), so
// this layer is built to survive component churn: every call can be
// bounded by a context deadline (plumbed into the connection's read/write
// deadlines), Serve outlives transient Accept failures, and requests may
// carry idempotency keys so a retried non-idempotent method executes at
// most once. ReconnectClient (retry.go) adds redial with exponential
// backoff and per-peer circuit breakers; FaultNetwork (fault.go) injects
// the failures the rest is built to tolerate.
package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cloudmonatt/internal/binenc"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/secchan"
)

// Network abstracts connection establishment so tests can run in memory.
type Network interface {
	Dial(addr string) (net.Conn, error)
	Listen(addr string) (net.Listener, error)
}

// ContextDialer is implemented by Networks whose connection establishment
// can be bounded (and abandoned) via a context. DialContext honors it.
type ContextDialer interface {
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

// dialNet establishes a raw connection, using the network's context-aware
// dialer when it has one.
func dialNet(ctx context.Context, n Network, addr string) (net.Conn, error) {
	if cd, ok := n.(ContextDialer); ok {
		return cd.DialContext(ctx, addr)
	}
	return n.Dial(addr)
}

// aLongTimeAgo is a deadline in the distant past: setting it interrupts
// any blocked read or write immediately (the net package idiom for
// cancellation).
var aLongTimeAgo = time.Unix(1, 0)

// --- in-memory network ---

// MemNetwork is an in-process Network: addresses are arbitrary strings and
// connections are synchronous net.Pipe pairs.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	// Intercept, when set, wraps the two ends of every new connection; the
	// Dolev-Yao attacker uses it to own the network.
	Intercept func(addr string, client, server net.Conn) (net.Conn, net.Conn)
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

type memListener struct {
	addr   string
	ch     chan net.Conn
	net    *MemNetwork
	closed chan struct{}
	once   sync.Once
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c, ok := <-l.ch:
		if !ok {
			return nil, fmt.Errorf("rpc: listener closed: %w", net.ErrClosed)
		}
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("rpc: listener closed: %w", net.ErrClosed)
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

// Listen claims an address on the in-memory network.
func (n *MemNetwork) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, busy := n.listeners[addr]; busy {
		return nil, fmt.Errorf("rpc: address %q already in use", addr)
	}
	l := &memListener{addr: addr, ch: make(chan net.Conn), net: n, closed: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening address.
func (n *MemNetwork) Dial(addr string) (net.Conn, error) {
	return n.DialContext(context.Background(), addr)
}

// DialContext connects to a listening address. The handoff to the
// accepting side is bounded by ctx: a listener that exists but is not
// accepting cannot block the dialer past its deadline.
func (n *MemNetwork) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	intercept := n.Intercept
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: no listener at %q", addr)
	}
	client, server := net.Pipe()
	if intercept != nil {
		client, server = intercept(addr, client, server)
	}
	select {
	case l.ch <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("rpc: listener closed: %w", net.ErrClosed)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, fmt.Errorf("rpc: dialing %q: %w", addr, ctx.Err())
	}
}

// TCPNetwork is the real-network implementation.
type TCPNetwork struct{}

// Dial connects over TCP.
func (TCPNetwork) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// DialContext connects over TCP, bounded by ctx.
func (TCPNetwork) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Listen binds a TCP listener.
func (TCPNetwork) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// --- envelopes ---

type requestEnvelope struct {
	Method string
	// IdemKey, when non-empty, makes the request idempotent on the server:
	// the handler executes at most once per key and duplicates receive the
	// recorded response (see idemCache).
	IdemKey string
	// Trace/Span carry the caller's trace context so the remote handler's
	// spans nest under the calling attempt. Empty when the caller is not
	// traced; gob omits absent fields, so old peers interoperate.
	Trace string
	Span  string
	Body  []byte
}

type responseEnvelope struct {
	Err  string
	Body []byte
}

// Encode serializes a value (exported for handlers building responses):
// the zero-allocation binary codec when v supports it, gob otherwise. The
// returned slice is owned by the caller.
func Encode(v any) ([]byte, error) {
	if wa, ok := v.(WireAppender); ok && !legacyGob.Load() {
		return encodeBinary(wa), nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes body into v, auto-detecting the codec: bodies
// starting with the binary magic byte use v's strict binary decoder,
// everything else (including messages from pre-codec peers) is gob.
func Decode(body []byte, v any) error {
	if len(body) > 0 && body[0] == binenc.Magic {
		wd, ok := v.(WireDecoder)
		if !ok {
			return fmt.Errorf("rpc: binary message for %T, which has no binary decoder", v)
		}
		return wd.DecodeWire(body)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return fmt.Errorf("rpc: decoding %T: %w", v, err)
	}
	return nil
}

// Peer describes the authenticated remote endpoint of a request, plus the
// request's propagated trace context (zero when the caller is untraced).
type Peer struct {
	Name  string
	Trace obs.SpanContext
}

// Handler serves one RPC: it receives the authenticated peer, the method
// name and the gob-encoded request body, and returns the gob-encoded
// response body.
type Handler func(peer Peer, method string, body []byte) ([]byte, error)

// ServeOptions tunes Serve's failure handling.
type ServeOptions struct {
	// HandshakeTimeout bounds the secure-channel handshake of each accepted
	// connection (real time), so a peer that connects and stalls cannot pin
	// a goroutine forever. Default 15s.
	HandshakeTimeout time.Duration
	// IdemCacheSize bounds the idempotency replay cache shared by all of
	// this listener's connections. Default 1024 responses.
	IdemCacheSize int
}

// Serve accepts secure-channel connections on l and dispatches requests to
// h until the listener is closed. It blocks; run it in a goroutine.
// Transient Accept failures (ECONNABORTED, fd exhaustion, injected faults)
// are retried with a short backoff: only a closed listener stops the loop.
func Serve(l net.Listener, cfg secchan.Config, h Handler) {
	ServeOpts(l, cfg, h, ServeOptions{})
}

// ServeOpts is Serve with explicit failure-handling options.
func ServeOpts(l net.Listener, cfg secchan.Config, h Handler, opts ServeOptions) {
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 15 * time.Second
	}
	if opts.IdemCacheSize <= 0 {
		opts.IdemCacheSize = 1024
	}
	idem := newIdemCache(opts.IdemCacheSize)
	var backoff time.Duration
	for {
		raw, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if backoff < 5*time.Millisecond {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > 200*time.Millisecond {
				backoff = 200 * time.Millisecond
			}
			//lint:wallclock accept-error backoff throttles a real listener; real time by design
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		go serveConn(raw, cfg, h, opts.HandshakeTimeout, idem)
	}
}

func serveConn(raw net.Conn, cfg secchan.Config, h Handler, hsTimeout time.Duration, idem *idemCache) {
	defer raw.Close()
	//lint:wallclock net.Conn deadlines are kernel wall-clock deadlines by contract
	raw.SetDeadline(time.Now().Add(hsTimeout))
	conn, err := secchan.Server(raw, cfg)
	if err != nil {
		return // handshake failed: unauthenticated peer or network attacker
	}
	raw.SetDeadline(time.Time{})
	basePeer := Peer{Name: conn.PeerName()}
	for {
		msg, err := conn.ReadMsg()
		if err != nil {
			return
		}
		var req requestEnvelope
		if err := Decode(msg, &req); err != nil {
			return
		}
		peer := basePeer
		peer.Trace = obs.SpanContext{Trace: req.Trace, Span: req.Span}
		var resp responseEnvelope
		if req.IdemKey != "" {
			resp = idem.do(req.IdemKey, func() responseEnvelope { return dispatch(h, peer, req) })
		} else {
			resp = dispatch(h, peer, req)
		}
		out, err := Encode(resp)
		if err != nil {
			return
		}
		if err := conn.WriteMsg(out); err != nil {
			return
		}
	}
}

func dispatch(h Handler, peer Peer, req requestEnvelope) responseEnvelope {
	body, err := h(peer, req.Method, req.Body)
	if err != nil {
		return responseEnvelope{Err: err.Error()}
	}
	return responseEnvelope{Body: body}
}

// idemCache replays responses for requests bearing an idempotency key, so
// clients can safely retry non-idempotent methods (e.g. remediation RPCs):
// the handler runs at most once per key, and duplicates — including
// concurrent ones — receive the first execution's response.
type idemCache struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
	order   []string // FIFO eviction
	max     int
}

type idemEntry struct {
	done chan struct{}
	resp responseEnvelope
}

func newIdemCache(max int) *idemCache {
	return &idemCache{entries: make(map[string]*idemEntry), max: max}
}

func (c *idemCache) do(key string, fn func() responseEnvelope) responseEnvelope {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.resp
	}
	e := &idemEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	if len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.mu.Unlock()
	e.resp = fn()
	close(e.done)
	return e.resp
}

// RemoteError is a failure reported by the remote handler: the transport
// and secure channel worked, the method itself returned an error. The
// connection remains usable, and blind retries of the same request will
// not change the outcome.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("rpc: %s: %s", e.Method, e.Msg) }

// ErrClientBroken reports a client whose connection was poisoned by an
// earlier transport failure (a timed-out or torn call leaves the
// request/response pairing on the wire undefined). The caller must redial;
// ReconnectClient does so automatically.
var ErrClientBroken = errors.New("rpc: connection broken by earlier failure")

// Client is one secure RPC connection. Calls are serialized.
type Client struct {
	mu     sync.Mutex
	conn   *secchan.Conn
	broken bool
}

// Dial establishes a secure channel to addr over n and wraps it in a Client.
func Dial(n Network, addr string, cfg secchan.Config) (*Client, error) {
	return DialContext(context.Background(), n, addr, cfg)
}

// DialContext establishes a secure channel to addr over n, bounding both
// connection establishment and the authentication handshake with ctx.
//
// When cfg carries a secchan.SessionCache, the dial address keys the
// resumption ticket for this peer (unless cfg.ResumeTo overrides it), so a
// ReconnectClient redialing after a broken connection skips the asymmetric
// handshake whenever it holds a live ticket.
func DialContext(ctx context.Context, n Network, addr string, cfg secchan.Config) (*Client, error) {
	if cfg.Session != nil && cfg.ResumeTo == "" {
		cfg.ResumeTo = addr
	}
	raw, err := dialNet(ctx, n, addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		raw.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { raw.SetDeadline(aLongTimeAgo) })
	conn, err := secchan.Client(raw, cfg)
	stop()
	if err != nil {
		raw.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return &Client{conn: conn}, nil
}

// PeerName returns the authenticated server name.
func (c *Client) PeerName() string { return c.conn.PeerName() }

// Resumed reports whether this connection was established by ticket
// resumption rather than a full asymmetric handshake.
func (c *Client) Resumed() bool { return c.conn.Resumed() }

// Close tears down the channel.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether an earlier transport failure poisoned this
// connection (subsequent calls fail fast with ErrClientBroken).
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Call sends method(req) and decodes the reply into resp (resp may be nil
// for fire-and-forget semantics with an empty reply). It exists for tests;
// production call sites carry a deadline context (ctxdeadline analyzer).
func (c *Client) Call(method string, req, resp any) error {
	//lint:ignore ctxdeadline test-only convenience wrapper; production sites use CallCtx with a deadline
	return c.CallCtx(context.Background(), method, req, resp)
}

// CallCtx sends method(req) and decodes the reply into resp. The context's
// deadline and cancellation bound the whole exchange via the connection's
// read/write deadlines, so a hung or partitioned peer cannot block the
// caller past them. A call that fails in transport poisons the connection
// — later calls fail fast with ErrClientBroken until the caller redials.
func (c *Client) CallCtx(ctx context.Context, method string, req, resp any) error {
	return c.call(ctx, method, "", req, resp)
}

// CallIdem is CallCtx with an idempotency key: the server executes the
// method at most once per key and replays the recorded response to
// duplicates, making the call safe to retry even when the method is not
// naturally idempotent.
func (c *Client) CallIdem(ctx context.Context, method, key string, req, resp any) error {
	return c.call(ctx, method, key, req, resp)
}

func (c *Client) call(ctx context.Context, method, idemKey string, req, resp any) error {
	body, err := Encode(req)
	if err != nil {
		return err
	}
	env := requestEnvelope{Method: method, IdemKey: idemKey, Body: body}
	if sc := obs.FromContext(ctx).Context(); sc.Traced() {
		env.Trace, env.Span = sc.Trace, sc.Span
	}
	out, err := Encode(env)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return fmt.Errorf("rpc: calling %s: %w", method, ErrClientBroken)
	}
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	stop := context.AfterFunc(ctx, func() { c.conn.SetDeadline(aLongTimeAgo) })
	defer stop()
	if err := c.conn.WriteMsg(out); err != nil {
		c.broken = true
		return fmt.Errorf("rpc: sending %s: %w", method, err)
	}
	msg, err := c.conn.ReadMsg()
	if err != nil {
		c.broken = true
		return fmt.Errorf("rpc: awaiting %s reply: %w", method, err)
	}
	var reply responseEnvelope
	if err := Decode(msg, &reply); err != nil {
		c.broken = true
		return err
	}
	if reply.Err != "" {
		return &RemoteError{Method: method, Msg: reply.Err}
	}
	if resp == nil {
		return nil
	}
	return Decode(reply.Body, resp)
}
