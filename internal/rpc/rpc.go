// Package rpc provides the request/response layer CloudMonatt's entities
// speak over their secure channels, plus the transport abstraction that
// lets the same code run over real TCP (the cmd/ daemons) or an in-memory
// network (the in-process testbed, tests, and the Dolev-Yao attacker rig).
package rpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"cloudmonatt/internal/secchan"
)

// Network abstracts connection establishment so tests can run in memory.
type Network interface {
	Dial(addr string) (net.Conn, error)
	Listen(addr string) (net.Listener, error)
}

// --- in-memory network ---

// MemNetwork is an in-process Network: addresses are arbitrary strings and
// connections are synchronous net.Pipe pairs.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	// Intercept, when set, wraps the two ends of every new connection; the
	// Dolev-Yao attacker uses it to own the network.
	Intercept func(addr string, client, server net.Conn) (net.Conn, net.Conn)
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

type memListener struct {
	addr   string
	ch     chan net.Conn
	net    *MemNetwork
	closed chan struct{}
	once   sync.Once
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c, ok := <-l.ch:
		if !ok {
			return nil, errors.New("rpc: listener closed")
		}
		return c, nil
	case <-l.closed:
		return nil, errors.New("rpc: listener closed")
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

// Listen claims an address on the in-memory network.
func (n *MemNetwork) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, busy := n.listeners[addr]; busy {
		return nil, fmt.Errorf("rpc: address %q already in use", addr)
	}
	l := &memListener{addr: addr, ch: make(chan net.Conn), net: n, closed: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening address.
func (n *MemNetwork) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	intercept := n.Intercept
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: no listener at %q", addr)
	}
	client, server := net.Pipe()
	if intercept != nil {
		client, server = intercept(addr, client, server)
	}
	select {
	case l.ch <- server:
		return client, nil
	case <-l.closed:
		return nil, errors.New("rpc: listener closed")
	}
}

// TCPNetwork is the real-network implementation.
type TCPNetwork struct{}

// Dial connects over TCP.
func (TCPNetwork) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Listen binds a TCP listener.
func (TCPNetwork) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// --- envelopes ---

type requestEnvelope struct {
	Method string
	Body   []byte
}

type responseEnvelope struct {
	Err  string
	Body []byte
}

// Encode gob-encodes a value (exported for handlers building responses).
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes body into v.
func Decode(body []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return fmt.Errorf("rpc: decoding %T: %w", v, err)
	}
	return nil
}

// Peer describes the authenticated remote endpoint of a request.
type Peer struct {
	Name string
}

// Handler serves one RPC: it receives the authenticated peer, the method
// name and the gob-encoded request body, and returns the gob-encoded
// response body.
type Handler func(peer Peer, method string, body []byte) ([]byte, error)

// Serve accepts secure-channel connections on l and dispatches requests to
// h until the listener is closed. It blocks; run it in a goroutine.
func Serve(l net.Listener, cfg secchan.Config, h Handler) {
	for {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		go serveConn(raw, cfg, h)
	}
}

func serveConn(raw net.Conn, cfg secchan.Config, h Handler) {
	defer raw.Close()
	conn, err := secchan.Server(raw, cfg)
	if err != nil {
		return // handshake failed: unauthenticated peer or network attacker
	}
	peer := Peer{Name: conn.PeerName()}
	for {
		msg, err := conn.ReadMsg()
		if err != nil {
			return
		}
		var req requestEnvelope
		if err := Decode(msg, &req); err != nil {
			return
		}
		var resp responseEnvelope
		body, herr := h(peer, req.Method, req.Body)
		if herr != nil {
			resp.Err = herr.Error()
		} else {
			resp.Body = body
		}
		out, err := Encode(resp)
		if err != nil {
			return
		}
		if err := conn.WriteMsg(out); err != nil {
			return
		}
	}
}

// Client is one secure RPC connection. Calls are serialized.
type Client struct {
	mu   sync.Mutex
	conn *secchan.Conn
}

// Dial establishes a secure channel to addr over n and wraps it in a Client.
func Dial(n Network, addr string, cfg secchan.Config) (*Client, error) {
	raw, err := n.Dial(addr)
	if err != nil {
		return nil, err
	}
	conn, err := secchan.Client(raw, cfg)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// PeerName returns the authenticated server name.
func (c *Client) PeerName() string { return c.conn.PeerName() }

// Close tears down the channel.
func (c *Client) Close() error { return c.conn.Close() }

// Call sends method(req) and decodes the reply into resp (resp may be nil
// for fire-and-forget semantics with an empty reply).
func (c *Client) Call(method string, req, resp any) error {
	body, err := Encode(req)
	if err != nil {
		return err
	}
	out, err := Encode(requestEnvelope{Method: method, Body: body})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.conn.WriteMsg(out); err != nil {
		return fmt.Errorf("rpc: sending %s: %w", method, err)
	}
	msg, err := c.conn.ReadMsg()
	if err != nil {
		return fmt.Errorf("rpc: awaiting %s reply: %w", method, err)
	}
	var env responseEnvelope
	if err := Decode(msg, &env); err != nil {
		return err
	}
	if env.Err != "" {
		return fmt.Errorf("rpc: %s: %s", method, env.Err)
	}
	if resp == nil {
		return nil
	}
	return Decode(env.Body, resp)
}
