package rpc

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// Golden vectors for the rpc envelopes, matching internal/wire's golden
// tests: the envelope framing is part of the versioned wire contract, and
// a silent change here breaks every method call in a mixed-version fleet.
// Regenerate deliberately with REGEN_GOLDEN=1.

type envelopeGolden struct {
	name string
	enc  []byte
	rt   func(data []byte) ([]byte, error)
}

func envelopeGoldens() []envelopeGolden {
	req := requestEnvelope{
		Method:  "attest.v1/Appraise",
		IdemKey: "idem-0123456789abcdef",
		Trace:   "trace-a1b2c3d4",
		Span:    "span-0007",
		Body:    []byte{0xC1, 0x01, 0x06, 0xde, 0xad, 0xbe, 0xef},
	}
	resp := responseEnvelope{
		Err:  "attestsrv: evidence signature invalid",
		Body: []byte("partial"),
	}
	empty := responseEnvelope{}
	return []envelopeGolden{
		{"request-envelope", req.AppendWire(nil), func(d []byte) ([]byte, error) {
			var e requestEnvelope
			if err := e.DecodeWire(d); err != nil {
				return nil, err
			}
			return e.AppendWire(nil), nil
		}},
		{"response-envelope", resp.AppendWire(nil), func(d []byte) ([]byte, error) {
			var e responseEnvelope
			if err := e.DecodeWire(d); err != nil {
				return nil, err
			}
			return e.AppendWire(nil), nil
		}},
		{"response-envelope-empty", empty.AppendWire(nil), func(d []byte) ([]byte, error) {
			var e responseEnvelope
			if err := e.DecodeWire(d); err != nil {
				return nil, err
			}
			return e.AppendWire(nil), nil
		}},
	}
}

func TestEnvelopeGoldenVectors(t *testing.T) {
	for _, gc := range envelopeGoldens() {
		t.Run(gc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", gc.name+".hex")
			if os.Getenv("REGEN_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(hex.EncodeToString(gc.enc)+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden vector (run with REGEN_GOLDEN=1 after an intentional format change): %v", err)
			}
			want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gc.enc, want) {
				t.Fatalf("%s encoding drifted from the committed golden vector\n got: %x\nwant: %x", gc.name, gc.enc, want)
			}
			re, err := gc.rt(want)
			if err != nil {
				t.Fatalf("decoding golden vector: %v", err)
			}
			if !bytes.Equal(re, want) {
				t.Fatalf("%s golden vector does not round-trip", gc.name)
			}
		})
	}
}
