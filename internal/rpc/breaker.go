package rpc

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state of one peer's client.
type BreakerState int

// The classic three states: Closed passes calls through, Open fails them
// fast, HalfOpen admits a single probe after the cooldown.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerPolicy tunes a per-peer circuit breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive transport failures that trips
	// the breaker. Default 8; negative disables the breaker entirely.
	Threshold int
	// Cooldown is how long an open breaker rejects calls before admitting a
	// half-open probe. Default 1s.
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = 8
	}
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
	return p
}

// ErrBreakerOpen fails a call fast because the peer's breaker is open: the
// peer has failed repeatedly and the cooldown has not elapsed. Callers can
// treat it as an infrastructure (not protocol) failure.
var ErrBreakerOpen = errors.New("rpc: circuit breaker open")

// breaker is a consecutive-failure circuit breaker. notify (may be nil)
// observes state transitions; it is invoked with the lock held, so it must
// not call back into the breaker.
type breaker struct {
	mu       sync.Mutex
	policy   BreakerPolicy
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	notify   func(from, to BreakerState)
}

func newBreaker(p BreakerPolicy, notify func(from, to BreakerState)) *breaker {
	return &breaker{policy: p.withDefaults(), notify: notify}
}

// State returns the current breaker state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// allow reports whether a call may proceed now; ErrBreakerOpen otherwise.
func (b *breaker) allow(now time.Time) error {
	if b.policy.Threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.policy.Cooldown {
			return ErrBreakerOpen
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return nil
	default: // half-open: one probe in flight at a time
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// success records a completed call and closes the breaker.
func (b *breaker) success() {
	if b.policy.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.transition(BreakerClosed)
	}
}

// failure records a transport failure, tripping the breaker at the
// threshold (or immediately when a half-open probe fails).
func (b *breaker) failure(now time.Time) {
	if b.policy.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.failures++
	switch {
	case b.state == BreakerHalfOpen:
		b.openedAt = now
		b.transition(BreakerOpen)
	case b.state == BreakerClosed && b.failures >= b.policy.Threshold:
		b.openedAt = now
		b.transition(BreakerOpen)
	case b.state == BreakerOpen:
		b.openedAt = now
	}
}

func (b *breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if b.notify != nil && from != to {
		b.notify(from, to)
	}
}
