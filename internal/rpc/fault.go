package rpc

import (
	"context"
	"fmt"
	mathrand "math/rand"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

// FaultConfig tunes the failures a FaultNetwork injects. All rates are
// probabilities in [0, 1]; everything is drawn from one seeded RNG so runs
// are reproducible.
type FaultConfig struct {
	Seed int64
	// DropRate is the fraction of dial attempts refused outright
	// (connection refused / SYN dropped).
	DropRate float64
	// HandshakeFailRate is the fraction of established connections reset
	// before a single byte moves (accept-then-RST).
	HandshakeFailRate float64
	// ResetRate is the fraction of connections reset mid-stream, after a
	// random handful of reads/writes.
	ResetRate float64
	// DelayRate is the per-operation probability of injected latency,
	// uniform in (0, MaxDelay].
	DelayRate float64
	MaxDelay  time.Duration
}

// FaultStats counts the faults a FaultNetwork has injected.
type FaultStats struct {
	Dials          int64 // dial attempts observed
	Drops          int64 // dials refused
	HandshakeFails int64 // connections reset before any byte
	Resets         int64 // connections reset mid-stream
	Delays         int64 // operations delayed
	PartitionWaits int64 // operations that blocked on a partition
}

// FaultNetwork wraps a Network and injects connection drops, latency,
// partitions (blackholes), handshake failures and mid-stream resets — the
// failure modes the fault-tolerant RPC layer must survive. Faults are
// drawn from a seeded RNG for reproducible chaos tests.
type FaultNetwork struct {
	inner Network

	mu    sync.Mutex
	rng   *mathrand.Rand
	cfg   FaultConfig
	parts map[string]bool
	stats FaultStats
}

// NewFaultNetwork wraps inner with fault injection.
func NewFaultNetwork(inner Network, cfg FaultConfig) *FaultNetwork {
	return &FaultNetwork{
		inner: inner,
		rng:   mathrand.New(mathrand.NewSource(cfg.Seed)),
		cfg:   cfg,
		parts: make(map[string]bool),
	}
}

// Inner returns the wrapped network (the testbed unwraps it to detect
// in-memory addressing).
func (f *FaultNetwork) Inner() Network { return f.inner }

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultNetwork) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Partition blackholes an address: new dials and in-flight operations on
// existing connections block until the partition heals or the caller's
// deadline expires — exactly how a silently dropped route behaves.
func (f *FaultNetwork) Partition(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parts[addr] = true
}

// Heal removes a partition.
func (f *FaultNetwork) Heal(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.parts, addr)
}

// HealAll removes every partition.
func (f *FaultNetwork) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parts = make(map[string]bool)
}

func (f *FaultNetwork) partitioned(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.parts[addr]
}

// Listen passes through to the wrapped network.
func (f *FaultNetwork) Listen(addr string) (net.Listener, error) { return f.inner.Listen(addr) }

// Dial connects with fault injection (unbounded when partitioned — prefer
// DialContext).
func (f *FaultNetwork) Dial(addr string) (net.Conn, error) {
	return f.DialContext(context.Background(), addr)
}

// connPlan is the per-connection fault schedule, drawn at dial time.
type connPlan struct {
	drop    bool
	delay   time.Duration
	opsLeft int // operations until an injected reset; -1 = never
}

func (f *FaultNetwork) plan() connPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Dials++
	p := connPlan{opsLeft: -1}
	if f.rng.Float64() < f.cfg.DropRate {
		p.drop = true
		f.stats.Drops++
		return p
	}
	if f.cfg.DelayRate > 0 && f.cfg.MaxDelay > 0 && f.rng.Float64() < f.cfg.DelayRate {
		p.delay = time.Duration(1 + f.rng.Int63n(int64(f.cfg.MaxDelay)))
		f.stats.Delays++
	}
	if f.rng.Float64() < f.cfg.HandshakeFailRate {
		p.opsLeft = 0
		f.stats.HandshakeFails++
	} else if f.rng.Float64() < f.cfg.ResetRate {
		// Die a few records in: mid-handshake or mid-exchange.
		p.opsLeft = 2 + f.rng.Intn(12)
		f.stats.Resets++
	}
	return p
}

// opDelay draws the injected latency for one read/write.
func (f *FaultNetwork) opDelay() time.Duration {
	if f.cfg.DelayRate <= 0 || f.cfg.MaxDelay <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() >= f.cfg.DelayRate {
		return 0
	}
	f.stats.Delays++
	return time.Duration(1 + f.rng.Int63n(int64(f.cfg.MaxDelay)))
}

func (f *FaultNetwork) countPartitionWait() {
	f.mu.Lock()
	f.stats.PartitionWaits++
	f.mu.Unlock()
}

// DialContext connects with fault injection: partition blackholing (bounded
// by ctx), injected dial latency, dropped dials, and a per-connection fault
// plan for the returned conn.
func (f *FaultNetwork) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	p := f.plan()
	// A partitioned address blackholes the SYN: block until healed or the
	// context gives up.
	waited := false
	for f.partitioned(addr) {
		if !waited {
			waited = true
			f.countPartitionWait()
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("rpc: dialing %q (partitioned): %w", addr, ctx.Err())
		//lint:wallclock the fault injector emulates the physical network; injected waits are real waits
		case <-time.After(time.Millisecond):
		}
	}
	if p.delay > 0 {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("rpc: dialing %q: %w", addr, ctx.Err())
		//lint:wallclock injected dial latency is a real-time delay by design
		case <-time.After(p.delay):
		}
	}
	if p.drop {
		return nil, fmt.Errorf("rpc: injected connection drop to %q: %w", addr, syscall.ECONNREFUSED)
	}
	inner, err := dialNet(ctx, f.inner, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: inner, f: f, addr: addr, opsLeft: p.opsLeft, closed: make(chan struct{})}, nil
}

// faultConn applies the connection's fault plan to every read and write.
type faultConn struct {
	net.Conn
	f    *FaultNetwork
	addr string

	mu        sync.Mutex
	opsLeft   int
	readDL    time.Time
	writeDL   time.Time
	closed    chan struct{}
	closeOnce sync.Once
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *faultConn) deadline(read bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if read {
		return c.readDL
	}
	return c.writeDL
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.gate(true); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.gate(false); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// gate applies partition blocking, injected latency and the reset
// countdown before an operation touches the real connection.
func (c *faultConn) gate(read bool) error {
	waited := false
	for c.f.partitioned(c.addr) {
		if !waited {
			waited = true
			c.f.countPartitionWait()
		}
		// Honor the connection deadline while blackholed, like a kernel
		// timing out a read on a dead route.
		//lint:wallclock connection deadlines set via net.Conn SetDeadline are wall-clock by contract
		if dl := c.deadline(read); !dl.IsZero() && time.Now().After(dl) {
			return os.ErrDeadlineExceeded
		}
		select {
		case <-c.closed:
			return net.ErrClosed
		//lint:wallclock blackhole polling emulates a dead route in real time
		case <-time.After(time.Millisecond):
		}
	}
	c.mu.Lock()
	reset := false
	if c.opsLeft == 0 {
		reset = true
	} else if c.opsLeft > 0 {
		c.opsLeft--
		if c.opsLeft == 0 {
			reset = true
		}
	}
	c.mu.Unlock()
	if reset {
		c.Conn.Close()
		return fmt.Errorf("rpc: injected connection reset: %w", syscall.ECONNRESET)
	}
	if d := c.f.opDelay(); d > 0 {
		select {
		case <-c.closed:
			return net.ErrClosed
		//lint:wallclock injected per-op latency is a real-time delay by design
		case <-time.After(d):
		}
	}
	return nil
}
