// Binary codec dispatch for the rpc layer. Messages that implement the
// WireAppender/WireDecoder pair (the internal/wire protocol messages and
// this package's envelopes) travel as hand-rolled binary; everything else
// keeps gob. The two formats coexist on the wire: binary messages start
// with binenc.Magic (0xC1), a byte no gob stream can begin with, so Decode
// auto-detects the codec per message and a mixed-version fleet keeps
// interoperating through the migration window.
package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cloudmonatt/internal/binenc"
)

// WireAppender is implemented by messages with a hand-rolled binary
// encoding. AppendWire appends the complete framed message to b and
// returns the extended buffer, allocating only when b lacks capacity.
type WireAppender interface {
	AppendWire(b []byte) []byte
}

// WireDecoder is implemented by messages that can strictly decode their
// binary encoding (accepting exactly the bytes AppendWire produces).
type WireDecoder interface {
	DecodeWire(data []byte) error
}

// legacyGob, when set, forces Encode to emit gob even for binary-capable
// messages — the escape hatch for talking to a pre-codec peer (and for the
// codec ablation in monatt-bench). Decoding always auto-detects.
var legacyGob atomic.Bool

// SetLegacyGob switches Encode between the binary codec (false, default)
// and gob-only (true) for messages that support both.
func SetLegacyGob(v bool) { legacyGob.Store(v) }

// Envelope tags continue the internal/wire tag space (1-8 are the
// protocol messages).
const (
	tagRequestEnvelope  = 9
	tagResponseEnvelope = 10
)

// encScratch pools encode buffers so steady-state Encode does one exact-
// size allocation (the returned slice, which callers may retain — the
// idempotency cache does) instead of gob's encoder machinery.
var encScratch = sync.Pool{New: func() any { return new([]byte) }}

func encodeBinary(wa WireAppender) []byte {
	bp := encScratch.Get().(*[]byte)
	b := wa.AppendWire((*bp)[:0])
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b
	encScratch.Put(bp)
	return out
}

// appendWire implements the request envelope's binary encoding.
func (e requestEnvelope) AppendWire(b []byte) []byte {
	b = binenc.AppendHeader(b, tagRequestEnvelope)
	b = binenc.AppendString(b, e.Method)
	b = binenc.AppendString(b, e.IdemKey)
	b = binenc.AppendString(b, e.Trace)
	b = binenc.AppendString(b, e.Span)
	b = binenc.AppendBytes(b, e.Body)
	return b
}

// DecodeWire strictly decodes the request envelope. Body borrows data —
// valid only while the record buffer is, which holds for the dispatch
// loop's decode→handle→respond sequence.
func (e *requestEnvelope) DecodeWire(data []byte) error {
	rd := binenc.NewReader(data)
	rd.Header(tagRequestEnvelope)
	*e = requestEnvelope{}
	e.Method = rd.String()
	e.IdemKey = rd.String()
	e.Trace = rd.String()
	e.Span = rd.String()
	e.Body = rd.BytesView()
	if err := rd.Done(); err != nil {
		return fmt.Errorf("rpc: decoding request envelope: %w", err)
	}
	return nil
}

// AppendWire implements the response envelope's binary encoding.
func (e responseEnvelope) AppendWire(b []byte) []byte {
	b = binenc.AppendHeader(b, tagResponseEnvelope)
	b = binenc.AppendString(b, e.Err)
	b = binenc.AppendBytes(b, e.Body)
	return b
}

// DecodeWire strictly decodes the response envelope. Body borrows data
// (see requestEnvelope.DecodeWire).
func (e *responseEnvelope) DecodeWire(data []byte) error {
	rd := binenc.NewReader(data)
	rd.Header(tagResponseEnvelope)
	*e = responseEnvelope{}
	e.Err = rd.String()
	e.Body = rd.BytesView()
	if err := rd.Done(); err != nil {
		return fmt.Errorf("rpc: decoding response envelope: %w", err)
	}
	return nil
}
