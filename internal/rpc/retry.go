package rpc

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	mathrand "math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/secchan"
)

// RetryPolicy tunes the retry loop of a ReconnectClient.
type RetryPolicy struct {
	// MaxAttempts caps the total number of attempts per call, first try
	// included. Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry up to MaxDelay. Defaults 25ms / 1s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the fraction of each delay randomized away (0..1), breaking
	// retry synchronization across peers. Default 0.5.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	return p
}

// EventKind classifies a fault-tolerance event.
type EventKind string

// The observable events: a retried call and a breaker state transition.
const (
	EventRetry   EventKind = "retry"
	EventBreaker EventKind = "breaker"
)

// Event is one fault-tolerance event on a peer's channel, delivered to
// ClientConfig.OnEvent for metrics and evidence recording.
type Event struct {
	Kind    EventKind
	Peer    string
	Method  string       // retries only
	Attempt int          // retries only: the attempt about to run (1-based)
	Err     error        // retries only: the failure being retried
	From    BreakerState // breaker transitions only
	To      BreakerState
}

// ClientConfig configures a ReconnectClient.
type ClientConfig struct {
	Network Network
	Addr    string
	// Peer labels events and errors; defaults to Addr.
	Peer    string
	Secchan secchan.Config
	Retry   RetryPolicy
	Breaker BreakerPolicy
	// CallTimeout bounds each attempt (dial + handshake + exchange) in real
	// time. Default 30s; negative disables the bound.
	CallTimeout time.Duration
	// Idempotent reports methods safe to blindly re-issue after a transport
	// failure mid-call. Dial failures are always retried (the request never
	// reached the peer). nil marks every method non-idempotent.
	Idempotent func(method string) bool
	// OnEvent observes retries and breaker transitions. It may be called
	// concurrently and must not call back into this client.
	OnEvent func(Event)
	// Seed makes backoff jitter deterministic; 0 derives a seed from Addr.
	Seed int64
	// Now supplies the clock the circuit breaker uses for its open/half-open
	// cooldown. Tests and the simulator inject a virtual clock so breaker
	// state machines replay deterministically; nil falls back to wall time.
	Now func() time.Time
}

// ReconnectClient is a fault-tolerant RPC client: it dials lazily,
// redials broken connections with exponential backoff plus jitter, fails
// fast behind a per-peer circuit breaker, and retries only what is safe —
// idempotent methods, requests rebuilt with fresh nonces (CallFresh), and
// requests carrying idempotency keys (CallIdem).
type ReconnectClient struct {
	cfg     ClientConfig
	breaker *breaker

	mu     sync.Mutex
	client *Client
	rng    *mathrand.Rand
	closed bool
}

// NewReconnectClient creates a client for one peer. No connection is
// established until the first call (or Connect).
func NewReconnectClient(cfg ClientConfig) *ReconnectClient {
	if cfg.Peer == "" {
		cfg.Peer = cfg.Addr
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.Addr))
		seed = int64(h.Sum64())
	}
	rc := &ReconnectClient{cfg: cfg, rng: mathrand.New(mathrand.NewSource(seed))}
	rc.breaker = newBreaker(cfg.Breaker, func(from, to BreakerState) {
		rc.event(Event{Kind: EventBreaker, Peer: cfg.Peer, From: from, To: to})
	})
	return rc
}

// Peer returns the label this client reports in events and errors.
func (rc *ReconnectClient) Peer() string { return rc.cfg.Peer }

// BreakerState returns the current circuit-breaker state.
func (rc *ReconnectClient) BreakerState() BreakerState { return rc.breaker.State() }

// Connect ensures a live connection, dialing if necessary (bounded by both
// ctx and CallTimeout). Calls dial lazily, so Connect is only needed when
// reachability must be probed eagerly.
func (rc *ReconnectClient) Connect(ctx context.Context) error {
	actx, cancel := rc.attemptCtx(ctx)
	defer cancel()
	_, err := rc.conn(actx)
	return err
}

// Close tears down the connection; subsequent calls fail.
func (rc *ReconnectClient) Close() error {
	rc.mu.Lock()
	c := rc.client
	rc.client = nil
	rc.closed = true
	rc.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// Call is CallCtx with a background context (the CallTimeout still bounds
// each attempt). It exists for tests; production call sites carry a
// deadline context and are held to that by the ctxdeadline analyzer.
func (rc *ReconnectClient) Call(method string, req, resp any) error {
	//lint:ignore ctxdeadline test-only convenience wrapper; CallTimeout still bounds each attempt
	return rc.CallCtx(context.Background(), method, req, resp)
}

// CallCtx sends method(req), retrying across transient transport failures
// only when the method is registered idempotent.
func (rc *ReconnectClient) CallCtx(ctx context.Context, method string, req, resp any) error {
	idem := rc.cfg.Idempotent != nil && rc.cfg.Idempotent(method)
	return rc.do(ctx, method, "", func(int) (any, error) { return req, nil }, resp, idem)
}

// CallFresh rebuilds the request for every attempt (regenerating nonces),
// which makes retrying safe at the protocol level: a replay cache on the
// peer never sees the same nonce twice. The caller asserts that re-issuing
// the rebuilt request is semantically safe.
func (rc *ReconnectClient) CallFresh(ctx context.Context, method string, makeReq func(attempt int) (any, error), resp any) error {
	return rc.do(ctx, method, "", makeReq, resp, true)
}

// CallIdem attaches an idempotency key, so the server deduplicates
// re-executions and replays the recorded response; use for methods that
// must not run twice (remediation RPCs like terminate/migrate).
func (rc *ReconnectClient) CallIdem(ctx context.Context, method, key string, req, resp any) error {
	return rc.do(ctx, method, key, func(int) (any, error) { return req, nil }, resp, true)
}

func (rc *ReconnectClient) do(ctx context.Context, method, idemKey string, makeReq func(int) (any, error), resp any, retryable bool) error {
	// Each attempt gets its own child span under whatever span the caller
	// put in ctx, so retries show up as sibling "rpc:<method>" spans and
	// the remote handler's spans nest under the attempt that carried them.
	parent := obs.FromContext(ctx)
	var lastErr error
	for attempt := 0; attempt < rc.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.event(Event{Kind: EventRetry, Peer: rc.cfg.Peer, Method: method, Attempt: attempt + 1, Err: lastErr})
			parent.Annotate("retry", fmt.Sprintf("%s attempt %d after: %v", method, attempt+1, lastErr))
			if err := rc.sleep(ctx, attempt); err != nil {
				return lastErr
			}
		}
		if err := rc.breaker.allow(rc.cfg.Now()); err != nil {
			parent.Annotate("breaker", fmt.Sprintf("%s to %s rejected: breaker %s", method, rc.cfg.Peer, rc.breaker.State()))
			if lastErr != nil {
				return fmt.Errorf("rpc: %s to %s: %w (last failure: %v)", method, rc.cfg.Peer, err, lastErr)
			}
			return fmt.Errorf("rpc: %s to %s: %w", method, rc.cfg.Peer, err)
		}
		req, err := makeReq(attempt)
		if err != nil {
			return err
		}
		asp := parent.Child("rpc:" + method)
		asp.Annotate("peer", rc.cfg.Peer)
		asp.Annotate("attempt", strconv.Itoa(attempt+1))
		sent, err := rc.attempt(obs.ContextWith(ctx, asp), method, idemKey, req, resp)
		asp.EndErr(err)
		if err == nil {
			rc.breaker.success()
			return nil
		}
		var rerr *RemoteError
		if errors.As(err, &rerr) {
			// The transport round-tripped; the remote handler said no.
			rc.breaker.success()
			return err
		}
		rc.breaker.failure(rc.cfg.Now())
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
		if sent && !retryable {
			return lastErr
		}
	}
	return lastErr
}

// attempt runs one try. sent reports whether the request may have reached
// the peer: dial and broken-connection failures are always safe to retry,
// failures after send only for retryable calls.
func (rc *ReconnectClient) attempt(ctx context.Context, method, idemKey string, req, resp any) (sent bool, err error) {
	actx, cancel := rc.attemptCtx(ctx)
	defer cancel()
	c, err := rc.conn(actx)
	if err != nil {
		return false, err
	}
	err = c.call(actx, method, idemKey, req, resp)
	if err == nil {
		return true, nil
	}
	var rerr *RemoteError
	if errors.As(err, &rerr) {
		return true, err
	}
	// Transport failure: the connection is poisoned; drop it so the next
	// attempt redials.
	rc.drop(c)
	if errors.Is(err, ErrClientBroken) {
		return false, err // this request was never written
	}
	return true, err
}

// attemptCtx bounds one attempt with CallTimeout (in addition to any
// caller deadline, so retries fit inside it).
func (rc *ReconnectClient) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if rc.cfg.CallTimeout > 0 {
		return context.WithTimeout(ctx, rc.cfg.CallTimeout)
	}
	return context.WithCancel(ctx)
}

func (rc *ReconnectClient) conn(ctx context.Context) (*Client, error) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil, fmt.Errorf("rpc: client for %s: %w", rc.cfg.Peer, net.ErrClosed)
	}
	if c := rc.client; c != nil && !c.Broken() {
		rc.mu.Unlock()
		return c, nil
	}
	rc.mu.Unlock()
	c, err := DialContext(ctx, rc.cfg.Network, rc.cfg.Addr, rc.cfg.Secchan)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialing %s: %w", rc.cfg.Peer, err)
	}
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("rpc: client for %s: %w", rc.cfg.Peer, net.ErrClosed)
	}
	if rc.client != nil && rc.client != c {
		rc.client.Close()
	}
	rc.client = c
	rc.mu.Unlock()
	return c, nil
}

// drop discards a poisoned connection so the next attempt redials.
func (rc *ReconnectClient) drop(c *Client) {
	rc.mu.Lock()
	if rc.client == c {
		rc.client = nil
	}
	rc.mu.Unlock()
	c.Close()
}

func (rc *ReconnectClient) sleep(ctx context.Context, attempt int) error {
	//lint:wallclock backoff paces real network redials; it must elapse in real time even under simulation
	t := time.NewTimer(rc.backoff(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the exponential delay before the given retry (attempt ≥
// 1), with a random fraction (Jitter) shaved off.
func (rc *ReconnectClient) backoff(attempt int) time.Duration {
	d := rc.cfg.Retry.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= rc.cfg.Retry.MaxDelay {
			d = rc.cfg.Retry.MaxDelay
			break
		}
	}
	if d > rc.cfg.Retry.MaxDelay {
		d = rc.cfg.Retry.MaxDelay
	}
	rc.mu.Lock()
	f := 1 - rc.cfg.Retry.Jitter*rc.rng.Float64()
	rc.mu.Unlock()
	return time.Duration(float64(d) * f)
}

func (rc *ReconnectClient) event(ev Event) {
	if rc.cfg.OnEvent != nil {
		rc.cfg.OnEvent(ev)
	}
}

// idemCounter de-duplicates NewIdemKey fallbacks when the entropy source
// is unavailable.
var idemCounter atomic.Uint64

// NewIdemKey returns a fresh idempotency key for one logical operation;
// reuse it across retries of that operation only.
func NewIdemKey() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		//lint:wallclock entropy source of last resort when crypto/rand fails; uniqueness matters, not replay
		return fmt.Sprintf("idem-%d-%d", time.Now().UnixNano(), idemCounter.Add(1))
	}
	return hex.EncodeToString(buf[:])
}
