package rpc

import (
	"testing"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/secchan"
)

// TestReconnectClientResumesSessions: a ReconnectClient configured with a
// session cache reconnects after a dropped connection via ticket
// resumption — the redial performs zero asymmetric crypto operations,
// proven by differencing the process-wide op counters around it.
func TestReconnectClientResumesSessions(t *testing.T) {
	n := NewMemNetwork()
	keeper, err := secchan.NewTicketKeeper(0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, secchan.Config{Identity: cryptoutil.MustIdentity("server"), Verify: verifyAny, Tickets: keeper},
		func(peer Peer, method string, body []byte) ([]byte, error) {
			var req echoReq
			if err := Decode(body, &req); err != nil {
				return nil, err
			}
			return Encode(echoResp{Text: req.Text})
		})

	rc := NewReconnectClient(ClientConfig{
		Network: n,
		Addr:    "srv",
		Secchan: secchan.Config{
			Identity: cryptoutil.MustIdentity("client"),
			Verify:   verifyAny,
			Session:  secchan.NewSessionCache(),
		},
	})
	defer rc.Close()

	var resp echoResp
	if err := rc.Call("echo", echoReq{Text: "one"}, &resp); err != nil {
		t.Fatalf("first call: %v", err)
	}
	rc.mu.Lock()
	first := rc.client
	rc.mu.Unlock()
	if first.conn.Resumed() {
		t.Fatal("first connection claims resumption")
	}

	// Kill the connection the way a transport failure would, then call
	// again: the redial must ride the ticket, not the asymmetric handshake.
	rc.drop(first)
	before := cryptoutil.Ops()
	if err := rc.Call("echo", echoReq{Text: "two"}, &resp); err != nil {
		t.Fatalf("call after drop: %v", err)
	}
	if resp.Text != "two" {
		t.Fatalf("echoed %q", resp.Text)
	}
	delta := cryptoutil.Ops().Sub(before)
	if n := delta.Asymmetric(); n != 0 {
		t.Fatalf("redial performed %d asymmetric ops (sign=%d verify=%d ecdh=%d); resumption not used",
			n, delta.Sign, delta.Verify, delta.ECDH)
	}
	rc.mu.Lock()
	second := rc.client
	rc.mu.Unlock()
	if second == first || !second.conn.Resumed() {
		t.Fatal("redialed connection is not a resumed session")
	}
}
