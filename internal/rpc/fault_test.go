package rpc

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/secchan"
)

// waitGoroutines fails the test if the goroutine count does not drop back
// to max within a grace period — the leak check for the deadline tests.
func waitGoroutines(t *testing.T, max int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > max {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), max, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPartitionedCallsReturnWithinDeadline is the acceptance test for the
// deadline plumbing: with the peer blackholed mid-session, every Call must
// return within its per-attempt timeout bound and leak no goroutines.
func TestPartitionedCallsReturnWithinDeadline(t *testing.T) {
	inner := NewMemNetwork()
	fn := NewFaultNetwork(inner, FaultConfig{Seed: 7})
	startEcho(t, fn, "srv", cryptoutil.MustIdentity("server"))

	before := runtime.NumGoroutine()
	rc := NewReconnectClient(ClientConfig{
		Network: fn, Addr: "srv", Peer: "srv",
		Secchan:     secchan.Config{Identity: cryptoutil.MustIdentity("cust"), Verify: verifyAny},
		Retry:       RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:     BreakerPolicy{Threshold: -1},
		CallTimeout: 150 * time.Millisecond,
	})
	var resp echoResp
	if err := rc.Call("echo", echoReq{Text: "warm"}, &resp); err != nil {
		t.Fatal(err)
	}

	fn.Partition("srv")
	// 2 attempts x 150ms + backoff; anything near a second means a call
	// escaped its deadline.
	const bound = 1200 * time.Millisecond
	for i := 0; i < 3; i++ {
		start := time.Now()
		err := rc.Call("echo", echoReq{Text: "blackhole"}, &resp)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatal("call succeeded across a partition")
		}
		if elapsed > bound {
			t.Fatalf("call %d blocked %v across a partition, want < %v (err: %v)", i, elapsed, bound, err)
		}
	}
	if st := fn.Stats(); st.PartitionWaits == 0 {
		t.Fatal("no operation ever blocked on the partition — fault injection inert")
	}

	// Heal: the same client must recover without intervention.
	fn.HealAll()
	if err := rc.Call("echo", echoReq{Text: "healed"}, &resp); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if resp.Text != "healed" {
		t.Fatalf("echo after heal returned %q", resp.Text)
	}

	rc.Close()
	waitGoroutines(t, before)
}

// TestDialContextBoundedWhenListenerNotAccepting covers the in-memory
// dial handoff: a listener that exists but never accepts must not block the
// dialer past its context deadline.
func TestDialContextBoundedWhenListenerNotAccepting(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("idle")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Nobody calls l.Accept.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = n.DialContext(ctx, "idle")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial succeeded with nobody accepting")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("dial blocked %v past its deadline", elapsed)
	}
}

// flakyListener fails its first N Accepts with a transient error, then
// delegates to the real listener.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	fails int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fails > 0 {
		l.fails--
		l.mu.Unlock()
		return nil, errors.New("accept: resource temporarily unavailable")
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestServeSurvivesTransientAcceptErrors covers the Accept retry loop:
// transient failures must not kill the serve loop, and a closed listener
// must still terminate it.
func TestServeSurvivesTransientAcceptErrors(t *testing.T) {
	n := NewMemNetwork()
	inner, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	l := &flakyListener{Listener: inner, fails: 3}
	server := cryptoutil.MustIdentity("server")
	done := make(chan struct{})
	go func() {
		Serve(l, secchan.Config{Identity: server, Verify: verifyAny}, func(peer Peer, method string, body []byte) ([]byte, error) {
			return Encode(echoResp{Text: "alive"})
		})
		close(done)
	}()

	c, err := Dial(n, "srv", secchan.Config{Identity: cryptoutil.MustIdentity("x"), Verify: verifyAny})
	if err != nil {
		t.Fatalf("dial after transient accept failures: %v", err)
	}
	var resp echoResp
	if err := c.Call("any", echoReq{}, &resp); err != nil {
		t.Fatalf("call after transient accept failures: %v", err)
	}
	if resp.Text != "alive" {
		t.Fatalf("got %q", resp.Text)
	}
	c.Close()

	inner.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

// TestBreakerOpensAndRecovers drives the breaker through its full cycle:
// consecutive dial failures trip it open, calls then fail fast with
// ErrBreakerOpen, and after the cooldown a successful probe closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	n := NewMemNetwork()
	var mu sync.Mutex
	var transitions []string
	rc := NewReconnectClient(ClientConfig{
		Network: n, Addr: "down", Peer: "down",
		Secchan:     secchan.Config{Identity: cryptoutil.MustIdentity("cust"), Verify: verifyAny},
		Retry:       RetryPolicy{MaxAttempts: 1},
		Breaker:     BreakerPolicy{Threshold: 2, Cooldown: 50 * time.Millisecond},
		CallTimeout: time.Second,
		OnEvent: func(ev Event) {
			if ev.Kind == EventBreaker {
				mu.Lock()
				transitions = append(transitions, ev.From.String()+">"+ev.To.String())
				mu.Unlock()
			}
		},
	})
	defer rc.Close()

	// Two consecutive dial failures (nothing listens at "down") trip the
	// threshold-2 breaker.
	var resp echoResp
	for i := 0; i < 2; i++ {
		if err := rc.Call("echo", echoReq{}, &resp); err == nil {
			t.Fatal("call to a dead address succeeded")
		}
	}
	if st := rc.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker %v after %d failures, want open", st, 2)
	}
	start := time.Now()
	err := rc.Call("echo", echoReq{}, &resp)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen while open, got %v", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatalf("open breaker did not fail fast (%v)", time.Since(start))
	}

	// Bring the peer up; after the cooldown, the half-open probe succeeds
	// and closes the breaker.
	startEcho(t, n, "down", cryptoutil.MustIdentity("server"))
	time.Sleep(60 * time.Millisecond)
	if err := rc.Call("echo", echoReq{Text: "probe"}, &resp); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if st := rc.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
	mu.Lock()
	got := append([]string(nil), transitions...)
	mu.Unlock()
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions %v, want %v", got, want)
		}
	}
}

// TestIdemKeyDeduplicates covers the server-side idempotency cache: the
// handler runs at most once per key, and duplicates (a retried remediation
// RPC) replay the first execution's response.
func TestIdemKeyDeduplicates(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var count atomic.Int64
	go Serve(l, secchan.Config{Identity: cryptoutil.MustIdentity("server"), Verify: verifyAny},
		func(peer Peer, method string, body []byte) ([]byte, error) {
			count.Add(1)
			return Encode(echoResp{Text: "run"})
		})

	c, err := Dial(n, "srv", secchan.Config{Identity: cryptoutil.MustIdentity("cust"), Verify: verifyAny})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := NewIdemKey()
	var r1, r2, r3 echoResp
	if err := c.CallIdem(context.Background(), "terminate", key, echoReq{Text: "vm-1"}, &r1); err != nil {
		t.Fatal(err)
	}
	if err := c.CallIdem(context.Background(), "terminate", key, echoReq{Text: "vm-1"}, &r2); err != nil {
		t.Fatal(err)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("handler executed %d times for one idempotency key, want 1", got)
	}
	if r1.Text != r2.Text {
		t.Fatalf("replayed response %q differs from original %q", r2.Text, r1.Text)
	}
	if err := c.CallIdem(context.Background(), "terminate", NewIdemKey(), echoReq{Text: "vm-1"}, &r3); err != nil {
		t.Fatal(err)
	}
	if got := count.Load(); got != 2 {
		t.Fatalf("handler executed %d times across two keys, want 2", got)
	}
}

// TestCallFreshRetriesThroughChaos runs calls through a network injecting
// mid-stream resets and dropped dials; CallFresh must rebuild the request
// per attempt and every call must eventually land.
func TestCallFreshRetriesThroughChaos(t *testing.T) {
	inner := NewMemNetwork()
	fn := NewFaultNetwork(inner, FaultConfig{
		Seed:      11,
		DropRate:  0.2,
		ResetRate: 0.4,
	})
	startEcho(t, fn, "srv", cryptoutil.MustIdentity("server"))
	rc := NewReconnectClient(ClientConfig{
		Network: fn, Addr: "srv", Peer: "srv",
		Secchan:     secchan.Config{Identity: cryptoutil.MustIdentity("cust"), Verify: verifyAny},
		Retry:       RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Breaker:     BreakerPolicy{Threshold: -1},
		CallTimeout: 2 * time.Second,
		Seed:        1,
	})
	defer rc.Close()

	rebuilds := 0
	for i := 0; i < 20; i++ {
		var resp echoResp
		err := rc.CallFresh(context.Background(), "echo", func(attempt int) (any, error) {
			rebuilds++
			return echoReq{Text: "chaos"}, nil
		}, &resp)
		if err != nil {
			t.Fatalf("call %d failed through chaos: %v", i, err)
		}
		if resp.Text != "chaos" {
			t.Fatalf("call %d echoed %q", i, resp.Text)
		}
	}
	st := fn.Stats()
	if st.Drops == 0 && st.Resets == 0 {
		t.Fatalf("no faults injected (stats %+v) — chaos inert", st)
	}
	if rebuilds <= 20 {
		t.Fatalf("request rebuilt %d times for 20 calls — no retry ever rebuilt it", rebuilds)
	}
}

// TestRemoteErrorNotRetried: a handler rejection round-tripped fine — the
// client must not burn retries or trip the breaker on it.
func TestRemoteErrorNotRetried(t *testing.T) {
	n := NewMemNetwork()
	startEcho(t, n, "srv", cryptoutil.MustIdentity("server"))
	retries := 0
	rc := NewReconnectClient(ClientConfig{
		Network: n, Addr: "srv", Peer: "srv",
		Secchan: secchan.Config{Identity: cryptoutil.MustIdentity("cust"), Verify: verifyAny},
		Retry:   RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Breaker: BreakerPolicy{Threshold: 1, Cooldown: time.Hour},
		OnEvent: func(ev Event) {
			if ev.Kind == EventRetry {
				retries++
			}
		},
	})
	defer rc.Close()
	err := rc.CallFresh(context.Background(), "fail", func(int) (any, error) { return echoReq{}, nil }, nil)
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if retries != 0 {
		t.Fatalf("remote rejection retried %d times, want 0", retries)
	}
	if st := rc.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker %v after remote rejection, want closed (transport was healthy)", st)
	}
}
