package rpc

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"testing"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/secchan"
)

func verifyAny(name string, key ed25519.PublicKey) error { return nil }

type echoReq struct{ Text string }
type echoResp struct{ Text string }

func startEcho(t *testing.T, n Network, addr string, id *cryptoutil.Identity) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, secchan.Config{Identity: id, Verify: verifyAny}, func(peer Peer, method string, body []byte) ([]byte, error) {
		switch method {
		case "echo":
			var req echoReq
			if err := Decode(body, &req); err != nil {
				return nil, err
			}
			return Encode(echoResp{Text: req.Text})
		case "whoami":
			return Encode(echoResp{Text: peer.Name})
		case "fail":
			return nil, errors.New("deliberate failure")
		}
		return nil, fmt.Errorf("no such method %q", method)
	})
}

func TestCallRoundTrip(t *testing.T) {
	n := NewMemNetwork()
	server := cryptoutil.MustIdentity("server")
	startEcho(t, n, "srv", server)
	c, err := Dial(n, "srv", secchan.Config{Identity: cryptoutil.MustIdentity("client"), Verify: verifyAny})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "hello"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello" {
		t.Fatalf("echo returned %q", resp.Text)
	}
	if c.PeerName() != "server" {
		t.Fatalf("peer name %q", c.PeerName())
	}
}

func TestHandlerSeesAuthenticatedPeer(t *testing.T) {
	n := NewMemNetwork()
	startEcho(t, n, "srv", cryptoutil.MustIdentity("server"))
	c, err := Dial(n, "srv", secchan.Config{Identity: cryptoutil.MustIdentity("alice"), Verify: verifyAny})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("whoami", echoReq{}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "alice" {
		t.Fatalf("server saw peer %q, want alice", resp.Text)
	}
}

func TestErrorPropagation(t *testing.T) {
	n := NewMemNetwork()
	startEcho(t, n, "srv", cryptoutil.MustIdentity("server"))
	c, _ := Dial(n, "srv", secchan.Config{Identity: cryptoutil.MustIdentity("x"), Verify: verifyAny})
	defer c.Close()
	err := c.Call("fail", echoReq{}, nil)
	if err == nil || !contains(err.Error(), "deliberate failure") {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := c.Call("nope", echoReq{}, nil); err == nil {
		t.Fatal("unknown method succeeded")
	}
	// The connection survives handler errors.
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "still alive"}, &resp); err != nil {
		t.Fatalf("connection dead after handler error: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestConcurrentClients(t *testing.T) {
	n := NewMemNetwork()
	startEcho(t, n, "srv", cryptoutil.MustIdentity("server"))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(n, "srv", secchan.Config{Identity: cryptoutil.MustIdentity(fmt.Sprintf("c%d", i)), Verify: verifyAny})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				var resp echoResp
				msg := fmt.Sprintf("%d-%d", i, j)
				if err := c.Call("echo", echoReq{Text: msg}, &resp); err != nil {
					errs <- err
					return
				}
				if resp.Text != msg {
					errs <- fmt.Errorf("cross-talk: sent %q got %q", msg, resp.Text)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMemNetworkAddressing(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("dialed a non-listening address")
	}
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("double listen on one address")
	}
	if got := l.Addr().String(); got != "a" {
		t.Fatalf("listener addr %q", got)
	}
	l.Close()
	if _, err := n.Dial("a"); err == nil {
		t.Fatal("dialed a closed listener")
	}
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("address not released after close: %v", err)
	}
}

func TestTCPNetwork(t *testing.T) {
	n := TCPNetwork{}
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	server := cryptoutil.MustIdentity("server")
	go Serve(l, secchan.Config{Identity: server, Verify: verifyAny}, func(peer Peer, method string, body []byte) ([]byte, error) {
		return Encode(echoResp{Text: "tcp"})
	})
	c, err := Dial(n, l.Addr().String(), secchan.Config{Identity: cryptoutil.MustIdentity("x"), Verify: verifyAny})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("any", echoReq{}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "tcp" {
		t.Fatalf("got %q", resp.Text)
	}
}
