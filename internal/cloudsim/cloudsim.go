// Package cloudsim assembles the complete in-process CloudMonatt testbed:
// one Cloud Controller, one Attestation Server with its privacy CA, and N
// cloud servers, all speaking the real attestation protocol over
// authenticated encrypted channels on an in-memory network, with every
// hypervisor and latency model driven by one shared virtual clock. It is
// the equivalent of the paper's three-machine OpenStack deployment (§7),
// squeezed into a deterministic process.
package cloudsim

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"cloudmonatt/internal/attestsrv"
	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/guest"
	"cloudmonatt/internal/image"
	"cloudmonatt/internal/latency"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/monitor"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/pca"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/secchan"
	"cloudmonatt/internal/server"
	"cloudmonatt/internal/shard"
	"cloudmonatt/internal/sim"
	"cloudmonatt/internal/trust"
	"cloudmonatt/internal/trust/driver"
	"cloudmonatt/internal/trust/driver/sevsnp"
	"cloudmonatt/internal/vclock"
	"cloudmonatt/internal/wire"
	"cloudmonatt/internal/xen"
)

// Options configures the testbed.
type Options struct {
	Seed           int64
	Servers        int
	PCPUsPerServer int
	// AttestServers shards the cloud servers across this many Attestation
	// Servers (paper §3.2.3's scalability claim). Default 1. Cloud server i
	// belongs to cluster i mod AttestServers.
	AttestServers int
	// Shards, when positive, replaces the static cluster split with a
	// consistent-hash ring: this many Attestation Server shards join the
	// ring, every cloud server registers with every shard, and a VM's
	// appraisal state lives on the shard owning its id. JoinShard/LeaveShard
	// then grow and shrink the plane at runtime, moving only ~1/N of the
	// fleet per step. Overrides AttestServers.
	Shards int
	// SessionMaxUses bounds attestation-session key reuse on the cloud
	// servers (server.Config.SessionMaxUses). 0 in ring mode defaults to 8
	// so the privacy CA's per-session cert cache carries the repeat
	// certification load; 0 otherwise keeps one fresh key per attestation.
	SessionMaxUses int
	// TamperPlatform lists server names booted with a trojaned hypervisor.
	TamperPlatform map[string]bool
	// Backends assigns trust backends to the cloud servers: server i runs
	// Backends[i%len(Backends)]. Empty runs the whole fleet on the paper's
	// own Trust-Module/TPM backend. A mixed list gives a mixed fleet where
	// a property can be attestable on one server and unattestable (V_fail)
	// on its neighbor.
	Backends []driver.Backend
	// StaleFirmware lists sev-snp server names provisioned with a
	// rolled-back platform security version (TCB), so their startup
	// appraisals fail on platform version even though the launch
	// measurement matches.
	StaleFirmware map[string]bool
	// MinTCB is the fleet-minimum platform security version the appraisers
	// enforce on sev-snp evidence. Zero applies the current TCB.
	MinTCB driver.TCBVersion
	// Policy overrides the controller's response policy.
	Policy map[properties.Property]controller.ResponseKind
	// SchedConfig overrides the hypervisor scheduler on every server
	// (ablation benches disable BOOST here).
	SchedConfig *xen.Config
	// Capacity overrides the per-server allocatable resources.
	Capacity server.Capacity
	// Network selects the transport. nil assembles the cloud on an
	// in-memory network; rpc.TCPNetwork{} runs the same entities over real
	// loopback TCP (used by cmd/monatt-cloud and examples/distributed).
	Network rpc.Network
	// LedgerDir persists the evidence ledger under this directory so an
	// auditor can replay the chain after the run (cmd/monatt-ledger).
	// Empty keeps the ledger in process memory.
	LedgerDir string
	// CallTimeout bounds each RPC attempt (real time) on every
	// fault-tolerant client in the testbed: customer → controller,
	// controller → attestation servers/cloud servers, attestation servers →
	// cloud servers. 0 applies the rpc default (30s).
	CallTimeout time.Duration
	// Retry tunes those clients' retry loops.
	Retry rpc.RetryPolicy
	// Breaker tunes their per-peer circuit breakers.
	Breaker rpc.BreakerPolicy
	// Periodic tunes every Attestation Server's periodic monitoring engine
	// (worker pool, per-server in-flight cap, result buffer bound).
	Periodic attestsrv.PeriodicConfig
	// SpanCapacity bounds the shared span store (0 = obs default).
	SpanCapacity int
	// ReattestEvery, when positive, makes the controller's reconcile loop
	// periodically re-attest every active VM's provisioned properties.
	ReattestEvery time.Duration
	// FailPoint, when set, is consulted at the controller's named crash
	// points (crash injection for the recovery tests). RestartController
	// builds the replacement controller without it, like a fresh process.
	FailPoint func(point string) bool
	// Resume lets the Attestation Servers cache secchan resumption tickets
	// for their cloud-server connections, so a redial after a drop skips
	// the asymmetric handshake (cmd/monatt-cloud -resume).
	Resume bool
	// BatchVerify routes the Attestation Servers' evidence and certificate
	// signature checks through a shared group-commit BatchVerifier
	// (cmd/monatt-cloud -batch-verify).
	BatchVerify bool
}

// Testbed is the assembled cloud.
type Testbed struct {
	Clock  *vclock.Clock
	Net    rpc.Network
	Lat    *latency.Model
	Images *image.Library
	PCA    *pca.PCA
	// Attest is the cluster-0 Attestation Server (the only one unless
	// Options.AttestServers > 1); AttestServers lists all of them.
	Attest        *attestsrv.Server
	AttestServers []*attestsrv.Server
	Ctrl          *controller.Controller
	Servers       map[string]*server.Server
	// Ledger is the shared evidence ledger: every appraisal, remediation,
	// launch decision and pCA issuance chains into it.
	Ledger *ledger.Ledger
	// Obs is the shared span store: every entity records its attestation
	// spans here, keyed by the trace IDs customers mint from their nonces.
	Obs *obs.Store
	// Batch is the Attestation Servers' shared signature batcher (nil
	// unless Options.BatchVerify); its Stats show what batching saved.
	Batch *cryptoutil.BatchVerifier
	// Ring is the data-plane consistent-hash ring (nil unless
	// Options.Shards): the view the Attestation Server shards enforce
	// ownership against.
	Ring *shard.Ring

	// ControllerAddr is where the nova api listens (useful with TCP).
	ControllerAddr string

	mu         sync.Mutex
	opMu       sync.Mutex // serializes kernel-driving logical operations
	directory  map[string]ed25519.PublicKey
	tamperNext bool
	nextCoVM   int
	opts       Options // retained for customer client fault-tolerance knobs

	// Assembly state retained so RestartController can rebuild the
	// controller exactly as New did (same identity, same fleet), minus the
	// failpoints — a fresh process recovering from the ledger.
	ctrlID      *cryptoutil.Identity
	attIDs      []*cryptoutil.Identity
	serverAddrs map[string]string
	attestAddrs []string

	// Ring-mode state. The controller routes against its own ring instance
	// (ctrlRing), normally mirrored join-for-join with the data-plane Ring:
	// both are built from the same seed, so identical memberships map
	// identically. SplitRing stops the mirroring, leaving the controller
	// with a stale view — the stale-routing experiments' lever.
	ctrlRing    *shard.Ring
	ringSplit   bool
	shardByName map[string]*attestsrv.Server
	caID        *cryptoutil.Identity
	certSwitch  *certifierSwitch
}

// certifierSwitch is the indirection between the cloud servers and the
// privacy CA, so RestartPCA can swap in a restarted pCA process (same
// identity, same ledger) behind the fleet's existing Certifier reference.
type certifierSwitch struct {
	mu sync.Mutex
	ca *pca.PCA
}

func (cs *certifierSwitch) Certify(req *trust.CertRequest) (*cryptoutil.Certificate, error) {
	cs.mu.Lock()
	ca := cs.ca
	cs.mu.Unlock()
	return ca.Certify(req)
}

// serverName formats the i-th cloud server's name.
func serverName(i int) string { return fmt.Sprintf("cloud-server-%d", i+1) }

// New builds and starts the testbed.
func New(opts Options) (*Testbed, error) {
	if opts.Servers <= 0 {
		opts.Servers = 3
	}
	if opts.PCPUsPerServer <= 0 {
		opts.PCPUsPerServer = 2
	}
	if opts.Capacity == (server.Capacity{}) {
		opts.Capacity = server.Capacity{VCPUs: 16, MemoryMB: 32768, DiskGB: 500}
	}
	if opts.AttestServers <= 0 {
		opts.AttestServers = 1
	}
	if opts.Shards > 0 {
		opts.AttestServers = opts.Shards
		if opts.SessionMaxUses == 0 {
			opts.SessionMaxUses = 8
		}
	}
	kernel := sim.NewKernel(opts.Seed)
	network := opts.Network
	if network == nil {
		network = rpc.NewMemNetwork()
	}
	tb := &Testbed{
		Clock:     vclock.New(kernel),
		Net:       network,
		Lat:       latency.New(opts.Seed + 1),
		Images:    image.NewLibrary(opts.Seed + 2),
		Servers:   make(map[string]*server.Server),
		Obs:       obs.NewStore(opts.SpanCapacity),
		directory: make(map[string]ed25519.PublicKey),
		opts:      opts,
	}
	listen := tb.listen

	// Ledger latency summaries run on the testbed's virtual clock so a
	// seeded run replays to identical metrics.
	led, err := ledger.Open(ledger.Options{Dir: opts.LedgerDir, Now: func() time.Time {
		return time.Unix(0, int64(tb.Clock.Now()))
	}})
	if err != nil {
		return nil, err
	}
	tb.Ledger = led

	// The pCA identity outlives pCA restarts (RestartPCA builds a fresh
	// process around the same key pair and ledger), and the servers reach
	// it through the certifierSwitch so the swap is invisible to them.
	caID, err := cryptoutil.NewIdentity("privacy-ca", rand.Reader)
	if err != nil {
		return nil, err
	}
	tb.caID = caID
	caSrv := pca.NewWithIdentity(caID)
	tb.PCA = caSrv
	tb.certSwitch = &certifierSwitch{ca: caSrv}
	if err := caSrv.SetLedger(led, tb.Clock.Now); err != nil {
		return nil, err
	}

	ctrlID := cryptoutil.MustIdentity("cloud-controller")
	tb.register("cloud-controller", ctrlID.Public())
	attIDs := make([]*cryptoutil.Identity, opts.AttestServers)
	for i := range attIDs {
		name := "attestation-server"
		if i > 0 {
			name = fmt.Sprintf("attestation-server-%d", i)
		}
		attIDs[i] = cryptoutil.MustIdentity(name)
		tb.register(name, attIDs[i].Public())
	}

	// Cloud servers.
	backendOf := tb.backendOf
	serverAddrs := make(map[string]string, opts.Servers)
	for i := 0; i < opts.Servers; i++ {
		name := serverName(i)
		cfg := server.Config{
			Name:           name,
			Clock:          tb.Clock,
			PCPUs:          opts.PCPUsPerServer,
			Capacity:       opts.Capacity,
			Certifier:      tb.certSwitch,
			Rand:           rand.Reader,
			SchedConfig:    opts.SchedConfig,
			Obs:            tb.Obs,
			Backend:        backendOf(i),
			SessionMaxUses: opts.SessionMaxUses,
		}
		if opts.TamperPlatform[name] {
			cfg.Platform = trojanedPlatform()
		}
		if opts.StaleFirmware[name] {
			cfg.TCB = sevsnp.RolledBackTCB
		}
		srv, err := server.New(cfg)
		if err != nil {
			return nil, err
		}
		tb.Servers[name] = srv
		tb.register(name, srv.Identity().Public())
		caSrv.RegisterServer(name, srv.Identity().Public())
		l, addr, err := listen("server:" + name)
		if err != nil {
			return nil, err
		}
		serverAddrs[name] = addr
		srv.Serve(l, tb.Verify)
	}

	// Attestation Servers. Cluster mode: one per cluster, each cloud server
	// registered with its cluster's appraiser only. Ring mode: every shard
	// joins the consistent-hash ring and every cloud server registers with
	// every shard, since the shard owning a VM is decided by the VM id, not
	// the host.
	if opts.Shards > 0 {
		tb.Ring = shard.NewRing(opts.Seed+3, 0)
		tb.ctrlRing = shard.NewRing(opts.Seed+3, 0)
		tb.shardByName = make(map[string]*attestsrv.Server, opts.Shards)
		for _, id := range attIDs {
			tb.Ring.Join(id.Name)
			tb.ctrlRing.Join(id.Name)
		}
	}
	attestAddrs := make([]string, opts.AttestServers)
	if opts.BatchVerify {
		// One verifier shared by every cluster: concurrent appraisals
		// coalesce even across Attestation Servers.
		tb.Batch = cryptoutil.NewBatchVerifier(0)
	}
	for i, id := range attIDs {
		as := attestsrv.New(attestsrv.Config{
			Identity:    id,
			PCAName:     caSrv.Name(),
			PCAKey:      caSrv.PublicKey(),
			Network:     tb.Net,
			Clock:       tb.Clock,
			Latency:     tb.Lat,
			Verify:      tb.Verify,
			Rand:        rand.Reader,
			Ledger:      led,
			CallTimeout: opts.CallTimeout,
			Retry:       opts.Retry,
			Breaker:     opts.Breaker,
			Periodic:    opts.Periodic,
			Obs:         tb.Obs,
			MinTCB:      opts.MinTCB,
			Batch:       tb.Batch,
			Resume:      opts.Resume,
			Ring:        tb.Ring,
		})
		tb.AttestServers = append(tb.AttestServers, as)
		if tb.shardByName != nil {
			tb.shardByName[id.Name] = as
		}
		al, addr, err := listen(id.Name)
		if err != nil {
			return nil, err
		}
		attestAddrs[i] = addr
		as.Serve(al, tb.Verify)
	}
	tb.Attest = tb.AttestServers[0]
	for i := 0; i < opts.Servers; i++ {
		name := serverName(i)
		srv := tb.Servers[name]
		b := backendOf(i)
		rec := attestsrv.ServerRecord{
			Name:        name,
			Addr:        serverAddrs[name],
			IdentityKey: srv.IdentityKey(),
			AIK:         srv.AIK(),
			Properties:  driver.AttestableProps(b),
			Backend:     b,
		}
		if opts.Shards > 0 {
			for _, as := range tb.AttestServers {
				as.RegisterServer(rec)
			}
		} else {
			tb.AttestServers[i%opts.AttestServers].RegisterServer(rec)
		}
	}

	// Cloud Controller. The construction recipe is retained on the testbed
	// (newController) so a crash/restart test can build a replacement
	// process against the same ledger and fleet.
	tb.ctrlID = ctrlID
	tb.attIDs = attIDs
	tb.serverAddrs = serverAddrs
	tb.attestAddrs = attestAddrs
	tb.Ctrl = tb.newController(opts.FailPoint)
	cl, ctrlAddr, err := listen("cloud-controller")
	if err != nil {
		return nil, err
	}
	tb.ControllerAddr = ctrlAddr
	// The nova api endpoint outlives controller restarts: the listener
	// dispatches to whichever controller currently backs the testbed, so
	// customers keep their address (and the controller its identity)
	// across a crash.
	go rpc.Serve(cl, secchan.Config{Identity: ctrlID, Verify: tb.Verify, Rand: rand.Reader},
		func(peer rpc.Peer, method string, body []byte) ([]byte, error) {
			tb.mu.Lock()
			ctrl := tb.Ctrl
			tb.mu.Unlock()
			return ctrl.Handler()(peer, method, body)
		})
	return tb, nil
}

// listen binds an endpoint: symbolic names on the in-memory network,
// OS-assigned loopback ports on TCP. Wrappers like rpc.FaultNetwork are
// unwrapped so addressing follows the transport underneath.
func (tb *Testbed) listen(role string) (net.Listener, string, error) {
	base := tb.Net
	for {
		w, ok := base.(interface{ Inner() rpc.Network })
		if !ok {
			break
		}
		base = w.Inner()
	}
	bind := role
	if _, isMem := base.(*rpc.MemNetwork); !isMem {
		bind = "127.0.0.1:0"
	}
	l, err := tb.Net.Listen(bind)
	if err != nil {
		return nil, "", err
	}
	return l, l.Addr().String(), nil
}

// backendOf returns the trust backend assigned to the i-th cloud server.
func (tb *Testbed) backendOf(i int) driver.Backend {
	if len(tb.opts.Backends) == 0 {
		return driver.BackendTPM
	}
	return tb.opts.Backends[i%len(tb.opts.Backends)]
}

// newController assembles a cloud controller against the testbed's fleet:
// same identity, network, ledger, and server registry every time. fp is
// the crash-injection hook; a restarted controller gets none, like a
// freshly exec'd process.
func (tb *Testbed) newController(fp func(string) bool) *controller.Controller {
	backendOf := tb.backendOf
	c := controller.New(controller.Config{
		Identity:      tb.ctrlID,
		Network:       tb.Net,
		Clock:         tb.Clock,
		Latency:       tb.Lat,
		Images:        tb.Images,
		Verify:        tb.Verify,
		Rand:          rand.Reader,
		AttestAddrs:   tb.attestAddrs,
		Policy:        tb.opts.Policy,
		AutoRespond:   true,
		ImageTamper:   tb.imageTamper,
		Serialize:     &tb.opMu,
		Ledger:        tb.Ledger,
		CallTimeout:   tb.opts.CallTimeout,
		Retry:         tb.opts.Retry,
		Breaker:       tb.opts.Breaker,
		Obs:           tb.Obs,
		ReattestEvery: tb.opts.ReattestEvery,
		FailPoint:     fp,
		Ring:          tb.ctrlRing,
	})
	if tb.ctrlRing != nil {
		for i, id := range tb.attIDs {
			c.RegisterAttestShard(id.Name, tb.attestAddrs[i], id.Public())
		}
	} else {
		for i, id := range tb.attIDs {
			c.SetAttestKeyFor(i, id.Public())
		}
	}
	for i := 0; i < tb.opts.Servers; i++ {
		name := serverName(i)
		c.RegisterServer(controller.ServerEntry{
			Name:     name,
			Addr:     tb.serverAddrs[name],
			Capacity: tb.opts.Capacity,
			Props:    driver.AttestableProps(backendOf(i)),
			Backend:  string(backendOf(i)),
			Cluster:  i % tb.opts.AttestServers,
		})
	}
	return c
}

// RestartController simulates a controller crash and recovery: the old
// controller's in-memory state is abandoned, a fresh controller (same
// identity, no failpoints) is swapped behind the nova api endpoint, and
// its ledger replay reconverges the fleet. Returns the replay error, if
// any; the testbed always points at the new controller afterwards.
func (tb *Testbed) RestartController() error {
	tb.opMu.Lock()
	defer tb.opMu.Unlock()
	ctrl := tb.newController(nil)
	tb.mu.Lock()
	tb.Ctrl = ctrl
	tb.mu.Unlock()
	return ctrl.Recover()
}

// newShard assembles one ring-mode Attestation Server against the
// testbed's fleet (same recipe New uses for the initial shards).
func (tb *Testbed) newShard(id *cryptoutil.Identity) *attestsrv.Server {
	return attestsrv.New(attestsrv.Config{
		Identity:    id,
		PCAName:     tb.PCA.Name(),
		PCAKey:      tb.PCA.PublicKey(),
		Network:     tb.Net,
		Clock:       tb.Clock,
		Latency:     tb.Lat,
		Verify:      tb.Verify,
		Rand:        rand.Reader,
		Ledger:      tb.Ledger,
		CallTimeout: tb.opts.CallTimeout,
		Retry:       tb.opts.Retry,
		Breaker:     tb.opts.Breaker,
		Periodic:    tb.opts.Periodic,
		Obs:         tb.Obs,
		MinTCB:      tb.opts.MinTCB,
		Batch:       tb.Batch,
		Resume:      tb.opts.Resume,
		Ring:        tb.Ring,
	})
}

// JoinShard grows the ring-mode attestation plane by one shard: a fresh
// Attestation Server joins the ring, the controller learns its endpoint and
// report-signing key, and the ~1/N of the fleet the ring now assigns to it
// is handed off — periodic tasks keep their deadlines and buffered results,
// nothing is lost or double-armed. Returns the new shard's name and how
// many periodic tasks moved.
func (tb *Testbed) JoinShard() (string, int, error) {
	tb.opMu.Lock()
	defer tb.opMu.Unlock()
	if tb.Ring == nil {
		return "", 0, fmt.Errorf("cloudsim: not a ring-mode testbed (set Options.Shards)")
	}
	id := cryptoutil.MustIdentity(fmt.Sprintf("attestation-server-%d", len(tb.attIDs)))
	tb.register(id.Name, id.Public())
	as := tb.newShard(id)
	l, addr, err := tb.listen(id.Name)
	if err != nil {
		return "", 0, err
	}
	as.Serve(l, tb.Verify)
	for i := 0; i < tb.opts.Servers; i++ {
		name := serverName(i)
		srv := tb.Servers[name]
		b := tb.backendOf(i)
		as.RegisterServer(attestsrv.ServerRecord{
			Name:        name,
			Addr:        tb.serverAddrs[name],
			IdentityKey: srv.IdentityKey(),
			AIK:         srv.AIK(),
			Properties:  driver.AttestableProps(b),
			Backend:     b,
		})
	}
	tb.mu.Lock()
	tb.AttestServers = append(tb.AttestServers, as)
	tb.shardByName[id.Name] = as
	tb.attIDs = append(tb.attIDs, id)
	tb.attestAddrs = append(tb.attestAddrs, addr)
	ctrl := tb.Ctrl
	tb.mu.Unlock()
	ctrl.RegisterAttestShard(id.Name, addr, id.Public())
	tb.Ring.Join(id.Name)
	if !tb.ringSplit {
		tb.ctrlRing.Join(id.Name)
	}
	return id.Name, tb.rebalance(), nil
}

// LeaveShard drains a shard out of the ring: its entire ownership (~1/N of
// the fleet) is exported to the shards the ring now names. The process
// keeps serving — a straggler request that still reaches it is refused
// with a wrong-shard redirect, never answered from dead state. Returns how
// many periodic tasks moved.
func (tb *Testbed) LeaveShard(name string) (int, error) {
	tb.opMu.Lock()
	defer tb.opMu.Unlock()
	if tb.Ring == nil {
		return 0, fmt.Errorf("cloudsim: not a ring-mode testbed (set Options.Shards)")
	}
	if _, ok := tb.shardByName[name]; !ok {
		return 0, fmt.Errorf("cloudsim: no shard %q", name)
	}
	if tb.Ring.Size() <= 1 {
		return 0, fmt.Errorf("cloudsim: cannot drain the last shard")
	}
	tb.Ring.Leave(name)
	if !tb.ringSplit {
		tb.ctrlRing.Leave(name)
	}
	return tb.rebalance(), nil
}

// rebalance converges shard ownership after a ring change: every shard
// exports the VM records and periodic tasks it no longer owns, and each
// bundle lands on the shard the ring now names. Import is idempotent by
// (vid, property), so a re-run moves nothing twice. Returns the number of
// periodic tasks re-armed on new owners.
func (tb *Testbed) rebalance() int {
	names := make([]string, 0, len(tb.shardByName))
	for n := range tb.shardByName {
		names = append(names, n)
	}
	sort.Strings(names)
	inbound := make(map[string]*attestsrv.ShardState)
	to := func(owner string) *attestsrv.ShardState {
		st := inbound[owner]
		if st == nil {
			st = &attestsrv.ShardState{}
			inbound[owner] = st
		}
		return st
	}
	for _, n := range names {
		st := tb.shardByName[n].ExportNotOwned()
		for _, rec := range st.VMs {
			if owner, _, ok := tb.Ring.Lookup(rec.Vid); ok {
				to(owner).VMs = append(to(owner).VMs, rec)
			}
		}
		for _, t := range st.Tasks {
			if owner, _, ok := tb.Ring.Lookup(t.Vid); ok {
				to(owner).Tasks = append(to(owner).Tasks, t)
			}
		}
	}
	moved := 0
	for _, n := range names {
		if in := inbound[n]; in != nil {
			moved += tb.shardByName[n].ImportShardState(*in)
		}
	}
	return moved
}

// SplitRing freezes the controller's ring view: subsequent JoinShard and
// LeaveShard calls move only the data-plane ring, so the controller routes
// on stale membership and must recover through the shards' wrong-shard
// redirects — the deterministic way to exercise that path.
func (tb *Testbed) SplitRing() {
	tb.opMu.Lock()
	tb.ringSplit = true
	tb.opMu.Unlock()
}

// HealRing reconverges the controller's ring view with the data plane and
// resumes mirroring.
func (tb *Testbed) HealRing() {
	tb.opMu.Lock()
	defer tb.opMu.Unlock()
	tb.ringSplit = false
	if tb.Ring == nil {
		return
	}
	have := make(map[string]bool)
	for _, n := range tb.ctrlRing.Nodes() {
		have[n] = true
	}
	want := make(map[string]bool)
	for _, n := range tb.Ring.Nodes() {
		want[n] = true
		if !have[n] {
			tb.ctrlRing.Join(n)
		}
	}
	for n := range have {
		if !want[n] {
			tb.ctrlRing.Leave(n)
		}
	}
}

// RestartPCA simulates a privacy-CA crash and recovery: a fresh pCA
// process around the same identity key and evidence ledger is swapped in
// behind the fleet's Certifier reference. Ledger replay restores the
// serial-number high-water mark, so certificates issued after the restart
// continue the strictly increasing sequence instead of reusing serials.
func (tb *Testbed) RestartPCA() error {
	tb.opMu.Lock()
	defer tb.opMu.Unlock()
	ca := pca.NewWithIdentity(tb.caID)
	if err := ca.SetLedger(tb.Ledger, tb.Clock.Now); err != nil {
		return err
	}
	for name, srv := range tb.Servers {
		ca.RegisterServer(name, srv.Identity().Public())
	}
	tb.certSwitch.mu.Lock()
	tb.certSwitch.ca = ca
	tb.certSwitch.mu.Unlock()
	tb.mu.Lock()
	tb.PCA = ca
	tb.mu.Unlock()
	return nil
}

// trojanedPlatform returns a platform stack with a modified hypervisor, as
// measured at (compromised) server boot.
func trojanedPlatform() []monitor.Component {
	platform := monitor.StandardPlatform()
	for i := range platform {
		if platform[i].Name == "hypervisor" {
			platform[i].Data = append(platform[i].Data, []byte(" +rootkit")...)
		}
	}
	return platform
}

func (tb *Testbed) register(name string, key ed25519.PublicKey) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.directory[name] = append(ed25519.PublicKey(nil), key...)
}

// Verify is the testbed's identity registry: every entity authenticates
// channel peers against it.
func (tb *Testbed) Verify(name string, key ed25519.PublicKey) error {
	tb.mu.Lock()
	want, ok := tb.directory[name]
	tb.mu.Unlock()
	if !ok {
		return fmt.Errorf("cloudsim: unknown peer %q", name)
	}
	if !cryptoutil.KeyEqual(want, key) {
		return fmt.Errorf("cloudsim: identity key mismatch for %q", name)
	}
	return nil
}

// CorruptNextImage makes the next launch stream a tampered image (the
// startup-integrity failure injection).
func (tb *Testbed) CorruptNextImage() {
	tb.mu.Lock()
	tb.tamperNext = true
	tb.mu.Unlock()
}

func (tb *Testbed) imageTamper(name string, data []byte) []byte {
	tb.mu.Lock()
	tamper := tb.tamperNext
	tb.tamperNext = false
	tb.mu.Unlock()
	if !tamper {
		return data
	}
	out := append([]byte(nil), data...)
	if len(out) > 0 {
		out[0] ^= 0xFF
	}
	return out
}

// RunFor advances virtual time by d, executing periodic attestations as
// they come due. It serializes against in-flight nova api requests: the
// shared discrete-event kernel admits one logical driver at a time. Each
// pass drives the same concurrent engine the real-time daemon uses: due
// appraisals of one batch run in parallel on the engine's worker pool and
// the pass waits for the batch, so the deterministic virtual-clock loop
// still observes every deadline exactly once.
func (tb *Testbed) RunFor(d time.Duration) {
	tb.opMu.Lock()
	defer tb.opMu.Unlock()
	end := tb.Clock.Now() + d
	for {
		ctrl := tb.ctrl()
		ctrl.ReconcileNow()
		due, ok := tb.nextPeriodicDue()
		if rDue, rOK := ctrl.NextReconcileDue(); rOK && (!ok || rDue < due) {
			due, ok = rDue, true
		}
		if !ok || due > end {
			break
		}
		if now := tb.Clock.Now(); due > now {
			tb.Clock.Advance(due - now)
		}
		for _, as := range tb.AttestServers {
			as.RunDue()
		}
	}
	if now := tb.Clock.Now(); now < end {
		tb.Clock.Advance(end - now)
	}
	tb.ctrl().ReconcileNow()
}

// ctrl returns the currently installed controller; it changes across
// RestartController, so kernel-driving loops re-read it each step.
func (tb *Testbed) ctrl() *controller.Controller {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.Ctrl
}

// Health assembles the per-entity health report for the operator /healthz
// endpoint: the controller and every Attestation Server with their breaker
// states, plus one liveness row per cloud server.
func (tb *Testbed) Health() []obs.EntityHealth {
	out := []obs.EntityHealth{tb.Ctrl.Health()}
	for _, as := range tb.AttestServers {
		out = append(out, as.Health())
	}
	names := make([]string, 0, len(tb.Servers))
	for name := range tb.Servers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, obs.EntityHealth{Entity: name, Alive: true})
	}
	return out
}

// nextPeriodicDue returns the earliest periodic deadline across all
// attestation clusters.
func (tb *Testbed) nextPeriodicDue() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, as := range tb.AttestServers {
		if due, ok := as.NextDue(); ok && (!found || due < min) {
			min = due
			found = true
		}
	}
	return min, found
}

// ServerOf returns the server object hosting the VM.
func (tb *Testbed) ServerOf(vid string) (*server.Server, error) {
	name, err := tb.Ctrl.VMServer(vid)
	if err != nil {
		return nil, err
	}
	srv, ok := tb.Servers[name]
	if !ok {
		return nil, fmt.Errorf("cloudsim: controller names unknown server %q", name)
	}
	return srv, nil
}

// GuestOf returns the guest OS inside a hosted VM (for infection).
func (tb *Testbed) GuestOf(vid string) (*guest.OS, error) {
	srv, err := tb.ServerOf(vid)
	if err != nil {
		return nil, err
	}
	return srv.Guest(vid)
}

// LaunchCoResident places a VM directly on a named server (bypassing the
// scheduler) — how the experiments position attacker VMs next to victims.
func (tb *Testbed) LaunchCoResident(serverName, workloadName string, pin int) (string, error) {
	srv, ok := tb.Servers[serverName]
	if !ok {
		return "", fmt.Errorf("cloudsim: no server %q", serverName)
	}
	tb.mu.Lock()
	tb.nextCoVM++
	vid := fmt.Sprintf("covm-%03d", tb.nextCoVM)
	tb.mu.Unlock()
	img, err := tb.Images.Get("cirros")
	if err != nil {
		return "", err
	}
	flavor, err := image.FlavorByName("small")
	if err != nil {
		return "", err
	}
	if workloadName == "attack:cpu-starver" {
		flavor.VCPUs = 2
	}
	err = srv.Launch(server.LaunchSpec{
		Vid:         vid,
		ImageName:   "cirros",
		ImageDigest: img.Digest(),
		Flavor:      flavor,
		Workload:    workloadName,
		Pin:         pin,
	})
	if err != nil {
		return "", err
	}
	return vid, nil
}

// LaunchRFACoResident places a Resource-Freeing attacker next to a
// cached-server victim on its host.
func (tb *Testbed) LaunchRFACoResident(targetVid string, pin int) (string, error) {
	srv, err := tb.ServerOf(targetVid)
	if err != nil {
		return "", err
	}
	tb.mu.Lock()
	tb.nextCoVM++
	vid := fmt.Sprintf("covm-%03d", tb.nextCoVM)
	tb.mu.Unlock()
	img, err := tb.Images.Get("cirros")
	if err != nil {
		return "", err
	}
	flavor, err := image.FlavorByName("small")
	if err != nil {
		return "", err
	}
	if err := srv.LaunchRFA(vid, targetVid, flavor, pin, img.Digest()); err != nil {
		return "", err
	}
	return vid, nil
}

// Customer is a cloud customer: the protocol initiator and end-verifier.
type Customer struct {
	id       *cryptoutil.Identity
	client   *rpc.ReconnectClient
	ctrlKey  ed25519.PublicKey
	opBudget time.Duration
}

// opCtx bounds one customer exchange end to end (all retry attempts plus
// backoff), so a wedged or partitioned controller fails the call instead
// of hanging the customer forever.
func (cu *Customer) opCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), cu.opBudget)
}

// NewCustomer registers a fresh customer identity and connects it to the
// controller's nova api.
func (tb *Testbed) NewCustomer(name string) (*Customer, error) {
	return tb.NewCustomerWithIdentity(cryptoutil.MustIdentity(name))
}

// NewCustomerWithIdentity registers an existing identity (e.g. one whose
// seed was provisioned to an external CLI) and connects it.
func (tb *Testbed) NewCustomerWithIdentity(id *cryptoutil.Identity) (*Customer, error) {
	tb.register(id.Name, id.Public())
	client := rpc.NewReconnectClient(rpc.ClientConfig{
		Network:     tb.Net,
		Addr:        tb.ControllerAddr,
		Peer:        "cloud-controller",
		Secchan:     secchan.Config{Identity: id, Verify: tb.Verify},
		Retry:       tb.opts.Retry,
		Breaker:     tb.opts.Breaker,
		CallTimeout: tb.opts.CallTimeout,
	})
	per := tb.opts.CallTimeout
	if per <= 0 {
		per = 30 * time.Second
	}
	attempts := tb.opts.Retry.MaxAttempts
	if attempts <= 0 {
		attempts = 4 // rpc default
	}
	cu := &Customer{id: id, client: client, ctrlKey: tb.Ctrl.PublicKey(),
		opBudget: time.Duration(attempts)*per + 5*time.Second}
	ctx, cancel := cu.opCtx()
	defer cancel()
	if err := client.Connect(ctx); err != nil {
		client.Close()
		return nil, err
	}
	return cu, nil
}

// RegisterIdentity adds an externally provisioned identity (like a CLI
// customer's) to the trust directory so its channels authenticate.
func (tb *Testbed) RegisterIdentity(name string, pub ed25519.PublicKey) {
	tb.register(name, pub)
}

// Launch requests a VM. The idempotency key lets the request be retried
// across connection failures without double-launching.
func (cu *Customer) Launch(req controller.LaunchRequest) (controller.LaunchResult, error) {
	req.Owner = cu.id.Name
	var res controller.LaunchResult
	ctx, cancel := cu.opCtx()
	defer cancel()
	err := cu.client.CallIdem(ctx, controller.MethodLaunchVM, rpc.NewIdemKey(), req, &res)
	return res, err
}

// Attest issues a one-time attestation and end-verifies the report chain:
// the customer checks the controller's signature, its own nonce N1, and the
// quote Q1 before trusting the verdict. A stale verdict (degraded mode) is
// surfaced like a fresh one; use AttestReport for the staleness flags.
func (cu *Customer) Attest(vid string, p properties.Property) (properties.Verdict, error) {
	rep, err := cu.AttestReport(vid, p)
	if err != nil {
		return properties.Verdict{}, err
	}
	return rep.Verdict, nil
}

// AttestReport is Attest returning the full verified CustomerReport
// (including the Stale/Age degradation flags). N1 is regenerated on every
// retry attempt so the controller's replay cache never rejects a re-issue.
func (cu *Customer) AttestReport(vid string, p properties.Property) (*wire.CustomerReport, error) {
	method := controller.MethodRuntimeAttestCurrent
	if p == properties.StartupIntegrity {
		method = controller.MethodStartupAttestCurrent
	}
	var n1 cryptoutil.Nonce
	var rep wire.CustomerReport
	ctx, cancel := cu.opCtx()
	defer cancel()
	if err := cu.client.CallFresh(ctx, method, func(int) (any, error) {
		n1 = cryptoutil.MustNonce()
		// The trace ID is minted from the request nonce: deterministic
		// under the seeded RNG, and fresh per retry attempt like N1 itself.
		return wire.AttestRequest{Vid: vid, Prop: p, N1: n1, Trace: obs.MintTrace(n1[:])}, nil
	}, &rep); err != nil {
		return nil, err
	}
	if err := wire.VerifyCustomerReport(&rep, cu.ctrlKey, vid, p, n1); err != nil {
		return nil, fmt.Errorf("customer: rejecting report: %w", err)
	}
	return &rep, nil
}

// StartPeriodic arms periodic attestation (runtime_attest_periodic).
func (cu *Customer) StartPeriodic(vid string, p properties.Property, freq time.Duration) error {
	n1 := cryptoutil.MustNonce()
	ctx, cancel := cu.opCtx()
	defer cancel()
	return cu.client.CallIdem(ctx, controller.MethodRuntimeAttestPeriodic, rpc.NewIdemKey(),
		wire.PeriodicRequest{Vid: vid, Prop: p, Freq: freq, N1: n1, Trace: obs.MintTrace(n1[:])}, nil)
}

// StartPeriodicRandom arms periodic attestation at random intervals around
// the given mean frequency, so a co-resident attacker cannot predict the
// measurement windows.
func (cu *Customer) StartPeriodicRandom(vid string, p properties.Property, freq time.Duration) error {
	n1 := cryptoutil.MustNonce()
	ctx, cancel := cu.opCtx()
	defer cancel()
	return cu.client.CallIdem(ctx, controller.MethodRuntimeAttestPeriodic, rpc.NewIdemKey(),
		wire.PeriodicRequest{Vid: vid, Prop: p, Freq: freq, Random: true, N1: n1, Trace: obs.MintTrace(n1[:])}, nil)
}

// FetchPeriodic drains and end-verifies accumulated periodic results.
func (cu *Customer) FetchPeriodic(vid string, p properties.Property) ([]properties.Verdict, error) {
	return cu.periodicCall(controller.MethodFetchPeriodic, vid, p)
}

// StopPeriodic stops periodic attestation (stop_attest_periodic) and
// returns any undelivered verified results.
func (cu *Customer) StopPeriodic(vid string, p properties.Property) ([]properties.Verdict, error) {
	return cu.periodicCall(controller.MethodStopAttestPeriodic, vid, p)
}

func (cu *Customer) periodicCall(method, vid string, p properties.Property) ([]properties.Verdict, error) {
	n1 := cryptoutil.MustNonce()
	var reps []*wire.CustomerReport
	// Fetch/stop drain results controller-side; the idempotency key makes a
	// retried drain replay the recorded batch instead of losing it.
	ctx, cancel := cu.opCtx()
	defer cancel()
	if err := cu.client.CallIdem(ctx, method, rpc.NewIdemKey(),
		wire.StopPeriodicRequest{Vid: vid, Prop: p, N1: n1, Trace: obs.MintTrace(n1[:])}, &reps); err != nil {
		return nil, err
	}
	var out []properties.Verdict
	for _, rep := range reps {
		if err := wire.VerifyCustomerReport(rep, cu.ctrlKey, vid, p, n1); err != nil {
			return nil, fmt.Errorf("customer: rejecting periodic report: %w", err)
		}
		out = append(out, rep.Verdict)
	}
	return out, nil
}

// Status fetches the desired/observed state join the controller keeps for
// one of the customer's VMs: lifecycle state, placement, the teardown
// finalizer and the typed reconcile conditions.
func (cu *Customer) Status(vid string) (wire.VMStatus, error) {
	var st wire.VMStatus
	ctx, cancel := cu.opCtx()
	defer cancel()
	err := cu.client.CallCtx(ctx, controller.MethodVMStatus, struct{ Vid string }{vid}, &st)
	return st, err
}

// Terminate releases the VM (idempotency-keyed: never executed twice).
func (cu *Customer) Terminate(vid string) error {
	ctx, cancel := cu.opCtx()
	defer cancel()
	return cu.client.CallIdem(ctx, controller.MethodTerminateVM, rpc.NewIdemKey(),
		struct{ Vid string }{vid}, nil)
}

// Close tears down the customer's channel.
func (cu *Customer) Close() error { return cu.client.Close() }
