package cloudsim

import (
	"testing"
	"time"

	"cloudmonatt/internal/properties"
)

// shardTaskKeys maps every armed periodic (vid, prop) key to the shard
// holding it, failing on duplicates — one stream must live on exactly one
// shard.
func shardTaskKeys(t *testing.T, tb *Testbed) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, as := range tb.AttestServers {
		for _, k := range as.PeriodicTaskKeys() {
			if prev, dup := out[k]; dup {
				t.Fatalf("task %q double-armed on %s and %s", k, prev, as.Shard())
			}
			out[k] = as.Shard()
		}
	}
	return out
}

// TestShardChurnRebalanceMovesFraction grows and shrinks the sharded
// attestation plane under live periodic load: a join moves roughly 1/N of
// the armed streams to the new shard (exactly the ones the ring reassigns),
// a leave drains the shard completely, and across both handoffs no stream
// is lost, none is double-armed, and fetches keep verifying — including
// reports buffered on the old owner before the move.
func TestShardChurnRebalanceMovesFraction(t *testing.T) {
	tb := newTB(t, Options{Seed: 11, Shards: 2, Servers: 6})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	const vms = 12
	vids := make([]string, 0, vms)
	for i := 0; i < vms; i++ {
		res := launch(t, cu, basicLaunch())
		vids = append(vids, res.Vid)
		if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Let every stream buffer at least one report on its original owner, so
	// the handoff has to carry old-shard-signed results too.
	tb.RunFor(6 * time.Second)
	before := shardTaskKeys(t, tb)
	if len(before) != vms {
		t.Fatalf("armed %d streams, found %d", vms, len(before))
	}

	name, moved, err := tb.JoinShard()
	if err != nil {
		t.Fatal(err)
	}
	after := shardTaskKeys(t, tb)
	if len(after) != vms {
		t.Fatalf("join lost streams: %d -> %d", len(before), len(after))
	}
	wantMoved := 0
	for k, owner := range after {
		vid := k[:len(k)-len("|"+string(properties.CPUAvailability))]
		wantOwner, _, _ := tb.Ring.Lookup(vid)
		if owner != wantOwner {
			t.Fatalf("stream %q on %s, ring owns it to %s", k, owner, wantOwner)
		}
		if owner == name {
			wantMoved++
			if before[k] == name {
				t.Fatalf("stream %q already on the new shard before it joined", k)
			}
		} else if before[k] != owner {
			t.Fatalf("stream %q moved %s -> %s without changing ownership", k, before[k], owner)
		}
	}
	if moved != wantMoved {
		t.Fatalf("JoinShard moved %d tasks, ring reassigned %d", moved, wantMoved)
	}
	if moved == 0 || moved == vms {
		t.Fatalf("join moved %d of %d streams — want a proper fraction", moved, vms)
	}

	// Streams keep producing on their new owners, and fetch verifies both
	// eras of each stream (pre-handoff reports are signed by the old shard).
	tb.RunFor(6 * time.Second)
	for _, vid := range vids {
		verdicts, err := cu.FetchPeriodic(vid, properties.CPUAvailability)
		if err != nil {
			t.Fatalf("fetch %s after join: %v", vid, err)
		}
		if len(verdicts) < 2 {
			t.Fatalf("stream %s stalled across join: %d verdicts", vid, len(verdicts))
		}
	}

	// Drain the shard back out: everything it owned moves to survivors.
	owned := 0
	for _, owner := range after {
		if owner == name {
			owned++
		}
	}
	left, err := tb.LeaveShard(name)
	if err != nil {
		t.Fatal(err)
	}
	if left != owned {
		t.Fatalf("LeaveShard moved %d tasks, shard owned %d", left, owned)
	}
	final := shardTaskKeys(t, tb)
	if len(final) != vms {
		t.Fatalf("leave lost streams: %d -> %d", vms, len(final))
	}
	for k, owner := range final {
		if owner == name {
			t.Fatalf("stream %q still on departed shard %s", k, name)
		}
	}
	tb.RunFor(6 * time.Second)
	for _, vid := range vids {
		if verdicts, err := cu.FetchPeriodic(vid, properties.CPUAvailability); err != nil || len(verdicts) < 1 {
			t.Fatalf("stream %s broken after leave: %d verdicts, err=%v", vid, len(verdicts), err)
		}
	}
}

// TestShardStaleRingRedirectRecovers wedges the controller on a stale ring
// view (SplitRing freezes it, then a shard joins the data plane) and
// checks the redirect protocol carries every request to the true owner:
// attestations and periodic drains keep succeeding, the misrouted shards
// refuse with typed wrong-shard errors, and the controller follows them.
func TestShardStaleRingRedirectRecovers(t *testing.T) {
	tb := newTB(t, Options{Seed: 13, Shards: 2, Servers: 4})
	cu, err := tb.NewCustomer("carol")
	if err != nil {
		t.Fatal(err)
	}
	const vms = 8
	vids := make([]string, 0, vms)
	for i := 0; i < vms; i++ {
		res := launch(t, cu, basicLaunch())
		vids = append(vids, res.Vid)
		if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	tb.SplitRing()
	name, moved, err := tb.JoinShard()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatalf("join reassigned nothing to %s — test needs movement to exercise redirects", name)
	}

	// Every one-shot attestation must succeed even though the controller
	// still routes some VMs to shards that no longer own them.
	for _, vid := range vids {
		v, err := cu.Attest(vid, properties.RuntimeIntegrity)
		if err != nil {
			t.Fatalf("attest %s with stale controller ring: %v", vid, err)
		}
		if !v.Healthy {
			t.Fatalf("attest %s: unhealthy verdict %+v", vid, v)
		}
	}
	// Periodic streams moved to the new shard must still drain through the
	// stale route.
	tb.RunFor(6 * time.Second)
	for _, vid := range vids {
		if verdicts, err := cu.FetchPeriodic(vid, properties.CPUAvailability); err != nil || len(verdicts) == 0 {
			t.Fatalf("periodic drain %s with stale ring: %d verdicts, err=%v", vid, len(verdicts), err)
		}
	}

	if n := tb.Ctrl.Metrics().Counter("controller/wrong-shard-redirects").Value(); n == 0 {
		t.Fatal("controller followed no wrong-shard redirects — stale routing never happened")
	}
	rejections := int64(0)
	for _, as := range tb.AttestServers {
		rejections += as.Metrics().Counter("attestsrv/wrong-shard-rejections").Value()
	}
	if rejections == 0 {
		t.Fatal("no shard refused a misrouted request")
	}

	// Healing the controller's view ends the redirecting.
	tb.HealRing()
	healed := tb.Ctrl.Metrics().Counter("controller/wrong-shard-redirects").Value()
	for _, vid := range vids {
		if _, err := cu.Attest(vid, properties.RuntimeIntegrity); err != nil {
			t.Fatalf("attest %s after heal: %v", vid, err)
		}
	}
	if n := tb.Ctrl.Metrics().Counter("controller/wrong-shard-redirects").Value(); n != healed {
		t.Fatalf("redirects still happening after heal: %d -> %d", healed, n)
	}
}
