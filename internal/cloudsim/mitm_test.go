package cloudsim

import (
	"bytes"
	"testing"
	"time"

	"cloudmonatt/internal/dolevyao"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
)

// TestMITMOnTestbedPassive puts a Dolev-Yao attacker on every link of the
// assembled cloud and runs a full launch + attestation. The protocol must
// complete (the attacker is passive) and nothing security-relevant may
// appear in clear on any wire.
func TestMITMOnTestbedPassive(t *testing.T) {
	tb := newTB(t, Options{Seed: 90})
	atk := &dolevyao.Attacker{}
	tb.Net.(*rpc.MemNetwork).Intercept = atk.Intercept

	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(time.Second)
	v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("attestation under passive MITM: %v", v)
	}

	obs := atk.ObservedPayloads()
	if len(obs) == 0 {
		t.Fatal("attacker observed nothing — interception broken")
	}
	// Note: channel-endpoint *names* legitimately appear in handshakes (like
	// TLS SNI / the IP header — a network attacker sees who talks to whom
	// regardless). The anonymity property the paper cares about is that the
	// attestation *payload* — above all the pCA certificate the customer-
	// facing chain carries — does not name the host; that is covered by
	// TestCertificateIsAnonymous and the secrecy checks below.
	for _, secret := range [][]byte{
		[]byte(res.Vid),             // VM identifier
		[]byte("runtime-integrity"), // requested property P
		[]byte("HEALTHY"),           // attestation report R
		[]byte("sshd"),              // measured task list M
		[]byte("launch_vm"),         // API activity
	} {
		if bytes.Contains(obs, secret) {
			t.Errorf("%q visible in clear on the wire", secret)
		}
	}
}

// TestMITMOnTestbedActive tampers with protocol frames on the wire; the
// operation must fail closed — never a forged success.
func TestMITMOnTestbedActive(t *testing.T) {
	// Tamper with every data frame (index >= 1, past the hello_s handshake
	// frame) flowing server→client on every connection — including the
	// fresh connections the fault-tolerant clients open on retry.
	atk := &dolevyao.Attacker{S2C: dolevyao.TamperFrom(1)}
	tb := newTB(t, Options{Seed: 91})
	tb.Net.(*rpc.MemNetwork).Intercept = atk.Intercept

	cu, err := tb.NewCustomer("alice")
	if err != nil {
		// The customer's own handshake may already fail: fail closed is fine.
		return
	}
	res, err := cu.Launch(basicLaunch())
	if err == nil && res.OK {
		t.Fatal("launch reported success although every reply was tampered with")
	}
}
