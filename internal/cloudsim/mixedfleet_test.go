package cloudsim

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/trust/driver"
)

// mixedFleet assigns one backend per server: cloud-server-1 = tpm,
// cloud-server-2 = vtpm, cloud-server-3 = sev-snp.
func mixedFleet(extra Options) Options {
	extra.Servers = 3
	extra.Backends = []driver.Backend{driver.BackendTPM, driver.BackendVTPM, driver.BackendSEVSNP}
	return extra
}

// pinnedLaunch requests explicit placement on a named server — how the
// mixed-fleet scenarios position a VM on a backend that cannot attest
// every requested property.
func pinnedLaunch(server string, props ...properties.Property) controller.LaunchRequest {
	req := basicLaunch()
	req.Server = server
	req.Props = props
	return req
}

// TestMixedFleetAppraisal runs one cloud with three trust backends and
// checks that the same property appraises healthy on a backend that can
// evidence it and unattestable (the paper's V_fail) on one that cannot —
// with the backend type recorded end to end: verdicts, ledger entries and
// trace annotations.
func TestMixedFleetAppraisal(t *testing.T) {
	tb := newTB(t, mixedFleet(Options{Seed: 41}))
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}

	// Covert-channel freedom needs the Trust Evidence Registers: attestable
	// on the tpm server, not on the vtpm server.
	onTPM := launch(t, cu, pinnedLaunch("cloud-server-1", properties.CovertChannelFreedom))
	onVTPM := launch(t, cu, pinnedLaunch("cloud-server-2", properties.RuntimeIntegrity, properties.CovertChannelFreedom))
	// Runtime integrity needs VM introspection: defeated by SNP memory
	// encryption, so unattestable on the sev-snp server.
	onSNP := launch(t, cu, pinnedLaunch("cloud-server-3", properties.RuntimeIntegrity, properties.CovertChannelFreedom))
	if v := onSNP.Verdict; !v.Healthy || v.Backend != "sev-snp" {
		t.Fatalf("sev-snp startup verdict: healthy=%v backend=%q", v.Healthy, v.Backend)
	}
	tb.RunFor(time.Second)

	v, err := cu.Attest(onTPM.Vid, properties.CovertChannelFreedom)
	if err != nil || !v.Healthy || v.Unattestable || v.Backend != "tpm" {
		t.Fatalf("covert freedom on tpm: %+v, %v", v, err)
	}
	v, err = cu.Attest(onVTPM.Vid, properties.CovertChannelFreedom)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy || !v.Unattestable || v.Backend != "vtpm" {
		t.Fatalf("covert freedom on vtpm should be V_fail: %+v", v)
	}
	if !strings.Contains(v.Reason, "not attestable") {
		t.Fatalf("unattestable reason: %q", v.Reason)
	}
	// The same VM's other property is attestable: V_fail is per property
	// per backend, not per server.
	v, err = cu.Attest(onVTPM.Vid, properties.RuntimeIntegrity)
	if err != nil || !v.Healthy || v.Backend != "vtpm" {
		t.Fatalf("runtime integrity on vtpm: %+v, %v", v, err)
	}
	v, err = cu.Attest(onSNP.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy || !v.Unattestable || v.Backend != "sev-snp" {
		t.Fatalf("runtime integrity on sev-snp should be V_fail: %+v", v)
	}
	v, err = cu.Attest(onSNP.Vid, properties.CovertChannelFreedom)
	if err != nil || !v.Healthy || v.Backend != "sev-snp" {
		t.Fatalf("covert freedom on sev-snp: %+v, %v", v, err)
	}

	// V_fail is a capability statement, not a compromise: the Response
	// Module must not have remediated either VM.
	for _, vid := range []string{onVTPM.Vid, onSNP.Vid} {
		if st, err := tb.Ctrl.VMState(vid); err != nil || st != "active" {
			t.Fatalf("VM %s after unattestable verdict: state=%q err=%v", vid, st, err)
		}
		rem, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindRemediation, Vid: vid})
		if err != nil {
			t.Fatal(err)
		}
		if len(rem) != 0 {
			t.Fatalf("unattestable verdict triggered remediation: %s", rem[0].Payload)
		}
	}

	// The appraisal ledger entry carries the backend and the V_fail marker,
	// and its trace's appraisal span is annotated with the backend.
	appr, err := tb.Ledger.Query(ledger.Filter{
		Kind: ledger.KindAppraisal, Vid: onVTPM.Vid, Prop: string(properties.CovertChannelFreedom),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(appr) != 1 {
		t.Fatalf("covert appraisal entries for %s = %d", onVTPM.Vid, len(appr))
	}
	var ap struct {
		Backend      string `json:"backend"`
		Healthy      bool   `json:"healthy"`
		Unattestable bool   `json:"unattestable"`
	}
	if err := json.Unmarshal(appr[0].Payload, &ap); err != nil {
		t.Fatal(err)
	}
	if ap.Backend != "vtpm" || ap.Healthy || !ap.Unattestable {
		t.Fatalf("appraisal payload %s", appr[0].Payload)
	}
	annotated := false
	for _, sp := range tb.Obs.Spans(appr[0].Trace) {
		for _, note := range sp.Notes {
			if note.Key == "backend" && note.Value == "vtpm" {
				annotated = true
			}
		}
	}
	if !annotated {
		t.Fatalf("no span in trace %s carries the backend annotation", appr[0].Trace)
	}

	// The launch ledger entries name each VM's backend.
	for vid, backend := range map[string]string{onTPM.Vid: "tpm", onVTPM.Vid: "vtpm", onSNP.Vid: "sev-snp"} {
		entries, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindLaunch, Vid: vid})
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || !strings.Contains(string(entries[0].Payload), `"backend":"`+backend+`"`) {
			t.Fatalf("launch entry for %s (%s): %s", vid, backend, entries[0].Payload)
		}
	}
}

// TestMixedFleetScheduler checks the property filter against the
// capability DB: without explicit placement, a request for a property only
// some backends can attest never schedules onto a backend that cannot.
func TestMixedFleetScheduler(t *testing.T) {
	tb := newTB(t, mixedFleet(Options{Seed: 42}))
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	req := basicLaunch()
	req.Props = []properties.Property{properties.RuntimeIntegrity, properties.CPUAvailability}
	// Only the tpm server supports both (vtpm lacks cpu-availability,
	// sev-snp lacks runtime-integrity).
	for i := 0; i < 3; i++ {
		res := launch(t, cu, req)
		if res.Server != "cloud-server-1" {
			t.Fatalf("launch %d placed on %s, want the tpm server", i, res.Server)
		}
	}
	// A request for every property has no qualified server beyond the tpm
	// one; once it is full the launch is rejected, not misplaced.
	full := basicLaunch()
	full.Props = properties.All
	full.Flavor = "large"
	for {
		res, err := cu.Launch(full)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			if !strings.Contains(res.Reason, "no qualified server") {
				t.Fatalf("rejection reason: %q", res.Reason)
			}
			break
		}
		if res.Server != "cloud-server-1" {
			t.Fatalf("all-property launch placed on %s", res.Server)
		}
	}
}

// TestRollbackRejectedAtLaunch is the stale-firmware scenario end to end:
// a sev-snp server whose platform security version was rolled back
// produces a correct launch measurement, yet the startup appraisal at
// launch fails on platform version, the launch is rejected, and the
// evidence ledger records the platform failure with the backend type.
func TestRollbackRejectedAtLaunch(t *testing.T) {
	tb := newTB(t, mixedFleet(Options{
		Seed:          43,
		StaleFirmware: map[string]bool{"cloud-server-3": true},
	}))
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cu.Launch(pinnedLaunch("cloud-server-3", properties.CovertChannelFreedom))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("launch on a rolled-back platform succeeded")
	}
	if !strings.Contains(res.Reason, "platform security version") || !strings.Contains(res.Reason, "rollback") {
		t.Fatalf("rejection reason: %q", res.Reason)
	}

	appr, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindAppraisal, Vid: res.Vid})
	if err != nil {
		t.Fatal(err)
	}
	if len(appr) != 1 {
		t.Fatalf("appraisal entries = %d", len(appr))
	}
	var ap struct {
		Backend string `json:"backend"`
		Healthy bool   `json:"healthy"`
		Class   string `json:"class"`
	}
	if err := json.Unmarshal(appr[0].Payload, &ap); err != nil {
		t.Fatal(err)
	}
	if ap.Healthy || ap.Class != string(properties.FailurePlatform) || ap.Backend != "sev-snp" {
		t.Fatalf("rollback appraisal payload %s", appr[0].Payload)
	}

	// The same server under a verifier floor lowered to its stale version
	// launches fine: the rejection above was the policy comparison, not a
	// broken measurement chain.
	tb2 := newTB(t, mixedFleet(Options{
		Seed:          44,
		StaleFirmware: map[string]bool{"cloud-server-3": true},
		MinTCB:        driver.TCBVersion{Bootloader: 3, TEE: 1, SNP: 8, Microcode: 170},
	}))
	cu2, err := tb2.NewCustomer("bob")
	if err != nil {
		t.Fatal(err)
	}
	res2 := launch(t, cu2, pinnedLaunch("cloud-server-3", properties.CovertChannelFreedom))
	if !res2.Verdict.Healthy || res2.Verdict.Backend != "sev-snp" {
		t.Fatalf("lowered-floor launch verdict: %+v", res2.Verdict)
	}
}

// TestExplicitPlacementCapacity: explicit placement bypasses the property
// filter but never capacity.
func TestExplicitPlacementCapacity(t *testing.T) {
	tb := newTB(t, mixedFleet(Options{Seed: 45}))
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	req := pinnedLaunch("cloud-server-2", properties.RuntimeIntegrity)
	req.Flavor = "large"
	for {
		res, err := cu.Launch(req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			if !strings.Contains(res.Reason, "unknown or lacks capacity") {
				t.Fatalf("rejection reason: %q", res.Reason)
			}
			break
		}
		if res.Server != "cloud-server-2" {
			t.Fatalf("pinned launch placed on %s", res.Server)
		}
	}
	res, err := cu.Launch(pinnedLaunch("no-such-server", properties.RuntimeIntegrity))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || !strings.Contains(res.Reason, "unknown or lacks capacity") {
		t.Fatalf("unknown-server launch: ok=%v reason=%q", res.OK, res.Reason)
	}
}
