package cloudsim

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/properties"
)

// TestEvidenceLedgerEndToEnd runs a full attack-and-respond scenario and
// checks that every producer left its trace in the evidence ledger: the
// controller's launch decision, the appraiser's verdicts, the pCA's
// anonymous certificate issuances and the Response Module's remediation —
// and that the resulting chain survives an independent audit of the
// on-disk segments.
func TestEvidenceLedgerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tb := newTB(t, Options{Seed: 21, LedgerDir: dir})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(time.Second)

	if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || !v.Healthy {
		t.Fatalf("clean attest: %v %v", v, err)
	}
	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	g.InfectRootkit("stealth-miner")
	if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || v.Healthy {
		t.Fatalf("infected attest: %v %v", v, err)
	}

	// Launch decision, recorded by the controller.
	launches, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindLaunch, Vid: res.Vid})
	if err != nil {
		t.Fatal(err)
	}
	if len(launches) != 1 {
		t.Fatalf("launch entries = %d", len(launches))
	}
	var ld struct {
		OK     bool   `json:"ok"`
		Owner  string `json:"owner"`
		Server string `json:"server"`
	}
	if err := json.Unmarshal(launches[0].Payload, &ld); err != nil {
		t.Fatal(err)
	}
	if !ld.OK || ld.Owner != "alice" || ld.Server != res.Server {
		t.Fatalf("launch payload %s", launches[0].Payload)
	}

	// Appraisals, recorded by the Attestation Server: the startup check at
	// launch plus the two runtime checks above.
	appr, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindAppraisal, Vid: res.Vid})
	if err != nil {
		t.Fatal(err)
	}
	if len(appr) < 3 {
		t.Fatalf("appraisal entries = %d, want >= 3", len(appr))
	}
	last := appr[len(appr)-1]
	if last.Prop != string(properties.RuntimeIntegrity) || !strings.Contains(string(last.Payload), `"healthy":false`) {
		t.Fatalf("final appraisal entry %+v %s", last, last.Payload)
	}

	// Certificate issuances, recorded by the pCA — anonymously: no entry may
	// leak which server requested the session key (paper §3.4.2).
	certs, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindCertIssue})
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) == 0 {
		t.Fatal("no cert-issue entries")
	}
	for _, e := range certs {
		if e.Vid != "" || strings.Contains(string(e.Payload), res.Server) {
			t.Fatalf("cert-issue entry leaks placement: %+v %s", e, e.Payload)
		}
	}

	// The remediation (termination for runtime integrity).
	rems, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindRemediation, Vid: res.Vid})
	if err != nil {
		t.Fatal(err)
	}
	if len(rems) != 1 || !strings.Contains(string(rems[0].Payload), `"response":"termination"`) {
		t.Fatalf("remediation entries %+v", rems)
	}

	// The control plane's two-phase intents: every begin must be matched by
	// an end — an unmatched begin after a clean run would mean a torn
	// intent without a crash.
	ints, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindIntent, Vid: res.Vid})
	if err != nil {
		t.Fatal(err)
	}
	open := map[string]int{}
	for _, e := range ints {
		var ir struct {
			Phase string `json:"phase"`
			ID    string `json:"id"`
		}
		if err := json.Unmarshal(e.Payload, &ir); err != nil {
			t.Fatalf("intent payload %s: %v", e.Payload, err)
		}
		if ir.Phase == "begin" {
			open[ir.ID]++
		} else {
			open[ir.ID]--
		}
	}
	for id, n := range open {
		if n > 0 {
			t.Fatalf("intent %s left torn (%d unmatched begins) without a crash", id, n)
		}
	}

	// Querying by VM id alone interleaves all kinds for that VM, in order.
	byVM, err := tb.Ledger.Query(ledger.Filter{Vid: res.Vid})
	if err != nil {
		t.Fatal(err)
	}
	if len(byVM) != len(launches)+len(appr)+len(rems)+len(ints) {
		t.Fatalf("by-vid query = %d entries, want %d", len(byVM), len(launches)+len(appr)+len(rems)+len(ints))
	}
	for i := 1; i < len(byVM); i++ {
		if byVM[i].Seq <= byVM[i-1].Seq {
			t.Fatal("by-vid query out of order")
		}
	}

	// The chain verifies in-process and — after closing — under an
	// independent audit of the directory.
	n, err := tb.Ledger.Verify()
	if err != nil {
		t.Fatal(err)
	}
	headSeq, headHash := tb.Ledger.Head()
	if uint64(n) != headSeq {
		t.Fatalf("verified %d entries, head seq %d", n, headSeq)
	}
	if err := tb.Ledger.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := ledger.Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HeadSeq != headSeq || res2.HeadHash != headHash {
		t.Fatalf("audit head (%d, %x) != live head (%d, %x)",
			res2.HeadSeq, res2.HeadHash, headSeq, headHash)
	}
}
