package cloudsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/guest"
	"cloudmonatt/internal/interpret"
	"cloudmonatt/internal/monitor"
	"cloudmonatt/internal/properties"
)

// TestCustomPropertyEndToEnd exercises the paper's extensibility claim
// (§4: "the CloudMonatt architecture is flexible and allows the
// integration of an arbitrary number of security properties and monitoring
// mechanisms"): a deployment-defined fifth property — guest kernel
// integrity via VM introspection of the guest boot chain — is registered
// with the three extension points and then flows through the full
// protocol, launch pipeline and response machinery without any change to
// the architecture.
func TestCustomPropertyEndToEnd(t *testing.T) {
	const (
		propKernel properties.Property        = "guest-kernel-integrity"
		kindChain  properties.MeasurementKind = "guest-bootchain"
	)

	// Golden references: the digests of a pristine guest's boot chain.
	golden := make(map[string][32]byte)
	for _, c := range guest.NewOS().BootChain() {
		golden[c.Name] = c.Digest()
	}

	// 1. Property → measurement mapping (Attestation Server side).
	if err := properties.Register(propKernel, properties.Request{
		Kinds: []properties.MeasurementKind{kindChain},
	}); err != nil {
		t.Fatal(err)
	}
	defer properties.Unregister(propKernel)

	// 2. Collector (Monitor Module side): VMI reads the guest boot chain.
	if err := monitor.RegisterCollector(kindChain, func(vm *monitor.VM, nonce [16]byte) (properties.Measurement, error) {
		m := properties.Measurement{Kind: kindChain}
		for _, c := range vm.Guest.BootChain() {
			m.LogNames = append(m.LogNames, c.Name)
			m.LogSums = append(m.LogSums, c.Digest())
		}
		return m, nil
	}); err != nil {
		t.Fatal(err)
	}
	defer monitor.UnregisterCollector(kindChain)

	// 3. Interpreter (Property Interpretation Module side).
	if err := interpret.RegisterInterpreter(propKernel, func(ms []properties.Measurement, nonce cryptoutil.Nonce, refs interpret.References) properties.Verdict {
		for _, m := range ms {
			if m.Kind != kindChain {
				continue
			}
			for i, name := range m.LogNames {
				want, known := golden[name]
				if !known || m.LogSums[i] != want {
					return properties.Verdict{Property: propKernel, Healthy: false,
						Reason: "guest boot component modified", Details: map[string]string{"component": name}}
				}
			}
			return properties.Verdict{Property: propKernel, Healthy: true,
				Reason: "guest boot chain matches known-good digests"}
		}
		return properties.Verdict{Property: propKernel, Healthy: false, Reason: "missing boot chain measurement"}
	}); err != nil {
		t.Fatal(err)
	}
	defer interpret.UnregisterInterpreter(propKernel)

	tb := newTB(t, Options{Seed: 77})
	cu, _ := tb.NewCustomer("alice")

	// The cloud servers advertise the new capability.
	for _, rec := range tb.Attest.Servers() {
		rec.Properties = append(rec.Properties, propKernel)
		tb.Attest.RegisterServer(rec)
	}
	for name := range tb.Servers {
		tb.Ctrl.RegisterServer(ctrlEntryWithProp(tb, name, propKernel))
	}

	req := basicLaunch()
	req.Props = append(req.Props, propKernel)
	res := launch(t, cu, req)
	tb.RunFor(time.Second)

	// Clean guest: healthy.
	v, err := cu.Attest(res.Vid, propKernel)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("pristine guest kernel judged modified: %v", v)
	}

	// Tamper with the guest kernel; the custom property must catch it and
	// the default response (termination) must fire.
	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.TamperBootChain("guest-kernel"); err != nil {
		t.Fatal(err)
	}
	v, err = cu.Attest(res.Vid, propKernel)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatal("tampered guest kernel passed the custom property")
	}
	if !strings.Contains(v.Details["component"], "guest-kernel") {
		t.Fatalf("wrong component blamed: %v", v.Details)
	}
	events := tb.Ctrl.Events()
	if len(events) != 1 {
		t.Fatalf("expected one response, got %+v", events)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "terminated" {
		t.Fatalf("VM state %q after failed custom-property attestation", st)
	}
}

// ctrlEntryWithProp rebuilds a controller server entry advertising an
// additional property.
func ctrlEntryWithProp(tb *Testbed, name string, p properties.Property) (e controllerServerEntry) {
	for _, rec := range tb.Attest.Servers() {
		if rec.Name == name {
			e.Name = name
			e.Addr = rec.Addr
			e.Props = append(append([]properties.Property{}, properties.All...), p)
		}
	}
	e.Capacity = serverCap(16, 32768, 500)
	return
}

// Keep periodic monitoring following a migration (regression test for the
// rebind path).
func TestPeriodicFollowsMigration(t *testing.T) {
	tb := newTB(t, Options{Seed: 78, Servers: 2})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Workload = "spinner"
	req.Pin = 1
	res := launch(t, cu, req)
	if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.LaunchCoResident(res.Server, "attack:cpu-starver", 1); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(12 * time.Second) // detection + automatic migration
	if _, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability); err != nil {
		t.Fatal(err)
	}
	newServer, _ := tb.Ctrl.VMServer(res.Vid)
	if newServer == res.Server {
		t.Fatal("VM was not migrated")
	}
	// After migration, periodic results keep arriving and are healthy.
	tb.RunFor(15 * time.Second)
	vs, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("no periodic results after migration (task not rebound)")
	}
	for _, v := range vs {
		if !v.Healthy {
			t.Fatalf("post-migration verdict unhealthy: %v", v)
		}
	}
}

// controllerServerEntry aliases the controller's entry type for the helper.
type controllerServerEntry = controller.ServerEntry

// TestRFADetectedAndMigrated runs the Resource-Freeing Attack through the
// full cloud: the availability attestation flags the starved victim, the
// controller migrates it, and on the new host (fresh cache, no attacker)
// its CPU share recovers.
func TestRFADetectedAndMigrated(t *testing.T) {
	tb := newTB(t, Options{Seed: 79, Servers: 2})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Workload = "cached-server"
	req.MinShare = 0.25
	req.Pin = 1
	res := launch(t, cu, req)
	srcServer := res.Server

	// Healthy while alone.
	tb.RunFor(time.Second)
	v, err := cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("unattacked cached server failed availability: %v", v)
	}

	// The RFA attacker arrives on the same pCPU.
	if _, err := tb.LaunchRFACoResident(res.Vid, 1); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(2 * time.Second)
	v, err = cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatalf("RFA-starved victim judged healthy: %v", v)
	}
	newServer, _ := tb.Ctrl.VMServer(res.Vid)
	if newServer == srcServer {
		t.Fatal("victim not migrated off the attacked server")
	}

	// Fresh host, fresh cache, no attacker: availability recovers.
	tb.RunFor(2 * time.Second)
	v, err = cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("migrated victim still starved: %v", v)
	}
}

// TestBusCovertChannelEndToEnd: the memory-bus covert channel flows
// through the full protocol and the confidentiality property flags it.
func TestBusCovertChannelEndToEnd(t *testing.T) {
	tb := newTB(t, Options{Seed: 80, Servers: 2})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Workload = "attack:bus-covert-sender"
	req.Allowlist = nil
	req.Pin = 1
	res := launch(t, cu, req)
	tb.RunFor(500 * time.Millisecond)
	v, err := cu.Attest(res.Vid, properties.CovertChannelFreedom)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatalf("bus covert channel not detected end to end: %v", v)
	}
	// The migration policy for confidentiality fires.
	events := tb.Ctrl.Events()
	if len(events) != 1 || events[0].Response != controller.Migrate {
		t.Fatalf("expected migration response, got %+v", events)
	}
}

// TestSuspensionRecheckLoop exercises §5.2's full Suspension semantics: a
// failing attestation suspends the VM; while the breach persists, rechecks
// re-suspend it; once the guest is cleaned, the recheck resumes it.
func TestSuspensionRecheckLoop(t *testing.T) {
	policy := controller.DefaultPolicy()
	policy[properties.RuntimeIntegrity] = controller.Suspend
	tb := newTB(t, Options{Seed: 81, Policy: policy})
	cu, _ := tb.NewCustomer("alice")
	res := launch(t, cu, basicLaunch())
	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	rk := g.InfectRootkit("stealth-miner")
	if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || v.Healthy {
		t.Fatalf("infection not flagged: %v %v", v, err)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "suspended" {
		t.Fatalf("state %q after failing attestation", st)
	}

	// First recheck: the rootkit is still there → back to suspended.
	v, resumed, err := tb.Ctrl.RecheckAndResume(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	if resumed || v.Healthy {
		t.Fatalf("recheck resumed a still-infected VM: %v", v)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "suspended" {
		t.Fatalf("state %q after failing recheck", st)
	}

	// The operator removes the rootkit; the next recheck resumes the VM.
	if err := g.Kill(rk.PID); err != nil {
		t.Fatal(err)
	}
	v, resumed, err = tb.Ctrl.RecheckAndResume(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || !v.Healthy {
		t.Fatalf("recheck did not resume a clean VM: %v", v)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "active" {
		t.Fatalf("state %q after healthy recheck", st)
	}
	// Rechecking an active VM is an error.
	if _, _, err := tb.Ctrl.RecheckAndResume(res.Vid); err == nil {
		t.Fatal("recheck of an active VM succeeded")
	}
}

// TestMultipleAttestationServers exercises §3.2.3's scalability claim:
// cloud servers shard across attestation clusters, each with its own
// Attestation Server; attestation, periodic monitoring and migration all
// route to the VM's cluster.
func TestMultipleAttestationServers(t *testing.T) {
	tb := newTB(t, Options{Seed: 82, Servers: 4, AttestServers: 2})
	if len(tb.AttestServers) != 2 {
		t.Fatalf("attestation servers: %d", len(tb.AttestServers))
	}
	cu, _ := tb.NewCustomer("alice")

	// Fill the cloud so both clusters host VMs.
	clusters := map[string][]string{}
	req := basicLaunch()
	req.Flavor = "small"
	for i := 0; i < 4; i++ {
		res := launch(t, cu, req)
		clusters[res.Server] = append(clusters[res.Server], res.Vid)
	}
	if len(clusters) != 4 {
		t.Fatalf("VMs not spread over all servers: %v", clusters)
	}
	tb.RunFor(time.Second)

	// Every VM attests healthy through its own cluster's appraiser.
	var vids []string
	for _, vs := range clusters {
		vids = append(vids, vs...)
	}
	for _, vid := range vids {
		v, err := cu.Attest(vid, properties.RuntimeIntegrity)
		if err != nil {
			t.Fatalf("%s: %v", vid, err)
		}
		if !v.Healthy {
			t.Fatalf("%s unhealthy: %v", vid, v)
		}
	}
	// Both appraisers did real work (launch startup attestations at least).
	for i, as := range tb.AttestServers {
		if as.Metrics().Summary("appraise/"+string(properties.StartupIntegrity)).Count() == 0 {
			t.Fatalf("attestation server %d appraised nothing", i)
		}
	}

	// Periodic monitoring works for VMs in the second cluster too.
	vid := clusters[serverName(1)][0] // cluster 1 (index 1 % 2)
	if err := cu.StartPeriodic(vid, properties.CPUAvailability, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(12 * time.Second)
	vs, err := cu.FetchPeriodic(vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("no periodic results from the second cluster")
	}

	// Migration keeps the VM inside its attestation cluster.
	srcName, _ := tb.Ctrl.VMServer(vid)
	dest, err := tb.Ctrl.MigrateVM(vid)
	if err != nil {
		t.Fatal(err)
	}
	srcIdx := serverIndex(t, srcName)
	destIdx := serverIndex(t, dest)
	if srcIdx%2 != destIdx%2 {
		t.Fatalf("migration crossed clusters: %s -> %s", srcName, dest)
	}
	// And the VM still attests at its new home.
	if v, err := cu.Attest(vid, properties.RuntimeIntegrity); err != nil || !v.Healthy {
		t.Fatalf("post-migration attest: %v %v", v, err)
	}
}

// serverIndex parses "cloud-server-N" back to its zero-based index.
func serverIndex(t *testing.T, name string) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscanf(name, "cloud-server-%d", &n); err != nil {
		t.Fatalf("bad server name %q", name)
	}
	return n - 1
}
