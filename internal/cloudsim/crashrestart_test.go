package cloudsim

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/server"
	"cloudmonatt/internal/wire"
)

// failpoints is a mutable crash-injection set handed to Options.FailPoint.
// Points stay armed until cleared, so a retried operation crashes again —
// exactly like a controller that keeps dying at the same instruction.
type failpoints struct {
	mu sync.Mutex
	on map[string]bool
}

func newFailpoints(points ...string) *failpoints {
	f := &failpoints{on: make(map[string]bool)}
	for _, p := range points {
		f.on[p] = true
	}
	return f
}

func (f *failpoints) hit(p string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.on[p]
}

// noOrphans asserts that no cloud server hosts the VM and no capacity
// reservation remains anywhere — the "no orphaned VMs" acceptance bar.
func noOrphans(t *testing.T, tb *Testbed, vid string) {
	t.Helper()
	for name, srv := range tb.Servers {
		if _, err := srv.Guest(vid); err == nil {
			t.Fatalf("orphaned guest %s still running on %s", vid, name)
		}
	}
	for name := range tb.Servers {
		if used := tb.Ctrl.UsedCapacity(name); used != (server.Capacity{}) {
			t.Fatalf("capacity leak on %s: %+v", name, used)
		}
	}
}

// TestChaosControllerRestartMidLaunch kills the controller right after the
// guest spawned on its candidate server (the place intent is begun, its
// completion never recorded) and restarts it. Recovery must clean the
// half-placed guest off the host, leak no capacity, resurrect no VM row,
// and leave the fleet fully usable.
func TestChaosControllerRestartMidLaunch(t *testing.T) {
	fp := newFailpoints("launch-spawned")
	tb := newTB(t, Options{Seed: 141, Servers: 2, FailPoint: fp.hit})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}

	_, err = cu.Launch(basicLaunch())
	if err == nil {
		t.Fatal("launch survived an injected crash")
	}
	if !strings.Contains(err.Error(), "crash injected") {
		t.Fatalf("launch error %v does not carry the crash sentinel", err)
	}

	// The dead controller left a live guest and a torn place intent behind.
	if err := tb.RestartController(); err != nil {
		t.Fatal(err)
	}
	noOrphans(t, tb, "vm-0001")
	if vms := tb.Ctrl.ListVMs("alice"); len(vms) != 0 {
		t.Fatalf("half-launched VM resurrected by recovery: %+v", vms)
	}
	if n := tb.Ctrl.Metrics().Counter("controller/recover-torn-launches").Value(); n != 1 {
		t.Fatalf("recover-torn-launches = %d, want 1", n)
	}

	// The fleet still works end to end: a clean relaunch under the new
	// controller (failpoints gone, same identity — same customer channel).
	res := launch(t, cu, basicLaunch())
	if !res.Verdict.Healthy {
		t.Fatalf("post-recovery launch attested unhealthy: %v", res.Verdict)
	}
	if res.Vid == "vm-0001" {
		t.Fatal("vid counter not recovered: reissued the torn launch's vid")
	}
}

// TestChaosControllerRestartMidRemediation kills the controller after a
// termination remediation was declared (intent begun) but before anything
// executed, restarts it, and requires the replay to finish the response
// exactly once: one event, the VM gone, no double execution afterwards.
func TestChaosControllerRestartMidRemediation(t *testing.T) {
	fp := newFailpoints("mid-remediation")
	tb := newTB(t, Options{Seed: 142, FailPoint: fp.hit})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(2 * time.Second)

	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	g.InfectRootkit("stealth-miner")
	v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatal("rootkit not detected")
	}
	// The crash hit between declaring the response and executing it.
	if got := len(tb.Ctrl.Events()); got != 0 {
		t.Fatalf("remediation completed despite the crash: %d events", got)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "active" {
		t.Fatalf("state %q before recovery, want active", st)
	}

	if err := tb.RestartController(); err != nil {
		t.Fatal(err)
	}
	if n := tb.Ctrl.Metrics().Counter("controller/recover-torn-remediations").Value(); n != 1 {
		t.Fatalf("recover-torn-remediations = %d, want 1", n)
	}
	events := tb.Ctrl.Events()
	if len(events) != 1 || events[0].Response != controller.Terminate || !events[0].Terminated {
		t.Fatalf("recovery events = %+v, want exactly one completed termination", events)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "terminated" {
		t.Fatalf("state %q after recovery, want terminated", st)
	}
	noOrphans(t, tb, res.Vid)

	// Idempotence: more wall-clock and another restart must not re-execute
	// the completed intent (no double remediation).
	tb.RunFor(10 * time.Second)
	if err := tb.RestartController(); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(10 * time.Second)
	if events := tb.Ctrl.Events(); len(events) != 1 {
		t.Fatalf("remediation re-executed after replay: %+v", events)
	}
	noOrphans(t, tb, res.Vid)
}

// TestChaosControllerRestartMidMigration kills the controller after the
// migrate-out half of a migration (the VM is off its source, its relaunch
// spec only in the ledger) and requires recovery to finish the move: the
// VM lands on the destination, exactly one migration event exists, and
// the source holds neither guest nor reservation.
func TestChaosControllerRestartMidMigration(t *testing.T) {
	fp := newFailpoints("mid-migrate")
	tb := newTB(t, Options{Seed: 143, Servers: 2, FailPoint: fp.hit})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	req := basicLaunch()
	req.Workload = "spinner"
	req.Pin = 1
	res := launch(t, cu, req)
	src := res.Server

	if _, err := tb.LaunchCoResident(src, "attack:cpu-starver", 1); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(time.Second)
	v, err := cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatal("starved VM judged healthy")
	}
	// Crashed half-migrated: off the source, not yet on the destination.
	if len(tb.Ctrl.Events()) != 0 {
		t.Fatal("migration completed despite the crash")
	}

	if err := tb.RestartController(); err != nil {
		t.Fatal(err)
	}
	events := tb.Ctrl.Events()
	if len(events) != 1 || events[0].Response != controller.Migrate || events[0].Terminated {
		t.Fatalf("recovery events = %+v, want exactly one completed migration", events)
	}
	dest, err := tb.Ctrl.VMServer(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	if dest == src {
		t.Fatalf("VM still on the attacked server %s after recovery", src)
	}
	if _, err := tb.Servers[src].Guest(res.Vid); err == nil {
		t.Fatalf("guest still present on migration source %s", src)
	}
	if used := tb.Ctrl.UsedCapacity(src); used != (server.Capacity{}) {
		t.Fatalf("source capacity not released: %+v", used)
	}
	if used := tb.Ctrl.UsedCapacity(dest); used == (server.Capacity{}) {
		t.Fatal("destination holds no reservation for the migrated VM")
	}

	// Off the starved pCPU, availability recovers end to end.
	tb.RunFor(time.Second)
	v, err = cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("migrated VM still starved: %v", v)
	}
	if events := tb.Ctrl.Events(); len(events) != 1 {
		t.Fatalf("second remediation executed: %+v", events)
	}
}

// TestChaosControllerRestartMidTeardown kills the controller between the
// customer's terminate request and the finalizer's completion, restarts
// it, and requires the finalizer to finish the half-done teardown.
func TestChaosControllerRestartMidTeardown(t *testing.T) {
	fp := newFailpoints("mid-teardown")
	tb := newTB(t, Options{Seed: 144, FailPoint: fp.hit})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())

	if err := cu.Terminate(res.Vid); err == nil {
		t.Fatal("terminate survived an injected crash")
	}

	if err := tb.RestartController(); err != nil {
		t.Fatal(err)
	}
	st, err := cu.Status(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "terminated" || !st.Deleted || !st.Finalized {
		t.Fatalf("teardown not finished by recovery: %+v", st)
	}
	noOrphans(t, tb, res.Vid)
	// The finalizer is converged, not re-runnable: a second terminate is a
	// clean refusal, and no remediation event ever existed.
	if err := cu.Terminate(res.Vid); err == nil {
		t.Fatal("double terminate accepted")
	}
	if events := tb.Ctrl.Events(); len(events) != 0 {
		t.Fatalf("teardown produced remediation events: %+v", events)
	}
}

// TestChaosMigrationRetriesAfterPartition: a migration whose relaunch half
// fails from a partitioned destination stays a pending declaration; the
// level-triggered loop retries with backoff and completes the move once
// the partition heals — no customer action, no restart.
func TestChaosMigrationRetriesAfterPartition(t *testing.T) {
	fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{Seed: 11})
	tb := newTB(t, Options{
		Seed:        145,
		Servers:     2,
		Network:     fn,
		CallTimeout: 250 * time.Millisecond,
		Retry:       rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:     rpc.BreakerPolicy{Threshold: -1},
	})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	req := basicLaunch()
	req.Workload = "spinner"
	req.Pin = 1
	res := launch(t, cu, req)
	src := res.Server
	dest := serverName(0)
	if dest == src {
		dest = serverName(1)
	}

	if _, err := tb.LaunchCoResident(src, "attack:cpu-starver", 1); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(time.Second)
	fn.Partition("server:" + dest)

	// Ask the controller directly: its inline remediation attempt retries
	// against the partitioned destination for longer than the customer's
	// own rpc budget (the same caveat as the stale-report trace test).
	rep, err := tb.Ctrl.Attest(wire.AttestRequest{
		Vid: res.Vid, Prop: properties.CPUAvailability, N1: cryptoutil.MustNonce(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict.Healthy {
		t.Fatal("starved VM judged healthy")
	}
	// The relaunch half could not reach the destination: the declaration
	// stays pending, nothing completed.
	if len(tb.Ctrl.Events()) != 0 {
		t.Fatal("migration completed through a partition")
	}
	if !tb.Ctrl.ReconcilePending() {
		t.Fatal("failed migration left no pending reconcile work")
	}

	fn.Heal("server:" + dest)
	tb.RunFor(30 * time.Second)

	events := tb.Ctrl.Events()
	if len(events) != 1 || events[0].Response != controller.Migrate || events[0].Terminated {
		t.Fatalf("events after heal = %+v, want exactly one completed migration", events)
	}
	if got, _ := tb.Ctrl.VMServer(res.Vid); got != dest {
		t.Fatalf("VM on %s after retry, want %s", got, dest)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "active" {
		t.Fatalf("state %q after retried migration", st)
	}
}

// TestReattestLoopDetectsCompromise: with ReattestEvery set, the reconcile
// loop re-attests every active VM on its requeue-after schedule — no
// customer request involved — and converges the policy response when a
// round finds a compromise.
func TestReattestLoopDetectsCompromise(t *testing.T) {
	tb := newTB(t, Options{Seed: 147, ReattestEvery: 5 * time.Second})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())

	// Two clean rounds: the loop requeues, never remediates.
	tb.RunFor(12 * time.Second)
	if events := tb.Ctrl.Events(); len(events) != 0 {
		t.Fatalf("healthy VM remediated by the reattest loop: %+v", events)
	}
	if n := tb.Ctrl.Metrics().Counter("reconcile/passes").Value(); n == 0 {
		t.Fatal("reattest schedule drove no reconcile passes")
	}
	if n := tb.Ctrl.Metrics().Counter("reconcile/requeues-after").Value(); n == 0 {
		t.Fatal("periodic reattestation recorded no scheduled requeues")
	}

	// Infect; the next scheduled round must catch it without any customer
	// attest call and execute the runtime-integrity policy (terminate).
	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	g.InfectRootkit("stealth-miner")
	tb.RunFor(6 * time.Second)
	events := tb.Ctrl.Events()
	if len(events) != 1 || events[0].Response != controller.Terminate {
		t.Fatalf("loop response = %+v, want one termination", events)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "terminated" {
		t.Fatalf("state %q after loop-driven response", st)
	}
	// Terminated: the schedule stops, the fleet is clean.
	noOrphans(t, tb, res.Vid)
	tb.RunFor(10 * time.Second)
	if events := tb.Ctrl.Events(); len(events) != 1 {
		t.Fatalf("terminated VM re-remediated: %+v", events)
	}
}

// TestChaosInfraFailureNeverRemediatesAcrossRestart: an attestation that
// degrades because the infrastructure is unreachable must not become a
// remediation — not when it happens, and not when a restarted controller
// replays the ledger that recorded it (the degradation entry folds to
// evidence, never to work).
func TestChaosInfraFailureNeverRemediatesAcrossRestart(t *testing.T) {
	fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{Seed: 13})
	tb := newTB(t, Options{
		Seed:        146,
		Network:     fn,
		CallTimeout: 250 * time.Millisecond,
		Retry:       rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:     rpc.BreakerPolicy{Threshold: -1},
	})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(time.Second)

	// Populate last-known-good, then blackhole the appraiser and attest:
	// the controller degrades to a stale serve (recorded in the ledger).
	if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || !v.Healthy {
		t.Fatalf("baseline attest: %v %v", v, err)
	}
	tb.RunFor(3 * time.Second)
	fn.Partition("attestation-server")
	// Direct call: the controller's retry budget against the partitioned
	// appraiser outlives the customer-facing rpc timeout.
	rep, err := tb.Ctrl.Attest(wire.AttestRequest{
		Vid: res.Vid, Prop: properties.RuntimeIntegrity, N1: cryptoutil.MustNonce(),
	})
	if err != nil {
		t.Fatalf("attest during partition: %v", err)
	}
	if !rep.Stale {
		t.Fatal("partitioned attest not served as a stale degradation")
	}

	fn.Heal("attestation-server")
	if err := tb.RestartController(); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(10 * time.Second)

	// The VM survived: still active, still placed, and the degradation
	// never turned into a response event.
	if events := tb.Ctrl.Events(); len(events) != 0 {
		t.Fatalf("infrastructure failure remediated: %+v", events)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "active" {
		t.Fatalf("state %q after recovery, want active", st)
	}
	if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || !v.Healthy {
		t.Fatalf("post-recovery attest: %v %v", v, err)
	}
}

// TestChaosInfraPCARestartSerialsMonotonic crashes and restarts the
// privacy CA mid-fleet. The pCA's serial counter used to live only in
// process memory, so a restarted pCA would re-issue anon-1, anon-2, … and
// silently break certificate-subject uniqueness. Recovery must replay the
// high-water mark from the KindCertIssue ledger entries and keep the
// sequence strictly increasing across the restart.
func TestChaosInfraPCARestartSerialsMonotonic(t *testing.T) {
	tb := newTB(t, Options{Seed: 17})
	cu, err := tb.NewCustomer("dana")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	for i := 0; i < 3; i++ {
		if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || !v.Healthy {
			t.Fatalf("pre-restart attest %d: %v %v", i, v, err)
		}
	}
	before := tb.PCA.SerialHighWater()
	if before == 0 {
		t.Fatal("no certificates issued before the restart")
	}

	if err := tb.RestartPCA(); err != nil {
		t.Fatal(err)
	}
	if got := tb.PCA.SerialHighWater(); got != before {
		t.Fatalf("restarted pCA recovered high-water %d, want %d", got, before)
	}
	for i := 0; i < 3; i++ {
		if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || !v.Healthy {
			t.Fatalf("post-restart attest %d: %v %v", i, v, err)
		}
	}
	if got := tb.PCA.SerialHighWater(); got <= before {
		t.Fatalf("post-restart issuance did not advance serials: %d <= %d", got, before)
	}

	// The ledgered issuance chain must show one strictly increasing serial
	// sequence with no subject reused across the restart.
	entries, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindCertIssue})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 6 {
		t.Fatalf("expected >=6 issuance entries, got %d", len(entries))
	}
	last := uint64(0)
	subjects := make(map[string]bool)
	for _, e := range entries {
		var rec struct {
			Subject string `json:"subject"`
			Serial  uint64 `json:"serial"`
		}
		if err := json.Unmarshal(e.Payload, &rec); err != nil {
			t.Fatalf("issuance payload: %v", err)
		}
		if rec.Serial <= last {
			t.Fatalf("serial %d issued after %d — sequence not strictly increasing", rec.Serial, last)
		}
		last = rec.Serial
		if subjects[rec.Subject] {
			t.Fatalf("certificate subject %q reused across restart", rec.Subject)
		}
		subjects[rec.Subject] = true
	}
}
