package cloudsim

import (
	"strings"
	"testing"
	"time"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/wire"
)

// entitiesOf collects the set of entities that recorded spans in the trace.
func entitiesOf(tr obs.Trace) map[string]bool {
	out := make(map[string]bool)
	for _, sp := range tr.Spans {
		out[sp.Entity] = true
	}
	return out
}

// checkNesting asserts every span whose parent landed in the same trace
// stays within the parent's virtual-time bounds.
func checkNesting(t *testing.T, tr obs.Trace) {
	t.Helper()
	byID := make(map[string]obs.Span, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range tr.Spans {
		if sp.Parent == "" {
			continue
		}
		p, ok := byID[sp.Parent]
		if !ok {
			continue // parent span recorded by an entity outside this store snapshot
		}
		if sp.Start < p.Start || sp.End > p.End {
			t.Errorf("span %s %q [%v,%v] escapes parent %s %q [%v,%v]",
				sp.ID, sp.Name, sp.Start, sp.End, p.ID, p.Name, p.Start, p.End)
		}
	}
}

// coversFourEntities asserts the trace has spans from the customer API, the
// controller, the attestation server and at least one cloud server — the
// full Fig. 3 protocol chain.
func coversFourEntities(t *testing.T, tr obs.Trace) {
	t.Helper()
	ents := entitiesOf(tr)
	for _, want := range []string{"customer-api", "controller", "attest-server"} {
		if !ents[want] {
			t.Errorf("trace %s has no %s span (entities %v)", tr.ID, want, ents)
		}
	}
	var cloud bool
	for e := range ents {
		if strings.HasPrefix(e, "cloud-server-") {
			cloud = true
		}
	}
	if !cloud {
		t.Errorf("trace %s has no cloud-server span (entities %v)", tr.ID, ents)
	}
}

// attestTraces returns the completed one-time attestation traces for vid.
func attestTraces(tb *Testbed, vid string) []obs.Trace {
	var out []obs.Trace
	for _, tr := range tb.Obs.Traces(obs.TraceFilter{Vid: vid, CompleteOnly: true}) {
		if tr.Name == "api:runtime_attest_current" {
			out = append(out, tr)
		}
	}
	return out
}

// TestOneTimeAttestationTraces: every one-time attestation yields exactly
// one complete trace whose spans cover all four entities and nest within
// their parents' virtual-time bounds.
func TestOneTimeAttestationTraces(t *testing.T) {
	tb := newTB(t, Options{Seed: 31})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(2 * time.Second)

	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil {
			t.Fatal(err)
		}
	}

	traces := attestTraces(tb, res.Vid)
	if len(traces) != runs {
		t.Fatalf("got %d complete attestation traces, want %d", len(traces), runs)
	}
	seen := make(map[string]bool)
	for _, tr := range traces {
		if seen[tr.ID] {
			t.Fatalf("trace ID %s repeated", tr.ID)
		}
		seen[tr.ID] = true
		if tr.Outcome != "ok" {
			t.Errorf("trace %s outcome %q, want ok", tr.ID, tr.Outcome)
		}
		if tr.Prop != string(properties.RuntimeIntegrity) {
			t.Errorf("trace %s prop %q", tr.ID, tr.Prop)
		}
		coversFourEntities(t, tr)
		checkNesting(t, tr)
	}

	// The launch, too, leaves one complete trace rooted at the customer API.
	var launches int
	for _, tr := range tb.Obs.Traces(obs.TraceFilter{CompleteOnly: true}) {
		if tr.Name == "api:launch_vm" {
			launches++
			checkNesting(t, tr)
		}
	}
	if launches != 1 {
		t.Fatalf("got %d launch traces, want 1", launches)
	}
}

// TestPeriodicAttestationTraces: every periodic tick the engine runs yields
// exactly one complete engine-rooted trace, annotated with the engine
// outcome and covering the attestation server plus a cloud server.
func TestPeriodicAttestationTraces(t *testing.T) {
	tb := newTB(t, Options{Seed: 32})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(time.Second)

	if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(7 * time.Second)
	fetched, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched) == 0 {
		t.Fatal("no periodic verdicts accumulated")
	}
	flushed, err := cu.StopPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	produced := len(fetched) + len(flushed)

	var producedTraces int
	for _, tr := range tb.Obs.Traces(obs.TraceFilter{Vid: res.Vid, CompleteOnly: true}) {
		if tr.Name != "periodic" {
			continue
		}
		checkNesting(t, tr)
		var root *obs.Span
		for i := range tr.Spans {
			if tr.Spans[i].Parent == "" {
				root = &tr.Spans[i]
			}
		}
		if root == nil || root.Entity != "attest-server" {
			t.Fatalf("periodic trace %s not rooted at the attest-server engine: %+v", tr.ID, root)
		}
		var engine string
		for _, n := range root.Notes {
			if n.Key == "engine" {
				engine = n.Value
			}
		}
		if engine == "" {
			t.Fatalf("periodic root span has no engine annotation: %+v", root)
		}
		if engine != "produced" {
			continue // skipped / stopped-discard ticks carry no verdict
		}
		producedTraces++
		ents := entitiesOf(tr)
		if !ents["attest-server"] {
			t.Errorf("periodic trace %s missing attest-server spans (%v)", tr.ID, ents)
		}
		var cloud bool
		for e := range ents {
			if strings.HasPrefix(e, "cloud-server-") {
				cloud = true
			}
		}
		if !cloud {
			t.Errorf("periodic trace %s has no cloud-server measurement span (%v)", tr.ID, ents)
		}
	}
	if producedTraces != produced {
		t.Fatalf("%d produced periodic results but %d produced traces", produced, producedTraces)
	}
}

// TestTracesUnderChaos: under an injected-fault network the attestation
// still yields a complete four-entity trace; retried RPC attempts show up
// as sibling rpc:* spans under the same parent, and the parent carries the
// retry annotation.
func TestTracesUnderChaos(t *testing.T) {
	fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{
		Seed:      5,
		DropRate:  0.15,
		ResetRate: 0.25,
		DelayRate: 0.3,
		MaxDelay:  2 * time.Millisecond,
	})
	tb := newTB(t, Options{
		Seed:        80,
		Network:     fn,
		CallTimeout: 2 * time.Second,
		Retry:       rpc.RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		Breaker:     rpc.BreakerPolicy{Threshold: -1},
	})
	var cu *Customer
	var err error
	for i := 0; i < 10; i++ {
		if cu, err = tb.NewCustomer("alice"); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("customer connect under chaos: %v", err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(time.Second)

	if _, err := cu.AttestReport(res.Vid, properties.RuntimeIntegrity); err != nil {
		t.Fatalf("attestation under chaos: %v", err)
	}

	traces := attestTraces(tb, res.Vid)
	if len(traces) == 0 {
		t.Fatal("no complete attestation trace under chaos")
	}
	// Newest first: traces[0] is the trace of the attempt that succeeded.
	coversFourEntities(t, traces[0])
	checkNesting(t, traces[0])

	// Scan the whole store for evidence of retries: >= 2 sibling rpc:* spans
	// under one parent, distinct attempt numbers, and the parent annotated.
	byParent := make(map[string][]obs.Span)
	parents := make(map[string]obs.Span)
	var all []obs.Span
	for _, tr := range tb.Obs.Traces(obs.TraceFilter{}) {
		all = append(all, tr.Spans...)
	}
	for _, sp := range all {
		parents[sp.ID] = sp
		if strings.HasPrefix(sp.Name, "rpc:") {
			byParent[sp.Parent] = append(byParent[sp.Parent], sp)
		}
	}
	foundSiblings := false
	for pid, attempts := range byParent {
		if len(attempts) < 2 {
			continue
		}
		nums := make(map[string]bool)
		for _, a := range attempts {
			for _, n := range a.Notes {
				if n.Key == "attempt" {
					nums[n.Value] = true
				}
			}
		}
		if len(nums) < 2 {
			continue
		}
		p, ok := parents[pid]
		if !ok {
			continue
		}
		for _, n := range p.Notes {
			if n.Key == "retry" {
				foundSiblings = true
			}
		}
	}
	if !foundSiblings {
		t.Fatal("chaos run produced no retried attempt recorded as annotated sibling rpc spans")
	}

	st := fn.Stats()
	if st.Drops == 0 && st.Resets == 0 {
		t.Fatalf("chaos inert (%+v) — test proves nothing", st)
	}
}

// TestStaleReportServeAnnotated: when the attestation server is partitioned
// and the controller degrades to the last-known-good verdict, the trace of
// that request is annotated degraded=stale-report.
func TestStaleReportServeAnnotated(t *testing.T) {
	fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{Seed: 5})
	tb := newTB(t, Options{
		Seed:        65,
		Network:     fn,
		CallTimeout: 250 * time.Millisecond,
		Retry:       rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:     rpc.BreakerPolicy{Threshold: -1},
	})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	tb.RunFor(time.Second)

	// Populate the last-known-good cache, then blackhole the appraiser.
	if rep, err := cu.AttestReport(res.Vid, properties.RuntimeIntegrity); err != nil || rep.Stale {
		t.Fatalf("baseline attest: err=%v stale=%v", err, rep != nil && rep.Stale)
	}
	tb.RunFor(3 * time.Second)
	fn.Partition("attestation-server")

	// Ask the controller directly (the customer-facing rpc timeout is
	// shorter than the controller's own retry budget during the partition,
	// so the degraded answer outlives a customer call).
	rep, err := tb.Ctrl.Attest(wire.AttestRequest{
		Vid: res.Vid, Prop: properties.RuntimeIntegrity, N1: cryptoutil.MustNonce(),
	})
	if err != nil {
		t.Fatalf("attest during partition: %v", err)
	}
	if !rep.Stale {
		t.Fatal("report during partition not flagged stale")
	}

	// The direct call has no customer-api parent, so the controller span
	// roots its own trace.
	var degraded *obs.Trace
	for _, tr := range tb.Obs.Traces(obs.TraceFilter{Vid: res.Vid, CompleteOnly: true}) {
		if tr.Name == "controller.attest" {
			degraded = &tr
			break // newest first
		}
	}
	if degraded == nil {
		t.Fatal("no controller-rooted trace for the degraded serve")
	}
	var annotated bool
	for _, sp := range degraded.Spans {
		for _, n := range sp.Notes {
			if n.Key == "degraded" && n.Value == "stale-report" {
				annotated = true
			}
		}
	}
	if !annotated {
		t.Fatalf("stale serve not annotated in trace %s: %+v", degraded.ID, degraded.Spans)
	}
	if degraded.Outcome != "degraded" {
		t.Fatalf("degraded trace outcome %q, want degraded", degraded.Outcome)
	}
}
