package cloudsim

import (
	"testing"
	"time"

	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
)

// TestFullFlowUnderChaos is the acceptance test for the fault-tolerant
// protocol stack: with every link injecting >= 10% connection drops plus
// random per-operation delays, the complete customer lifecycle — launch,
// one-time attestation, periodic start/fetch/stop, terminate — must still
// succeed end to end. Faults are seeded, so the run is reproducible.
func TestFullFlowUnderChaos(t *testing.T) {
	fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{
		Seed:      5,
		DropRate:  0.15, // >= 10% of dials refused
		ResetRate: 0.25, // connections torn mid-stream force redials
		DelayRate: 0.3,
		MaxDelay:  2 * time.Millisecond,
	})
	tb := newTB(t, Options{
		Seed:        80,
		Network:     fn,
		CallTimeout: 2 * time.Second,
		Retry:       rpc.RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		Breaker:     rpc.BreakerPolicy{Threshold: -1},
	})
	// The customer's eager connect probe is deliberately single-attempt (it
	// must fail closed under an active MITM), so joining under chaos is the
	// customer's own retry loop.
	var cu *Customer
	var err error
	for i := 0; i < 10; i++ {
		if cu, err = tb.NewCustomer("alice"); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("customer connect under chaos (10 attempts): %v", err)
	}

	res := launch(t, cu, basicLaunch())
	tb.RunFor(time.Second)

	// One-time attestation.
	rep, err := cu.AttestReport(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatalf("one-time attestation under chaos: %v", err)
	}
	if !rep.Verdict.Healthy {
		t.Fatalf("attestation under chaos unhealthy: %v", rep.Verdict)
	}
	if rep.Stale {
		t.Fatalf("attestation under chaos degraded to stale — infrastructure gave up: %+v", rep)
	}

	// Full periodic cycle.
	if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 2*time.Second); err != nil {
		t.Fatalf("periodic start under chaos: %v", err)
	}
	tb.RunFor(7 * time.Second)
	fetched, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatalf("periodic fetch under chaos: %v", err)
	}
	if len(fetched) == 0 {
		t.Fatal("no periodic verdicts accumulated under chaos")
	}
	tb.RunFor(3 * time.Second)
	if _, err := cu.StopPeriodic(res.Vid, properties.CPUAvailability); err != nil {
		t.Fatalf("periodic stop under chaos: %v", err)
	}

	if err := cu.Terminate(res.Vid); err != nil {
		t.Fatalf("terminate under chaos: %v", err)
	}
	if st, err := tb.Ctrl.VMState(res.Vid); err != nil || st != "terminated" {
		t.Fatalf("state %q err %v after terminate", st, err)
	}

	// The chaos must actually have bitten, or this test proves nothing.
	st := fn.Stats()
	if st.Drops == 0 {
		t.Fatalf("no connection drops injected (stats %+v) — chaos inert", st)
	}
	if st.Delays == 0 {
		t.Fatalf("no delays injected (stats %+v) — chaos inert", st)
	}
	t.Logf("survived chaos: %+v", st)
}
