package cloudsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/server"
)

func newTB(t *testing.T, opts Options) *Testbed {
	t.Helper()
	tb, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func launch(t *testing.T, cu *Customer, req controller.LaunchRequest) controller.LaunchResult {
	t.Helper()
	res, err := cu.Launch(req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("launch rejected: %s", res.Reason)
	}
	return res
}

func basicLaunch() controller.LaunchRequest {
	return controller.LaunchRequest{
		ImageName: "ubuntu",
		Flavor:    "small",
		Workload:  "database",
		Props:     properties.All,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		MinShare:  0.25,
		Pin:       -1,
	}
}

func TestLaunchPipelineStages(t *testing.T) {
	tb := newTB(t, Options{Seed: 1})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	want := []string{"scheduling", "networking", "block_device_mapping", "spawning", "attestation"}
	if len(res.Stages) != len(want) {
		t.Fatalf("stages = %+v", res.Stages)
	}
	var total time.Duration
	for i, st := range res.Stages {
		if st.Stage != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, st.Stage, want[i])
		}
		if st.Duration <= 0 {
			t.Fatalf("stage %s has no duration", st.Stage)
		}
		total += st.Duration
	}
	if total < 2*time.Second || total > 8*time.Second {
		t.Fatalf("total launch time %v outside the paper's range", total)
	}
	if !res.Verdict.Healthy {
		t.Fatalf("pristine launch attested unhealthy: %v", res.Verdict)
	}
	if res.Server == "" {
		t.Fatal("no server assigned")
	}
}

func TestStartupAttestationRejectsCorruptImage(t *testing.T) {
	tb := newTB(t, Options{Seed: 2})
	cu, _ := tb.NewCustomer("alice")
	tb.CorruptNextImage()
	res, err := cu.Launch(basicLaunch())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("corrupted image launched successfully")
	}
	if !strings.Contains(res.Reason, "image") {
		t.Fatalf("rejection reason %q does not blame the image", res.Reason)
	}
	// The rejected VM must not be running anywhere.
	if _, err := tb.ServerOf(res.Vid); err == nil {
		t.Fatal("rejected VM still placed")
	}
}

func TestStartupAttestationReschedulesOffTamperedPlatform(t *testing.T) {
	// Three servers; two have trojaned hypervisors. The scheduler prefers
	// emptier servers arbitrarily, but attestation must steer the VM onto
	// the sole pristine platform.
	tamper := map[string]bool{serverName(0): true, serverName(2): true}
	tb := newTB(t, Options{Seed: 3, Servers: 3, TamperPlatform: tamper})
	cu, _ := tb.NewCustomer("alice")
	for i := 0; i < 3; i++ {
		res := launch(t, cu, basicLaunch())
		if res.Server != serverName(1) {
			t.Fatalf("VM placed on tampered server %s", res.Server)
		}
	}
}

func TestAllPlatformsTamperedRejectsLaunch(t *testing.T) {
	tamper := map[string]bool{serverName(0): true, serverName(1): true, serverName(2): true}
	tb := newTB(t, Options{Seed: 4, Servers: 3, TamperPlatform: tamper})
	cu, _ := tb.NewCustomer("alice")
	res, err := cu.Launch(basicLaunch())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("launch succeeded with every platform compromised")
	}
}

func TestRuntimeIntegrityEndToEnd(t *testing.T) {
	tb := newTB(t, Options{Seed: 5})
	cu, _ := tb.NewCustomer("alice")
	res := launch(t, cu, basicLaunch())
	tb.RunFor(2 * time.Second)

	v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("clean VM judged infected: %v", v)
	}

	// Infect with a rootkit; the next attestation must catch it and the
	// response policy (Termination for runtime integrity) must fire.
	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	g.InfectRootkit("stealth-miner")
	v, err = cu.Attest(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatal("rootkit passed runtime integrity end to end")
	}
	events := tb.Ctrl.Events()
	if len(events) != 1 || events[0].Response != controller.Terminate {
		t.Fatalf("expected termination response, got %+v", events)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "terminated" {
		t.Fatalf("VM state %q after response", st)
	}
}

func TestAvailabilityAttackDetectedAndMigrated(t *testing.T) {
	tb := newTB(t, Options{Seed: 6, Servers: 2})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Workload = "spinner"
	req.Pin = 1 // keep clear of Dom0's pCPU 0
	res := launch(t, cu, req)
	srcServer := res.Server

	// Healthy first: fair share on an idle server.
	v, err := cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("unloaded VM failed availability: %v", v)
	}

	// Co-locate the starvation attacker on the same pCPU.
	if _, err := tb.LaunchCoResident(srcServer, "attack:cpu-starver", 1); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(time.Second)
	v, err = cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatalf("starved VM judged healthy: %v", v)
	}
	// Policy: migration to the other server.
	events := tb.Ctrl.Events()
	if len(events) != 1 || events[0].Response != controller.Migrate {
		t.Fatalf("expected migration, got %+v", events)
	}
	newServer, err := tb.Ctrl.VMServer(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	if newServer == srcServer {
		t.Fatal("VM not moved off the attacked server")
	}
	// After migration, availability recovers.
	tb.RunFor(time.Second)
	v, err = cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("migrated VM still starved: %v", v)
	}
}

func TestCovertChannelDetectedEndToEnd(t *testing.T) {
	tb := newTB(t, Options{Seed: 7, Servers: 2})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Workload = "attack:covert-sender" // colluding insider in the VM
	req.Allowlist = nil
	req.Pin = 1
	res := launch(t, cu, req)

	// Co-resident receiver probing on the same pCPU.
	if _, err := tb.LaunchCoResident(res.Server, "probe", 1); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(500 * time.Millisecond)
	v, err := cu.Attest(res.Vid, properties.CovertChannelFreedom)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatalf("covert channel not detected end to end: %v", v)
	}
}

func TestCovertChannelBenignVMPasses(t *testing.T) {
	tb := newTB(t, Options{Seed: 8})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Pin = 1
	res := launch(t, cu, req)
	if _, err := tb.LaunchCoResident(res.Server, "probe", 1); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(500 * time.Millisecond)
	v, err := cu.Attest(res.Vid, properties.CovertChannelFreedom)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("benign database VM flagged: %v", v)
	}
}

func TestPeriodicAttestationDeliversFreshResults(t *testing.T) {
	tb := newTB(t, Options{Seed: 9})
	cu, _ := tb.NewCustomer("alice")
	res := launch(t, cu, basicLaunch())
	if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(21 * time.Second)
	verdicts, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) < 3 {
		t.Fatalf("got %d periodic verdicts over ~21s at 5s frequency", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.Healthy {
			t.Fatalf("healthy VM flagged by periodic attestation: %v", v)
		}
	}
	// Fetch drains: immediate refetch is empty.
	verdicts, err = cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 0 {
		t.Fatalf("fetch did not drain: %d left", len(verdicts))
	}
	// Stop ends the stream.
	if _, err := cu.StopPeriodic(res.Vid, properties.CPUAvailability); err != nil {
		t.Fatal(err)
	}
	before := tb.Clock.Now()
	tb.RunFor(10 * time.Second)
	if tb.Clock.Now()-before < 10*time.Second {
		t.Fatal("RunFor under-advanced after stop")
	}
	if vs, _ := cu.FetchPeriodic(res.Vid, properties.CPUAvailability); len(vs) != 0 {
		t.Fatalf("results produced after stop: %d", len(vs))
	}
}

func TestAttestUnprovisionedPropertyRejected(t *testing.T) {
	tb := newTB(t, Options{Seed: 10})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Props = []properties.Property{properties.RuntimeIntegrity}
	res := launch(t, cu, req)
	if _, err := cu.Attest(res.Vid, properties.CPUAvailability); err == nil {
		t.Fatal("attested a property the VM was not provisioned with")
	}
}

func TestAttestUnknownVM(t *testing.T) {
	tb := newTB(t, Options{Seed: 11})
	cu, _ := tb.NewCustomer("alice")
	if _, err := cu.Attest("vm-9999", properties.RuntimeIntegrity); err == nil {
		t.Fatal("attested a nonexistent VM")
	}
}

func TestCustomerTerminate(t *testing.T) {
	tb := newTB(t, Options{Seed: 12})
	cu, _ := tb.NewCustomer("alice")
	res := launch(t, cu, basicLaunch())
	if err := cu.Terminate(res.Vid); err != nil {
		t.Fatal(err)
	}
	if _, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err == nil {
		t.Fatal("attested a terminated VM")
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "terminated" {
		t.Fatalf("state %q", st)
	}
}

func TestSuspensionPolicyAndResume(t *testing.T) {
	policy := controller.DefaultPolicy()
	policy[properties.RuntimeIntegrity] = controller.Suspend
	tb := newTB(t, Options{Seed: 13, Policy: policy})
	cu, _ := tb.NewCustomer("alice")
	res := launch(t, cu, basicLaunch())
	g, _ := tb.GuestOf(res.Vid)
	g.InfectRootkit("stealth-miner")
	if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || v.Healthy {
		t.Fatalf("infection not flagged (v=%v err=%v)", v, err)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "suspended" {
		t.Fatalf("state %q, want suspended", st)
	}
	// The operator cleans the VM and the controller resumes it.
	if err := tb.Ctrl.ResumeVM(res.Vid); err != nil {
		t.Fatal(err)
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "active" {
		t.Fatalf("state %q after resume", st)
	}
}

func TestMultipleCustomersIsolated(t *testing.T) {
	tb := newTB(t, Options{Seed: 14})
	alice, _ := tb.NewCustomer("alice")
	bob, _ := tb.NewCustomer("bob")
	ra := launch(t, alice, basicLaunch())
	rb := launch(t, bob, basicLaunch())
	if ra.Vid == rb.Vid {
		t.Fatal("two customers share a Vid")
	}
	va, err := alice.Attest(ra.Vid, properties.RuntimeIntegrity)
	if err != nil || !va.Healthy {
		t.Fatalf("alice attest: %v %v", va, err)
	}
	vb, err := bob.Attest(rb.Vid, properties.RuntimeIntegrity)
	if err != nil || !vb.Healthy {
		t.Fatalf("bob attest: %v %v", vb, err)
	}
}

func TestSchedulerRespectsCapacity(t *testing.T) {
	tb := newTB(t, Options{Seed: 15, Servers: 1, Capacity: serverCap(2, 4096, 40)})
	cu, _ := tb.NewCustomer("alice")
	req := basicLaunch()
	req.Flavor = "small" // 1 vCPU each; Capacity 2 vCPUs
	launch(t, cu, req)
	launch(t, cu, req)
	res, err := cu.Launch(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("third VM launched beyond capacity")
	}
}

func serverCap(vcpus, mem, disk int) (c serverCapacity) {
	c.VCPUs, c.MemoryMB, c.DiskGB = vcpus, mem, disk
	return
}

type serverCapacity = server.Capacity

// TestConcurrentCustomers exercises thread safety: several customers
// launching and attesting in parallel over the shared infrastructure.
func TestConcurrentCustomers(t *testing.T) {
	tb := newTB(t, Options{Seed: 16, Servers: 3})
	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cust-%d", i)
		go func() {
			cu, err := tb.NewCustomer(name)
			if err != nil {
				errs <- err
				return
			}
			req := basicLaunch()
			req.Flavor = "small"
			res, err := cu.Launch(req)
			if err != nil {
				errs <- err
				return
			}
			if !res.OK {
				errs <- fmt.Errorf("%s: launch rejected: %s", name, res.Reason)
				return
			}
			for j := 0; j < 3; j++ {
				v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity)
				if err != nil {
					errs <- fmt.Errorf("%s attest: %w", name, err)
					return
				}
				if !v.Healthy {
					errs <- fmt.Errorf("%s: clean VM unhealthy: %v", name, v)
					return
				}
			}
			errs <- cu.Terminate(res.Vid)
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestScaleManyVMsManyServers launches a fleet across a larger cloud and
// attests every VM — the scalability smoke test for the scheduler, the
// attestation fan-out and the per-VM bookkeeping.
func TestScaleManyVMsManyServers(t *testing.T) {
	tb := newTB(t, Options{Seed: 17, Servers: 8, PCPUsPerServer: 4})
	cu, _ := tb.NewCustomer("fleet-owner")
	req := basicLaunch()
	req.Flavor = "small"
	var vids []string
	perServer := make(map[string]int)
	for i := 0; i < 24; i++ {
		res, err := cu.Launch(req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("launch %d rejected: %s", i, res.Reason)
		}
		vids = append(vids, res.Vid)
		perServer[res.Server]++
	}
	// The most-free weigher spreads the fleet: 24 VMs over 8 servers = 3 each.
	for srv, n := range perServer {
		if n != 3 {
			t.Errorf("server %s hosts %d VMs, want 3 (weigher not balancing)", srv, n)
		}
	}
	tb.RunFor(time.Second)
	for _, vid := range vids {
		v, err := cu.Attest(vid, properties.RuntimeIntegrity)
		if err != nil {
			t.Fatalf("%s: %v", vid, err)
		}
		if !v.Healthy {
			t.Fatalf("%s unhealthy: %v", vid, v)
		}
	}
	// Tear half of them down; capacity is released.
	for i, vid := range vids {
		if i%2 == 0 {
			if err := cu.Terminate(vid); err != nil {
				t.Fatal(err)
			}
		}
	}
	free := 0
	for _, srv := range tb.Servers {
		free += srv.Free().VCPUs
	}
	// 8 servers x 16 vCPUs - 12 remaining VMs x1 - 8 Dom0... Dom0 is not
	// capacity-accounted; expect 128 - 12 = 116.
	if free != 116 {
		t.Fatalf("free vCPUs after teardown = %d, want 116", free)
	}
}

// TestHotPathOptions wires the hot-path knobs end to end: with BatchVerify
// and Resume on, launches and attestations still succeed, and the shared
// batch verifier actually served the appraisals' signature checks.
func TestHotPathOptions(t *testing.T) {
	tb := newTB(t, Options{Seed: 1, BatchVerify: true, Resume: true})
	cu, err := tb.NewCustomer("alice")
	if err != nil {
		t.Fatal(err)
	}
	res := launch(t, cu, basicLaunch())
	v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("healthy VM attested unhealthy: %s", v.Reason)
	}
	if st := tb.Batch.Stats(); st.Items == 0 {
		t.Fatal("batch verifier saw no verification requests; appraisal path is not routed through it")
	}
}
