package xen

import "cloudmonatt/internal/sim"

// Segment is one uninterrupted run of a vCPU on its pCPU.
type Segment struct {
	VCPU  *VCPU
	Start sim.Time
	End   sim.Time
}

// Duration returns the segment length.
func (s Segment) Duration() sim.Time { return s.End - s.Start }

// Recorder collects run segments of selected domains. Register it with
// Hypervisor.Observe. A nil domain filter records everything.
type Recorder struct {
	domains  map[*Domain]bool
	segments []Segment
}

// NewRecorder returns a recorder limited to the given domains (all domains
// when none are given).
func NewRecorder(doms ...*Domain) *Recorder {
	r := &Recorder{}
	if len(doms) > 0 {
		r.domains = make(map[*Domain]bool, len(doms))
		for _, d := range doms {
			r.domains[d] = true
		}
	}
	return r
}

// ObserveRunSegment implements RunSegmentObserver.
func (r *Recorder) ObserveRunSegment(v *VCPU, start, end sim.Time) {
	if r.domains != nil && !r.domains[v.dom] {
		return
	}
	r.segments = append(r.segments, Segment{v, start, end})
}

// Segments returns all recorded segments in completion order.
func (r *Recorder) Segments() []Segment { return r.segments }

// Reset discards recorded segments.
func (r *Recorder) Reset() { r.segments = nil }

// DomainSegments returns the recorded segments belonging to d.
func (r *Recorder) DomainSegments(d *Domain) []Segment {
	var out []Segment
	for _, s := range r.segments {
		if s.VCPU.dom == d {
			out = append(out, s)
		}
	}
	return out
}

// MergeAdjacent coalesces segments of the same vCPU whose gap is below eps.
// The covert-channel receiver observes the *sender's* occupancy as the gaps
// in its own execution; merging removes scheduler-artifact micro-splits so a
// logical burst appears as one interval.
func MergeAdjacent(segs []Segment, eps sim.Time) []Segment {
	if len(segs) == 0 {
		return nil
	}
	out := []Segment{segs[0]}
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.VCPU == last.VCPU && s.Start-last.End <= eps {
			last.End = s.End
			continue
		}
		out = append(out, s)
	}
	return out
}

// Gaps returns the idle intervals between consecutive segments — from the
// point of view of the vCPU that produced segs, the time someone else held
// the pCPU. This is how the covert-channel receiver infers the sender's CPU
// usage (paper Fig. 4).
func Gaps(segs []Segment) []Segment {
	var out []Segment
	for i := 1; i < len(segs); i++ {
		if segs[i].Start > segs[i-1].End {
			out = append(out, Segment{VCPU: segs[i].VCPU, Start: segs[i-1].End, End: segs[i].Start})
		}
	}
	return out
}
