// Package xen models a Type-I (Xen-like) hypervisor with the classic
// "credit" scheduler, faithfully enough to reproduce the two scheduler
// attacks in the CloudMonatt paper (ISCA'15 §4.4, §4.5):
//
//   - credits are debited by *sampling*: every tick (10 ms) the vCPU that
//     happens to be running pays CreditsPerTick, so a vCPU that runs in
//     short bursts timed between ticks is never charged;
//   - every accounting period (30 ms) active vCPUs earn a weight-
//     proportional share of credits, capped at CreditCap;
//   - a vCPU with positive credits is UNDER, otherwise OVER;
//   - a vCPU that wakes while UNDER enters BOOST priority and preempts
//     lower-priority vCPUs — the lever used by both the covert channel
//     (IPI-timed sender bursts) and the availability attack (IPI ping-pong).
//
// The model runs on the deterministic discrete-event kernel in internal/sim,
// so a 2-minute experiment executes in microseconds and replays bit-for-bit.
package xen

import (
	"fmt"
	"math/rand"
	"time"

	"cloudmonatt/internal/sim"
)

// Priority is a scheduling class. Lower numeric value schedules first.
type Priority int

// Scheduling classes of the credit scheduler.
const (
	PrioBoost Priority = iota // transient post-wakeup priority
	PrioUnder                 // has credits remaining
	PrioOver                  // exhausted its credits
	numPrios
)

// String returns the Xen name of the priority class.
func (p Priority) String() string {
	switch p {
	case PrioBoost:
		return "BOOST"
	case PrioUnder:
		return "UNDER"
	case PrioOver:
		return "OVER"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// VCPUState tracks what a virtual CPU is currently doing.
type VCPUState int

// States of a vCPU.
const (
	StateBlocked  VCPUState = iota // waiting for a timer or an IPI
	StateRunnable                  // on a run queue
	StateRunning                   // currently on a pCPU
	StateDone                      // program finished; never runs again
)

// String returns a short state name.
func (s VCPUState) String() string {
	switch s {
	case StateBlocked:
		return "blocked"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("VCPUState(%d)", int(s))
}

// Config holds the scheduler parameters. DefaultConfig matches classic Xen
// credit1 defaults.
type Config struct {
	TickPeriod     sim.Time // credit-debit sampling period (10 ms in Xen)
	AcctPeriod     sim.Time // credit redistribution period (30 ms in Xen)
	Timeslice      sim.Time // maximum uninterrupted run of one vCPU (30 ms)
	CreditsPerTick int      // debit taken from the vCPU sampled at a tick
	CreditsPerAcct int      // credits distributed per pCPU per AcctPeriod
	CreditCap      int      // accumulation ceiling (idle vCPUs bank credits)
	CreditFloor    int      // debt floor
	BoostEnabled   bool     // grant BOOST on wakeup of an UNDER vCPU
	IPILatency     sim.Time // delivery delay of an inter-processor interrupt
	TickJitter     sim.Time // uniform jitter width applied to each tick (breaks
	// pathological resonance between deterministic burst patterns and the
	// sampling grid; real hardware timers have comparable noise)

	// ExactAccounting replaces credit1's tick-*sampled* debiting with exact
	// per-run charging (credits ∝ CPU time consumed). This is the defense
	// both paper attacks are vulnerable to in reverse: with exact charging
	// a tick-evading vCPU can no longer hoard credits, so it drops to OVER
	// like any other hog. Used by the accounting ablation bench.
	ExactAccounting bool

	// DiskBytesPerSec is the service rate of the server's shared storage
	// device (the contended resource of the Resource-Freeing Attack).
	DiskBytesPerSec float64
}

// DefaultConfig returns the Xen credit1 defaults used throughout the paper's
// experiments.
func DefaultConfig() Config {
	return Config{
		TickPeriod:      10 * time.Millisecond,
		AcctPeriod:      30 * time.Millisecond,
		Timeslice:       30 * time.Millisecond,
		CreditsPerTick:  100,
		CreditsPerAcct:  300,
		CreditCap:       300,
		CreditFloor:     -300,
		BoostEnabled:    true,
		IPILatency:      50 * time.Microsecond,
		TickJitter:      400 * time.Microsecond,
		DiskBytesPerSec: 200 << 20, // 200 MB/s shared storage
	}
}

// Burst describes what a vCPU's program wants to do next. The scheduler
// calls Program.NextBurst when the vCPU is dispatched with no work pending.
type Burst struct {
	Run   sim.Time // CPU time to consume before the next transition
	Block sim.Time // after running, sleep this long, then wake (self-timer)
	Halt  bool     // after running, halt until an external wake (IPI)
	Done  bool     // after running, the program is finished for good

	// IOBytes, when positive, submits a request of that size to the shared
	// storage device after the run; the vCPU blocks until the device
	// completes it (FIFO behind other VMs' requests) and wakes like any IO
	// interrupt. Takes precedence over Block/Halt.
	IOBytes int

	// BusLocks is the number of locked (bus-serializing) memory operations
	// the burst executes — atomic read-modify-writes spanning cache lines.
	// Benign software issues a trickle; the memory-bus covert channel (Wu
	// et al., paper ref [44]) modulates dense lock bursts to signal bits.
	// Counts are observable via the bus-lock performance counter.
	BusLocks int

	// IPITo, when non-nil, sends an inter-processor interrupt to the target
	// vCPU once this burst's Run completes (or immediately for Run == 0).
	// Colluding attack vCPUs use this to hand the BOOST baton around.
	IPITo *VCPU
}

// Env is the limited view of the hypervisor a Program may use to decide its
// next burst.
type Env interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// Rand returns the deterministic random source of the simulation.
	Rand() *rand.Rand
	// TickPeriod returns the scheduler's credit-sampling period; attack
	// programs use it to time bursts between ticks.
	TickPeriod() sim.Time
}

// Program supplies the compute/sleep behaviour of one vCPU.
type Program interface {
	// NextBurst is invoked when the vCPU is dispatched with no pending work.
	NextBurst(env Env, self *VCPU) Burst
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(env Env, self *VCPU) Burst

// NextBurst calls f.
func (f ProgramFunc) NextBurst(env Env, self *VCPU) Burst { return f(env, self) }

// Domain is a virtual machine: a named set of vCPUs with a scheduling weight.
type Domain struct {
	ID     int
	Name   string
	Weight int

	hv    *Hypervisor
	vcpus []*VCPU
}

// VCPUs returns the domain's virtual CPUs.
func (d *Domain) VCPUs() []*VCPU { return d.vcpus }

// TotalRuntime returns the accumulated CPU time over all the domain's vCPUs.
func (d *Domain) TotalRuntime() sim.Time {
	var t sim.Time
	for _, v := range d.vcpus {
		t += v.TotalRuntime()
	}
	return t
}

// Done reports whether every vCPU of the domain has finished its program.
func (d *Domain) Done() bool {
	for _, v := range d.vcpus {
		if v.state != StateDone {
			return false
		}
	}
	return len(d.vcpus) > 0
}

// DoneAt returns the latest completion time across the domain's vCPUs, or
// zero and false if any vCPU is still live.
func (d *Domain) DoneAt() (sim.Time, bool) {
	if !d.Done() {
		return 0, false
	}
	var max sim.Time
	for _, v := range d.vcpus {
		if v.doneAt > max {
			max = v.doneAt
		}
	}
	return max, true
}

// VCPU is one virtual CPU, pinned to a physical CPU.
type VCPU struct {
	dom     *Domain
	id      int
	pcpu    *PCPU
	program Program

	state   VCPUState
	prio    Priority
	credits int
	boosted bool
	tok     uint64 // enqueue token; bumping it invalidates stale queue entries

	remaining  sim.Time // unfinished part of the current burst
	pending    Burst    // burst currently being executed
	havePend   bool
	runStart   sim.Time // when the current dispatch began
	lastWake   sim.Time // when the vCPU last became runnable
	totalRun   sim.Time
	doneAt     sim.Time
	wakeEvent  *sim.Event
	dispatches uint64
}

// Domain returns the owning domain.
func (v *VCPU) Domain() *Domain { return v.dom }

// ID returns the per-domain vCPU index.
func (v *VCPU) ID() int { return v.id }

// PCPU returns the physical CPU this vCPU is pinned to.
func (v *VCPU) PCPU() *PCPU { return v.pcpu }

// State returns the current scheduling state.
func (v *VCPU) State() VCPUState { return v.state }

// Priority returns the current scheduling class (BOOST if boosted).
func (v *VCPU) Priority() Priority {
	if v.boosted {
		return PrioBoost
	}
	return v.prio
}

// Credits returns the current credit balance.
func (v *VCPU) Credits() int { return v.credits }

// TotalRuntime returns the accumulated CPU time, including the in-progress
// slice if the vCPU is running right now.
func (v *VCPU) TotalRuntime() sim.Time {
	t := v.totalRun
	if v.state == StateRunning {
		t += v.hv().k.Now() - v.runStart
	}
	return t
}

// Dispatches returns how many times this vCPU has been placed on a pCPU.
func (v *VCPU) Dispatches() uint64 { return v.dispatches }

// LastWake returns when the vCPU most recently became runnable; together
// with run-segment start times this yields wakeup-to-dispatch latency.
func (v *VCPU) LastWake() sim.Time { return v.lastWake }

// String identifies the vCPU as domain/vcpuN.
func (v *VCPU) String() string { return fmt.Sprintf("%s/v%d", v.dom.Name, v.id) }

func (v *VCPU) hv() *Hypervisor { return v.dom.hv }

// RunSegmentObserver receives every completed run segment of a traced vCPU.
// The Performance Monitor Unit and the VMM Profile Tool subscribe here.
type RunSegmentObserver interface {
	ObserveRunSegment(v *VCPU, start, end sim.Time)
}

// BusLockObserver receives the locked-operation count of each completed
// burst (the bus-lock performance counter's event stream).
type BusLockObserver interface {
	ObserveBusLocks(v *VCPU, at sim.Time, count int)
}

// BusLockFunc adapts a function to BusLockObserver.
type BusLockFunc func(v *VCPU, at sim.Time, count int)

// ObserveBusLocks calls f.
func (f BusLockFunc) ObserveBusLocks(v *VCPU, at sim.Time, count int) { f(v, at, count) }

// RunSegmentFunc adapts a function to RunSegmentObserver.
type RunSegmentFunc func(v *VCPU, start, end sim.Time)

// ObserveRunSegment calls f.
func (f RunSegmentFunc) ObserveRunSegment(v *VCPU, start, end sim.Time) { f(v, start, end) }

// Hypervisor owns the pCPUs, domains and the scheduler state.
type Hypervisor struct {
	k            *sim.Kernel
	cfg          Config
	pcpus        []*PCPU
	domains      []*Domain
	disk         *IODevice
	nextDomID    int
	observers    []RunSegmentObserver
	busObservers []BusLockObserver
}

// New creates a hypervisor with n physical CPUs on the given kernel and
// starts the periodic tick and accounting events.
func New(k *sim.Kernel, cfg Config, nPCPUs int) *Hypervisor {
	if nPCPUs <= 0 {
		panic("xen: need at least one pCPU")
	}
	hv := &Hypervisor{k: k, cfg: cfg}
	if cfg.DiskBytesPerSec <= 0 {
		cfg.DiskBytesPerSec = 200 << 20
		hv.cfg.DiskBytesPerSec = cfg.DiskBytesPerSec
	}
	hv.disk = newIODevice(hv, cfg.DiskBytesPerSec)
	for i := 0; i < nPCPUs; i++ {
		p := &PCPU{id: i, hv: hv}
		hv.pcpus = append(hv.pcpus, p)
		p.scheduleTick()
		p.scheduleAcct()
	}
	return hv
}

// Kernel returns the simulation kernel driving this hypervisor.
func (hv *Hypervisor) Kernel() *sim.Kernel { return hv.k }

// Config returns the scheduler configuration.
func (hv *Hypervisor) Config() Config { return hv.cfg }

// PCPUs returns the physical CPUs.
func (hv *Hypervisor) PCPUs() []*PCPU { return hv.pcpus }

// Domains returns all created domains.
func (hv *Hypervisor) Domains() []*Domain { return hv.domains }

// Observe registers an observer for completed run segments of all vCPUs.
func (hv *Hypervisor) Observe(o RunSegmentObserver) { hv.observers = append(hv.observers, o) }

// ObserveBus registers an observer for bus-lock counts of all vCPUs.
func (hv *Hypervisor) ObserveBus(o BusLockObserver) { hv.busObservers = append(hv.busObservers, o) }

// Now returns the current virtual time (Env).
func (hv *Hypervisor) Now() sim.Time { return hv.k.Now() }

// Rand returns the simulation's random source (Env).
func (hv *Hypervisor) Rand() *rand.Rand { return hv.k.Rand() }

// TickPeriod returns the credit-sampling period (Env).
func (hv *Hypervisor) TickPeriod() sim.Time { return hv.cfg.TickPeriod }

var _ Env = (*Hypervisor)(nil)

// NewDomain creates a domain with the given scheduling weight and one vCPU
// per program, all pinned to pCPU pin. Every vCPU starts blocked; call
// WakeAll (or send it an IPI) to make it runnable.
func (hv *Hypervisor) NewDomain(name string, weight, pin int, programs ...Program) *Domain {
	if len(programs) == 0 {
		panic("xen: domain needs at least one vCPU program")
	}
	if pin < 0 || pin >= len(hv.pcpus) {
		panic(fmt.Sprintf("xen: pin %d out of range", pin))
	}
	if weight <= 0 {
		weight = 256
	}
	d := &Domain{ID: hv.nextDomID, Name: name, Weight: weight, hv: hv}
	hv.nextDomID++
	for i, prog := range programs {
		v := &VCPU{
			dom:     d,
			id:      i,
			pcpu:    hv.pcpus[pin],
			program: prog,
			state:   StateBlocked,
			prio:    PrioUnder,
			credits: hv.cfg.CreditsPerAcct / 3, // modest initial allowance
		}
		d.vcpus = append(d.vcpus, v)
	}
	hv.domains = append(hv.domains, d)
	return d
}

// WakeAll makes every blocked vCPU of the domain runnable (without BOOST),
// as the initial kick after domain creation.
func (d *Domain) WakeAll() {
	for _, v := range d.vcpus {
		if v.state == StateBlocked {
			v.wake(false)
		}
	}
}

// DestroyDomain removes the domain's vCPUs from scheduling immediately
// (used by the Termination and Migration responses).
func (hv *Hypervisor) DestroyDomain(d *Domain) {
	for _, v := range d.vcpus {
		v.retire()
	}
}

// PauseDomain blocks all runnable/running vCPUs of the domain without
// finishing their programs (Suspension response). Resume with ResumeDomain.
func (hv *Hypervisor) PauseDomain(d *Domain) {
	for _, v := range d.vcpus {
		v.pause()
	}
}

// ResumeDomain makes every paused (blocked, not done) vCPU runnable again.
func (hv *Hypervisor) ResumeDomain(d *Domain) {
	d.WakeAll()
}
