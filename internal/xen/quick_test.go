package xen

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"cloudmonatt/internal/sim"
)

// randomProgram builds a duty-cycle program from fuzz bytes: burst and
// block lengths in [0.1ms, 12.8ms], occasionally issuing IO.
func randomProgram(burstCode, blockCode, ioCode byte) Program {
	burst := time.Duration(int(burstCode)%128+1) * 100 * time.Microsecond
	block := time.Duration(int(blockCode)%128) * 100 * time.Microsecond
	io := 0
	if ioCode%5 == 0 {
		io = (int(ioCode) + 1) << 12 // up to ~1 MiB
	}
	return ProgramFunc(func(env Env, self *VCPU) Burst {
		return Burst{Run: burst, Block: block, IOBytes: io}
	})
}

// TestQuickSchedulerInvariants runs arbitrary program mixes and checks the
// scheduler's core invariants: CPU time is conserved (runtime + idle =
// wall), run segments on one pCPU never overlap, every segment respects
// the timeslice, and credits stay within their bounds.
func TestQuickSchedulerInvariants(t *testing.T) {
	f := func(specs [][3]byte, seed int64) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 6 {
			specs = specs[:6]
		}
		k := sim.NewKernel(seed)
		cfg := DefaultConfig()
		hv := New(k, cfg, 1)
		rec := NewRecorder()
		hv.Observe(rec)
		var doms []*Domain
		for i, s := range specs {
			d := hv.NewDomain(string(rune('a'+i)), 256, 0, randomProgram(s[0], s[1], s[2]))
			d.WakeAll()
			doms = append(doms, d)
		}
		horizon := 2 * time.Second
		k.RunUntil(horizon)

		// Conservation.
		var used sim.Time
		for _, d := range doms {
			if d.TotalRuntime() < 0 {
				return false
			}
			used += d.TotalRuntime()
		}
		used += hv.PCPUs()[0].IdleTime()
		if diff := used - horizon; diff < -time.Microsecond || diff > time.Microsecond {
			t.Logf("conservation broken: %v vs %v", used, horizon)
			return false
		}

		// Segments sorted by start must not overlap and must obey the slice.
		segs := append([]Segment(nil), rec.Segments()...)
		sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
		for i, s := range segs {
			if s.Duration() <= 0 || s.Duration() > cfg.Timeslice {
				t.Logf("segment duration %v out of bounds", s.Duration())
				return false
			}
			if i > 0 && s.Start < segs[i-1].End {
				t.Logf("segments overlap: %v < %v", s.Start, segs[i-1].End)
				return false
			}
		}

		// Credit bounds.
		for _, d := range doms {
			for _, v := range d.VCPUs() {
				if v.Credits() > cfg.CreditCap || v.Credits() < cfg.CreditFloor {
					t.Logf("credits %d out of bounds", v.Credits())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIOAccounting checks the IO device's conservation property: bytes
// served equals bytes submitted, and utilization stays in [0, 1].
func TestQuickIOAccounting(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		k := sim.NewKernel(seed)
		hv := New(k, DefaultConfig(), 1)
		var want uint64
		i := 0
		d := hv.NewDomain("io", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
			if i >= len(sizes) {
				return Burst{Done: true}
			}
			bytes := int(sizes[i])%(1<<20) + 1
			i++
			want += uint64(bytes)
			return Burst{Run: 50 * time.Microsecond, IOBytes: bytes}
		}))
		d.WakeAll()
		k.RunUntil(30 * time.Second)
		if !d.Done() {
			return false
		}
		disk := hv.Disk()
		if disk.ServedBytes() != want {
			t.Logf("served %d, submitted %d", disk.ServedBytes(), want)
			return false
		}
		u := disk.Utilization()
		return u >= 0 && u <= 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
