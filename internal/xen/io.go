package xen

import (
	"sync"

	"cloudmonatt/internal/sim"
)

// IODevice models the server's shared storage device: a FIFO-served
// resource with a fixed service rate. Co-resident VMs contend for it the
// same way they contend for the CPU — which is what the Resource-Freeing
// Attack exploits (Varadarajan et al., cited as [40] in the paper): shift
// the victim's bottleneck onto the slow shared device and harvest the CPU
// it can no longer use.
type IODevice struct {
	mu          sync.Mutex
	hv          *Hypervisor
	bytesPerSec float64
	freeAt      sim.Time
	busyAccum   sim.Time // total service time ever scheduled
	servedBytes uint64
	requests    uint64
}

// newIODevice creates the device at the given service rate.
func newIODevice(hv *Hypervisor, bytesPerSec float64) *IODevice {
	return &IODevice{hv: hv, bytesPerSec: bytesPerSec}
}

// Disk returns the server's shared storage device.
func (hv *Hypervisor) Disk() *IODevice { return hv.disk }

// submit enqueues a request of the given size and returns the absolute
// virtual time at which it completes (FIFO behind earlier requests).
func (d *IODevice) submit(bytes int) sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.hv.k.Now()
	start := d.freeAt
	if start < now {
		start = now
	}
	service := sim.Time(float64(bytes) / d.bytesPerSec * float64(sim.Time(1e9)))
	d.freeAt = start + service
	d.busyAccum += service
	d.servedBytes += uint64(bytes)
	d.requests++
	return d.freeAt
}

// ServedBytes returns the total bytes the device has served.
func (d *IODevice) ServedBytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.servedBytes
}

// Requests returns the number of requests served.
func (d *IODevice) Requests() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.requests
}

// Utilization returns the fraction of elapsed wall time the device has
// spent serving requests (queued future work excluded).
func (d *IODevice) Utilization() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.hv.k.Now()
	if now == 0 {
		return 0
	}
	busy := d.busyAccum
	if d.freeAt > now {
		busy -= d.freeAt - now // still-pending service time
	}
	return float64(busy) / float64(now)
}
