package xen

import (
	"fmt"

	"cloudmonatt/internal/sim"
)

// queueEntry is one runnable vCPU reference in a priority queue. Entries are
// invalidated lazily: each enqueue bumps the vCPU's token, so stale entries
// (from re-prioritisation or pause) are skipped at pop time.
type queueEntry struct {
	v   *VCPU
	tok uint64
}

// PCPU is one physical CPU with its three-priority run queue.
type PCPU struct {
	id      int
	hv      *Hypervisor
	runq    [numPrios][]queueEntry
	current *VCPU
	endEv   *sim.Event // burst/timeslice expiry of the current vCPU

	idleTime    sim.Time
	idleSince   sim.Time
	ticks       uint64
	nextTickDue sim.Time // nominal (unjittered) time of the next tick
}

// ID returns the physical CPU index.
func (p *PCPU) ID() int { return p.id }

// Current returns the vCPU running right now, or nil when idle.
func (p *PCPU) Current() *VCPU { return p.current }

// IdleTime returns the accumulated time this pCPU spent with no runnable vCPU.
func (p *PCPU) IdleTime() sim.Time {
	t := p.idleTime
	if p.current == nil {
		t += p.hv.k.Now() - p.idleSince
	}
	return t
}

// scheduleTick arms the next credit-sampling tick. Jitter is applied around
// the *nominal* grid (multiples of TickPeriod), not accumulated, so the grid
// stays predictable — which is precisely what tick-evading attackers rely on.
func (p *PCPU) scheduleTick() {
	p.nextTickDue += p.hv.cfg.TickPeriod
	due := p.nextTickDue
	if j := p.hv.cfg.TickJitter; j > 0 {
		due += sim.Time(p.hv.k.Rand().Int63n(int64(j))) - j/2
	}
	if now := p.hv.k.Now(); due < now {
		due = now
	}
	p.hv.k.At(due, func() {
		p.tick()
		p.scheduleTick()
	})
}

func (p *PCPU) scheduleAcct() {
	p.hv.k.After(p.hv.cfg.AcctPeriod, func() {
		p.acct()
		p.scheduleAcct()
	})
}

// tick implements sampled credit debiting: whoever runs at the tick instant
// pays CreditsPerTick and loses any BOOST. A vCPU that times its bursts
// between ticks is never charged — the root cause of both paper attacks.
func (p *PCPU) tick() {
	p.ticks++
	v := p.current
	if v == nil {
		return
	}
	if !p.hv.cfg.ExactAccounting {
		v.credits -= p.hv.cfg.CreditsPerTick
		if v.credits < p.hv.cfg.CreditFloor {
			v.credits = p.hv.cfg.CreditFloor
		}
	}
	v.boosted = false
	if v.credits <= 0 {
		v.prio = PrioOver
	}
	p.maybePreemptCurrent()
}

// acct redistributes credits every accounting period: each live vCPU pinned
// here earns a weight-proportional share, capped at CreditCap, and its
// UNDER/OVER class is recomputed.
func (p *PCPU) acct() {
	var weights float64
	var live []*VCPU
	for _, d := range p.hv.domains {
		perVCPU := float64(d.Weight) / float64(len(d.vcpus))
		for _, v := range d.vcpus {
			if v.pcpu == p && v.state != StateDone {
				live = append(live, v)
				weights += perVCPU
			}
		}
	}
	if len(live) == 0 {
		return
	}
	for _, v := range live {
		share := d2w(v.dom) / weights * float64(p.hv.cfg.CreditsPerAcct)
		v.credits += int(share)
		if v.credits > p.hv.cfg.CreditCap {
			v.credits = p.hv.cfg.CreditCap
		}
		if v.credits > 0 {
			v.prio = PrioUnder
		} else {
			v.prio = PrioOver
		}
		if v.state == StateRunnable {
			v.requeue()
		}
	}
	p.maybePreemptCurrent()
}

func d2w(d *Domain) float64 { return float64(d.Weight) / float64(len(d.vcpus)) }

// maybePreemptCurrent preempts the running vCPU if a strictly higher-priority
// vCPU is waiting on the run queue.
func (p *PCPU) maybePreemptCurrent() {
	if p.current == nil {
		p.pickNext()
		return
	}
	if head, ok := p.peek(); ok && head.Priority() < p.current.Priority() {
		p.preempt()
		p.pickNext()
	}
}

// peek returns the highest-priority valid queued vCPU without removing it.
func (p *PCPU) peek() (*VCPU, bool) {
	for prio := 0; prio < int(numPrios); prio++ {
		q := p.runq[prio]
		for len(q) > 0 {
			e := q[0]
			if e.tok == e.v.tok && e.v.state == StateRunnable {
				p.runq[prio] = q
				return e.v, true
			}
			q = q[1:]
		}
		p.runq[prio] = q
	}
	return nil, false
}

// pop removes and returns the next vCPU to dispatch.
func (p *PCPU) pop() (*VCPU, bool) {
	for prio := 0; prio < int(numPrios); prio++ {
		q := p.runq[prio]
		for len(q) > 0 {
			e := q[0]
			q = q[1:]
			if e.tok == e.v.tok && e.v.state == StateRunnable {
				p.runq[prio] = q
				return e.v, true
			}
		}
		p.runq[prio] = q
	}
	return nil, false
}

// enqueue places a runnable vCPU at the tail of its priority queue.
func (p *PCPU) enqueue(v *VCPU) {
	v.tokBump()
	p.runq[v.Priority()] = append(p.runq[v.Priority()], queueEntry{v, v.tok})
}

// requeue refreshes a queued vCPU's position after its priority changed.
func (v *VCPU) requeue() {
	v.pcpu.enqueue(v)
}

func (v *VCPU) tokBump() { v.tok++ }

// pickNext dispatches the best runnable vCPU, or idles the pCPU.
func (p *PCPU) pickNext() {
	if p.current != nil {
		return
	}
	for {
		v, ok := p.pop()
		if !ok {
			return
		}
		if p.dispatch(v) {
			return
		}
		// dispatch consumed a zero-run administrative burst; try again.
	}
}

// dispatch puts v on the pCPU. It returns false if the vCPU's burst had no
// CPU time to consume (pure IPI/halt/done transitions), in which case the
// caller should pick another vCPU.
func (p *PCPU) dispatch(v *VCPU) bool {
	now := p.hv.k.Now()
	if !v.havePend {
		b := v.program.NextBurst(p.hv, v)
		if b.Run < 0 {
			panic(fmt.Sprintf("xen: %s returned negative Run %v", v, b.Run))
		}
		if b.Run == 0 && !b.Halt && !b.Done && b.Block == 0 && b.IOBytes == 0 {
			panic(fmt.Sprintf("xen: %s returned a no-op burst (would livelock)", v))
		}
		v.pending = b
		v.havePend = true
		v.remaining = b.Run
	}
	if v.remaining == 0 {
		v.finishBurst()
		return false
	}
	v.state = StateRunning
	v.runStart = now
	v.dispatches++
	p.current = v
	p.idleTime += now - p.idleSince
	p.idleSince = now
	runFor := v.remaining
	if runFor > p.hv.cfg.Timeslice {
		runFor = p.hv.cfg.Timeslice
	}
	p.endEv = p.hv.k.After(runFor, p.sliceEnd)
	return true
}

// sliceEnd fires when the current vCPU's burst completes or its timeslice
// expires.
func (p *PCPU) sliceEnd() {
	v := p.current
	if v == nil {
		return
	}
	p.accountRun(v)
	p.current = nil
	p.idleSince = p.hv.k.Now()
	p.endEv = nil
	v.state = StateRunnable
	if v.remaining <= 0 {
		v.finishBurst()
	} else {
		// Timeslice expired: back to the tail of its class.
		v.state = StateRunnable
		p.enqueue(v)
	}
	p.pickNext()
}

// preempt removes the current vCPU from the pCPU mid-burst and requeues it.
func (p *PCPU) preempt() {
	v := p.current
	if v == nil {
		return
	}
	if p.endEv != nil {
		p.endEv.Cancel()
		p.endEv = nil
	}
	p.accountRun(v)
	p.current = nil
	p.idleSince = p.hv.k.Now()
	v.state = StateRunnable
	if v.remaining <= 0 {
		v.finishBurst()
		return
	}
	p.enqueue(v)
}

// accountRun charges the elapsed run to the vCPU and publishes the segment.
func (p *PCPU) accountRun(v *VCPU) {
	now := p.hv.k.Now()
	start := v.runStart
	elapsed := now - start
	if elapsed <= 0 {
		return
	}
	v.runStart = now // make repeated accounting of the same window a no-op
	v.totalRun += elapsed
	v.remaining -= elapsed
	if p.hv.cfg.ExactAccounting {
		charge := int(int64(elapsed) * int64(p.hv.cfg.CreditsPerTick) / int64(p.hv.cfg.TickPeriod))
		v.credits -= charge
		if v.credits < p.hv.cfg.CreditFloor {
			v.credits = p.hv.cfg.CreditFloor
		}
		if v.credits <= 0 {
			v.prio = PrioOver
			v.boosted = false
		}
	}
	for _, o := range p.hv.observers {
		o.ObserveRunSegment(v, start, now)
	}
}

// finishBurst applies the post-run actions of the completed burst.
func (v *VCPU) finishBurst() {
	hv := v.hv()
	b := v.pending
	v.havePend = false
	v.remaining = 0
	if b.BusLocks > 0 {
		for _, o := range hv.busObservers {
			o.ObserveBusLocks(v, hv.k.Now(), b.BusLocks)
		}
	}
	if b.IPITo != nil {
		hv.SendIPI(b.IPITo)
	}
	switch {
	case b.Done:
		v.retire()
	case b.IOBytes > 0:
		// Block on the shared storage device; wake at completion like an IO
		// interrupt (boosting, as real IO wakeups do).
		v.state = StateBlocked
		done := hv.disk.submit(b.IOBytes)
		delay := done - hv.k.Now()
		if delay < 0 {
			delay = 0
		}
		v.wakeEvent = hv.k.After(delay, func() {
			v.wakeEvent = nil
			v.wake(true)
		})
	case b.Halt:
		v.state = StateBlocked
	case b.Block > 0:
		v.state = StateBlocked
		v.wakeEvent = hv.k.After(b.Block, func() {
			v.wakeEvent = nil
			v.wake(true)
		})
	default:
		// Yield: runnable again immediately, tail of its class.
		v.state = StateRunnable
		v.pcpu.enqueue(v)
	}
}

// SendIPI delivers an inter-processor interrupt to the target vCPU after the
// configured delivery latency. A wakeup of an UNDER vCPU grants BOOST.
func (hv *Hypervisor) SendIPI(target *VCPU) {
	hv.k.After(hv.cfg.IPILatency, func() { target.wake(true) })
}

// wake transitions a blocked vCPU to runnable. When boost is true and the
// vCPU is in the UNDER class (and boosting is enabled), it enters BOOST and
// preempts any lower-priority running vCPU.
func (v *VCPU) wake(boost bool) {
	if v.state != StateBlocked {
		return // spurious wake of a live or finished vCPU
	}
	if v.wakeEvent != nil {
		v.wakeEvent.Cancel()
		v.wakeEvent = nil
	}
	hv := v.hv()
	if boost && hv.cfg.BoostEnabled && v.prio == PrioUnder {
		v.boosted = true
	}
	v.state = StateRunnable
	v.lastWake = hv.k.Now()
	p := v.pcpu
	p.enqueue(v)
	if p.current == nil {
		p.pickNext()
	} else if v.Priority() < p.current.Priority() {
		p.preempt()
		p.pickNext()
	}
}

// pause blocks the vCPU wherever it is (used by the Suspension response).
// An in-progress burst is retained and resumes after ResumeDomain.
func (v *VCPU) pause() {
	switch v.state {
	case StateRunning:
		p := v.pcpu
		if p.endEv != nil {
			p.endEv.Cancel()
			p.endEv = nil
		}
		p.accountRun(v)
		p.current = nil
		p.idleSince = p.hv.k.Now()
		v.state = StateBlocked
		p.pickNext()
	case StateRunnable:
		v.tokBump() // invalidate queue entry
		v.state = StateBlocked
	case StateBlocked:
		if v.wakeEvent != nil {
			v.wakeEvent.Cancel()
			v.wakeEvent = nil
		}
	}
}

// retire permanently removes the vCPU from scheduling.
func (v *VCPU) retire() {
	if v.state == StateDone {
		return
	}
	hv := v.hv()
	if v.state == StateRunning {
		p := v.pcpu
		if p.endEv != nil {
			p.endEv.Cancel()
			p.endEv = nil
		}
		p.accountRun(v)
		p.current = nil
		p.idleSince = hv.k.Now()
		defer p.pickNext()
	}
	if v.wakeEvent != nil {
		v.wakeEvent.Cancel()
		v.wakeEvent = nil
	}
	v.tokBump()
	v.state = StateDone
	v.doneAt = hv.k.Now()
}
