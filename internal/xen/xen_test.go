package xen

import (
	"testing"
	"time"

	"cloudmonatt/internal/sim"
)

// spinner runs forever in bursts of the given length, yielding in between.
func spinner(burst sim.Time) Program {
	return ProgramFunc(func(env Env, self *VCPU) Burst {
		return Burst{Run: burst}
	})
}

// finite runs total CPU time in fixed bursts, then finishes.
type finite struct {
	burst sim.Time
	left  sim.Time
}

func (f *finite) NextBurst(env Env, self *VCPU) Burst {
	if f.left <= 0 {
		return Burst{Done: true}
	}
	run := f.burst
	if run > f.left {
		run = f.left
	}
	f.left -= run
	return Burst{Run: run, Done: f.left <= 0}
}

func newHV(t testing.TB, n int) (*sim.Kernel, *Hypervisor) {
	t.Helper()
	k := sim.NewKernel(42)
	return k, New(k, DefaultConfig(), n)
}

func TestSingleSpinnerGetsAllCPU(t *testing.T) {
	k, hv := newHV(t, 1)
	d := hv.NewDomain("solo", 256, 0, spinner(5*time.Millisecond))
	d.WakeAll()
	k.RunUntil(time.Second)
	got := d.TotalRuntime()
	if got < 990*time.Millisecond {
		t.Fatalf("solo spinner got %v of 1s, want ~all", got)
	}
	if idle := hv.PCPUs()[0].IdleTime(); idle > 10*time.Millisecond {
		t.Fatalf("pCPU idled %v with a spinner runnable", idle)
	}
}

func TestTwoEqualSpinnersShareFairly(t *testing.T) {
	k, hv := newHV(t, 1)
	a := hv.NewDomain("a", 256, 0, spinner(5*time.Millisecond))
	b := hv.NewDomain("b", 256, 0, spinner(5*time.Millisecond))
	a.WakeAll()
	b.WakeAll()
	k.RunUntil(3 * time.Second)
	ra, rb := a.TotalRuntime(), b.TotalRuntime()
	total := ra + rb
	if total < 2990*time.Millisecond {
		t.Fatalf("combined runtime %v, want ~3s", total)
	}
	frac := float64(ra) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("unfair split: a=%v b=%v (a frac %.2f)", ra, rb, frac)
	}
}

func TestWeightedSharing(t *testing.T) {
	k, hv := newHV(t, 1)
	heavy := hv.NewDomain("heavy", 512, 0, spinner(5*time.Millisecond))
	light := hv.NewDomain("light", 256, 0, spinner(5*time.Millisecond))
	heavy.WakeAll()
	light.WakeAll()
	k.RunUntil(3 * time.Second)
	rh, rl := heavy.TotalRuntime(), light.TotalRuntime()
	ratio := float64(rh) / float64(rl)
	// credit1's sampled debiting is only approximately weight-proportional
	// (the same property the paper's attacks exploit); require a clear bias
	// toward the heavy domain rather than an exact 2:1.
	if ratio < 1.25 || ratio > 2.8 {
		t.Fatalf("weight 2:1 produced runtime ratio %.2f (heavy=%v light=%v)", ratio, rh, rl)
	}
}

func TestConservationOfCPUTime(t *testing.T) {
	k, hv := newHV(t, 1)
	doms := []*Domain{
		hv.NewDomain("a", 256, 0, spinner(3*time.Millisecond)),
		hv.NewDomain("b", 256, 0, spinner(7*time.Millisecond)),
		hv.NewDomain("c", 256, 0, spinner(11*time.Millisecond)),
	}
	for _, d := range doms {
		d.WakeAll()
	}
	horizon := 2 * time.Second
	k.RunUntil(horizon)
	var used sim.Time
	for _, d := range doms {
		used += d.TotalRuntime()
	}
	used += hv.PCPUs()[0].IdleTime()
	if diff := used - horizon; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("CPU time not conserved: runtime+idle=%v, wall=%v", used, horizon)
	}
}

func TestFiniteProgramCompletes(t *testing.T) {
	k, hv := newHV(t, 1)
	d := hv.NewDomain("job", 256, 0, &finite{burst: 10 * time.Millisecond, left: 100 * time.Millisecond})
	d.WakeAll()
	k.RunUntil(time.Second)
	at, ok := d.DoneAt()
	if !ok {
		t.Fatal("finite program did not complete")
	}
	if at < 100*time.Millisecond || at > 110*time.Millisecond {
		t.Fatalf("solo 100ms job finished at %v", at)
	}
	if got := d.TotalRuntime(); got != 100*time.Millisecond {
		t.Fatalf("TotalRuntime = %v, want exactly 100ms", got)
	}
}

func TestContendedJobTakesTwiceAsLong(t *testing.T) {
	k, hv := newHV(t, 1)
	job := hv.NewDomain("job", 256, 0, &finite{burst: 10 * time.Millisecond, left: 300 * time.Millisecond})
	other := hv.NewDomain("other", 256, 0, spinner(10*time.Millisecond))
	job.WakeAll()
	other.WakeAll()
	k.RunUntil(3 * time.Second)
	at, ok := job.DoneAt()
	if !ok {
		t.Fatal("job did not complete under contention")
	}
	// Fair share is 50%, so a 300ms job should take ~600ms.
	if at < 500*time.Millisecond || at > 750*time.Millisecond {
		t.Fatalf("contended 300ms job finished at %v, want ~600ms", at)
	}
}

func TestBlockedVCPUConsumesNothing(t *testing.T) {
	k, hv := newHV(t, 1)
	sleeper := hv.NewDomain("sleeper", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
		return Burst{Run: time.Millisecond, Block: 99 * time.Millisecond}
	}))
	sleeper.WakeAll()
	k.RunUntil(time.Second)
	got := sleeper.TotalRuntime()
	if got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Fatalf("1%% duty-cycle sleeper used %v of 1s", got)
	}
}

func TestBoostPreemptsRunningSpinner(t *testing.T) {
	k, hv := newHV(t, 1)
	spin := hv.NewDomain("spin", 256, 0, spinner(25*time.Millisecond))
	spin.WakeAll()

	// A sleeper that wakes via timer stays UNDER (rarely sampled by ticks),
	// so each wake should BOOST it onto the CPU with low latency.
	var wakeAt, runAt []sim.Time
	sleeper := hv.NewDomain("sleeper", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
		runAt = append(runAt, env.Now())
		return Burst{Run: 500 * time.Microsecond, Block: 13 * time.Millisecond}
	}))
	hv.Observe(RunSegmentFunc(func(v *VCPU, start, end sim.Time) {
		if v.Domain() == sleeper {
			wakeAt = append(wakeAt, start)
		}
	}))
	sleeper.WakeAll()
	k.RunUntil(time.Second)
	if len(runAt) < 20 {
		t.Fatalf("sleeper only dispatched %d times", len(runAt))
	}
	// Latency from becoming runnable to running should be ~0 thanks to BOOST
	// (the spinner would otherwise hold the CPU for up to 25ms bursts).
	// Check: consecutive dispatches are ~13.5ms apart, not 25ms+.
	var worst sim.Time
	for i := 1; i < len(runAt); i++ {
		gap := runAt[i] - runAt[i-1]
		if gap > worst {
			worst = gap
		}
	}
	if worst > 20*time.Millisecond {
		t.Fatalf("worst inter-dispatch gap %v suggests BOOST is not preempting", worst)
	}
}

// tickEvader runs bursts timed between tick instants so it is never sampled
// by the credit debit and therefore stays UNDER forever. This is the
// scheduling primitive both paper attacks build on.
func tickEvader(margin sim.Time) Program {
	return ProgramFunc(func(env Env, self *VCPU) Burst {
		now := env.Now()
		tick := env.TickPeriod()
		next := (now/tick + 1) * tick
		run := next - margin - now
		if run <= 0 {
			// Too close to the tick: sleep past it.
			return Burst{Run: 0, Block: next + margin - now}
		}
		return Burst{Run: run, Block: 2 * margin}
	})
}

func TestNoBoostIncreasesWakeLatency(t *testing.T) {
	// Wake the target via IPI at t=5ms, while an unboosted UNDER hog is
	// mid-way through a 25ms burst and the first tick (10ms) has not yet
	// fired. With BOOST the target preempts immediately (BOOST < UNDER);
	// without it, equal priority means FIFO — it waits for the hog's slice.
	run := func(boost bool) sim.Time {
		k := sim.NewKernel(42)
		cfg := DefaultConfig()
		cfg.BoostEnabled = boost
		cfg.TickJitter = 0
		hv := New(k, cfg, 1)
		hog := hv.NewDomain("hog", 256, 0, spinner(25*time.Millisecond))
		hog.WakeAll()
		var ranAt sim.Time = -1
		target := hv.NewDomain("target", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
			if ranAt < 0 {
				ranAt = env.Now()
			}
			return Burst{Run: 500 * time.Microsecond, Done: true}
		}))
		tv := target.VCPUs()[0]
		k.At(5*time.Millisecond, func() { hv.SendIPI(tv) })
		k.RunUntil(100 * time.Millisecond)
		if ranAt < 0 {
			t.Fatal("target never ran")
		}
		return ranAt - 5*time.Millisecond
	}
	withBoost, withoutBoost := run(true), run(false)
	if withBoost > time.Millisecond {
		t.Fatalf("BOOST wake latency %v, want ~IPI latency", withBoost)
	}
	if withoutBoost < 2*time.Millisecond {
		t.Fatalf("without BOOST latency %v, want to wait out the hog burst", withoutBoost)
	}
}

func TestIPIWakesHaltedVCPU(t *testing.T) {
	k, hv := newHV(t, 1)
	var ran bool
	target := hv.NewDomain("target", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
		ran = true
		return Burst{Run: time.Millisecond, Halt: true}
	}))
	// Colluder: run briefly, then IPI the target and halt.
	colluder := hv.NewDomain("colluder", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
		return Burst{Run: time.Millisecond, Halt: true, IPITo: target.VCPUs()[0]}
	}))
	colluder.WakeAll()
	k.RunUntil(100 * time.Millisecond)
	if !ran {
		t.Fatal("IPI did not wake the halted target vCPU")
	}
}

func TestPauseAndResume(t *testing.T) {
	k, hv := newHV(t, 1)
	d := hv.NewDomain("vm", 256, 0, spinner(5*time.Millisecond))
	d.WakeAll()
	k.RunUntil(100 * time.Millisecond)
	hv.PauseDomain(d)
	atPause := d.TotalRuntime()
	k.RunUntil(600 * time.Millisecond)
	if got := d.TotalRuntime(); got != atPause {
		t.Fatalf("paused domain accumulated runtime: %v -> %v", atPause, got)
	}
	hv.ResumeDomain(d)
	k.RunUntil(1100 * time.Millisecond)
	if got := d.TotalRuntime(); got <= atPause+400*time.Millisecond {
		t.Fatalf("resumed domain did not run: %v after resume (was %v)", got, atPause)
	}
}

func TestDestroyDomainStopsScheduling(t *testing.T) {
	k, hv := newHV(t, 1)
	d := hv.NewDomain("vm", 256, 0, spinner(5*time.Millisecond))
	d.WakeAll()
	k.RunUntil(50 * time.Millisecond)
	hv.DestroyDomain(d)
	at := d.TotalRuntime()
	k.RunUntil(500 * time.Millisecond)
	if got := d.TotalRuntime(); got != at {
		t.Fatalf("destroyed domain kept running: %v -> %v", at, got)
	}
	if !d.Done() {
		t.Fatal("destroyed domain not marked done")
	}
}

func TestTwoPCPUsIndependent(t *testing.T) {
	k, hv := newHV(t, 2)
	a := hv.NewDomain("a", 256, 0, spinner(5*time.Millisecond))
	b := hv.NewDomain("b", 256, 1, spinner(5*time.Millisecond))
	a.WakeAll()
	b.WakeAll()
	k.RunUntil(time.Second)
	if ra := a.TotalRuntime(); ra < 990*time.Millisecond {
		t.Fatalf("a got %v on its own pCPU", ra)
	}
	if rb := b.TotalRuntime(); rb < 990*time.Millisecond {
		t.Fatalf("b got %v on its own pCPU", rb)
	}
}

func TestRecorderAndGaps(t *testing.T) {
	k, hv := newHV(t, 1)
	a := hv.NewDomain("a", 256, 0, spinner(5*time.Millisecond))
	b := hv.NewDomain("b", 256, 0, spinner(5*time.Millisecond))
	rec := NewRecorder(a)
	hv.Observe(rec)
	a.WakeAll()
	b.WakeAll()
	k.RunUntil(500 * time.Millisecond)
	segs := rec.Segments()
	if len(segs) == 0 {
		t.Fatal("recorder saw no segments")
	}
	for _, s := range segs {
		if s.VCPU.Domain() != a {
			t.Fatalf("recorder leaked segment from %v", s.VCPU)
		}
		if s.Duration() <= 0 {
			t.Fatalf("non-positive segment %v..%v", s.Start, s.End)
		}
	}
	gaps := Gaps(segs)
	if len(gaps) == 0 {
		t.Fatal("expected gaps while b shares the pCPU")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].End {
			t.Fatal("segments overlap")
		}
	}
}

func TestMergeAdjacent(t *testing.T) {
	v := &VCPU{}
	segs := []Segment{
		{v, 0, 2 * time.Millisecond},
		{v, 2 * time.Millisecond, 5 * time.Millisecond},
		{v, 10 * time.Millisecond, 12 * time.Millisecond},
	}
	merged := MergeAdjacent(segs, 100*time.Microsecond)
	if len(merged) != 2 {
		t.Fatalf("merged to %d segments, want 2", len(merged))
	}
	if merged[0].Duration() != 5*time.Millisecond {
		t.Fatalf("first merged segment %v, want 5ms", merged[0].Duration())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		k := sim.NewKernel(7)
		hv := New(k, DefaultConfig(), 1)
		a := hv.NewDomain("a", 256, 0, spinner(3*time.Millisecond))
		b := hv.NewDomain("b", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
			return Burst{Run: 2 * time.Millisecond, Block: 4 * time.Millisecond}
		}))
		rec := NewRecorder()
		hv.Observe(rec)
		a.WakeAll()
		b.WakeAll()
		k.RunUntil(300 * time.Millisecond)
		var out []sim.Time
		for _, s := range rec.Segments() {
			out = append(out, s.Start, s.End)
		}
		return out
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("replay lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestCreditsStayBounded(t *testing.T) {
	k, hv := newHV(t, 1)
	cfg := hv.Config()
	a := hv.NewDomain("a", 256, 0, spinner(5*time.Millisecond))
	b := hv.NewDomain("b", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
		return Burst{Run: time.Millisecond, Block: 20 * time.Millisecond}
	}))
	a.WakeAll()
	b.WakeAll()
	for i := 0; i < 200; i++ {
		k.RunUntil(k.Now() + 10*time.Millisecond)
		for _, d := range hv.Domains() {
			for _, v := range d.VCPUs() {
				if v.Credits() > cfg.CreditCap || v.Credits() < cfg.CreditFloor {
					t.Fatalf("%v credits %d outside [%d,%d]", v, v.Credits(), cfg.CreditFloor, cfg.CreditCap)
				}
			}
		}
	}
}

func TestTimesliceBoundsSegmentLength(t *testing.T) {
	k, hv := newHV(t, 1)
	a := hv.NewDomain("a", 256, 0, spinner(500*time.Millisecond)) // wants huge bursts
	b := hv.NewDomain("b", 256, 0, spinner(500*time.Millisecond))
	rec := NewRecorder()
	hv.Observe(rec)
	a.WakeAll()
	b.WakeAll()
	k.RunUntil(2 * time.Second)
	for _, s := range rec.Segments() {
		if s.Duration() > hv.Config().Timeslice {
			t.Fatalf("segment %v exceeds timeslice %v", s.Duration(), hv.Config().Timeslice)
		}
	}
}

func TestIODeviceBlocksAndWakes(t *testing.T) {
	k, hv := newHV(t, 1)
	// One request of 20 MiB at 200 MiB/s should block the vCPU ~100ms.
	issued := false
	var doneAt sim.Time
	d := hv.NewDomain("io", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
		if !issued {
			issued = true
			return Burst{Run: time.Millisecond, IOBytes: 20 << 20}
		}
		doneAt = env.Now()
		return Burst{Done: true}
	}))
	d.WakeAll()
	k.RunUntil(time.Second)
	if !d.Done() {
		t.Fatal("IO program never completed")
	}
	if doneAt < 95*time.Millisecond || doneAt > 130*time.Millisecond {
		t.Fatalf("IO wake at %v, want ~101ms", doneAt)
	}
	if hv.Disk().Requests() != 1 || hv.Disk().ServedBytes() != 20<<20 {
		t.Fatalf("device accounting: %d reqs, %d bytes", hv.Disk().Requests(), hv.Disk().ServedBytes())
	}
}

func TestIODeviceFIFOContention(t *testing.T) {
	k, hv := newHV(t, 1)
	// Two IO-bound vCPUs share the disk: each gets roughly half the device
	// throughput, and the device saturates.
	mk := func(name string) *Domain {
		count := 0
		d := hv.NewDomain(name, 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
			count++
			return Burst{Run: 100 * time.Microsecond, IOBytes: 4 << 20}
		}))
		d.WakeAll()
		return d
	}
	mk("a")
	mk("b")
	k.RunUntil(2 * time.Second)
	util := hv.Disk().Utilization()
	if util < 0.9 {
		t.Fatalf("disk utilization %.2f with two IO-bound VMs, want ~1", util)
	}
	// ~200MB/s for 2s ≈ 400 MB served.
	served := float64(hv.Disk().ServedBytes()) / (1 << 20)
	if served < 350 || served > 450 {
		t.Fatalf("served %.0f MiB in 2s at 200 MiB/s", served)
	}
}

func TestIOWakeGetsBoost(t *testing.T) {
	// An IO completion wakes the vCPU with BOOST, so it preempts a
	// CPU-bound co-tenant promptly (before the first tick, both UNDER).
	k := sim.NewKernel(42)
	cfg := DefaultConfig()
	cfg.TickJitter = 0
	hv := New(k, cfg, 1)
	hog := hv.NewDomain("hog", 256, 0, spinner(25*time.Millisecond))
	hog.WakeAll()
	var wokeAt, ranAt sim.Time
	first := true
	d := hv.NewDomain("io", 256, 0, ProgramFunc(func(env Env, self *VCPU) Burst {
		if first {
			first = false
			return Burst{Run: 200 * time.Microsecond, IOBytes: 1 << 20} // ~5ms IO
		}
		wokeAt = self.LastWake()
		ranAt = env.Now()
		return Burst{Done: true}
	}))
	d.WakeAll()
	k.RunUntil(100 * time.Millisecond)
	if !d.Done() {
		t.Fatal("IO program never completed")
	}
	if lat := ranAt - wokeAt; lat > time.Millisecond {
		t.Fatalf("IO wake latency %v; boost not applied", lat)
	}
}
