package lint

import (
	"go/ast"
	"go/types"
)

// The dataflow core is a small intraprocedural taint engine shared by the
// flow-sensitive analyzers (secretflow today; the design is generic). It
// tracks which local objects carry a value derived from a configured source
// through assignments, field reads, composite literals, conversions,
// concatenation, and calls to configured propagators, iterating a function
// body to a fixed point. Closures share the enclosing function's taint set,
// so a secret captured by a func literal stays tainted inside it.
//
// The engine is deliberately conservative in one direction only: it never
// invents taint for calls it does not recognize (an unknown call's result
// is clean), so unsanitized flows must pass through the configured source,
// propagator, or fact-carrying functions to be reported. That keeps
// signatures like Sign (secret in, public signature out) from poisoning
// the whole program.

// A flowConfig parameterizes the taint engine for one analyzer.
type flowConfig struct {
	// source classifies an expression as an original taint source,
	// returning a human-readable description of what it carries.
	source func(info *types.Info, expr ast.Expr) (string, bool)
	// propagates reports whether a call forwards taint from its arguments
	// (or receiver) to its results. Conversions always propagate.
	propagates func(info *types.Info, call *ast.CallExpr) bool
	// sanitizes reports whether a call launders its arguments: the result
	// is clean even when arguments are tainted.
	sanitizes func(info *types.Info, call *ast.CallExpr) bool
}

// A taintSet maps tainted objects to the description of their source.
type taintSet map[types.Object]string

// A flow is one function body's taint analysis.
type flow struct {
	info    *types.Info
	cfg     flowConfig
	tainted taintSet
}

// analyzeFlow runs the engine over a function body (params is the
// function's parameter list for engines that pre-taint parameters; pass
// nil otherwise) and returns the resulting flow for querying.
func analyzeFlow(info *types.Info, cfg flowConfig, body *ast.BlockStmt, pretainted taintSet) *flow {
	fl := &flow{info: info, cfg: cfg, tainted: make(taintSet)}
	for obj, why := range pretainted {
		fl.tainted[obj] = why
	}
	if body == nil {
		return fl
	}
	// Fixed point: each pass may discover taint that earlier statements
	// feed into later reads (or loops feed backward).
	for {
		before := len(fl.tainted)
		fl.walkStmts(body)
		if len(fl.tainted) == before {
			break
		}
	}
	return fl
}

// taintOf reports whether expr carries tainted data and from which source.
func (fl *flow) taintOf(expr ast.Expr) (string, bool) {
	if expr == nil {
		return "", false
	}
	if why, ok := fl.cfg.source(fl.info, expr); ok {
		return why, true
	}
	// Error values never carry taint: an error returned alongside a secret
	// (key, err := derive(...)) describes the failure, it does not embed
	// the input. The one construction that does embed data in an error —
	// fmt.Errorf("%x", key) — is a sink, caught at the call itself.
	if isErrorExpr(fl.info, expr) {
		return "", false
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := fl.info.ObjectOf(e); obj != nil {
			if why, ok := fl.tainted[obj]; ok {
				return why, true
			}
		}
	case *ast.ParenExpr:
		return fl.taintOf(e.X)
	case *ast.StarExpr:
		return fl.taintOf(e.X)
	case *ast.UnaryExpr:
		return fl.taintOf(e.X)
	case *ast.IndexExpr:
		return fl.taintOf(e.X)
	case *ast.SliceExpr:
		return fl.taintOf(e.X)
	case *ast.SelectorExpr:
		// Reading a field of a tainted struct yields tainted data.
		return fl.taintOf(e.X)
	case *ast.BinaryExpr:
		if why, ok := fl.taintOf(e.X); ok {
			return why, true
		}
		return fl.taintOf(e.Y)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if why, ok := fl.taintOf(v); ok {
				return why, true
			}
		}
	case *ast.CallExpr:
		return fl.taintOfCall(e)
	}
	return "", false
}

// taintOfCall classifies a call's result.
func (fl *flow) taintOfCall(call *ast.CallExpr) (string, bool) {
	if fl.cfg.sanitizes != nil && fl.cfg.sanitizes(fl.info, call) {
		return "", false
	}
	// Type conversions pass the value through unchanged.
	if tv, ok := fl.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return fl.taintOf(call.Args[0])
	}
	// Builtins append and copy forward their operands.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := fl.info.ObjectOf(id); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch id.Name {
				case "append", "min", "max":
					return fl.anyArgTaint(call)
				}
				return "", false
			}
		}
	}
	if fl.cfg.propagates != nil && fl.cfg.propagates(fl.info, call) {
		if why, ok := fl.anyArgTaint(call); ok {
			return why, true
		}
		// Method propagators forward receiver taint too.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return fl.taintOf(sel.X)
		}
	}
	return "", false
}

func (fl *flow) anyArgTaint(call *ast.CallExpr) (string, bool) {
	for _, arg := range call.Args {
		if why, ok := fl.taintOf(arg); ok {
			return why, true
		}
	}
	return "", false
}

// walkStmts propagates taint through every assignment-like construct in
// the body, descending into nested blocks and function literals.
func (fl *flow) walkStmts(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			fl.assign(s.Lhs, s.Rhs)
		case *ast.ValueSpec:
			fl.assign(identExprs(s.Names), s.Values)
		case *ast.RangeStmt:
			if why, ok := fl.taintOf(s.X); ok {
				fl.markLHS(s.Key, why)
				fl.markLHS(s.Value, why)
			}
		}
		return true
	})
}

// assign applies rhs taint to lhs targets, handling both the paired form
// (a, b = x, y) and the tuple form (a, b = f()).
func (fl *flow) assign(lhs, rhs []ast.Expr) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if why, ok := fl.taintOf(rhs[i]); ok {
				fl.markLHS(lhs[i], why)
			}
		}
	case len(rhs) == 1:
		// Tuple assignment: if the single rhs is tainted, every target is.
		if why, ok := fl.taintOf(rhs[0]); ok {
			for _, l := range lhs {
				fl.markLHS(l, why)
			}
		}
	}
}

// markLHS taints the object behind an assignment target. Writing a tainted
// value into a field taints the whole containing object (conservative:
// reading any field of it later reports taint).
func (fl *flow) markLHS(target ast.Expr, why string) {
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		if obj := fl.info.ObjectOf(t); obj != nil {
			if isErrorType(obj.Type()) {
				return // see taintOf: errors do not carry secrets
			}
			fl.tainted[obj] = why
		}
	case *ast.SelectorExpr:
		fl.markLHS(t.X, why)
	case *ast.StarExpr:
		fl.markLHS(t.X, why)
	case *ast.IndexExpr:
		fl.markLHS(t.X, why)
	}
}

func isErrorExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}
