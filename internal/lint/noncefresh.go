package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NonceFresh enforces the paper's freshness discipline mechanically
// (§4.2: every attestation hop is bound by a fresh nonce N1/N2/N3):
//
//  1. RPC methods in the fresh-nonce taxonomy (freshNonceMethods) must be
//     invoked through ReconnectClient.CallFresh, which rebuilds the
//     request — and therefore the embedded nonce — on every retry attempt.
//     Call/CallCtx/CallIdem would re-send the same nonce, which the peer's
//     replay cache rightly rejects, turning a transient network fault into
//     a permanent attestation failure (or worse, training operators to
//     disable replay protection).
//
//  2. A nonce-typed value declared outside a loop must not be fed back
//     into request construction (Build*/Compute* helpers or rpc call
//     methods) inside the loop: each iteration is a new protocol attempt
//     and needs a new nonce.
var NonceFresh = &Analyzer{
	Name: "noncefresh",
	Doc: "fresh-nonce RPC methods (N1–N3 taxonomy) must go through " +
		"CallFresh; nonce values must not be reused across loop iterations",
	Run: runNonceFresh,
}

// rpcCallMethods maps a client call method to the index of its RPC-method-
// name argument.
var rpcCallMethods = map[string]int{
	"Call":     0, // Call(method, req, resp)
	"CallCtx":  1, // CallCtx(ctx, method, req, resp)
	"CallIdem": 1, // CallIdem(ctx, method, key, req, resp)
}

func runNonceFresh(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkFreshMethod(pass, n)
			case *ast.ForStmt:
				if n.Body != nil {
					checkNonceReuse(pass, n.Body)
				}
			case *ast.RangeStmt:
				if n.Body != nil {
					checkNonceReuse(pass, n.Body)
				}
			}
			return true
		})
	}
}

func checkFreshMethod(pass *Pass, call *ast.CallExpr) {
	recv, method := methodOf(pass.Info, call)
	if !rpcClientTypes[recv] {
		return
	}
	idx, ok := rpcCallMethods[method]
	if !ok || len(call.Args) <= idx {
		return
	}
	name, ok := constString(pass.Info, call.Args[idx])
	if !ok {
		return
	}
	if nonce, fresh := freshNonceMethods[name]; fresh {
		pass.Reportf(call.Pos(),
			"method %q carries fresh nonce %s and must go through CallFresh "+
				"(plain %s re-sends the same nonce on retry, which the peer's replay cache rejects)",
			name, nonce, method)
	}
}

// checkNonceReuse flags uses, inside a loop body, of nonce-typed variables
// declared outside the loop when they feed request construction or an RPC
// call. Nonces regenerated inside the loop (or inside a CallFresh makeReq
// closure) are fine.
func checkNonceReuse(pass *Pass, body *ast.BlockStmt) {
	reported := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !buildsRequest(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(unslice(arg)).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() || !typeIs(v.Type(), "cloudmonatt/internal/cryptoutil", "Nonce") {
				continue
			}
			// Declared outside this loop body, and not reassigned inside it
			// before use?
			if v.Pos() >= body.Pos() && v.Pos() < body.End() {
				continue
			}
			if assignedWithin(pass, body, v) {
				continue
			}
			if !reported[v] {
				reported[v] = true
				pass.Reportf(id.Pos(),
					"nonce %s is declared outside the loop and reused across iterations; "+
						"each attempt is a new protocol exchange and needs a fresh nonce", v.Name())
			}
		}
		return true
	})
}

// buildsRequest reports whether call constructs or transmits a protocol
// message: a Build*/Compute* package function or a client call method.
func buildsRequest(pass *Pass, call *ast.CallExpr) bool {
	if _, fn := calleeOf(pass.Info, call); strings.HasPrefix(fn, "Build") || strings.HasPrefix(fn, "Compute") {
		return true
	}
	recv, method := methodOf(pass.Info, call)
	if rpcClientTypes[recv] && (strings.HasPrefix(method, "Call") || method == "Connect") {
		return true
	}
	return false
}

// assignedWithin reports whether v is (re)assigned anywhere inside body.
func assignedWithin(pass *Pass, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if pass.Info.Uses[id] == v || pass.Info.Defs[id] == v {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func unslice(e ast.Expr) ast.Expr {
	if sl, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
		return sl.X
	}
	return e
}
