package lint

import (
	"go/ast"
	"go/types"
)

// SecretFlow tracks key material from its sources to operator-visible
// sinks. The PR 8 resumption path mints long-lived secrets — traffic keys,
// resumption master secrets, ticket-sealing keys — and the protocol's
// confidentiality argument assumes they exist only inside the secure
// channel's key schedule. A secret that reaches an error string, a log
// line, a span annotation, a metric name, or a plaintext file outlives the
// session in places replicated to operators, trace stores, and dashboards.
//
// Sources: cryptoutil.Identity.Seed, the secchan key-derivation family
// (deriveKeys/deriveRMS/resumeKeys/nextRMS), Ticket.RMS field reads, and
// any call carrying a "returnsSecret" fact exported by an earlier-analyzed
// package. Deliberately not a source: merely holding an Identity value —
// the taint begins where raw key bytes are extracted. Sanctioned sanitizers:
// cryptoutil.Redact (fingerprint for logs) and cryptoutil.Hash
// (domain-separated, non-invertible); cryptoutil.WriteSecretFile is the
// one sanctioned persistence path (0600, documented provisioning).
var SecretFlow = &Analyzer{
	Name: "secretflow",
	Doc: "key material (session keys, RMS, ticket keys, private keys) must not " +
		"flow into error strings, logs, span annotations, metric names, or plaintext files; " +
		"redact with cryptoutil.Redact or persist via cryptoutil.WriteSecretFile",
	Run:   runSecretFlow,
	Facts: secretFlowFacts,
}

// returnsSecretFact marks a function whose results carry secret material.
type returnsSecretFact struct {
	Source string `json:"source"` // what kind of secret, for the report
}

// secretFlowConfig builds the taint-engine configuration, closing over the
// pass for fact imports.
func secretFlowConfig(pass *Pass) flowConfig {
	return flowConfig{
		source: func(info *types.Info, expr ast.Expr) (string, bool) {
			switch e := expr.(type) {
			case *ast.CallExpr:
				if recv, method := methodOf(info, e); recv != "" {
					if secretSourceMethods[recv+"."+method] {
						return "identity seed", true
					}
				}
				if pkg, name := calleeOf(info, e); pkg != "" {
					if secretSourceFuncs[pkg+"."+name] {
						return "derived key material", true
					}
				}
				if obj := calleeObject(info, e); obj != nil {
					var fact returnsSecretFact
					if pass.ImportFact(obj, "returnsSecret", &fact) {
						return fact.Source, true
					}
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
					if named := namedOf(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
						key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
						if secretFields[key] {
							return "resumption master secret", true
						}
					}
				}
			}
			return "", false
		},
		propagates: func(info *types.Info, call *ast.CallExpr) bool {
			if pkg, name := calleeOf(info, call); pkg != "" {
				if secretPropagators[pkg+"."+name] || secretPropagatorFuncs[pkg+"."+name] {
					return true
				}
			}
			if recv, method := methodOf(info, call); recv != "" {
				return secretPropagatorMethods[recv+"."+method]
			}
			return false
		},
		sanitizes: func(info *types.Info, call *ast.CallExpr) bool {
			pkg, name := calleeOf(info, call)
			return pkg != "" && secretSanitizers[pkg+"."+name]
		},
	}
}

// calleeObject resolves the called function's object (for fact lookup) for
// both plain and method calls.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}

// secretFlowFacts exports "returnsSecret" for every function whose return
// values carry taint, making the source set transitive across packages.
func secretFlowFacts(pass *Pass) {
	cfg := secretFlowConfig(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.ObjectOf(fd.Name)
			if obj == nil {
				continue
			}
			fl := analyzeFlow(pass.Info, cfg, fd.Body, nil)
			secret := ""
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if secret != "" {
					return false
				}
				// Skip nested function literals: their returns are not
				// this function's returns.
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if why, tainted := fl.taintOf(res); tainted {
						secret = why
						return false
					}
				}
				return true
			})
			if secret != "" {
				pass.ExportFact(obj, "returnsSecret", returnsSecretFact{Source: secret})
			}
		}
	}
}

// runSecretFlow reports tainted values reaching sinks.
func runSecretFlow(pass *Pass) {
	cfg := secretFlowConfig(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl := analyzeFlow(pass.Info, cfg, fd.Body, nil)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sink, args := secretSinkOf(pass, call)
				if sink == "" {
					return true
				}
				for _, arg := range args {
					if why, tainted := fl.taintOf(arg); tainted {
						pass.Reportf(call.Pos(),
							"secret material (%s) flows into a %s sink; redact with cryptoutil.Redact "+
								"or route through a sanctioned secret-handling helper", why, sink)
						break
					}
				}
				return true
			})
		}
	}
}

// secretSinkOf classifies a call as a sink, returning the sink description
// and the arguments that must stay clean.
func secretSinkOf(pass *Pass, call *ast.CallExpr) (string, []ast.Expr) {
	if pkg, name := calleeOf(pass.Info, call); pkg != "" {
		key := pkg + "." + name
		if secretWriteHelpers[key] {
			return "", nil // sanctioned persistence
		}
		if desc, ok := secretSinkFuncs[key]; ok {
			return desc, call.Args
		}
	}
	if recv, method := methodOf(pass.Info, call); recv != "" {
		switch {
		case recv == "cloudmonatt/internal/obs.ActiveSpan" && method == "Annotate":
			return "span annotation", call.Args
		case recv == "cloudmonatt/internal/metrics.Registry" && registryCtors[method]:
			if len(call.Args) > 0 {
				return "metric name", call.Args[:1]
			}
		}
	}
	return "", nil
}
