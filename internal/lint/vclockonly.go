package lint

import (
	"go/ast"
)

// VClockOnly enforces simulation determinism: packages wired to the
// virtual clock must not read wall-clock time or start wall-clock timers.
// The testbed replays seeded scenarios (chaos runs, periodic schedules,
// latency models) bit-for-bit only if every timestamp flows from
// vclock.Clock; one stray time.Now() in a protocol path silently decouples
// evidence timestamps, retry budgets, or ledger entries from the simulated
// timeline. Genuine wall-time needs (net.Conn deadlines, file mtimes,
// real backoff sleeps) are allowed case by case with
// //lint:wallclock <justification>.
var VClockOnly = &Analyzer{
	Name: "vclockonly",
	Doc: "wall-clock reads (time.Now/Since/Until) and wall-clock timers " +
		"(time.After/Sleep/Tick/NewTimer/NewTicker/AfterFunc) are forbidden in " +
		"packages wired to internal/vclock; use the injected clock or annotate " +
		"//lint:wallclock <justification>",
	Run: runVClockOnly,
}

// wallClockFuncs are the time package functions that observe or schedule
// against the wall clock. Pure constructors (time.Duration arithmetic,
// time.Unix, time.Date) are fine: they don't read the clock.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runVClockOnly(pass *Pass) {
	if !vclockScoped(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calleeOf(pass.Info, call)
			if pkg == "time" && wallClockFuncs[name] {
				pass.Reportf(call.Pos(),
					"wall-clock time.%s in a vclock-wired package breaks seeded replay; "+
						"use the injected virtual clock or annotate //lint:wallclock <justification>", name)
			}
			return true
		})
	}
}
