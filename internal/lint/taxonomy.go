package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// This file is the suite's domain knowledge: which packages are wired to
// the virtual clock, which RPC methods carry protocol nonces, and which
// packages handle key material. Analyzers consult these tables so the
// rules live in one reviewable place.

// modPrefix is the module path every table below is keyed under.
const modPrefix = "cloudmonatt/internal/"

// vclockExempt lists internal packages where wall-clock time is the point:
// the clock implementations themselves and the analysis tooling. Every
// other internal/ package participates in the simulated protocols and must
// route time through the injected virtual clock (vclock.Clock) so seeded
// runs replay identically.
var vclockExempt = map[string]bool{
	"vclock": true, // defines the virtual clock
	"sim":    true, // the discrete-event kernel under it
	"lint":   true, // this tooling
}

// vclockScoped reports whether the vclockonly invariant applies to the
// package with the given import path. Fixture packages loaded under a
// synthetic internal/ path participate, which is how the analyzer's own
// tests exercise both sides of the rule.
func vclockScoped(path string) bool {
	rel, ok := strings.CutPrefix(path, modPrefix)
	if !ok {
		return false
	}
	top, _, _ := strings.Cut(rel, "/")
	return !vclockExempt[top]
}

// freshNonceMethods maps RPC method names (the wire strings, resolved from
// constants or literals via constant folding) to the nonce they carry.
// A request on one of these methods embeds a protocol nonce that the
// peer's replay cache will reject if ever reused, so call sites must go
// through ReconnectClient.CallFresh, which rebuilds the request — and the
// nonce — on every retry attempt (paper §4.2: N1 customer→controller,
// N2 controller→attestation server, N3 attestation server→cloud server).
var freshNonceMethods = map[string]string{
	"startup_attest_current": "N1",
	"runtime_attest_current": "N1",
	"appraise":               "N2",
	"measure":                "N3",
}

// cryptoPkgs are the packages that generate or handle key material,
// nonces, or attestation secrets. math/rand is forbidden in them outright:
// a predictable nonce or key collapses the freshness and binding arguments
// of the whole protocol (cf. the SEV attestation bypasses in Buhren et
// al.). Seeded determinism for simulations is injected via io.Reader
// entropy sources instead.
//
// Scoping is by the first path segment under internal/, so an entry covers
// its whole subtree: "trust" includes the trust-backend driver packages
// (trust/driver, trust/driver/tpmdrv, trust/driver/vtpmdrv,
// trust/driver/sevsnp), whose evidence and measurement comparisons are the
// verifier-side targets the consttime rule exists for.
var cryptoPkgs = map[string]bool{
	"cryptoutil": true,
	"tpm":        true,
	"trust":      true,
	"pca":        true,
	"secchan":    true,
	"vtpm":       true,
}

func cryptoScoped(path string) bool {
	rel, ok := strings.CutPrefix(path, modPrefix)
	if !ok {
		return false
	}
	top, _, _ := strings.Cut(rel, "/")
	return cryptoPkgs[top]
}

// rpcClientTypes are the client types whose call methods the noncefresh
// and ctxdeadline analyzers police.
var rpcClientTypes = map[string]bool{
	"cloudmonatt/internal/rpc.Client":          true,
	"cloudmonatt/internal/rpc.ReconnectClient": true,
}

// --- shardroute ---

// vmAddressedMethods lists the attestation-server RPC methods whose handler
// is gated on ring ownership of the VM (checkOwner in attestsrv/serve.go).
// A request for one of these landing on the wrong shard draws a
// WrongShardError, so call sites must carry routing provenance: the client
// must come off an attestRoute resolved by the routing layer, whose
// callRouted wrapper follows typed redirects. The facts pass also exports
// this property for any string constant whose declaration comment carries a
// "vm-addressed" marker, so the set tracks the code rather than this table
// alone.
var vmAddressedMethods = map[string]bool{
	"appraise":       true,
	"register-vm":    true,
	"forget-vm":      true,
	"periodic-start": true,
	"periodic-stop":  true,
	"periodic-fetch": true,
	"rebind-vm":      true,
}

// routeTypeName is the routing-provenance type: a VM-addressed call is
// sanctioned only through the client field of a value of this (package-
// local) type, because such values are only minted by routeForVM and
// friends and consumed under callRouted's redirect loop.
const routeTypeName = "attestRoute"

// --- intentbracket ---

// effectKind classifies what bracketing an effect method demands.
type effectKind int

const (
	// effectBegin: a begin-phase intent must exist before the effect
	// (launch/place/terminate — the crash window is before the effect).
	effectBegin effectKind = iota
	// effectState: an end-only state intent must follow the effect
	// (suspend/resume — replay folds the completed transition).
	effectState
)

// effectMethods maps side-effecting RPC wire methods (resolved from the
// Call* method argument by constant folding) to the intent bracketing the
// two-phase ledger contract of DESIGN.md §13 demands of the caller.
var effectMethods = map[string]effectKind{
	"launch":      effectBegin,
	"terminate":   effectBegin,
	"migrate-out": effectBegin,
	"suspend":     effectState,
	"resume":      effectState,
}

// intentCallNames are the ledger-touching calls that count as appending an
// intent entry. c.record(ledger.KindIntent, ...) is recognized separately
// by argument type.
var intentCallNames = map[string]bool{
	"intentBegin": true,
	"intentEnd":   true,
	"stateIntent": true,
}

// --- secretflow ---

// secretSourceFuncs are the key-derivation functions whose results are raw
// keying material: traffic keys, resumption master secrets, and their
// ratchet steps (PR 8's session-resumption schedule).
var secretSourceFuncs = map[string]bool{
	"cloudmonatt/internal/secchan.deriveKeys": true,
	"cloudmonatt/internal/secchan.deriveRMS":  true,
	"cloudmonatt/internal/secchan.resumeKeys": true,
	"cloudmonatt/internal/secchan.nextRMS":    true,
}

// secretSourceMethods are methods whose results are secret material.
var secretSourceMethods = map[string]bool{
	"cloudmonatt/internal/cryptoutil.Identity.Seed": true,
}

// secretFields are struct fields holding secret material; reading one is a
// source. Keyed "pkg/path.Type.Field".
var secretFields = map[string]bool{
	"cloudmonatt/internal/secchan.Ticket.RMS": true,
}

// secretSanitizers launder secret material into something loggable: a
// domain-separated hash or a short redacted fingerprint. Keyed by
// (pkgPath, funcName) for functions.
var secretSanitizers = map[string]bool{
	"cloudmonatt/internal/cryptoutil.Redact": true,
	"cloudmonatt/internal/cryptoutil.Hash":   true,
}

// secretSinkFuncs (pkg.func → sink description) format or persist their
// arguments somewhere an operator, log pipeline, or trace store can read
// them back. fmt.Sprintf is deliberately a propagator, not a sink: its
// result only matters if it subsequently reaches one of these.
var secretSinkFuncs = map[string]string{
	"fmt.Errorf":   "error string",
	"fmt.Printf":   "stdout",
	"fmt.Print":    "stdout",
	"fmt.Println":  "stdout",
	"fmt.Fprintf":  "writer",
	"log.Printf":   "log",
	"log.Print":    "log",
	"log.Println":  "log",
	"log.Fatalf":   "log",
	"log.Fatal":    "log",
	"log.Fatalln":  "log",
	"log.Panicf":   "log",
	"log.Panic":    "log",
	"os.WriteFile": "plaintext file",
}

// secretWriteHelpers are the sanctioned persistence paths for secret
// material (tight permissions, documented provisioning semantics). A
// tainted value may flow into them.
var secretWriteHelpers = map[string]bool{
	"cloudmonatt/internal/cryptoutil.WriteSecretFile": true,
}

// secretPropagators forward taint from arguments to results: encoders and
// formatters whose output still reveals the input.
var secretPropagators = map[string]bool{
	"fmt.Sprintf":                 true,
	"fmt.Sprint":                  true,
	"fmt.Sprintln":                true,
	"fmt.Appendf":                 true,
	"encoding/json.Marshal":       true,
	"encoding/json.MarshalIndent": true,
}

// secretPropagatorMethods are method propagators ("pkg.Type.Method").
var secretPropagatorMethods = map[string]bool{
	"encoding/base64.Encoding.EncodeToString": true,
	"encoding/base64.Encoding.AppendEncode":   true,
	"encoding/hex.Encoder.Write":              true,
}

// secretPropagatorFuncs extends the list with plain functions.
var secretPropagatorFuncs = map[string]bool{
	"encoding/hex.EncodeToString": true,
	"encoding/hex.AppendEncode":   true,
}

// --- lockorder ---

// blockingMethods are method calls ("pkg.Type.Method") that can park the
// calling goroutine indefinitely: RPC round-trips and coalesced
// batch-verification waits. Channel operations and selects are recognized
// syntactically; everything else arrives transitively via "blocks" facts.
var blockingMethods = map[string]string{
	"cloudmonatt/internal/rpc.Client.Call":                 "rpc call",
	"cloudmonatt/internal/rpc.ReconnectClient.Call":        "rpc call",
	"cloudmonatt/internal/rpc.ReconnectClient.CallCtx":     "rpc call",
	"cloudmonatt/internal/rpc.ReconnectClient.CallIdem":    "rpc call",
	"cloudmonatt/internal/rpc.ReconnectClient.CallFresh":   "rpc call",
	"cloudmonatt/internal/cryptoutil.BatchVerifier.Verify": "batch-verifier wait",
	"sync.WaitGroup.Wait":                                  "waitgroup wait",
}

// blockingFuncs are plain functions that block.
var blockingFuncs = map[string]string{
	"time.Sleep": "sleep",
}

// opSerializers are mutexes whose documented purpose is to serialize whole
// logical operations end to end — RPCs included. They are exempt from the
// held-across-blocking rule (that is what they are for) but still
// participate in acquisition-order checking. Keyed "Type.field".
var opSerializers = map[string]bool{
	"Testbed.opMu":     true, // cloudsim: serializes kernel-driving operations
	"Config.Serialize": true, // controller: the nova-api single-writer contract
}

// lockOrder lists known lock pairs in acquisition order: the first member
// must never be acquired while the second is held. Keyed "Type.field".
var lockOrder = [][2]string{
	{"Testbed.opMu", "Testbed.mu"},         // cloudsim: op serializer before state
	{"Testbed.opMu", "certifierSwitch.mu"}, // cloudsim: op serializer before pCA switch
	{"certifierSwitch.mu", "Testbed.mu"},   // cloudsim: RestartPCA ordering
	{"periodicEngine.mu", "Server.mu"},     // attestsrv: engine before server state
}

// blockingMarker in an interface method's doc or line comment declares the
// method contractually blocking (e.g. a certification round-trip to the
// privacy CA), exported as a "blocks" fact for every implementation-
// agnostic call site.
const blockingMarker = "lockorder: blocking"

// vmAddressedMarker in a string constant's doc or line comment declares it
// a VM-addressed RPC method, exported as a "vmAddressed" fact.
const vmAddressedMarker = "vm-addressed"

// --- type-resolution helpers shared by the analyzers ---

// calleeOf resolves a call to (package path, function name) for package-
// level functions, or ("", "") otherwise.
func calleeOf(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel]; ok {
			if f, ok := obj.(*types.Func); ok && f.Pkg() != nil {
				if f.Type().(*types.Signature).Recv() == nil {
					return f.Pkg().Path(), f.Name()
				}
			}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			if f, ok := obj.(*types.Func); ok && f.Pkg() != nil {
				if f.Type().(*types.Signature).Recv() == nil {
					return f.Pkg().Path(), f.Name()
				}
			}
		}
	}
	return "", ""
}

// methodOf resolves a method call to (qualified receiver type, method
// name): ("cloudmonatt/internal/rpc.ReconnectClient", "CallFresh").
// Pointer receivers are dereferenced.
func methodOf(info *types.Info, call *ast.CallExpr) (recvType, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), sel.Sel.Name
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// constString resolves expr to a compile-time string value via constant
// folding (literals, named constants, and concatenations thereof).
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// typeIs reports whether t (after unwrapping pointers/aliases) is the
// named type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
