package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// This file is the suite's domain knowledge: which packages are wired to
// the virtual clock, which RPC methods carry protocol nonces, and which
// packages handle key material. Analyzers consult these tables so the
// rules live in one reviewable place.

// modPrefix is the module path every table below is keyed under.
const modPrefix = "cloudmonatt/internal/"

// vclockExempt lists internal packages where wall-clock time is the point:
// the clock implementations themselves and the analysis tooling. Every
// other internal/ package participates in the simulated protocols and must
// route time through the injected virtual clock (vclock.Clock) so seeded
// runs replay identically.
var vclockExempt = map[string]bool{
	"vclock": true, // defines the virtual clock
	"sim":    true, // the discrete-event kernel under it
	"lint":   true, // this tooling
}

// vclockScoped reports whether the vclockonly invariant applies to the
// package with the given import path. Fixture packages loaded under a
// synthetic internal/ path participate, which is how the analyzer's own
// tests exercise both sides of the rule.
func vclockScoped(path string) bool {
	rel, ok := strings.CutPrefix(path, modPrefix)
	if !ok {
		return false
	}
	top, _, _ := strings.Cut(rel, "/")
	return !vclockExempt[top]
}

// freshNonceMethods maps RPC method names (the wire strings, resolved from
// constants or literals via constant folding) to the nonce they carry.
// A request on one of these methods embeds a protocol nonce that the
// peer's replay cache will reject if ever reused, so call sites must go
// through ReconnectClient.CallFresh, which rebuilds the request — and the
// nonce — on every retry attempt (paper §4.2: N1 customer→controller,
// N2 controller→attestation server, N3 attestation server→cloud server).
var freshNonceMethods = map[string]string{
	"startup_attest_current": "N1",
	"runtime_attest_current": "N1",
	"appraise":               "N2",
	"measure":                "N3",
}

// cryptoPkgs are the packages that generate or handle key material,
// nonces, or attestation secrets. math/rand is forbidden in them outright:
// a predictable nonce or key collapses the freshness and binding arguments
// of the whole protocol (cf. the SEV attestation bypasses in Buhren et
// al.). Seeded determinism for simulations is injected via io.Reader
// entropy sources instead.
//
// Scoping is by the first path segment under internal/, so an entry covers
// its whole subtree: "trust" includes the trust-backend driver packages
// (trust/driver, trust/driver/tpmdrv, trust/driver/vtpmdrv,
// trust/driver/sevsnp), whose evidence and measurement comparisons are the
// verifier-side targets the consttime rule exists for.
var cryptoPkgs = map[string]bool{
	"cryptoutil": true,
	"tpm":        true,
	"trust":      true,
	"pca":        true,
	"secchan":    true,
	"vtpm":       true,
}

func cryptoScoped(path string) bool {
	rel, ok := strings.CutPrefix(path, modPrefix)
	if !ok {
		return false
	}
	top, _, _ := strings.Cut(rel, "/")
	return cryptoPkgs[top]
}

// rpcClientTypes are the client types whose call methods the noncefresh
// and ctxdeadline analyzers police.
var rpcClientTypes = map[string]bool{
	"cloudmonatt/internal/rpc.Client":          true,
	"cloudmonatt/internal/rpc.ReconnectClient": true,
}

// --- type-resolution helpers shared by the analyzers ---

// calleeOf resolves a call to (package path, function name) for package-
// level functions, or ("", "") otherwise.
func calleeOf(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel]; ok {
			if f, ok := obj.(*types.Func); ok && f.Pkg() != nil {
				if f.Type().(*types.Signature).Recv() == nil {
					return f.Pkg().Path(), f.Name()
				}
			}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			if f, ok := obj.(*types.Func); ok && f.Pkg() != nil {
				if f.Type().(*types.Signature).Recv() == nil {
					return f.Pkg().Path(), f.Name()
				}
			}
		}
	}
	return "", ""
}

// methodOf resolves a method call to (qualified receiver type, method
// name): ("cloudmonatt/internal/rpc.ReconnectClient", "CallFresh").
// Pointer receivers are dereferenced.
func methodOf(info *types.Info, call *ast.CallExpr) (recvType, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), sel.Sel.Name
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// constString resolves expr to a compile-time string value via constant
// folding (literals, named constants, and concatenations thereof).
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// typeIs reports whether t (after unwrapping pointers/aliases) is the
// named type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
