package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFactsRoundTrip drives the on-disk facts cache end to end: compute a
// real fact over a fixture package, persist it, and check that a fresh
// store serves it back only when the source hash matches.
func TestFactsRoundTrip(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "shardroutedep"), "cloudmonatt/internal/shardroutedep")
	if err != nil {
		t.Fatal(err)
	}
	obj := pkg.Types.Scope().Lookup("MethodRebind")
	if obj == nil {
		t.Fatal("fixture constant MethodRebind not found")
	}
	if got, want := ObjectKey(obj), "cloudmonatt/internal/shardroutedep.MethodRebind"; got != want {
		t.Fatalf("ObjectKey = %q, want %q", got, want)
	}

	store := NewFactStore()
	runFacts(pkg, []*Analyzer{ShardRoute}, store)
	importFact := func(s *FactStore) (vmAddressedFact, bool) {
		pass := &Pass{Analyzer: ShardRoute, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, facts: s}
		var fact vmAddressedFact
		ok := pass.ImportFact(obj, "vmAddressed", &fact)
		return fact, ok
	}
	if fact, ok := importFact(store); !ok || fact.Method != "rebind-fixture" {
		t.Fatalf("fact after runFacts = %+v, %v; want Method rebind-fixture", fact, ok)
	}

	dir := t.TempDir()
	hash, err := SourceHash(pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(dir, pkg.Path, hash); err != nil {
		t.Fatal(err)
	}

	// Fresh store, matching hash: cache hit, same fact back.
	warm := NewFactStore()
	fresh, err := warm.LoadCached(dir, pkg.Path, hash)
	if err != nil || !fresh {
		t.Fatalf("LoadCached(matching hash) = %v, %v; want fresh", fresh, err)
	}
	if fact, ok := importFact(warm); !ok || fact.Method != "rebind-fixture" {
		t.Fatalf("fact after LoadCached = %+v, %v; want Method rebind-fixture", fact, ok)
	}

	// Changed sources: the stale entry must not be served.
	if fresh, err := NewFactStore().LoadCached(dir, pkg.Path, "different-hash"); err != nil || fresh {
		t.Fatalf("LoadCached(stale hash) = %v, %v; want miss", fresh, err)
	}

	// Corrupt cache file: a miss (recompute), not an error.
	if err := os.WriteFile(filepath.Join(dir, factsFileName(pkg.Path)), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fresh, err := NewFactStore().LoadCached(dir, pkg.Path, hash); err != nil || fresh {
		t.Fatalf("LoadCached(corrupt file) = %v, %v; want miss", fresh, err)
	}
}

// TestAnalyzeUsesFactsCache checks the driver wiring: a second Analyze
// over the same packages with the same facts dir reports cache hits and
// identical diagnostics.
func TestAnalyzeUsesFactsCache(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.Alias("cloudmonatt/internal/shardroutedep", filepath.Join("testdata", "src", "shardroutedep"))
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "shardroute"), "cloudmonatt/internal/shardroutefix")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cold, coldStats := Analyze([]*Package{pkg}, []*Analyzer{ShardRoute}, AnalyzeOptions{Loader: loader, FactsDir: dir})
	if coldStats.FactsCached != 0 {
		t.Fatalf("cold run reported %d cached fact packages, want 0", coldStats.FactsCached)
	}
	warm, warmStats := Analyze([]*Package{pkg}, []*Analyzer{ShardRoute}, AnalyzeOptions{Loader: loader, FactsDir: dir})
	if warmStats.FactsCached != warmStats.FactPackages {
		t.Fatalf("warm run cached %d/%d fact packages, want all",
			warmStats.FactsCached, warmStats.FactPackages)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm run found %d diagnostics, cold found %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].Message != cold[i].Message || warm[i].Pos != cold[i].Pos {
			t.Fatalf("diagnostic %d differs between cold and warm runs:\ncold: %+v\nwarm: %+v", i, cold[i], warm[i])
		}
	}
}
