// Package lint is monatt-vet's analysis engine: a small, dependency-free
// analogue of golang.org/x/tools/go/analysis that encodes CloudMonatt's
// protocol invariants as compile-time checks.
//
// The paper's security argument rests on rules the Go compiler cannot see:
// nonces N1–N3 must be fresh per attempt, quotes and MACs must be compared
// in constant time, simulation code must use the injected virtual clock,
// and every RPC crossing an entity boundary must carry a deadline
// (Zhang & Lee, ISCA'15 §4–5). Each rule is an Analyzer; the monatt-vet
// driver (cmd/monatt-vet) runs them over type-checked packages and fails
// the build on any finding.
//
// Suppression is explicit and audited. Two comment directives exist:
//
//	//lint:wallclock <justification>   – allow wall-clock time on this line
//	//lint:ignore <analyzer> <reason>  – suppress one analyzer on this line
//
// Both require a non-empty justification; a bare directive is itself a
// diagnostic. A directive applies to findings on its own line or, when it
// stands alone, on the line directly below it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore.
	Name string
	// Doc is the one-paragraph description shown by monatt-vet -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// String renders a diagnostic as file:line:col: message [analyzer].
func (d Diagnostic) String(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		VClockOnly,
		NonceFresh,
		ConstTime,
		CtxDeadline,
		SpanEnd,
		MetricsName,
	}
}

// Run executes the given analyzers over one loaded package and returns the
// surviving diagnostics: directive-suppressed findings are dropped,
// malformed directives are added.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	dirs := collectDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if !dirs.suppresses(pkg.Fset, d) {
				out = append(out, d)
			}
		}
	}
	out = append(out, dirs.malformed...)
	sortDiagnostics(pkg.Fset, out)
	return out
}

// RunAll runs analyzers over every package and concatenates the findings.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, Run(pkg, analyzers)...)
	}
	return out
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

// --- directives ---

// directive is one parsed //lint: comment.
type directive struct {
	analyzer string // analyzer suppressed ("vclockonly" for wallclock)
	file     string
	line     int // the directive's own line
}

type directiveSet struct {
	byLine    map[string]map[int][]directive // file → line → directives
	malformed []Diagnostic
}

// collectDirectives scans all comments for //lint:wallclock and
// //lint:ignore, validating that each carries a justification.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				rest = strings.TrimSpace(rest)
				var d directive
				switch verb {
				case "wallclock":
					if rest == "" {
						ds.malformed = append(ds.malformed, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "directive",
							Message:  "//lint:wallclock requires a justification (why is wall-clock time correct here?)",
						})
						continue
					}
					d = directive{analyzer: "vclockonly"}
				case "ignore":
					name, reason, _ := strings.Cut(rest, " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						ds.malformed = append(ds.malformed, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "directive",
							Message:  "//lint:ignore requires an analyzer name and a reason",
						})
						continue
					}
					d = directive{analyzer: name}
				default:
					ds.malformed = append(ds.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  fmt.Sprintf("unknown directive //lint:%s (want wallclock or ignore)", verb),
					})
					continue
				}
				d.file, d.line = pos.Filename, pos.Line
				if ds.byLine[d.file] == nil {
					ds.byLine[d.file] = make(map[int][]directive)
				}
				ds.byLine[d.file][d.line] = append(ds.byLine[d.file][d.line], d)
			}
		}
	}
	return ds
}

// suppresses reports whether a directive on the diagnostic's line, or on
// the line directly above it, names the diagnostic's analyzer.
func (ds *directiveSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := ds.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == d.Analyzer {
				return true
			}
		}
	}
	return false
}
