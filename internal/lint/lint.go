// Package lint is monatt-vet's analysis engine: a small, dependency-free
// analogue of golang.org/x/tools/go/analysis that encodes CloudMonatt's
// protocol invariants as compile-time checks.
//
// The paper's security argument rests on rules the Go compiler cannot see:
// nonces N1–N3 must be fresh per attempt, quotes and MACs must be compared
// in constant time, simulation code must use the injected virtual clock,
// and every RPC crossing an entity boundary must carry a deadline
// (Zhang & Lee, ISCA'15 §4–5). Each rule is an Analyzer; the monatt-vet
// driver (cmd/monatt-vet) runs them over type-checked packages and fails
// the build on any finding.
//
// Suppression is explicit and audited. Two comment directives exist:
//
//	//lint:wallclock <justification>   – allow wall-clock time on this line
//	//lint:ignore <analyzer> <reason>  – suppress one analyzer on this line
//
// Both require a non-empty justification; a bare directive is itself a
// diagnostic. A directive applies to findings on its own line or, when it
// stands alone, on the line directly below it.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore.
	Name string
	// Doc is the one-paragraph description shown by monatt-vet -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// Facts, when set, is the analyzer's fact-computation pass. It runs
	// over every package in dependency order before any Run pass, so the
	// facts a package exports are visible when its dependents are
	// analyzed. Facts passes report nothing; they only ExportFact.
	Facts func(*Pass)
}

// A Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Suppressed marks a finding waived by an audited directive;
	// SuppressedBy carries the directive's justification. Run and RunAll
	// drop suppressed findings; Analyze keeps them when asked (-json).
	Suppressed   bool
	SuppressedBy string
}

// String renders a diagnostic as file:line:col: message [analyzer].
func (d Diagnostic) String(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts *FactStore
	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact attaches a named, JSON-serializable fact to a package-level
// object, visible to later passes over packages that import this one.
func (p *Pass) ExportFact(obj types.Object, name string, value any) {
	if p.facts == nil {
		return
	}
	_ = p.facts.export(p.Pkg.Path(), obj, name, value)
}

// ImportFact loads a fact attached to obj (by this or an earlier-analyzed
// package) into out, reporting whether one existed.
func (p *Pass) ImportFact(obj types.Object, name string, out any) bool {
	if p.facts == nil {
		return false
	}
	raw, ok := p.facts.lookup(obj, name)
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		VClockOnly,
		NonceFresh,
		ConstTime,
		CtxDeadline,
		SpanEnd,
		MetricsName,
		SecretFlow,
		IntentBracket,
		ShardRoute,
		LockOrder,
	}
}

// AnalyzeOptions configures a full analysis session.
type AnalyzeOptions struct {
	// Loader, when set, contributes every module package it has cached
	// (dependencies of the requested ones) to the facts phase.
	Loader *Loader
	// FactsDir, when set, persists per-package facts keyed by source hash
	// and reuses fresh entries on later runs.
	FactsDir string
	// KeepSuppressed returns directive-suppressed findings (marked) rather
	// than dropping them.
	KeepSuppressed bool
}

// AnalyzeStats reports what the facts phase did.
type AnalyzeStats struct {
	FactPackages int // packages whose facts were needed
	FactsCached  int // of those, how many came from the cache
}

// Analyze is the full driver: it computes (or loads) facts for the
// dependency closure of pkgs in topological order, then runs the
// analyzers' diagnostic passes over pkgs.
func Analyze(pkgs []*Package, analyzers []*Analyzer, opt AnalyzeOptions) ([]Diagnostic, AnalyzeStats) {
	store := NewFactStore()
	stats := AnalyzeStats{}

	factPkgs := pkgs
	if opt.Loader != nil {
		seen := make(map[string]bool, len(pkgs))
		for _, p := range pkgs {
			seen[p.Path] = true
		}
		for _, p := range opt.Loader.Cached() {
			if !seen[p.Path] {
				factPkgs = append(factPkgs, p)
				seen[p.Path] = true
			}
		}
	}
	for _, pkg := range dependencyOrder(factPkgs) {
		stats.FactPackages++
		var hash string
		if opt.FactsDir != "" {
			if h, err := SourceHash(pkg.Dir); err == nil {
				hash = h
				if fresh, _ := store.LoadCached(opt.FactsDir, pkg.Path, hash); fresh {
					stats.FactsCached++
					continue
				}
			}
		}
		runFacts(pkg, analyzers, store)
		if opt.FactsDir != "" && hash != "" {
			_ = store.Save(opt.FactsDir, pkg.Path, hash)
		}
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		ds := runDiagnostics(pkg, analyzers, store)
		for _, d := range ds {
			if d.Suppressed && !opt.KeepSuppressed {
				continue
			}
			out = append(out, d)
		}
	}
	return out, stats
}

// runFacts executes every analyzer's facts pass over one package.
func runFacts(pkg *Package, analyzers []*Analyzer, store *FactStore) {
	for _, a := range analyzers {
		if a.Facts == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			facts:    store,
		}
		a.Facts(pass)
	}
}

// runDiagnostics executes the diagnostic passes over one package, marking
// directive-suppressed findings, appending malformed-directive and
// unused-waiver diagnostics, and sorting the result.
func runDiagnostics(pkg *Package, analyzers []*Analyzer, store *FactStore) []Diagnostic {
	var out []Diagnostic
	dirs := collectDirectives(pkg.Fset, pkg.Files)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			facts:    store,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if dir := dirs.suppressing(pkg.Fset, d); dir != nil {
				d.Suppressed = true
				d.SuppressedBy = dir.reason
			}
			out = append(out, d)
		}
	}
	out = append(out, dirs.malformed...)
	out = append(out, dirs.unused(ran)...)
	sortDiagnostics(pkg.Fset, out)
	return out
}

// Run executes the given analyzers over one loaded package and returns the
// surviving diagnostics: facts are computed for this package alone,
// directive-suppressed findings are dropped, malformed directives and
// unused waivers are added. Cross-package facts require Analyze.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ds, _ := Analyze([]*Package{pkg}, analyzers, AnalyzeOptions{})
	return ds
}

// RunAll runs analyzers over every package — facts first, in dependency
// order — and concatenates the surviving findings.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ds, _ := Analyze(pkgs, analyzers, AnalyzeOptions{})
	return ds
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

// --- directives ---

// directive is one parsed //lint: comment.
type directive struct {
	analyzer string // analyzer suppressed ("vclockonly" for wallclock)
	verb     string // "wallclock" or "ignore"
	reason   string // the justification text
	file     string
	line     int       // the directive's own line
	pos      token.Pos // for unused-waiver diagnostics
	used     bool      // did it suppress at least one finding?
}

type directiveSet struct {
	byLine    map[string]map[int][]*directive // file → line → directives
	all       []*directive
	malformed []Diagnostic
}

// collectDirectives scans all comments for //lint:wallclock and
// //lint:ignore, validating that each carries a justification.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				rest = strings.TrimSpace(rest)
				var d *directive
				switch verb {
				case "wallclock":
					if rest == "" {
						ds.malformed = append(ds.malformed, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "directive",
							Message:  "//lint:wallclock requires a justification (why is wall-clock time correct here?)",
						})
						continue
					}
					d = &directive{analyzer: "vclockonly", verb: "wallclock", reason: rest}
				case "ignore":
					name, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					if name == "" || reason == "" {
						ds.malformed = append(ds.malformed, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "directive",
							Message:  "//lint:ignore requires an analyzer name and a reason",
						})
						continue
					}
					d = &directive{analyzer: name, verb: "ignore", reason: reason}
				default:
					ds.malformed = append(ds.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  fmt.Sprintf("unknown directive //lint:%s (want wallclock or ignore)", verb),
					})
					continue
				}
				d.file, d.line, d.pos = pos.Filename, pos.Line, c.Pos()
				if ds.byLine[d.file] == nil {
					ds.byLine[d.file] = make(map[int][]*directive)
				}
				ds.byLine[d.file][d.line] = append(ds.byLine[d.file][d.line], d)
				ds.all = append(ds.all, d)
			}
		}
	}
	return ds
}

// suppressing returns the directive — on the diagnostic's line, or on the
// line directly above it — that names the diagnostic's analyzer, marking
// it used; nil when none applies.
func (ds *directiveSet) suppressing(fset *token.FileSet, d Diagnostic) *directive {
	pos := fset.Position(d.Pos)
	lines := ds.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == d.Analyzer {
				dir.used = true
				return dir
			}
		}
	}
	return nil
}

// unused reports a diagnostic for every directive that suppressed nothing,
// provided the analyzer it targets actually ran (a waiver for an analyzer
// excluded from this run cannot be judged stale).
func (ds *directiveSet) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range ds.all {
		if dir.used || !ran[dir.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: "directive",
			Message: fmt.Sprintf("unused //lint:%s directive: no %s finding here to suppress — remove it",
				dir.verb, dir.analyzer),
		})
	}
	return out
}
