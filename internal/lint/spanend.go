package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd keeps the tracing surface truthful: a span opened with
// Tracer.Start or ActiveSpan.Child must be ended (End/EndErr) on every
// path out of the function that opened it. An unended span is silent data
// loss — the stage simply never appears in /traces, which is precisely the
// failure mode an operator debugging a stuck attestation cannot afford.
//
// The check is structural, per function:
//
//   - a deferred sp.End/sp.EndErr (directly or inside a deferred closure)
//     discharges the span on all paths, panics included — this is the
//     preferred form;
//   - otherwise every return (and explicit panic) reachable after the
//     span's creation must be preceded by an End/EndErr on that path, and
//     the fall-through end of the function must be closed too;
//   - a span handed to another function, goroutine, or stored away
//     ("escaped") is that code's responsibility and is not tracked —
//     except obs.ContextWith, which only links the span to a context and
//     does not end it;
//   - a span whose result is discarded can never be ended and is always
//     reported.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "every obs span started in a function must be ended (End/EndErr) " +
		"on all return paths; prefer defer sp.End(...) immediately after Start",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSpansIn(pass, body)
			}
			return true
		})
	}
}

// spanCreation reports whether call opens a span.
func spanCreation(pass *Pass, call *ast.CallExpr) bool {
	recv, method := methodOf(pass.Info, call)
	return (recv == "cloudmonatt/internal/obs.Tracer" && method == "Start") ||
		(recv == "cloudmonatt/internal/obs.ActiveSpan" && method == "Child")
}

// checkSpansIn analyzes one function body. Nested function literals are
// handled by their own invocation of checkSpansIn (runSpanEnd visits every
// FuncLit), so the walk here does not descend into them when looking for
// creations.
func checkSpansIn(pass *Pass, body *ast.BlockStmt) {
	for _, sp := range findCreations(pass, body) {
		checkSpan(pass, body, sp)
	}
}

type spanVar struct {
	obj types.Object
	pos token.Pos
}

// findCreations collects spans created and bound to a local variable in
// this function (not in nested literals), and reports creations whose
// result is discarded outright.
func findCreations(pass *Pass, body *ast.BlockStmt) []spanVar {
	var out []spanVar
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false // separate function, checked separately
			}
			switch m := m.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(m.X).(*ast.CallExpr); ok && spanCreation(pass, call) {
					pass.Reportf(call.Pos(), "span result discarded; it can never be ended — bind it and End it on all paths")
				}
			case *ast.AssignStmt:
				if len(m.Rhs) != 1 || len(m.Lhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(m.Rhs[0]).(*ast.CallExpr)
				if !ok || !spanCreation(pass, call) {
					return true
				}
				id, ok := m.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span assigned to _; it can never be ended — bind it and End it on all paths")
					return true
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					out = append(out, spanVar{obj: obj, pos: call.Pos()})
				}
			}
			return true
		})
	}
	walk(body)
	return out
}

// checkSpan verifies one span's closure discipline within body.
func checkSpan(pass *Pass, body *ast.BlockStmt, sp spanVar) {
	if hasDeferredClose(pass, body, sp.obj) || closedInLiteral(pass, body, sp.obj) || escapes(pass, body, sp.obj) {
		return
	}
	st := spanState{}
	term := evalSpanStmts(pass, body.List, &st, sp)
	if !term && st.born && !st.closed {
		pass.Reportf(sp.pos, "span %s is not ended on the fall-through path out of this function", objName(sp.obj))
	}
}

func objName(o types.Object) string { return o.Name() }

func isBuiltin(o types.Object) bool {
	_, ok := o.(*types.Builtin)
	return ok
}

// isCloseCall reports whether stmt is sp.End(...)/sp.EndErr(...).
func isCloseCall(pass *Pass, n ast.Node, obj types.Object) bool {
	expr, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	return isCloseExpr(pass, expr.X, obj)
}

func isCloseExpr(pass *Pass, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndErr") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// hasDeferredClose reports a defer of sp.End/EndErr, directly or within a
// deferred closure.
func hasDeferredClose(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if isCloseExpr(pass, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if stmt, ok := m.(*ast.ExprStmt); ok && isCloseExpr(pass, stmt.X, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// closedInLiteral reports an End/EndErr inside a non-deferred function
// literal (a goroutine or callback owns the close).
func closedInLiteral(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return !found
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if stmt, ok := m.(*ast.ExprStmt); ok && isCloseExpr(pass, stmt.X, obj) {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// escapes reports whether the span leaves this function's custody: passed
// as an argument (other than to obs.ContextWith), aliased, returned,
// stored in a composite, or sent on a channel.
func escapes(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		if spanUseEscapes(pass, stack, id) {
			escaped = true
		}
		return true
	})
	return escaped
}

func spanUseEscapes(pass *Pass, stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// sp.Method(...) — receiver position; any span method is local use.
		if p.X == id && len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == p {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		// Argument position: obs.ContextWith(ctx, sp) keeps custody here.
		pkg, fn := calleeOf(pass.Info, p)
		if pkg == "cloudmonatt/internal/obs" && fn == "ContextWith" {
			return false
		}
		return true
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				return false // reassignment of the variable itself
			}
		}
		return true
	case *ast.ValueSpec:
		return true
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// --- path evaluation ---

type spanState struct {
	born   bool
	closed bool
}

func (s spanState) open() bool { return s.born && !s.closed }

// evalSpanStmts walks a statement list in order, tracking whether the span
// is open, and reports returns/panics that leave it open. The return value
// says whether every path through the list terminates (return/panic)
// before falling through.
func evalSpanStmts(pass *Pass, stmts []ast.Stmt, st *spanState, sp spanVar) (terminates bool) {
	for _, stmt := range stmts {
		if evalSpanStmt(pass, stmt, st, sp) {
			return true
		}
	}
	return false
}

func evalSpanStmt(pass *Pass, stmt ast.Stmt, st *spanState, sp spanVar) (terminates bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if pass.Info.Defs[id] == sp.obj || pass.Info.Uses[id] == sp.obj {
					st.born, st.closed = true, false
				}
			}
		}
	case *ast.ExprStmt:
		if isCloseCall(pass, s, sp.obj) {
			st.closed = true
		} else if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltin(pass.Info.Uses[id]) {
				if st.open() {
					pass.Reportf(s.Pos(), "span %s is open at this panic; defer its End so unwinding closes it", objName(sp.obj))
				}
				return true
			}
		}
	case *ast.ReturnStmt:
		if st.open() {
			pass.Reportf(s.Pos(), "return leaves span %s open; End it on this path or defer the End", objName(sp.obj))
		}
		return true
	case *ast.BlockStmt:
		return evalSpanStmts(pass, s.List, st, sp)
	case *ast.LabeledStmt:
		return evalSpanStmt(pass, s.Stmt, st, sp)
	case *ast.IfStmt:
		if s.Init != nil {
			evalSpanStmt(pass, s.Init, st, sp)
		}
		branches := []ast.Stmt{s.Body}
		if s.Else != nil {
			branches = append(branches, s.Else)
		} else {
			branches = append(branches, nil)
		}
		return combineBranches(pass, branches, st, sp, true)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var branches []ast.Stmt
		exhaustive := false
		var list []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			list = sw.Body.List
		case *ast.TypeSwitchStmt:
			list = sw.Body.List
		case *ast.SelectStmt:
			list = sw.Body.List
			exhaustive = len(list) > 0
		}
		for _, c := range list {
			switch cc := c.(type) {
			case *ast.CaseClause:
				branches = append(branches, &ast.BlockStmt{List: cc.Body})
				if cc.List == nil {
					exhaustive = true
				}
			case *ast.CommClause:
				branches = append(branches, &ast.BlockStmt{List: cc.Body})
			}
		}
		if !exhaustive {
			branches = append(branches, nil)
		}
		return combineBranches(pass, branches, st, sp, exhaustive)
	case *ast.ForStmt:
		evalLoopBody(pass, s.Body, st, sp)
	case *ast.RangeStmt:
		evalLoopBody(pass, s.Body, st, sp)
	}
	return false
}

// evalLoopBody evaluates a loop body that may run zero or more times.
// Returns inside the body are checked against the body's own running
// state. The state after the loop merges the zero-iteration path (state
// unchanged) with the body's fall-through state: a span born in the body
// is open after the loop only if an iteration's bottom leaves it open.
func evalLoopBody(pass *Pass, body *ast.BlockStmt, st *spanState, sp spanVar) {
	if body == nil {
		return
	}
	bodySt := *st
	term := evalSpanStmts(pass, body.List, &bodySt, sp)
	if term {
		return // every iteration path returns; after-loop state is the zero-iteration one
	}
	open := st.open() || bodySt.open()
	st.born = st.born || bodySt.born
	st.closed = st.born && !open
}

// combineBranches evaluates alternative branches from the same entry
// state. A nil branch is the implicit fall-through (condition false, no
// matching case). The merged state is open if any non-terminating branch
// leaves the span open; the statement terminates only if every branch
// (and there is no implicit one) terminates.
func combineBranches(pass *Pass, branches []ast.Stmt, st *spanState, sp spanVar, canTerminate bool) bool {
	allTerm := canTerminate
	openAfter := false
	bornAfter := st.born
	for _, b := range branches {
		bst := *st
		term := false
		if b != nil {
			term = evalSpanStmt(pass, b, &bst, sp)
		}
		if !term {
			allTerm = false
			if bst.open() {
				openAfter = true
			}
			if bst.born {
				bornAfter = true
			}
		}
	}
	if allTerm && len(branches) > 0 {
		return true
	}
	st.born = bornAfter
	st.closed = bornAfter && !openAfter
	return false
}
