package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The facts layer makes the analyzers cross-package, in the style of
// golang.org/x/tools/go/analysis facts: while analyzing one package, an
// analyzer may attach a named, JSON-serializable fact to any package-level
// object it can see (a function, method, constant, or interface method).
// Packages are analyzed in dependency order, so when a dependent package is
// analyzed the facts of everything it imports are already present and can
// be imported by object.
//
// Facts are what let lockorder know that ledger.Append parks the caller on
// the group-commit channel three packages away, let intentbracket know that
// a helper takes custody of an open intent, and let shardroute recognize a
// VM-addressed method constant it has never seen the declaration of.
//
// A FactStore optionally persists each package's facts to a cache
// directory, keyed by a hash of the package's sources, so repeated CI runs
// skip the fact-computation passes for unchanged packages (-facts-dir).

// factsFormatVersion invalidates cached facts when the encoding or the
// fact-producing analyzers change shape.
const factsFormatVersion = 1

// A FactKey names one fact: the object it is attached to plus the fact name.
type FactKey struct {
	// Object is the stable object key: "pkg/path.Name" for package-level
	// functions, constants and variables, "pkg/path.(Type).Name" for
	// methods (including interface methods).
	Object string
	// Name is the fact name, scoped by convention to one analyzer
	// ("blocks", "effect", "returnsSecret", "vmAddressed", ...).
	Name string
}

// A FactStore holds every exported fact of a run, grouped by the package
// that exported it.
type FactStore struct {
	byPkg map[string]map[FactKey]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byPkg: make(map[string]map[FactKey]json.RawMessage)}
}

// ObjectKey renders the stable cross-package key for a package-level
// object, or "" when the object has no package (builtins, locals whose
// parent scope is not the package scope are keyed too — facts on locals are
// simply never importable from elsewhere, which is harmless).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if named := namedOf(recv); named != nil {
				return f.Pkg().Path() + ".(" + named.Obj().Name() + ")." + f.Name()
			}
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// export records one fact. value must be JSON-marshalable.
func (s *FactStore) export(pkgPath string, obj types.Object, name string, value any) error {
	key := ObjectKey(obj)
	if key == "" {
		return fmt.Errorf("lint: cannot attach fact %q to object without a package", name)
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("lint: marshaling fact %q on %s: %w", name, key, err)
	}
	m := s.byPkg[pkgPath]
	if m == nil {
		m = make(map[FactKey]json.RawMessage)
		s.byPkg[pkgPath] = m
	}
	m[FactKey{Object: key, Name: name}] = raw
	return nil
}

// lookup finds a fact by object key, searching the exporting package first
// (facts live with the package that declares the object).
func (s *FactStore) lookup(obj types.Object, name string) (json.RawMessage, bool) {
	key := ObjectKey(obj)
	if key == "" || obj.Pkg() == nil {
		return nil, false
	}
	raw, ok := s.byPkg[obj.Pkg().Path()][FactKey{Object: key, Name: name}]
	return raw, ok
}

// serializedFact is the on-disk form of one fact.
type serializedFact struct {
	Object string          `json:"object"`
	Name   string          `json:"name"`
	Value  json.RawMessage `json:"value"`
}

// factsFile is the on-disk form of one package's facts.
type factsFile struct {
	Version    int              `json:"version"`
	Package    string           `json:"package"`
	SourceHash string           `json:"source_hash"`
	Facts      []serializedFact `json:"facts"`
}

// Save writes pkgPath's facts (and the source hash they were computed
// from) into dir, creating it if needed.
func (s *FactStore) Save(dir, pkgPath, sourceHash string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ff := factsFile{Version: factsFormatVersion, Package: pkgPath, SourceHash: sourceHash}
	keys := make([]FactKey, 0, len(s.byPkg[pkgPath]))
	for k := range s.byPkg[pkgPath] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Object != keys[j].Object {
			return keys[i].Object < keys[j].Object
		}
		return keys[i].Name < keys[j].Name
	})
	for _, k := range keys {
		ff.Facts = append(ff.Facts, serializedFact{Object: k.Object, Name: k.Name, Value: s.byPkg[pkgPath][k]})
	}
	data, err := json.MarshalIndent(ff, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, factsFileName(pkgPath)), data, 0o644)
}

// LoadCached loads pkgPath's facts from dir into the store if a cache file
// exists whose source hash matches. It reports whether the cache was fresh.
func (s *FactStore) LoadCached(dir, pkgPath, sourceHash string) (bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, factsFileName(pkgPath)))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	var ff factsFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return false, nil // corrupt cache: recompute
	}
	if ff.Version != factsFormatVersion || ff.Package != pkgPath || ff.SourceHash != sourceHash {
		return false, nil
	}
	m := make(map[FactKey]json.RawMessage, len(ff.Facts))
	for _, f := range ff.Facts {
		m[FactKey{Object: f.Object, Name: f.Name}] = f.Value
	}
	s.byPkg[pkgPath] = m
	return true, nil
}

// factsFileName maps an import path to a flat, filesystem-safe file name.
func factsFileName(pkgPath string) string {
	sum := sha256.Sum256([]byte(pkgPath))
	base := strings.NewReplacer("/", "_", ".", "_").Replace(pkgPath)
	return base + "-" + hex.EncodeToString(sum[:6]) + ".json"
}

// SourceHash hashes the non-test Go sources of a package directory (names
// and contents), the input key for the facts cache.
func SourceHash(dir string) (string, error) {
	srcs, err := goSources(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n", factsFormatVersion)
	for _, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", filepath.Base(src), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// dependencyOrder topologically sorts packages so every package appears
// after the packages it imports (module-internal edges only). The input
// order breaks ties, keeping runs deterministic.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var (
		out     []*Package
		done    = make(map[string]bool)
		visit   func(p *Package)
		onStack = make(map[string]bool)
	)
	visit = func(p *Package) {
		if done[p.Path] || onStack[p.Path] {
			return
		}
		onStack[p.Path] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		onStack[p.Path] = false
		done[p.Path] = true
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
