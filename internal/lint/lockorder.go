package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces two lock-discipline rules that the paper's
// monitor-availability argument quietly depends on:
//
//  1. No mutex is held across an operation that can park the goroutine
//     indefinitely — an RPC round-trip, a channel send or receive, a
//     select without default, a BatchVerifier or WaitGroup wait. A lock
//     held across an RPC turns one slow peer into a stalled shard. The
//     documented op-serializer locks (opSerializers in the taxonomy)
//     exist precisely to serialize whole operations and are exempt.
//
//  2. Known lock pairs are acquired in their documented order
//     (lockOrder in the taxonomy): acquiring the senior lock while the
//     junior one is held is a latent deadlock.
//
// Whether a call blocks is mostly not visible at the call site, so the
// facts pass computes a transitive "blocks" footprint per function:
// direct channel operations and taxonomy-listed blockers seed it, a
// same-package fixed point plus imported facts extend it through helper
// layers, and interface methods carrying a "lockorder: blocking" doc
// marker (e.g. the privacy-CA certification round-trip) export it
// contractually, since no implementation is visible to the caller.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "no mutex held across an RPC call, channel operation, or verifier wait " +
		"(op-serializer locks exempt); documented lock pairs acquired in order",
	Run:   runLockOrder,
	Facts: lockOrderFacts,
}

// blocksFact marks a function that can park its caller indefinitely.
type blocksFact struct {
	Why string `json:"why"` // e.g. "rpc call", "channel send"
}

// --- facts: the transitive blocking footprint ---

func lockOrderFacts(pass *Pass) {
	// Contractually blocking interface methods: the declaration is the
	// only thing a caller sees, so the marker rides on it.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				if len(m.Names) == 0 {
					continue // embedded interface
				}
				if hasMarker(m.Doc, blockingMarker) || hasMarker(m.Comment, blockingMarker) {
					for _, name := range m.Names {
						if obj := pass.Info.ObjectOf(name); obj != nil {
							pass.ExportFact(obj, "blocks", blocksFact{Why: "contractually blocking (" + name.Name + ")"})
						}
					}
				}
			}
			return true
		})
	}
	// Function footprints, to a same-package fixed point so helper chains
	// settle regardless of declaration order.
	for i := 0; i < 10; i++ {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.Info.ObjectOf(fd.Name)
				if obj == nil {
					continue
				}
				var prev blocksFact
				if pass.ImportFact(obj, "blocks", &prev) {
					continue
				}
				if why := firstBlocking(pass, fd.Body); why != "" {
					pass.ExportFact(obj, "blocks", blocksFact{Why: why})
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// firstBlocking returns a description of the first operation in body that
// can park the goroutine, or "". Function literals and go statements are
// skipped: a spawned goroutine's waits are its own.
func firstBlocking(pass *Pass, body *ast.BlockStmt) string {
	var why string
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		if why != "" || n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return
		case *ast.SendStmt:
			why = "channel send"
			return
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				why = "channel receive"
				return
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info, s.X) {
				why = "channel receive"
				return
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				why = "blocking select"
				return
			}
			// Non-blocking select: the comm expressions cannot park, but
			// the clause bodies run afterwards and can.
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						walk(st)
					}
				}
			}
			return
		case *ast.CallExpr:
			if w := callBlocks(pass, s); w != "" {
				why = w
				return
			}
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if why != "" || child == nil || child == n {
				return child == n
			}
			walk(child)
			return false
		})
	}
	walk(body)
	return why
}

// callBlocks reports why a call can block, or "".
func callBlocks(pass *Pass, call *ast.CallExpr) string {
	if recv, method := methodOf(pass.Info, call); recv != "" {
		if why, ok := blockingMethods[recv+"."+method]; ok {
			return why
		}
	}
	if pkg, name := calleeOf(pass.Info, call); pkg != "" {
		if why, ok := blockingFuncs[pkg+"."+name]; ok {
			return why
		}
	}
	if obj := calleeObject(pass.Info, call); obj != nil {
		var fact blocksFact
		if pass.ImportFact(obj, "blocks", &fact) {
			return fact.Why + " in " + obj.Name()
		}
	}
	return ""
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// --- diagnostics: held-lock walk ---

// heldLock records one acquisition.
type heldLock struct {
	key string
	pos token.Pos
}

type heldSet map[string]heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func runLockOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLocks(pass, fd.Body, make(heldSet))
		}
	}
}

// walkLocks walks a block linearly, tracking acquisitions. Nested control
// flow is walked with a copy of the held set: locks acquired inside a
// branch are checked inside it, and the conservative assumption after the
// branch is the state before it (the repo's style pairs Lock with a
// same-block Unlock or defer).
func walkLocks(pass *Pass, block *ast.BlockStmt, held heldSet) {
	for _, stmt := range block.List {
		walkLockStmt(pass, stmt, held)
	}
}

func walkLockStmt(pass *Pass, stmt ast.Stmt, held heldSet) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		scanLockExpr(pass, s.X, held)
	case *ast.SendStmt:
		reportBlocked(pass, s.Pos(), "channel send", held)
		scanLockExpr(pass, s.Chan, held)
		scanLockExpr(pass, s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			scanLockExpr(pass, e, held)
		}
		for _, e := range s.Lhs {
			scanLockExpr(pass, e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						scanLockExpr(pass, v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			scanLockExpr(pass, e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		scanLockExpr(pass, s.Cond, held)
		walkLocks(pass, s.Body, held.clone())
		if s.Else != nil {
			walkLockStmt(pass, s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			scanLockExpr(pass, s.Cond, held)
		}
		walkLocks(pass, s.Body, held.clone())
	case *ast.RangeStmt:
		if isChanType(pass.Info, s.X) {
			reportBlocked(pass, s.Pos(), "channel receive", held)
		}
		scanLockExpr(pass, s.X, held)
		walkLocks(pass, s.Body, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			scanLockExpr(pass, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.clone()
				for _, st := range cc.Body {
					walkLockStmt(pass, st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.clone()
				for _, st := range cc.Body {
					walkLockStmt(pass, st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			reportBlocked(pass, s.Pos(), "blocking select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				for _, st := range cc.Body {
					walkLockStmt(pass, st, inner)
				}
			}
		}
	case *ast.BlockStmt:
		walkLocks(pass, s, held.clone())
	case *ast.LabeledStmt:
		walkLockStmt(pass, s.Stmt, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — exactly
		// what the linear walk already assumes — so deferred unlocks need
		// no action. Other deferred calls run at return, after the body's
		// own unlocks would have run; skip them.
		if _, _, isOp := mutexOp(pass.Info, s.Call); !isOp {
			for _, a := range s.Call.Args {
				scanLockExpr(pass, a, held)
			}
		}
	case *ast.GoStmt:
		// A spawned goroutine starts with nothing held.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			walkLocks(pass, lit.Body, make(heldSet))
		}
		for _, a := range s.Call.Args {
			scanLockExpr(pass, a, held)
		}
	}
}

// scanLockExpr scans one expression tree for lock operations, blocking
// calls, and channel receives, updating held in place.
func scanLockExpr(pass *Pass, expr ast.Expr, held heldSet) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			walkLocks(pass, e.Body, make(heldSet))
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				reportBlocked(pass, e.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if key, op, ok := mutexOp(pass.Info, e); ok {
				applyMutexOp(pass, e.Pos(), key, op, held)
				return false
			}
			if why := callBlocks(pass, e); why != "" {
				reportBlocked(pass, e.Pos(), why, held)
			}
		}
		return true
	})
}

// mutexOp recognizes calls to sync.Mutex / sync.RWMutex methods and
// returns the lock's stable key and the method name.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFunc := info.ObjectOf(sel.Sel).(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	named := namedOf(recv.Type())
	if named == nil {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return lockKeyOf(info, sel.X), obj.Name(), true
	}
	return "", "", false
}

// lockKeyOf names a lock by "Type.field" when it is a field of a named
// struct (matching the taxonomy's opSerializers / lockOrder keys), or by
// its bare identifier otherwise.
func lockKeyOf(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if tv, ok := info.Types[e.X]; ok {
			if named := namedOf(tv.Type); named != nil {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	}
	return "lock"
}

func applyMutexOp(pass *Pass, pos token.Pos, key, op string, held heldSet) {
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock":
		// Order rule: never acquire the senior lock of a documented pair
		// while its junior is held.
		for _, pair := range lockOrder {
			if pair[0] == key {
				if junior, bad := held[pair[1]]; bad {
					_ = junior
					pass.Reportf(pos,
						"%s acquired while %s is held; the documented order is %s before %s — "+
							"acquiring them inverted is a latent deadlock", key, pair[1], pair[0], pair[1])
				}
			}
		}
		held[key] = heldLock{key: key, pos: pos}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// reportBlocked fires when a blocking operation happens with a
// non-op-serializer lock held.
func reportBlocked(pass *Pass, pos token.Pos, why string, held heldSet) {
	for key := range held {
		if opSerializers[key] {
			continue
		}
		pass.Reportf(pos,
			"%s while %s is held; a parked goroutine keeps the lock and stalls every "+
				"contender — release it first, or document the lock as an op-serializer", why, key)
		return
	}
}
