package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// Fixtures follow the go/analysis analysistest convention: a comment
// `want `+"`regex`"+` on a line asserts that exactly that line carries a
// diagnostic matching the regex; every other line must be clean. Fixture
// packages live under testdata/src (invisible to the go tool) and are
// type-checked against the real module packages they import, under a
// synthetic import path chosen to put them in the analyzer's scope.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		asPath   string
		analyzer *Analyzer
	}{
		{"vclockonly", "cloudmonatt/internal/vclockonlyfix", VClockOnly},
		{"noncefresh", "cloudmonatt/internal/noncefreshfix", NonceFresh},
		// consttime's math/rand rule only applies inside key-handling
		// packages; the synthetic path plants the fixture there.
		{"consttime", "cloudmonatt/internal/cryptoutil/consttimefix", ConstTime},
		{"ctxdeadline", "cloudmonatt/internal/ctxdeadlinefix", CtxDeadline},
		{"spanend", "cloudmonatt/internal/spanendfix", SpanEnd},
		{"metricsname", "cloudmonatt/internal/metricsnamefix", MetricsName},
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			runFixture(t, loader, tc.dir, tc.asPath, tc.analyzer)
		})
	}
}

// wantPattern extracts the expectation regex from a fixture comment.
var wantPattern = regexp.MustCompile("want `([^`]+)`")

func runFixture(t *testing.T, loader *Loader, dir, asPath string, analyzer *Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantPattern.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[lineKey{pos.Filename, pos.Line}] = re
			}
		}
	}

	matched := make(map[lineKey]bool)
	for _, d := range Run(pkg, []*Analyzer{analyzer}) {
		pos := pkg.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		re, ok := wants[k]
		switch {
		case !ok:
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
		case !re.MatchString(d.Message):
			t.Errorf("diagnostic at %s:%d = %q does not match want %q", pos.Filename, pos.Line, d.Message, re)
		default:
			matched[k] = true
		}
	}
	for k, re := range wants {
		if !matched[k] {
			t.Errorf("missing diagnostic at %s:%d (want %q)", k.file, k.line, re)
		}
	}
}
