package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// Fixtures follow the go/analysis analysistest convention: a comment
// `want `+"`regex`"+` on a line asserts that exactly that line carries a
// diagnostic matching the regex; every other line must be clean. Fixture
// packages live under testdata/src (invisible to the go tool) and are
// type-checked against the real module packages they import, under a
// synthetic import path chosen to put them in the analyzer's scope.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		asPath   string
		analyzer *Analyzer
		// deps maps synthetic import paths to fixture dirs the main package
		// imports — the cross-package-fact cases. They are registered as
		// loader aliases, and the facts phase covers them via the Loader
		// option, so facts exported in a dep are importable in the fixture.
		deps map[string]string
	}{
		{"vclockonly", "cloudmonatt/internal/vclockonlyfix", VClockOnly, nil},
		{"noncefresh", "cloudmonatt/internal/noncefreshfix", NonceFresh, nil},
		// consttime's math/rand rule only applies inside key-handling
		// packages; the synthetic path plants the fixture there.
		{"consttime", "cloudmonatt/internal/cryptoutil/consttimefix", ConstTime, nil},
		{"ctxdeadline", "cloudmonatt/internal/ctxdeadlinefix", CtxDeadline, nil},
		{"spanend", "cloudmonatt/internal/spanendfix", SpanEnd, nil},
		{"metricsname", "cloudmonatt/internal/metricsnamefix", MetricsName, nil},
		{"secretflow", "cloudmonatt/internal/secretflowfix", SecretFlow,
			map[string]string{"cloudmonatt/internal/secretflowdep": "secretflowdep"}},
		{"intentbracket", "cloudmonatt/internal/intentbracketfix", IntentBracket,
			map[string]string{"cloudmonatt/internal/intentbracketdep": "intentbracketdep"}},
		{"shardroute", "cloudmonatt/internal/shardroutefix", ShardRoute,
			map[string]string{"cloudmonatt/internal/shardroutedep": "shardroutedep"}},
		{"lockorder", "cloudmonatt/internal/lockorderfix", LockOrder,
			map[string]string{"cloudmonatt/internal/lockorderdep": "lockorderdep"}},
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			for path, dir := range tc.deps {
				loader.Alias(path, filepath.Join("testdata", "src", dir))
			}
			runFixture(t, loader, tc.dir, tc.asPath, tc.analyzer)
		})
	}
}

// wantPattern extracts the expectation regex from a fixture comment.
var wantPattern = regexp.MustCompile("want `([^`]+)`")

func runFixture(t *testing.T, loader *Loader, dir, asPath string, analyzer *Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantPattern.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[lineKey{pos.Filename, pos.Line}] = re
			}
		}
	}

	// The full Analyze driver (rather than single-package Run) computes
	// facts over every package the loader has cached — in particular the
	// aliased dep packages — in dependency order before diagnosing.
	ds, _ := Analyze([]*Package{pkg}, []*Analyzer{analyzer}, AnalyzeOptions{Loader: loader})
	matched := make(map[lineKey]bool)
	for _, d := range ds {
		pos := pkg.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		re, ok := wants[k]
		switch {
		case !ok:
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
		case !re.MatchString(d.Message):
			t.Errorf("diagnostic at %s:%d = %q does not match want %q", pos.Filename, pos.Line, d.Message, re)
		default:
			matched[k] = true
		}
	}
	for k, re := range wants {
		if !matched[k] {
			t.Errorf("missing diagnostic at %s:%d (want %q)", k.file, k.line, re)
		}
	}
}
