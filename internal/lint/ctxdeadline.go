package lint

import (
	"go/ast"
	"go/types"
)

// CtxDeadline enforces the failure model built in the fault-tolerance PR:
// every RPC crossing an entity boundary must be bounded by a deadline, so
// a wedged peer degrades the caller instead of wedging it. The analyzer
// checks each call site on rpc.Client / rpc.ReconnectClient:
//
//   - the deadline-less convenience method Call is rejected outright in
//     production code (it exists for tests);
//   - for CallCtx/CallFresh/CallIdem/Connect, the context argument must
//     not provably lack a deadline. "Provably" is syntactic and local:
//     context.Background()/TODO(), possibly laundered through
//     context.WithValue/WithCancel or obs.ContextWith, or a local variable
//     assigned from those. Contexts received as parameters are assumed
//     bounded by the caller (the rule then applies at that caller).
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc: "every rpc.Client/ReconnectClient call site must receive a " +
		"context that can carry a deadline: derive it from context.WithTimeout " +
		"or pass the caller's bounded context",
	Run: runCtxDeadline,
}

var deadlineMethods = map[string]bool{
	"CallCtx":   true,
	"CallFresh": true,
	"CallIdem":  true,
	"Connect":   true,
}

func runCtxDeadline(pass *Pass) {
	for _, f := range pass.Files {
		// Track the enclosing function body so local assignments of the
		// context variable can be chased.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method := methodOf(pass.Info, call)
			if !rpcClientTypes[recv] {
				return true
			}
			if method == "Call" {
				pass.Reportf(call.Pos(),
					"%s.Call carries no context; use CallCtx/CallFresh/CallIdem with a deadline-carrying context",
					shortType(recv))
				return true
			}
			if !deadlineMethods[method] || len(call.Args) == 0 {
				return true
			}
			if why := unboundedCtx(pass, enclosing(stack), call.Args[0], 0); why != "" {
				pass.Reportf(call.Args[0].Pos(),
					"context passed to %s.%s provably carries no deadline (%s); "+
						"derive it with context.WithTimeout or pass the caller's bounded context",
					shortType(recv), method, why)
			}
			return true
		})
	}
}

func shortType(qualified string) string {
	for i := len(qualified) - 1; i >= 0; i-- {
		if qualified[i] == '.' {
			return qualified[i+1:]
		}
	}
	return qualified
}

// enclosing returns the body of the innermost function declaration or
// literal on the stack.
func enclosing(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// unboundedCtx returns a non-empty reason when expr provably evaluates to
// a context with no deadline; "" when a deadline is present or unknowable.
func unboundedCtx(pass *Pass, scope *ast.BlockStmt, expr ast.Expr, depth int) string {
	if depth > 8 {
		return ""
	}
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.CallExpr:
		pkg, fn := calleeOf(pass.Info, e)
		switch {
		case pkg == "context" && (fn == "Background" || fn == "TODO"):
			return "context." + fn + "()"
		case pkg == "context" && (fn == "WithValue" || fn == "WithCancel"):
			// Neither adds a deadline; inspect the parent.
			if len(e.Args) > 0 {
				return unboundedCtx(pass, scope, e.Args[0], depth+1)
			}
		case pkg == "cloudmonatt/internal/obs" && fn == "ContextWith":
			if len(e.Args) > 0 {
				return unboundedCtx(pass, scope, e.Args[0], depth+1)
			}
		}
		return ""
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		v, ok := obj.(*types.Var)
		if !ok || scope == nil {
			return ""
		}
		return unboundedVar(pass, scope, v, depth)
	}
	return ""
}

// unboundedVar chases local assignments of v inside scope. All observed
// assignments must be provably unbounded for the variable to count as
// unbounded (a single WithTimeout assignment clears it); a variable with
// no visible assignment (parameter, captured binding) is assumed bounded.
func unboundedVar(pass *Pass, scope *ast.BlockStmt, v *types.Var, depth int) string {
	reason := ""
	ast.Inspect(scope, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		idx := -1
		for i, lhs := range assign.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if pass.Info.Defs[id] == v || pass.Info.Uses[id] == v {
					idx = i
				}
			}
		}
		if idx < 0 {
			return true
		}
		rhs, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			reason = ""
			return false
		}
		pkg, fn := calleeOf(pass.Info, rhs)
		switch {
		case pkg == "context" && (fn == "WithTimeout" || fn == "WithDeadline"):
			reason = ""
			return false
		case pkg == "context" && (fn == "Background" || fn == "TODO"):
			reason = v.Name() + " := context." + fn + "()"
		case pkg == "context" && (fn == "WithCancel" || fn == "WithValue"),
			pkg == "cloudmonatt/internal/obs" && fn == "ContextWith":
			if len(rhs.Args) > 0 {
				if r := unboundedCtx(pass, scope, rhs.Args[0], depth+1); r != "" {
					reason = v.Name() + " derived from " + r
				} else {
					reason = ""
					return false
				}
			}
		default:
			// Unknown producer: assume bounded.
			reason = ""
			return false
		}
		return true
	})
	return reason
}
