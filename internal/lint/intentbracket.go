package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IntentBracket enforces the two-phase intent contract of DESIGN.md §13:
// every controller operation with a side effect on the fleet — launching,
// terminating, migrating, suspending or resuming a VM — must be bracketed
// by KindIntent ledger entries so a crashed controller replays to a
// consistent view. Begin-phase ops (launch, terminate, migrate-out) need
// the begin entry appended before the effect: the dangerous crash window
// is between deciding and doing. State-transition ops (suspend, resume)
// are end-only: the completed transition is appended after the effect so
// replay folds the VM's final state.
//
// The rule is intraprocedural plus facts. A function that performs an
// effect RPC and touches the intent ledger is self-bracketed. An
// unexported function that performs a raw effect without intents exports
// an "effect" fact — the bracketing burden moves to its callers. An
// exported function that performs an effect (directly or via a
// fact-carrying callee) with no intent activity is a finding: a crash
// inside it strands the fleet in a state replay cannot reconstruct.
// Functions with an intent-custody parameter (a string parameter whose
// name contains "intent") inherit an open intent from their caller and
// export a "needsIntent" fact instead.
var IntentBracket = &Analyzer{
	Name: "intentbracket",
	Doc: "side-effecting VM operations (launch/terminate/migrate/suspend/resume) must " +
		"append two-phase KindIntent ledger entries: begin before begin-phase effects, " +
		"a state/end entry after transitions; unbracketed exported performers are findings",
	Run:   runIntentBracket,
	Facts: intentBracketFacts,
}

// effectFact marks a function that performs a raw fleet side effect
// without bracketing it, passing the obligation to callers.
type effectFact struct {
	Op string `json:"op"` // the wire method, e.g. "terminate"
}

// needsIntentFact marks a function that takes custody of an open intent
// via parameter: callers must have begun one.
type needsIntentFact struct {
	Param string `json:"param"`
}

// funcEffects summarizes one function body for the bracket rule.
type funcEffects struct {
	effects      []effectSite  // effect calls, direct or via fact
	intents      []intentTouch // intent-ledger touches
	custodyParam string        // intent-custody parameter name, if any
}

// intentTouch is one intent-ledger call; begin distinguishes phase-1
// appends (intentBegin, record with Phase "begin") from phase-2 closes
// (intentEnd, stateIntent, record with Phase "end").
type intentTouch struct {
	pos   token.Pos
	begin bool
}

func (fx funcEffects) beginTouches() []token.Pos {
	var out []token.Pos
	for _, t := range fx.intents {
		if t.begin {
			out = append(out, t.pos)
		}
	}
	return out
}

type effectSite struct {
	pos  token.Pos
	op   string
	kind effectKind
	via  string // callee name when the effect arrives via fact
}

// collectEffects walks one function body.
func collectEffects(pass *Pass, fd *ast.FuncDecl) funcEffects {
	var fx funcEffects
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if containsFold(name.Name, "intent") && isStringType(pass.Info, name) {
					fx.custodyParam = name.Name
				}
			}
		}
	}
	if fd.Body == nil {
		return fx
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Intent-ledger touches: the intent helper family, or any call
		// passing ledger.KindIntent (MigrateVM appends records directly).
		if _, name := splitCallee(pass.Info, call); intentCallNames[name] {
			fx.intents = append(fx.intents, intentTouch{pos: call.Pos(), begin: name == "intentBegin"})
			return true
		}
		for _, arg := range call.Args {
			if isLedgerKindIntent(pass.Info, arg) {
				fx.intents = append(fx.intents, intentTouch{pos: call.Pos(), begin: recordsBeginPhase(call)})
				return true
			}
		}
		// Direct effect RPCs: a Call* on an rpc client whose method
		// argument folds to an effect method.
		if recv, _ := methodOf(pass.Info, call); rpcClientTypes[recv] {
			for _, arg := range call.Args {
				if m, ok := constString(pass.Info, arg); ok {
					if kind, isEffect := effectMethods[m]; isEffect {
						fx.effects = append(fx.effects, effectSite{pos: call.Pos(), op: m, kind: kind})
					}
					break // first constant string is the method
				}
			}
			return true
		}
		// Effects via facts: calling a function another pass marked as a
		// raw performer.
		if obj := calleeObject(pass.Info, call); obj != nil {
			var ef effectFact
			if pass.ImportFact(obj, "effect", &ef) {
				kind := effectMethods[ef.Op]
				fx.effects = append(fx.effects, effectSite{pos: call.Pos(), op: ef.Op, kind: kind, via: obj.Name()})
			}
			var nf needsIntentFact
			if pass.ImportFact(obj, "needsIntent", &nf) {
				// Calling a custody-taking helper is itself an effect that
				// demands an open intent here.
				fx.effects = append(fx.effects, effectSite{pos: call.Pos(), op: "remediate", kind: effectBegin, via: obj.Name()})
			}
		}
		return true
	})
	return fx
}

// intentBracketFacts exports effect/needsIntent facts for unbracketed
// performers, so the diagnostic pass sees through helper layers.
func intentBracketFacts(pass *Pass) {
	// Iterate to a fixed point within the package: helpers calling helpers
	// settle in as many rounds as the call chain is deep.
	for i := 0; i < 5; i++ {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.Info.ObjectOf(fd.Name)
				if obj == nil {
					continue
				}
				fx := collectEffects(pass, fd)
				if len(fx.effects) == 0 || len(fx.intents) > 0 {
					continue // no effects, or self-bracketed
				}
				if fx.custodyParam != "" {
					var prev needsIntentFact
					if !pass.ImportFact(obj, "needsIntent", &prev) {
						pass.ExportFact(obj, "needsIntent", needsIntentFact{Param: fx.custodyParam})
						changed = true
					}
					continue
				}
				if !fd.Name.IsExported() {
					var prev effectFact
					if !pass.ImportFact(obj, "effect", &prev) {
						pass.ExportFact(obj, "effect", effectFact{Op: fx.effects[0].op})
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// runIntentBracket reports the violations.
func runIntentBracket(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fx := collectEffects(pass, fd)
			if len(fx.effects) == 0 {
				continue
			}
			if len(fx.intents) == 0 {
				// Unexported performers without custody export facts; the
				// obligation lands on their callers. Exported ones are the
				// API surface — a crash here is unrecoverable by replay.
				if fd.Name.IsExported() && fx.custodyParam == "" {
					e := fx.effects[0]
					how := "performs"
					if e.via != "" {
						how = "performs (via " + e.via + ")"
					}
					pass.Reportf(fd.Name.Pos(),
						"%s %s a %q side effect but appends no KindIntent ledger entry; "+
							"a controller crash here is invisible to replay (DESIGN.md §13 two-phase intent contract)",
						fd.Name.Name, how, e.op)
				}
				continue
			}
			// Self-bracketed: check ordering for begin-phase effects. The
			// rule binds only functions that append their own begin entry —
			// phase-2 executors (finalizeTeardown, MigrateVM's convergent
			// steps, crash recovery) close intents that were made durable
			// by an earlier pass, so end-only touches after the effect are
			// the contract working, not a violation.
			begins := fx.beginTouches()
			if len(begins) == 0 {
				continue
			}
			for _, e := range fx.effects {
				if e.kind != effectBegin {
					continue
				}
				anyBefore := false
				for _, ip := range begins {
					if ip < e.pos {
						anyBefore = true
						break
					}
				}
				if !anyBefore {
					pass.Reportf(e.pos,
						"begin-phase effect %q happens before its begin intent is appended; "+
							"append the intent first (the crash window is between deciding and doing)", e.op)
				}
			}
		}
	}
}

// splitCallee returns (pkgPath-or-recv, bare name) for plain and method calls.
func splitCallee(info *types.Info, call *ast.CallExpr) (string, string) {
	if pkg, name := calleeOf(info, call); pkg != "" {
		return pkg, name
	}
	if recv, method := methodOf(info, call); recv != "" {
		return recv, method
	}
	// Unresolved selector (e.g. method on a local interface): fall back to
	// the syntactic name so intentCallNames still matches helpers.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return "", sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return "", id.Name
	}
	return "", ""
}

// recordsBeginPhase reports whether a direct KindIntent record call
// carries a Phase: "begin" field in one of its composite-literal
// arguments (the c.record(ledger.KindIntent, ..., intentRecord{Phase:
// "begin", ...}) form). Anything else is a phase-2 close.
func recordsBeginPhase(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Phase" {
				continue
			}
			if val, ok := ast.Unparen(kv.Value).(*ast.BasicLit); ok && val.Value == `"begin"` {
				return true
			}
		}
	}
	return false
}

// isLedgerKindIntent reports whether expr denotes ledger.KindIntent.
func isLedgerKindIntent(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "cloudmonatt/internal/ledger" && obj.Name() == "KindIntent"
}

func isStringType(info *types.Info, id *ast.Ident) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}

func containsFold(s, sub string) bool {
	return len(s) >= len(sub) && indexFold(s, sub) >= 0
}

func indexFold(s, sub string) int {
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}
