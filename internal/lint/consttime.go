package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ConstTime enforces two timing-side-channel rules from the attestation
// literature (a verifier that leaks how many quote bytes matched lets a
// co-resident attacker forge evidence byte by byte):
//
//  1. Values that hold quotes (Q1–Q3), MACs, signatures, or key material
//     must be compared with crypto/subtle.ConstantTimeCompare, never with
//     ==, !=, bytes.Equal, or reflect.DeepEqual, all of which short-circuit
//     on the first differing byte.
//  2. math/rand (and math/rand/v2) must not be imported by the packages
//     that generate key material or nonces; predictable randomness
//     collapses the freshness argument entirely.
//
// Protocol nonces are exempt from rule 1: they travel in cleartext and are
// checked against a replay cache, so their comparison timing reveals
// nothing secret.
var ConstTime = &Analyzer{
	Name: "consttime",
	Doc: "quote/MAC/key/signature comparisons must use " +
		"crypto/subtle.ConstantTimeCompare; math/rand is forbidden in " +
		"key-handling packages",
	Run: runConstTime,
}

// sensitiveName matches identifiers and field names that hold secret-
// derived comparable material by this repo's naming conventions: the
// paper's quotes Q1..Q3, signatures, MACs, and key fields (AVK is the
// attestation verification key of §4.3).
var sensitiveName = regexp.MustCompile(`(?:^(?i:q[0-9]+|quote|mac|sig|signature|avk|tag)$)|(?:(Key|Sig|Mac|MAC|Quote|AVK)$)`)

func runConstTime(pass *Pass) {
	crypto := cryptoScoped(pass.Pkg.Path())
	for _, f := range pass.Files {
		if crypto {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(imp.Pos(),
						"%s imported in a key-handling package; predictable randomness breaks "+
							"nonce freshness and key generation — use crypto/rand (or an injected io.Reader)", p)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilIdent(n.X) || isNilIdent(n.Y) {
					return true
				}
				if name, ok := sensitiveOperand(pass.Info, n.X); ok {
					pass.Reportf(n.Pos(), "%s compared with %s leaks a timing side channel; use crypto/subtle.ConstantTimeCompare", name, n.Op)
				} else if name, ok := sensitiveOperand(pass.Info, n.Y); ok {
					pass.Reportf(n.Pos(), "%s compared with %s leaks a timing side channel; use crypto/subtle.ConstantTimeCompare", name, n.Op)
				}
			case *ast.CallExpr:
				pkg, fn := calleeOf(pass.Info, n)
				isEq := pkg == "bytes" && fn == "Equal"
				isDeep := pkg == "reflect" && fn == "DeepEqual"
				if (isEq || isDeep) && len(n.Args) == 2 {
					for _, arg := range n.Args {
						if name, ok := sensitiveOperand(pass.Info, arg); ok {
							pass.Reportf(n.Pos(), "%s compared with %s.%s leaks a timing side channel; use crypto/subtle.ConstantTimeCompare", name, pkg, fn)
							break
						}
					}
				}
			}
			return true
		})
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// sensitiveOperand reports whether e names secret-derived byte material:
// either its type is an ed25519 key, or its name matches the sensitive
// conventions and its type is a byte slice or byte array. Protocol nonces
// (cryptoutil.Nonce) are explicitly public.
func sensitiveOperand(info *types.Info, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok { // x[:] — look at x
		e = ast.Unparen(sl.X)
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	if typeIs(tv.Type, "crypto/ed25519", "PublicKey") || typeIs(tv.Type, "crypto/ed25519", "PrivateKey") {
		return exprLabel(e), true
	}
	if typeIs(tv.Type, "cloudmonatt/internal/cryptoutil", "Nonce") {
		return "", false
	}
	name := exprName(e)
	if name == "" || !sensitiveName.MatchString(name) {
		return "", false
	}
	if !bytesLike(tv.Type) {
		return "", false
	}
	return exprLabel(e), true
}

func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		// A conversion like ed25519.PublicKey(x) is handled by its type;
		// plain call results have no stable name.
		return ""
	}
	return ""
}

func exprLabel(e ast.Expr) string {
	if n := exprName(e); n != "" {
		return n
	}
	return "secret material"
}

// bytesLike reports whether t's underlying type is []byte or [N]byte.
func bytesLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}
