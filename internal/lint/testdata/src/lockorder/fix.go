// Package lockorderfix exercises the lockorder analyzer: no lock held
// across a blocking operation (op-serializer locks exempt) and the
// documented lock pairs acquired in order.
package lockorderfix

import (
	"sync"

	"cloudmonatt/internal/lockorderdep"
	"cloudmonatt/internal/rpc"
)

// Testbed reuses the taxonomy's documented lock names: opMu is an
// op-serializer, and the documented order is opMu before mu.
type Testbed struct {
	opMu sync.Mutex
	mu   sync.Mutex
	ch   chan int
	n    int
}

func (t *Testbed) recvHeld() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.ch // want `channel receive while Testbed.mu is held`
}

func (t *Testbed) rpcHeld(c *rpc.ReconnectClient) error {
	t.mu.Lock()
	err := c.Call("ping", nil, nil) // want `rpc call while Testbed.mu is held`
	t.mu.Unlock()
	return err
}

func (t *Testbed) serialized() {
	t.opMu.Lock()
	t.ch <- 1
	t.opMu.Unlock()
}

func (t *Testbed) releasedFirst(c *rpc.ReconnectClient) error {
	t.mu.Lock()
	n := t.n
	t.mu.Unlock()
	_ = n
	return c.Call("ping", nil, nil)
}

func (t *Testbed) inverted() {
	t.mu.Lock()
	t.opMu.Lock() // want `Testbed.opMu acquired while Testbed.mu is held; the documented order is Testbed.opMu before Testbed.mu`
	t.opMu.Unlock()
	t.mu.Unlock()
}

func (t *Testbed) spawned() {
	t.mu.Lock()
	go func() {
		<-t.ch
	}()
	t.mu.Unlock()
}

func (t *Testbed) certifyHeld(ca lockorderdep.Certifier) {
	t.mu.Lock()
	_, _ = ca.Certify(nil) // want `contractually blocking \(Certify\) in Certify while Testbed.mu is held`
	t.mu.Unlock()
}

func (t *Testbed) waived() {
	t.mu.Lock()
	//lint:ignore lockorder fixture: the receive is bounded by a buffered channel drained elsewhere
	<-t.ch
	t.mu.Unlock()
}
