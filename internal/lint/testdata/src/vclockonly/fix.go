// Package vclockonlyfix exercises the vclockonly analyzer: wall-clock
// reads and timers are flagged in vclock-wired packages; injected clocks,
// pure time constructors, and justified //lint:wallclock waivers are not.
package vclockonlyfix

import "time"

// Clock is the injected time source a vclock-wired package should use.
type Clock func() time.Duration

func reads() time.Time {
	t := time.Now()              // want `wall-clock time.Now`
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep`
	_ = time.Since(t)            // want `wall-clock time.Since`
	return t
}

func timers() {
	_ = time.After(time.Second)    // want `wall-clock time.After`
	_ = time.NewTimer(time.Second) // want `wall-clock time.NewTimer`
}

func clean(now Clock) time.Duration {
	d := 5 * time.Second
	_ = time.Unix(0, 0) // pure constructor: no clock read
	return now() + d
}

func waived() time.Time {
	//lint:wallclock fixture stands in for a net.Conn deadline, which is wall-clock by contract
	return time.Now()
}

func suppressed() {
	//lint:ignore vclockonly fixture demonstrates the generic suppression directive
	_ = time.Now()
}

func typoDirective() {
	//lint:wallcheck misspelled verb // want `unknown directive`
}
