// Package intentbracketfix exercises the intentbracket analyzer: fleet
// side effects must be bracketed by KindIntent ledger entries, begin
// entries appended before begin-phase effects.
package intentbracketfix

import (
	"cloudmonatt/internal/intentbracketdep"
	"cloudmonatt/internal/rpc"
)

// intentBegin, intentEnd and stateIntent stand in for the controller's
// ledger helpers; the analyzer matches them by bare name.
func intentBegin(op, vm string)    { _, _ = op, vm }
func intentEnd(op, vm string)      { _, _ = op, vm }
func stateIntent(vm, state string) { _, _ = vm, state }

func Terminate(c *rpc.ReconnectClient) error { // want `Terminate performs a "terminate" side effect but appends no KindIntent ledger entry`
	return c.Call("terminate", nil, nil)
}

func TerminateBracketed(c *rpc.ReconnectClient, vm string) error {
	intentBegin("terminate", vm)
	err := c.Call("terminate", nil, nil)
	intentEnd("terminate", vm)
	return err
}

func TerminateInverted(c *rpc.ReconnectClient, vm string) error {
	err := c.Call("terminate", nil, nil) // want `begin-phase effect "terminate" happens before its begin intent is appended`
	intentBegin("terminate", vm)
	return err
}

// Resume is end-only: suspend/resume are state transitions, so the
// completed transition is appended after the effect and no begin entry
// is demanded.
func Resume(c *rpc.ReconnectClient, vm string) error {
	err := c.Call("resume", nil, nil)
	stateIntent(vm, "active")
	return err
}

// rawSuspend performs the effect without bracketing; being unexported it
// exports an effect fact instead of drawing a finding.
func rawSuspend(c *rpc.ReconnectClient) error {
	return c.Call("suspend", nil, nil)
}

func Suspend(c *rpc.ReconnectClient) error { // want `Suspend performs \(via rawSuspend\) a "suspend" side effect but appends no KindIntent ledger entry`
	return rawSuspend(c)
}

func SuspendBracketed(c *rpc.ReconnectClient, vm string) error {
	err := rawSuspend(c)
	stateIntent(vm, "suspended")
	return err
}

func Evict(c *rpc.ReconnectClient, vm string) error { // want `Evict performs \(via Remediate\) a "remediate" side effect but appends no KindIntent ledger entry`
	return intentbracketdep.Remediate(c, vm+"-intent")
}

func EvictUnderIntent(c *rpc.ReconnectClient, vm string) error {
	intentBegin("terminate", vm)
	err := intentbracketdep.Remediate(c, vm+"-intent")
	intentEnd("terminate", vm)
	return err
}

//lint:ignore intentbracket fixture: bare effect audited by hand
func Purge(c *rpc.ReconnectClient) error {
	return c.Call("terminate", nil, nil)
}
