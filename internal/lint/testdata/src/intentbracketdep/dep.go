// Package intentbracketdep is the cross-package half of the
// intentbracket fixture: a custody-taking teardown helper whose intentID
// parameter makes the facts pass export a needsIntent fact, shifting the
// bracketing obligation onto importing callers.
package intentbracketdep

import "cloudmonatt/internal/rpc"

// Remediate tears the VM down under an intent the caller has already
// made durable; intentID is the custody handle.
func Remediate(c *rpc.ReconnectClient, intentID string) error {
	_ = intentID
	return c.Call("terminate", nil, nil)
}
