// Package spanendfix exercises the spanend analyzer: spans must be ended
// on every path out of the function that opened them; deferred Ends,
// branch-complete Ends, and ownership transfer to a goroutine are clean.
package spanendfix

import (
	"errors"

	"cloudmonatt/internal/obs"
)

func leakedOnReturn(t *obs.Tracer, fail bool) error {
	sp := t.Start(obs.SpanContext{}, "appraise")
	if fail {
		return errors.New("boom") // want `return leaves span sp open`
	}
	sp.End("")
	return nil
}

func discarded(t *obs.Tracer) {
	t.Start(obs.SpanContext{}, "appraise") // want `span result discarded`
}

func fallThrough(t *obs.Tracer) {
	sp := t.Start(obs.SpanContext{}, "appraise") // want `not ended on the fall-through path`
	sp.Annotate("k", "v")
}

func deferred(t *obs.Tracer, fail bool) error {
	sp := t.Start(obs.SpanContext{}, "appraise")
	defer sp.End("")
	if fail {
		return errors.New("boom")
	}
	return nil
}

func branchesClosed(t *obs.Tracer, err error) {
	sp := t.Start(obs.SpanContext{}, "appraise")
	if err != nil {
		sp.EndErr(err)
		return
	}
	sp.End("")
}

func closedEachIteration(t *obs.Tracer, items []int) {
	for range items {
		sp := t.Start(obs.SpanContext{}, "tick")
		sp.End("")
	}
}

func goroutineOwns(t *obs.Tracer) {
	sp := t.Start(obs.SpanContext{}, "bg")
	go func() {
		sp.End("")
	}()
}
