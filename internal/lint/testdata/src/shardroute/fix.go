// Package shardroutefix exercises the shardroute analyzer: VM-addressed
// methods must carry attestRoute provenance, and wrong-shard errors must
// be classified with the typed parser rather than substring matching.
package shardroutefix

import (
	"strings"

	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/shardroutedep"
)

// attestRoute mirrors the controller's routing-provenance type: values
// of it are only minted by the route resolver, so a call through its
// client field is sanctioned.
type attestRoute struct {
	client *rpc.ReconnectClient
	shard  int
}

func rawCall(c *rpc.ReconnectClient) error {
	return c.Call("appraise", nil, nil) // want `direct rpc call to VM-addressed method "appraise" bypasses shard routing`
}

func routed(rt attestRoute) error {
	return rt.client.Call("appraise", nil, nil)
}

func harmless(c *rpc.ReconnectClient) error {
	return c.Call("ping", nil, nil)
}

func factCarried(c *rpc.ReconnectClient) error {
	return c.Call(shardroutedep.MethodRebind, nil, nil) // want `direct rpc call to VM-addressed method "rebind-fixture" bypasses shard routing`
}

func stringly(err error) bool {
	return strings.Contains(err.Error(), "wrong-shard (") // want `wrong-shard errors are typed; classify with shard\.ParseWrongShard`
}

func waived(c *rpc.ReconnectClient) error {
	//lint:ignore shardroute fixture: single-shard harness talks to its own server
	return c.Call("appraise", nil, nil)
}
