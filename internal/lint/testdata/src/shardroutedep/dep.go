// Package shardroutedep is the cross-package half of the shardroute
// fixture: a marker-carrying method constant whose value is deliberately
// absent from the taxonomy seed list, so detection must ride the
// exported vmAddressed fact.
package shardroutedep

// MethodRebind rebinds a VM to a new shard owner; handlers gate it on
// ring ownership. vm-addressed
const MethodRebind = "rebind-fixture"
