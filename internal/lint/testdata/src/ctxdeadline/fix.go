// Package ctxdeadlinefix exercises the ctxdeadline analyzer: RPC call
// sites with provably deadline-free contexts are flagged; WithTimeout
// derivations and caller-supplied contexts are not.
package ctxdeadlinefix

import (
	"context"
	"time"

	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/rpc"
)

type ctxKey struct{}

func unbounded(rc *rpc.ReconnectClient, req, resp any) {
	rc.Call("list_vms", req, resp)                          // want `carries no context`
	rc.CallCtx(context.Background(), "list_vms", req, resp) // want `provably carries no deadline`
	ctx := context.Background()
	rc.CallCtx(ctx, "list_vms", req, resp) // want `provably carries no deadline`
	rc.Connect(context.TODO())             // want `provably carries no deadline`
}

func laundered(rc *rpc.ReconnectClient, sp *obs.ActiveSpan, req, resp any) {
	rc.CallCtx(context.WithValue(context.Background(), ctxKey{}, 1), "m", req, resp) // want `provably carries no deadline`
	rc.CallCtx(obs.ContextWith(context.Background(), sp), "m", req, resp)            // want `provably carries no deadline`
}

func bounded(ctx context.Context, rc *rpc.ReconnectClient, req, resp any) error {
	tctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := rc.CallCtx(tctx, "m", req, resp); err != nil {
		return err
	}
	// A caller-supplied context is the caller's responsibility; the rule
	// re-applies at that caller's own call site.
	return rc.CallIdem(ctx, "m", "key", req, resp)
}
