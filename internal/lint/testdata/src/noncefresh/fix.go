// Package noncefreshfix exercises the noncefresh analyzer: fresh-nonce
// RPC methods must go through CallFresh, and a nonce declared outside a
// loop must not feed request construction inside it.
package noncefreshfix

import (
	"context"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/rpc"
)

// BuildProbe stands in for the wire.Build* request constructors.
func BuildProbe(n cryptoutil.Nonce) any { return n }

func staleMethods(ctx context.Context, rc *rpc.ReconnectClient, req, resp any) {
	rc.CallCtx(ctx, "measure", req, resp)                      // want `must go through CallFresh`
	rc.Call("appraise", req, resp)                             // want `must go through CallFresh`
	rc.CallIdem(ctx, "runtime_attest_current", "k", req, resp) // want `must go through CallFresh`
	rc.CallCtx(ctx, "list_vms", req, resp)                     // clean: carries no protocol nonce
}

func freshMethod(ctx context.Context, rc *rpc.ReconnectClient, resp any) error {
	return rc.CallFresh(ctx, "measure", func(int) (any, error) {
		return BuildProbe(cryptoutil.MustNonce()), nil
	}, resp)
}

func reusedAcrossLoop(items []int) {
	n := cryptoutil.MustNonce()
	for range items {
		_ = BuildProbe(n) // want `reused across iterations`
	}
}

func freshPerIteration(items []int) {
	for range items {
		n := cryptoutil.MustNonce()
		_ = BuildProbe(n)
	}
}

func regeneratedInLoop(items []int) {
	n := cryptoutil.MustNonce()
	for range items {
		n = cryptoutil.MustNonce()
		_ = BuildProbe(n)
	}
}
