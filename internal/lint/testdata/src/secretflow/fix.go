// Package secretflowfix exercises the secretflow analyzer: key material
// must not reach error strings, logs, span annotations, or plaintext
// files unless laundered through cryptoutil.Redact or persisted via
// cryptoutil.WriteSecretFile.
package secretflowfix

import (
	"fmt"
	"log"
	"os"

	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/obs"
	"cloudmonatt/internal/secchan"
	"cloudmonatt/internal/secretflowdep"
)

func direct(id *cryptoutil.Identity) error {
	seed := id.Seed()
	return fmt.Errorf("bad seed %x", seed) // want `secret material \(identity seed\) flows into a error string sink`
}

func propagated(id *cryptoutil.Identity) {
	line := fmt.Sprintf("seed=%x", id.Seed())
	log.Println(line) // want `secret material \(identity seed\) flows into a log sink`
}

func persisted(t secchan.Ticket) error {
	rms := t.RMS
	return os.WriteFile("/tmp/rms", rms[:], 0o600) // want `secret material \(resumption master secret\) flows into a plaintext file sink`
}

func annotated(sp *obs.ActiveSpan, t secchan.Ticket) {
	sp.Annotate("rms", string(t.RMS[:])) // want `secret material \(resumption master secret\) flows into a span annotation sink`
}

func imported(id *cryptoutil.Identity) {
	material := secretflowdep.MintSeed(id)
	log.Printf("minted %x", material) // want `secret material \(identity seed\) flows into a log sink`
}

func redacted(id *cryptoutil.Identity) {
	log.Printf("identity %s", cryptoutil.Redact(id.Seed()))
}

func sanctioned(id *cryptoutil.Identity) error {
	return cryptoutil.WriteSecretFile("/tmp/seed", id.Seed())
}

func waived(id *cryptoutil.Identity) {
	//lint:ignore secretflow fixture demonstrates an audited waiver
	log.Printf("seed %x", id.Seed())
}

func stale() {
	//lint:ignore secretflow nothing leaks here // want `unused //lint:ignore directive: no secretflow finding here to suppress`
}
