// Package lockorderdep is the cross-package half of the lockorder
// fixture: an interface whose method carries the blocking marker, so the
// facts pass exports a contractual blocks fact that the importing
// fixture's call sites pick up.
package lockorderdep

// Certifier abstracts a certification round-trip to the privacy CA.
type Certifier interface {
	// Certify submits the CSR and waits for the signed certificate.
	// lockorder: blocking
	Certify(csr []byte) ([]byte, error)
}
