// Package consttimefix exercises the consttime analyzer: early-exit
// comparison of secret-derived material is flagged, as is math/rand in a
// key-handling package; public nonces and non-secret values are not.
package consttimefix

import (
	"bytes"
	"crypto/ed25519"
	"math/rand" // want `math/rand imported in a key-handling package`
	"reflect"

	"cloudmonatt/internal/cryptoutil"
)

func timingLeaks(q1, q2 [32]byte, sig, sig2 []byte, pub, other ed25519.PublicKey) bool {
	if q1 == q2 { // want `q1 compared with ==`
		return true
	}
	if bytes.Equal(sig, sig2) { // want `sig compared with bytes.Equal`
		return true
	}
	if bytes.Equal(pub, other) { // want `pub compared with bytes.Equal`
		return true
	}
	var sessionKey, peerKey []byte
	if reflect.DeepEqual(sessionKey, peerKey) { // want `sessionKey compared with reflect.DeepEqual`
		return true
	}
	_ = rand.Int()
	return false
}

func cleanCompares(n1, n2 cryptoutil.Nonce, name, want string, count int) bool {
	if n1 != n2 { // nonces are public: replay-cache material, not secret
		return false
	}
	if name == want || count == 0 {
		return false
	}
	return cryptoutil.ConstEqual([]byte(name), []byte(want))
}
