// Package metricsnamefix exercises the metricsname analyzer: registry
// names must be lowercase slash-separated entity/noun-verb segments.
package metricsnamefix

import "cloudmonatt/internal/metrics"

func register(reg *metrics.Registry, prop string) {
	reg.Counter("attestsrv.rpc.retries").Inc() // want `breaks the entity/noun-verb convention`
	reg.Counter("single").Inc()                // want `breaks the entity/noun-verb convention`
	reg.Summary("Ledger/Append")               // want `breaks the entity/noun-verb convention`
	reg.Counter("engine." + prop)              // want `metric name prefix "engine\." breaks`
	reg.Counter("warpcore/flux").Inc()         // want `metric entity "warpcore" is not in metrics.KnownEntities`
	reg.Summary("warpcore/" + prop)            // want `metric entity "warpcore" is not in metrics.KnownEntities`

	reg.Counter("periodic/ticks").Inc()
	reg.Summary("ledger/batch-size")
	reg.IntSummary("appraise/" + prop)
}
