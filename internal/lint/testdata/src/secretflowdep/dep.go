// Package secretflowdep is the cross-package half of the secretflow
// fixture: its exported function returns raw keying material, which the
// facts pass records as a returnsSecret fact for the importing fixture
// package to pick up.
package secretflowdep

import "cloudmonatt/internal/cryptoutil"

// MintSeed hands back the identity's raw seed bytes.
func MintSeed(id *cryptoutil.Identity) []byte {
	return id.Seed()
}
