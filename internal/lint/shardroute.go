package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardRoute enforces routing discipline in ring-mode controller code.
// Since the attestation plane was sharded behind consistent hashing, the
// only sanctioned way to reach a VM-addressed attestsrv method is through
// an attestRoute minted by routeForVM/routeForNode/routeForCluster and
// driven by callRouted, which follows typed wrong-shard redirects. A
// direct rpc client call to a VM-addressed method bypasses ownership
// checks and redirect handling: it works in single-shard tests and
// silently talks to the wrong shard in production.
//
// Which methods are VM-addressed is not hard-coded here: the facts pass
// over internal/attestsrv exports a "vmAddressed" fact for every method
// constant whose doc comment carries the "vm-addressed" marker (plus a
// seed list in the taxonomy for robustness), so the protocol package
// stays the single source of truth.
//
// The second rule: wrong-shard redirects are typed. Classifying them by
// substring-matching the error text (strings.Contains(err, "wrong-shard"))
// breaks the moment the message changes; shard.ParseWrongShard is the
// parser. internal/shard itself is exempt — something has to implement
// the parser.
var ShardRoute = &Analyzer{
	Name: "shardroute",
	Doc: "VM-addressed attestsrv calls must go through attestRoute/callRouted, not raw " +
		"rpc clients; wrong-shard errors must be classified with shard.ParseWrongShard, " +
		"not string matching",
	Run:   runShardRoute,
	Facts: shardRouteFacts,
}

// vmAddressedFact marks a method-name constant as VM-addressed: calls
// carrying it must flow through the routing layer.
type vmAddressedFact struct {
	Method string `json:"method"`
}

// shardRouteFacts exports vmAddressed facts for method constants. A
// constant qualifies if its value is in the taxonomy seed list or its
// doc comment carries the "vm-addressed" marker.
func shardRouteFacts(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				marked := hasMarker(gd.Doc, vmAddressedMarker) || hasMarker(vs.Doc, vmAddressedMarker) ||
					hasMarker(vs.Comment, vmAddressedMarker)
				for _, name := range vs.Names {
					obj := pass.Info.ObjectOf(name)
					cnst, isConst := obj.(*types.Const)
					if !isConst {
						continue
					}
					val := strings.Trim(cnst.Val().ExactString(), `"`)
					if marked || vmAddressedMethods[val] {
						pass.ExportFact(obj, "vmAddressed", vmAddressedFact{Method: val})
					}
				}
			}
		}
	}
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	return strings.Contains(cg.Text(), marker)
}

// runShardRoute reports raw VM-addressed calls and stringly-typed
// wrong-shard classification.
func runShardRoute(pass *Pass) {
	// The shard package owns the wire format; it is allowed to look at it.
	inShardPkg := strings.HasSuffix(pass.Pkg.Path(), "/internal/shard")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkRawRoutedCall(pass, call)
			if !inShardPkg {
				checkStringlyWrongShard(pass, call)
			}
			return true
		})
	}
}

// checkRawRoutedCall flags Call* invocations on rpc clients whose method
// argument is VM-addressed, unless the client was pulled out of an
// attestRoute (rt.client.CallFresh(...) — provenance carried by the type).
func checkRawRoutedCall(pass *Pass, call *ast.CallExpr) {
	recv, _ := methodOf(pass.Info, call)
	if !rpcClientTypes[recv] {
		return
	}
	method := vmAddressedMethodArg(pass, call)
	if method == "" {
		return
	}
	if clientFromRoute(pass.Info, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"direct rpc call to VM-addressed method %q bypasses shard routing; mint an "+
			"attestRoute (routeForVM/routeForNode) and go through callRouted so "+
			"wrong-shard redirects are followed", method)
}

// vmAddressedMethodArg returns the VM-addressed method name carried by the
// call's first constant-string argument, or "". Both the taxonomy seed
// list and imported vmAddressed facts are consulted, so new methods only
// need the doc marker in the protocol package.
func vmAddressedMethodArg(pass *Pass, call *ast.CallExpr) string {
	for _, arg := range call.Args {
		m, ok := constString(pass.Info, arg)
		if !ok {
			continue
		}
		if vmAddressedMethods[m] {
			return m
		}
		if id := constIdent(arg); id != nil {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				var fact vmAddressedFact
				if pass.ImportFact(obj, "vmAddressed", &fact) {
					return fact.Method
				}
			}
		}
		return "" // first constant string is the method; it isn't VM-addressed
	}
	return ""
}

// constIdent digs out the identifier naming a constant argument, through
// parens and conversions like string(attestsrv.MethodAppraise).
func constIdent(expr ast.Expr) *ast.Ident {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return constIdent(e.Args[0])
		}
	}
	return nil
}

// clientFromRoute reports whether the call's receiver is the client field
// of a value whose type is named attestRoute (any package: the fixture
// defines its own). This is how provenance travels: routes are only
// minted by the routeFor* helpers.
func clientFromRoute(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if inner.Sel.Name != "client" {
		return false
	}
	tv, ok := info.Types[inner.X]
	if !ok {
		return false
	}
	named := namedOf(tv.Type)
	return named != nil && named.Obj().Name() == routeTypeName
}

// checkStringlyWrongShard flags substring classification of wrong-shard
// errors: strings.Contains/HasPrefix/HasSuffix/Index with an argument
// mentioning the wrong-shard marker.
func checkStringlyWrongShard(pass *Pass, call *ast.CallExpr) {
	pkg, name := calleeOf(pass.Info, call)
	if pkg != "strings" {
		return
	}
	switch name {
	case "Contains", "HasPrefix", "HasSuffix", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		//lint:ignore shardroute the analyzer itself must name the marker text it hunts for
		if s, ok := constString(pass.Info, arg); ok && strings.Contains(s, "wrong-shard") {
			pass.Reportf(call.Pos(),
				"wrong-shard errors are typed; classify with shard.ParseWrongShard instead of "+
					"strings.%s — substring matching breaks when the redirect message changes", name)
			return
		}
	}
}
