package lint

import "testing"

// TestRepoIsClean is the regression net behind the whole suite: the module
// must stay free of findings from every analyzer. In particular it pins the
// fixes this suite forced — constant-time comparison of keys and quotes
// (cryptoutil.ConstEqual in cryptoutil/secchan/wire), injected clocks in
// ledger and the rpc breaker, deadlines on every entity-boundary RPC, and
// the entity/noun-verb metric grammar. A reintroduced bytes.Equal on key
// material or a bare time.Now() in a protocol path fails this test, not
// just the separate monatt-vet CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAll(pkgs, All()) {
		t.Errorf("%s", d.String(loader.Fset))
	}
}

// TestCryptoScopeCoversDriverTree pins the consttime/math-rand scope to
// the trust-backend driver packages: scoping is by first path segment, so
// the "trust" entry must keep covering the whole driver subtree where
// evidence and measurement comparisons live.
func TestCryptoScopeCoversDriverTree(t *testing.T) {
	covered := []string{
		"cloudmonatt/internal/trust",
		"cloudmonatt/internal/trust/driver",
		"cloudmonatt/internal/trust/driver/tpmdrv",
		"cloudmonatt/internal/trust/driver/vtpmdrv",
		"cloudmonatt/internal/trust/driver/sevsnp",
		"cloudmonatt/internal/vtpm",
	}
	for _, path := range covered {
		if !cryptoScoped(path) {
			t.Errorf("cryptoScoped(%q) = false, want true", path)
		}
	}
	uncovered := []string{
		"cloudmonatt/internal/monitor",
		"cloudmonatt/internal/interpret",
		"crypto/subtle",
	}
	for _, path := range uncovered {
		if cryptoScoped(path) {
			t.Errorf("cryptoScoped(%q) = true, want false", path)
		}
	}
}
