package lint

import "testing"

// TestRepoIsClean is the regression net behind the whole suite: the module
// must stay free of findings from every analyzer. In particular it pins the
// fixes this suite forced — constant-time comparison of keys and quotes
// (cryptoutil.ConstEqual in cryptoutil/secchan/wire), injected clocks in
// ledger and the rpc breaker, deadlines on every entity-boundary RPC, and
// the entity/noun-verb metric grammar. A reintroduced bytes.Equal on key
// material or a bare time.Now() in a protocol path fails this test, not
// just the separate monatt-vet CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAll(pkgs, All()) {
		t.Errorf("%s", d.String(loader.Fset))
	}
}
