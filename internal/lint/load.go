package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked, non-test compilation unit of the module.
type Package struct {
	// Path is the package's import path (synthetic for fixtures).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks module packages on demand. Loaded
// packages are cached for the lifetime of the loader, so a whole-module
// run type-checks each package (and each standard-library dependency)
// exactly once. Test files are not loaded: the invariants monatt-vet
// enforces are production-code rules, and tests legitimately use wall
// clocks and fixed nonces.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std   types.Importer // stdlib, type-checked from GOROOT source
	cache map[string]*Package
	busy  map[string]bool   // cycle detection
	alias map[string]string // synthetic import path → dir (fixtures)
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if p, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load resolves patterns to module packages. Supported forms: "./..."
// (every package under the module root), "dir/..." (every package under
// dir), a directory path ("./internal/rpc"), or an import path
// ("cloudmonatt/internal/rpc"). Results are in deterministic path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, p := range expanded {
			paths[p] = true
		}
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	pkgs := make([]*Package, 0, len(sorted))
	for _, p := range sorted {
		pkg, err := l.loadPath(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) expand(pattern string) ([]string, error) {
	pattern = filepath.ToSlash(pattern)
	switch {
	case pattern == "./...." || pattern == "./...", pattern == "...":
		return l.walk(l.ModRoot)
	case strings.HasSuffix(pattern, "/..."):
		base := strings.TrimSuffix(pattern, "/...")
		return l.walk(filepath.Join(l.ModRoot, l.relOf(base)))
	default:
		rel := l.relOf(pattern)
		if rel == "" {
			return []string{l.ModPath}, nil
		}
		return []string{l.ModPath + "/" + rel}, nil
	}
}

// relOf maps a pattern (dir or import path) to a module-relative slash path.
func (l *Loader) relOf(p string) string {
	p = strings.TrimPrefix(p, "./")
	if sub, ok := strings.CutPrefix(p, l.ModPath); ok {
		return strings.TrimPrefix(sub, "/")
	}
	return strings.Trim(p, "/")
}

// walk lists the import paths of every package directory under root,
// skipping testdata, hidden directories, and dirs with no non-test Go files.
func (l *Loader) walk(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSources(path)
		if err != nil || len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModPath)
		} else {
			out = append(out, l.ModPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// loadPath loads a module-internal import path (cached).
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	var dir string
	if d, ok := l.alias[path]; ok {
		dir = d
	} else {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir = filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	}
	l.busy[path] = true
	defer delete(l.busy, path)
	pkg, err := l.check(dir, path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// LoadDir type-checks the sources in dir as a package with the given
// synthetic import path. Used by the fixture harness: fixtures live under
// testdata (invisible to the go tool) but are checked against the real
// module packages they import.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	pkg, err := l.check(dir, asPath)
	if err != nil {
		return nil, err
	}
	l.cache[asPath] = pkg
	return pkg, nil
}

// Alias maps a synthetic import path to a source directory, letting one
// fixture package import another (the cross-package-fact test cases).
func (l *Loader) Alias(importPath, dir string) {
	if l.alias == nil {
		l.alias = make(map[string]string)
	}
	l.alias[importPath] = dir
}

// Cached returns every package this loader has loaded so far, including
// dependencies pulled in during type-checking. Order is deterministic.
func (l *Loader) Cached() []*Package {
	paths := make([]string, 0, len(l.cache))
	for p := range l.cache {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.cache[p])
	}
	return out
}

func (l *Loader) check(dir, path string) (*Package, error) {
	srcs, err := goSources(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, src := range srcs {
		f, err := parser.ParseFile(l.Fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Load module-internal imports first so the importer below can serve
	// them from cache; order is dependency-first by recursion.
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if ipath == l.ModPath || strings.HasPrefix(ipath, l.ModPath+"/") {
				if _, err := l.loadPath(ipath); err != nil {
					return nil, err
				}
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
