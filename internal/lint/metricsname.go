package lint

import (
	"go/ast"
	"regexp"
	"strings"

	"cloudmonatt/internal/metrics"
)

// MetricsName keeps the Prometheus surface coherent: every counter and
// summary registered on a metrics.Registry must be named
// "entity/noun-verb" — lowercase slash-separated segments with hyphens
// inside a segment ("periodic/ticks", "ledger/batch-size",
// "controller/rpc-retries"). Dots and underscores are rejected: the
// operator-facing names in /metrics are derived mechanically from these
// strings, and one "attestsrv.rpc.retries" among "ledger/append" splits
// dashboards and alert rules across two grammars.
//
// The first segment (the "entity") must additionally come from
// metrics.KnownEntities — the shared subsystem table both the runtime and
// this analyzer read — so a new metric lands inside an existing dashboard
// grouping or the table is extended deliberately.
//
// Names built at runtime are checked on their constant prefix
// ("appraise/" + prop); fully dynamic names are skipped.
var MetricsName = &Analyzer{
	Name: "metricsname",
	Doc: "metrics.Registry names must follow the entity/noun-verb " +
		"convention: lowercase segments separated by '/', hyphens within a segment, " +
		"first segment from metrics.KnownEntities",
	Run: runMetricsName,
}

var (
	// fullMetricName: at least two segments, each [a-z0-9]+(-[a-z0-9]+)*.
	fullMetricName = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*(/[a-z0-9]+(-[a-z0-9]+)*)+$`)
	// metricPrefix: a valid proper prefix of such a name (may end mid-
	// segment or at a separator).
	metricPrefix = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*(/[a-z0-9-]*)*$`)
)

var registryCtors = map[string]bool{"Counter": true, "Summary": true, "IntSummary": true}

func runMetricsName(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			recv, method := methodOf(pass.Info, call)
			if recv != "cloudmonatt/internal/metrics.Registry" || !registryCtors[method] {
				return true
			}
			arg := call.Args[0]
			if name, ok := constString(pass.Info, arg); ok {
				if !fullMetricName.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"metric name %q breaks the entity/noun-verb convention "+
							"(lowercase segments joined by '/', hyphens within a segment, at least two segments)", name)
					return true
				}
				checkEntity(pass, arg, name)
				return true
			}
			// Dynamic name: validate the leftmost constant prefix if any.
			if prefix, ok := constPrefix(pass, arg); ok {
				if !metricPrefix.MatchString(prefix) {
					pass.Reportf(arg.Pos(),
						"metric name prefix %q breaks the entity/noun-verb convention "+
							"(lowercase segments joined by '/', hyphens within a segment)", prefix)
					return true
				}
				// The entity is decided once the prefix covers the first
				// separator; shorter prefixes leave it dynamic, unchecked.
				if strings.Contains(prefix, "/") {
					checkEntity(pass, arg, prefix)
				}
			}
			return true
		})
	}
}

// checkEntity validates the first segment against the shared subsystem
// table in internal/metrics.
func checkEntity(pass *Pass, arg ast.Expr, name string) {
	entity, _, _ := strings.Cut(name, "/")
	if !metrics.KnownEntities[entity] {
		pass.Reportf(arg.Pos(),
			"metric entity %q is not in metrics.KnownEntities; pick an existing "+
				"subsystem entity or add the new one to the shared table so dashboards "+
				"can group it", entity)
	}
}

// constPrefix descends the left spine of a + concatenation to the leftmost
// constant-foldable operand.
func constPrefix(pass *Pass, e ast.Expr) (string, bool) {
	for {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			break
		}
		e = bin.X
	}
	return constString(pass.Info, e)
}
