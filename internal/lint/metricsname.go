package lint

import (
	"go/ast"
	"regexp"
)

// MetricsName keeps the Prometheus surface coherent: every counter and
// summary registered on a metrics.Registry must be named
// "entity/noun-verb" — lowercase slash-separated segments with hyphens
// inside a segment ("periodic/ticks", "ledger/batch-size",
// "controller/rpc-retries"). Dots and underscores are rejected: the
// operator-facing names in /metrics are derived mechanically from these
// strings, and one "attestsrv.rpc.retries" among "ledger/append" splits
// dashboards and alert rules across two grammars.
//
// Names built at runtime are checked on their constant prefix
// ("appraise/" + prop); fully dynamic names are skipped.
var MetricsName = &Analyzer{
	Name: "metricsname",
	Doc: "metrics.Registry names must follow the entity/noun-verb " +
		"convention: lowercase segments separated by '/', hyphens within a segment",
	Run: runMetricsName,
}

var (
	// fullMetricName: at least two segments, each [a-z0-9]+(-[a-z0-9]+)*.
	fullMetricName = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*(/[a-z0-9]+(-[a-z0-9]+)*)+$`)
	// metricPrefix: a valid proper prefix of such a name (may end mid-
	// segment or at a separator).
	metricPrefix = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*(/[a-z0-9-]*)*$`)
)

var registryCtors = map[string]bool{"Counter": true, "Summary": true, "IntSummary": true}

func runMetricsName(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			recv, method := methodOf(pass.Info, call)
			if recv != "cloudmonatt/internal/metrics.Registry" || !registryCtors[method] {
				return true
			}
			arg := call.Args[0]
			if name, ok := constString(pass.Info, arg); ok {
				if !fullMetricName.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"metric name %q breaks the entity/noun-verb convention "+
							"(lowercase segments joined by '/', hyphens within a segment, at least two segments)", name)
				}
				return true
			}
			// Dynamic name: validate the leftmost constant prefix if any.
			if prefix, ok := constPrefix(pass, arg); ok && !metricPrefix.MatchString(prefix) {
				pass.Reportf(arg.Pos(),
					"metric name prefix %q breaks the entity/noun-verb convention "+
						"(lowercase segments joined by '/', hyphens within a segment)", prefix)
			}
			return true
		})
	}
}

// constPrefix descends the left spine of a + concatenation to the leftmost
// constant-foldable operand.
func constPrefix(pass *Pass, e ast.Expr) (string, bool) {
	for {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			break
		}
		e = bin.X
	}
	return constString(pass.Info, e)
}
