package controller_test

import (
	"testing"
	"time"

	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/controller"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/server"
)

func newTB(t *testing.T, opts cloudsim.Options) (*cloudsim.Testbed, *cloudsim.Customer) {
	t.Helper()
	tb, err := cloudsim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := tb.NewCustomer("tester")
	if err != nil {
		t.Fatal(err)
	}
	return tb, cu
}

func req() controller.LaunchRequest {
	return controller.LaunchRequest{
		ImageName: "cirros", Flavor: "small", Workload: "idle",
		Props:     properties.All,
		Allowlist: []string{"init", "sshd", "cron", "rsyslogd", "agetty"},
		Pin:       -1,
	}
}

func TestLaunchValidation(t *testing.T) {
	_, cu := newTB(t, cloudsim.Options{Seed: 61})
	r := req()
	r.Flavor = "giant"
	if _, err := cu.Launch(r); err == nil {
		t.Fatal("unknown flavor accepted")
	}
	r = req()
	r.ImageName = "debian"
	if _, err := cu.Launch(r); err == nil {
		t.Fatal("unknown image accepted")
	}
	r = req()
	r.Props = []properties.Property{"bogus"}
	if _, err := cu.Launch(r); err == nil {
		t.Fatal("bogus property accepted")
	}
}

func TestSchedulerSpreadsLoad(t *testing.T) {
	tb, cu := newTB(t, cloudsim.Options{Seed: 62, Servers: 3})
	seen := make(map[string]int)
	for i := 0; i < 3; i++ {
		res, err := cu.Launch(req())
		if err != nil || !res.OK {
			t.Fatalf("launch %d: %v %s", i, err, res.Reason)
		}
		seen[res.Server]++
	}
	if len(seen) != 3 {
		t.Fatalf("most-free weigher did not spread: %v", seen)
	}
	_ = tb
}

func TestMigrateWithoutDestinationTerminates(t *testing.T) {
	// One server only: migration policy for availability has nowhere to go,
	// so the VM is terminated for security (paper §5.3).
	tb, cu := newTB(t, cloudsim.Options{Seed: 63, Servers: 1})
	r := req()
	r.Workload = "spinner"
	r.MinShare = 0.25
	r.Pin = 1
	res, err := cu.Launch(r)
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	if _, err := tb.LaunchCoResident(res.Server, "attack:cpu-starver", 1); err != nil {
		t.Fatal(err)
	}
	v, err := cu.Attest(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatalf("starved VM healthy: %v", v)
	}
	events := tb.Ctrl.Events()
	if len(events) != 1 {
		t.Fatalf("events: %+v", events)
	}
	if events[0].Response != controller.Migrate || !events[0].Terminated {
		t.Fatalf("expected failed migration ending in termination, got %+v", events[0])
	}
	if st, _ := tb.Ctrl.VMState(res.Vid); st != "terminated" {
		t.Fatalf("state %q", st)
	}
}

func TestUnknownVMQueries(t *testing.T) {
	tb, _ := newTB(t, cloudsim.Options{Seed: 64})
	if _, err := tb.Ctrl.VMServer("ghost"); err == nil {
		t.Fatal("VMServer for ghost VM")
	}
	if _, err := tb.Ctrl.VMState("ghost"); err == nil {
		t.Fatal("VMState for ghost VM")
	}
	if err := tb.Ctrl.TerminateVM("ghost"); err == nil {
		t.Fatal("terminated ghost VM")
	}
	if err := tb.Ctrl.SuspendVM("ghost"); err == nil {
		t.Fatal("suspended ghost VM")
	}
	if err := tb.Ctrl.ResumeVM("ghost"); err == nil {
		t.Fatal("resumed ghost VM")
	}
	if _, err := tb.Ctrl.MigrateVM("ghost"); err == nil {
		t.Fatal("migrated ghost VM")
	}
}

func TestDoubleTerminateRejected(t *testing.T) {
	tb, cu := newTB(t, cloudsim.Options{Seed: 65})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	if err := tb.Ctrl.TerminateVM(res.Vid); err != nil {
		t.Fatal(err)
	}
	if err := tb.Ctrl.TerminateVM(res.Vid); err == nil {
		t.Fatal("double terminate accepted")
	}
}

func TestExplicitMigration(t *testing.T) {
	tb, cu := newTB(t, cloudsim.Options{Seed: 66, Servers: 2})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	src := res.Server
	dest, err := tb.Ctrl.MigrateVM(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	if dest == src {
		t.Fatal("migrated onto the same server")
	}
	now, _ := tb.Ctrl.VMServer(res.Vid)
	if now != dest {
		t.Fatalf("controller DB says %s, migration said %s", now, dest)
	}
	// The VM is attestable at its new home.
	v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy {
		t.Fatalf("migrated VM unhealthy: %v", v)
	}
}

func TestDefaultPolicyCoversRuntimeProperties(t *testing.T) {
	p := controller.DefaultPolicy()
	for _, prop := range []properties.Property{
		properties.RuntimeIntegrity, properties.CovertChannelFreedom, properties.CPUAvailability,
	} {
		if p[prop] == "" {
			t.Errorf("no default response for %s", prop)
		}
	}
}

func TestPeriodicThroughController(t *testing.T) {
	tb, cu := newTB(t, cloudsim.Options{Seed: 67})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cu.StartPeriodic(res.Vid, "bogus", 5*time.Second); err == nil {
		t.Fatal("periodic armed for unprovisioned property")
	}
	tb.RunFor(12 * time.Second)
	vs, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 1 {
		t.Fatal("no periodic results via the controller")
	}
	left, err := cu.StopPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	_ = left
	if _, err := cu.FetchPeriodic("ghost", properties.CPUAvailability); err == nil {
		t.Fatal("fetch for ghost VM succeeded")
	}
	if _, err := cu.StopPeriodic("ghost", properties.CPUAvailability); err == nil {
		t.Fatal("stop for ghost VM succeeded")
	}
}

func TestRandomPeriodicThroughController(t *testing.T) {
	tb, cu := newTB(t, cloudsim.Options{Seed: 68})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	if err := cu.StartPeriodicRandom(res.Vid, properties.CPUAvailability, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	tb.RunFor(25 * time.Second)
	vs, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 2 {
		t.Fatalf("only %d random-interval results over 25s at ~4s mean", len(vs))
	}
}

func TestListVMsAndEventsScopedToOwner(t *testing.T) {
	tb, cu := newTB(t, cloudsim.Options{Seed: 69})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	mine := tb.Ctrl.ListVMs("tester")
	if len(mine) != 1 || mine[0].Vid != res.Vid || mine[0].State != "active" {
		t.Fatalf("ListVMs(owner) = %+v", mine)
	}
	if others := tb.Ctrl.ListVMs("someone-else"); len(others) != 0 {
		t.Fatalf("foreign owner sees VMs: %+v", others)
	}
	// Trigger a response and check EventsFor scoping.
	g, err := tb.GuestOf(res.Vid)
	if err != nil {
		t.Fatal(err)
	}
	g.InfectRootkit("bad")
	if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || v.Healthy {
		t.Fatalf("infection not flagged: %v %v", v, err)
	}
	if evs := tb.Ctrl.EventsFor("tester"); len(evs) != 1 || evs[0].Response != controller.Terminate {
		t.Fatalf("EventsFor(owner) = %+v", evs)
	}
	if evs := tb.Ctrl.EventsFor("someone-else"); len(evs) != 0 {
		t.Fatalf("foreign owner sees events: %+v", evs)
	}
	// Terminated VMs drop out of the listing.
	if mine := tb.Ctrl.ListVMs("tester"); len(mine) != 0 {
		t.Fatalf("terminated VM still listed: %+v", mine)
	}
}

func TestHandlerRejectsGarbage(t *testing.T) {
	tb, _ := newTB(t, cloudsim.Options{Seed: 70})
	h := tb.Ctrl.Handler()
	for _, method := range []string{
		controller.MethodLaunchVM, controller.MethodTerminateVM,
		controller.MethodRuntimeAttestCurrent, controller.MethodRuntimeAttestPeriodic,
		controller.MethodStopAttestPeriodic, controller.MethodFetchPeriodic,
	} {
		if _, err := h(rpcPeer("x"), method, []byte("not-gob")); err == nil {
			t.Errorf("%s accepted garbage body", method)
		}
	}
	if _, err := h(rpcPeer("x"), "no-such-method", nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func rpcPeer(name string) rpc.Peer { return rpc.Peer{Name: name} }

func TestLaunchSurvivesDeadServer(t *testing.T) {
	// Failure injection: a registered server that is not listening. The
	// scheduler will try it (it looks maximally free) and must fall through
	// to a live candidate instead of failing the launch.
	tb, cu := newTB(t, cloudsim.Options{Seed: 71, Servers: 2})
	tb.Ctrl.RegisterServer(controller.ServerEntry{
		Name:     "dead-server",
		Addr:     "server:nowhere",
		Capacity: deadCapacity(),
		Props:    properties.All,
	})
	res, err := cu.Launch(req())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("launch failed instead of skipping the dead server: %s", res.Reason)
	}
	if res.Server == "dead-server" {
		t.Fatal("VM placed on a dead server")
	}
}

// deadCapacity makes the dead server the most attractive candidate.
func deadCapacity() (c serverCapacity) {
	c.VCPUs, c.MemoryMB, c.DiskGB = 64, 1<<17, 2000
	return
}

type serverCapacity = server.Capacity
