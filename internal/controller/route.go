package controller

// Attestation-plane routing. The controller reaches Attestation Servers two
// ways:
//
//   - Cluster mode (the paper's §3.2.3 static split): each cloud server
//     belongs to a cluster, each cluster has one Attestation Server, and a
//     VM's appraisal state lives wherever its host's cluster points.
//   - Ring mode (Config.Ring set): shards joined to a consistent-hash ring
//     own VMs by hashing the VM id, so ownership survives migration across
//     hosts and Join/Leave moves only ~1/N of the fleet.
//
// Both modes resolve to an attestRoute — a client plus the report-signing
// key to verify against. In ring mode a route can be stale the moment it is
// computed (a shard joined between lookup and call); the misrouted shard
// answers with a WrongShardError naming the owner under its newer view, and
// callRouted retries directly against that named owner. The redirect works
// even when the controller's own ring is behind, because the error carries
// the answer — no view refresh sits on the hot path.

import (
	"errors"
	"fmt"

	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/shard"
)

// attestRoute is one resolved path to an Attestation Server.
type attestRoute struct {
	client  *rpc.ReconnectClient
	key     []byte // the server's report-signing public key
	node    string // shard name in ring mode; "" in cluster mode
	cluster int    // cluster index in cluster mode; -1 in ring mode
}

// ringMode reports whether the attestation plane is sharded by ring.
func (c *Controller) ringMode() bool { return c.cfg.Ring != nil }

// RegisterAttestShard records one shard of the ring-mode attestation plane:
// its name on the ring, its endpoint, and its report-signing key
// (provisioned out of band, like any trust anchor). Re-registering a name
// replaces the endpoint and key.
func (c *Controller) RegisterAttestShard(node, addr string, pub []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shardAddrs[node] = addr
	c.shardPubs[node] = append([]byte(nil), pub...)
	// Drop a stale client so the next route re-dials the new endpoint.
	delete(c.shardClients, node)
}

// routeForNode resolves a route to a named shard.
func (c *Controller) routeForNode(node string) (attestRoute, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	addr, ok := c.shardAddrs[node]
	if !ok {
		return attestRoute{}, fmt.Errorf("controller: unknown attestation shard %q", node)
	}
	cl, ok := c.shardClients[node]
	if !ok {
		cl = c.newClient("attest-"+node, addr)
		c.shardClients[node] = cl
	}
	return attestRoute{client: cl, key: c.shardPubs[node], node: node, cluster: -1}, nil
}

// routeForCluster resolves a route in cluster mode.
func (c *Controller) routeForCluster(cluster int) (attestRoute, error) {
	cl, err := c.attestClientFor(cluster)
	if err != nil {
		return attestRoute{}, err
	}
	return attestRoute{client: cl, key: c.attestKey(cluster), cluster: cluster}, nil
}

// routeForVM resolves the route for a VM-addressed request: by ring
// ownership of the VM id in ring mode, by the VM's host's cluster
// otherwise.
func (c *Controller) routeForVM(vid string) (attestRoute, error) {
	if c.ringMode() {
		owner, _, ok := c.cfg.Ring.Lookup(vid)
		if !ok {
			return attestRoute{}, fmt.Errorf("controller: attestation ring is empty")
		}
		return c.routeForNode(owner)
	}
	c.mu.Lock()
	rec, ok := c.vms[vid]
	var cluster int
	if ok {
		if e, okS := c.servers[rec.Server]; okS {
			cluster = e.Cluster
		}
	}
	c.mu.Unlock()
	if !ok {
		return attestRoute{}, fmt.Errorf("controller: no such VM %q", vid)
	}
	return c.routeForCluster(cluster)
}

// routeForVMOnServer resolves the route for a VM whose record may already
// be gone (teardown, crash recovery): ring mode still routes by the VM id;
// cluster mode falls back to the named host's cluster.
func (c *Controller) routeForVMOnServer(vid, srv string) (attestRoute, error) {
	if c.ringMode() {
		owner, _, ok := c.cfg.Ring.Lookup(vid)
		if !ok {
			return attestRoute{}, fmt.Errorf("controller: attestation ring is empty")
		}
		return c.routeForNode(owner)
	}
	return c.routeForCluster(c.clusterOfServer(srv))
}

// maxShardRedirects bounds how many wrong-shard answers one logical call
// follows. Each redirect goes straight to the owner the refusing shard
// named, so one hop suffices unless the ring moved again mid-flight; two
// covers that narrow race without letting a confused plane loop.
const maxShardRedirects = 2

// callRouted runs fn against a route, following wrong-shard refusals to
// the named owner. It returns the route that finally answered (or the last
// one tried), so callers verify reports against the key that actually
// signed them. Errors other than a parseable wrong-shard refusal — and
// wrong-shard refusals naming no owner — propagate unchanged, keeping the
// existing degradation taxonomy intact: redirects happen strictly before
// the RemoteError-vs-transport classification at the call sites.
func (c *Controller) callRouted(rt attestRoute, fn func(attestRoute) error) (attestRoute, error) {
	for hop := 0; ; hop++ {
		err := fn(rt)
		if err == nil || hop >= maxShardRedirects {
			return rt, err
		}
		var rerr *rpc.RemoteError
		if !errors.As(err, &rerr) {
			return rt, err
		}
		ws, ok := shard.ParseWrongShard(rerr.Msg)
		if !ok || ws.Owner == "" || ws.Owner == rt.node {
			return rt, err
		}
		next, routeErr := c.routeForNode(ws.Owner)
		if routeErr != nil {
			return rt, err
		}
		c.cfg.Metrics.Counter("controller/wrong-shard-redirects").Inc()
		rt = next
	}
}

// shardKeys snapshots every registered shard's report-signing key.
func (c *Controller) shardKeys() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, 0, len(c.shardPubs))
	for _, k := range c.shardPubs {
		out = append(out, append([]byte(nil), k...))
	}
	return out
}
