package controller_test

import (
	"testing"
	"time"

	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/properties"
)

// TestPeriodicFlowDrainsOnceStopIdempotent covers the full periodic
// attestation lifecycle through the controller: results accumulate while the
// stream is armed, a fetch hands each report to the customer exactly once,
// and stopping an already-stopped stream is a harmless no-op rather than an
// error.
func TestPeriodicFlowDrainsOnceStopIdempotent(t *testing.T) {
	tb, cu := newTB(t, cloudsim.Options{Seed: 72})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	if err := cu.StartPeriodic(res.Vid, properties.CPUAvailability, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	tb.RunFor(16 * time.Second)
	first, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) < 2 {
		t.Fatalf("got %d results over ~16s at 5s frequency", len(first))
	}
	// Drain exactly once: an immediate refetch returns nothing.
	again, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("refetch redelivered %d results", len(again))
	}
	// The stream keeps producing after a drain.
	tb.RunFor(6 * time.Second)
	more, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatal(err)
	}
	if len(more) == 0 {
		t.Fatal("stream went quiet after fetch")
	}

	// Stop returns any stragglers; a second stop is idempotent.
	if _, err := cu.StopPeriodic(res.Vid, properties.CPUAvailability); err != nil {
		t.Fatal(err)
	}
	left, err := cu.StopPeriodic(res.Vid, properties.CPUAvailability)
	if err != nil {
		t.Fatalf("second stop errored: %v", err)
	}
	if len(left) != 0 {
		t.Fatalf("second stop surfaced %d results", len(left))
	}
	// And nothing is produced once stopped.
	tb.RunFor(10 * time.Second)
	if vs, err := cu.FetchPeriodic(res.Vid, properties.CPUAvailability); err != nil {
		t.Fatal(err)
	} else if len(vs) != 0 {
		t.Fatalf("%d results produced after stop", len(vs))
	}
}
