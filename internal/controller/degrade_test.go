package controller_test

import (
	"testing"
	"time"

	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/cryptoutil"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/wire"
)

// TestAttestDegradesToStaleReportOnPartition covers the controller's
// graceful degradation: with the attestation server blackholed, an
// attestation request is answered from the last-known-good verdict,
// flagged stale with its age, signed as usual — and never escalated to
// remediation. The retries and the degradation are recorded in metrics and
// the evidence ledger, and a healed network yields fresh reports again.
func TestAttestDegradesToStaleReportOnPartition(t *testing.T) {
	fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{Seed: 5})
	tb, cu := newTB(t, cloudsim.Options{
		Seed:        65,
		Network:     fn,
		CallTimeout: 250 * time.Millisecond,
		Retry:       rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:     rpc.BreakerPolicy{Threshold: -1},
	})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	tb.RunFor(time.Second)

	// A healthy attestation populates the last-known-good cache.
	rep1, err := cu.AttestReport(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Stale || !rep1.Verdict.Healthy {
		t.Fatalf("healthy baseline report: stale=%v verdict=%v", rep1.Stale, rep1.Verdict)
	}
	tb.RunFor(3 * time.Second) // virtual time passes; the cache ages

	// Blackhole the attestation server and attest again, directly against
	// the controller (the customer-to-controller link stays healthy).
	fn.Partition("attestation-server")
	n1 := cryptoutil.MustNonce()
	rep, err := tb.Ctrl.Attest(wire.AttestRequest{Vid: res.Vid, Prop: properties.RuntimeIntegrity, N1: n1})
	if err != nil {
		t.Fatalf("attest during partition: %v (want stale degradation, not failure)", err)
	}
	if !rep.Stale {
		t.Fatal("report during partition not flagged stale")
	}
	if rep.Age <= 0 {
		t.Fatalf("stale report age %v, want > 0", rep.Age)
	}
	if err := wire.VerifyCustomerReport(rep, tb.Ctrl.PublicKey(), res.Vid, properties.RuntimeIntegrity, n1); err != nil {
		t.Fatalf("stale report does not verify: %v", err)
	}
	if !rep.Verdict.Healthy {
		t.Fatalf("last-known-good verdict was healthy, stale report says %v", rep.Verdict)
	}

	// An infrastructure failure must never look like a property failure.
	if evs := tb.Ctrl.Events(); len(evs) != 0 {
		t.Fatalf("partition escalated to remediation: %+v", evs)
	}

	// The degradation and the retries are observable.
	m := tb.Ctrl.Metrics()
	if m.Counter("controller/degraded-stale-reports").Value() == 0 {
		t.Fatal("stale-report counter not incremented")
	}
	if m.Counter("controller/rpc-retries").Value() == 0 {
		t.Fatal("retry counter not incremented")
	}
	if es, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindDegraded}); err != nil || len(es) == 0 {
		t.Fatalf("no degraded entry in the evidence ledger (err %v)", err)
	}
	if es, err := tb.Ledger.Query(ledger.Filter{Kind: ledger.KindRPCFault}); err != nil || len(es) == 0 {
		t.Fatalf("no rpc-fault entry in the evidence ledger (err %v)", err)
	}

	// Heal: the next report is fresh again.
	fn.HealAll()
	rep2, err := cu.AttestReport(res.Vid, properties.RuntimeIntegrity)
	if err != nil {
		t.Fatalf("attest after heal: %v", err)
	}
	if rep2.Stale {
		t.Fatal("report still stale after the partition healed")
	}
}

// TestAttestWithoutCacheFailsCleanlyOnPartition: degradation requires a
// last-known-good verdict for that (vid, property); without one the
// controller reports the infrastructure failure instead of inventing a
// verdict.
func TestAttestWithoutCacheFailsCleanlyOnPartition(t *testing.T) {
	fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{Seed: 6})
	tb, cu := newTB(t, cloudsim.Options{
		Seed:        66,
		Network:     fn,
		CallTimeout: 200 * time.Millisecond,
		Retry:       rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker:     rpc.BreakerPolicy{Threshold: -1},
	})
	res, err := cu.Launch(req())
	if err != nil || !res.OK {
		t.Fatalf("launch: %v %s", err, res.Reason)
	}
	// covert-channel-freedom was never attested post-launch: no cache entry.
	fn.Partition("attestation-server")
	rep, err := tb.Ctrl.Attest(wire.AttestRequest{
		Vid: res.Vid, Prop: properties.CovertChannelFreedom, N1: cryptoutil.MustNonce(),
	})
	if err == nil {
		t.Fatalf("attest with no cached verdict returned %+v, want an error", rep)
	}
	if evs := tb.Ctrl.Events(); len(evs) != 0 {
		t.Fatalf("partition escalated to remediation: %+v", evs)
	}
}
