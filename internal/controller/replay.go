package controller

import (
	"encoding/json"
	"fmt"

	"cloudmonatt/internal/attestsrv"
	"cloudmonatt/internal/image"
	"cloudmonatt/internal/ledger"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/reconcile"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/server"
)

// Recover rebuilds the controller's desired state and in-flight intents
// from the evidence ledger after a crash, then reconciles to convergence.
//
// The fold walks every retained entry in chain order and replays the
// two-phase intents:
//
//   - a completed launch recreates the VM row (desired state from the
//     begin record, placement from the end) and its capacity reservation;
//   - a begin without an end is a torn intent — the crash hit between
//     acting and recording completion — and becomes work: torn launches
//     are cleaned off their candidate hosts, torn remediations are
//     re-declared (idempotently re-executed, never duplicated: completed
//     intents fold as already done), torn teardowns re-enter the
//     finalizer;
//   - migrate-out / migrated / terminate / state completions move the
//     fold the same way the live operations moved the controller.
//
// Degradation evidence (KindDegraded) replays to nothing: an
// infrastructure failure never becomes a remediation, crash or no crash.
func (c *Controller) Recover() error {
	if c.cfg.Ledger == nil {
		return fmt.Errorf("controller: recovery requires a ledger")
	}

	type launchBegin struct {
		ir intentRecord
	}
	launchBegins := make(map[string]*launchBegin)         // vid → open launch
	openPlaces := make(map[string]map[string]string)      // vid → intent id → server
	openRemediate := make(map[string]*pendingRemediation) // vid → torn remediation
	recs := make(map[string]*vmRecord)
	var eventOrder []ResponseEvent
	maxVid, maxIntent, replayed := 0, 0, 0

	noteIntent := func(id string) {
		var n int
		if _, err := fmt.Sscanf(id, "in-%d", &n); err == nil && n > maxIntent {
			maxIntent = n
		}
	}
	noteVid := func(vid string) {
		var n int
		if _, err := fmt.Sscanf(vid, "vm-%d", &n); err == nil && n > maxVid {
			maxVid = n
		}
	}
	flavorOf := func(name string) (image.Flavor, bool) {
		f, err := image.FlavorByName(name)
		return f, err == nil
	}

	cur := c.cfg.Ledger.Cursor()
	for {
		e, ok, err := cur.Next()
		if err != nil {
			return fmt.Errorf("controller: ledger replay: %w", err)
		}
		if !ok {
			break
		}
		replayed++
		switch e.Kind {
		case ledger.KindIntent:
			var ir intentRecord
			if err := json.Unmarshal(e.Payload, &ir); err != nil {
				continue
			}
			noteIntent(ir.ID)
			rec := recs[e.Vid]
			switch {
			case ir.Op == "launch" && ir.Phase == "begin":
				noteVid(e.Vid)
				launchBegins[e.Vid] = &launchBegin{ir: ir}
			case ir.Op == "launch" && ir.Phase == "end":
				lb := launchBegins[e.Vid]
				delete(launchBegins, e.Vid)
				if !ir.OK || lb == nil {
					break
				}
				flavor, okF := flavorOf(lb.ir.Flavor)
				if !okF {
					break
				}
				props := make([]properties.Property, len(lb.ir.Props))
				for i, p := range lb.ir.Props {
					props[i] = properties.Property(p)
				}
				nr := &vmRecord{
					Vid: e.Vid, Owner: lb.ir.Owner, Server: ir.Server,
					ImageName: lb.ir.Image, Flavor: flavor, Props: props,
					Allowlist: lb.ir.Allowlist, MinShare: lb.ir.MinShare,
					Workload: lb.ir.Workload, State: "active",
				}
				recs[e.Vid] = nr
				c.reserve(ir.Server, flavor)
			case ir.Op == "place" && ir.Phase == "begin":
				if openPlaces[e.Vid] == nil {
					openPlaces[e.Vid] = make(map[string]string)
				}
				openPlaces[e.Vid][ir.ID] = ir.Server
			case ir.Op == "place" && ir.Phase == "end":
				delete(openPlaces[e.Vid], ir.ID)
			case ir.Op == "remediate" && ir.Phase == "begin":
				openRemediate[e.Vid] = &pendingRemediation{
					Prop:     properties.Property(e.Prop),
					Reason:   ir.Reason,
					Response: ResponseKind(ir.Response),
					IntentID: ir.ID,
				}
			case ir.Op == "remediate" && ir.Phase == "end":
				open := openRemediate[e.Vid]
				delete(openRemediate, e.Vid)
				ev := ResponseEvent{
					Vid: e.Vid, Response: ResponseKind(ir.Response),
					Reason: ir.Reason, At: e.At,
					NewServer: ir.NewServer, Terminated: ir.Terminated,
				}
				if open != nil {
					ev.Prop = open.Prop
				}
				eventOrder = append(eventOrder, ev)
				if rec == nil {
					break
				}
				switch {
				case ir.Terminated:
					// The remediation completion is only written after the
					// termination fully finalized.
					rec.State = "terminated"
					rec.Deleted = true
					if !rec.Finalized {
						rec.Finalized = true
						if !rec.MigratedOut {
							c.release(rec.Server, rec.Flavor)
						}
					}
					rec.MigratedOut = false
				case ResponseKind(ir.Response) == Suspend:
					rec.State = "suspended"
					rec.SuspendedFor = ev.Prop
				}
			case ir.Op == "terminate" && ir.Phase == "begin":
				if rec != nil {
					rec.State = "terminated"
					rec.Deleted = true
					rec.terminateIntent = ir.ID
				}
			case ir.Op == "terminate" && ir.Phase == "end":
				if rec != nil && !rec.Finalized {
					rec.State = "terminated"
					rec.Deleted, rec.Finalized = true, true
					if !rec.MigratedOut {
						c.release(rec.Server, rec.Flavor)
					}
					rec.MigratedOut = false
				}
			case ir.Op == "migrate-out":
				if rec != nil && !rec.MigratedOut {
					c.release(rec.Server, rec.Flavor)
					rec.MigratedOut = true
					rec.MigrateSpec = ir.Spec
				}
			case ir.Op == "migrated":
				if rec != nil {
					c.reserve(ir.Server, rec.Flavor)
					rec.Server = ir.Server
					rec.MigratedOut = false
					rec.MigrateSpec = nil
				}
			case ir.Op == "state":
				if rec != nil && rec.State != "terminated" && ir.State != "" {
					rec.State = ir.State
				}
			}
		case ledger.KindRemediation:
			// ResumeVM leaves a plain remediation record; fold it so a
			// suspended-then-resumed VM recovers as active.
			var p struct {
				Response string `json:"response"`
			}
			if err := json.Unmarshal(e.Payload, &p); err == nil && p.Response == "resume" {
				if rec := recs[e.Vid]; rec != nil && rec.State == "suspended" {
					rec.State = "active"
					rec.SuspendedFor = ""
				}
			}
		}
	}

	// Torn launches: the crash hit mid-pipeline. Any open place intent may
	// have left a guest (and an appraisal registration) behind on its
	// candidate server — clean both up, best effort; the VM row never
	// materializes, so the customer simply saw the launch fail.
	torn := 0
	for vid := range launchBegins {
		for _, srv := range openPlaces[vid] {
			torn++
			c.recoverCleanup(vid, srv)
		}
		delete(openPlaces, vid)
		c.cfg.Metrics.Counter("controller/recover-torn-launches").Inc()
	}
	// Torn places under a completed launch cannot happen (a crash kills the
	// whole launch), but clean up defensively if the fold disagrees.
	for vid, places := range openPlaces {
		rec := recs[vid]
		for _, srv := range places {
			if rec != nil && rec.Server == srv {
				continue
			}
			torn++
			c.recoverCleanup(vid, srv)
		}
	}

	// Install the recovered rows, then turn torn intents into declared
	// work for the reconcile loop.
	c.mu.Lock()
	for vid, rec := range recs {
		c.vms[vid] = rec
	}
	if maxVid > c.nextVid {
		c.nextVid = maxVid
	}
	if maxIntent > c.nextIntent {
		c.nextIntent = maxIntent
	}
	c.mu.Unlock()

	now := c.cfg.Clock.Now()
	for vid, rec := range recs {
		rec.Conditions.Set(now, reconcile.Condition{
			Type: reconcile.CondPlaced, Status: reconcile.True,
			Reason: "Recovered", Message: rec.Server,
		})
		if p := openRemediate[vid]; p != nil && !rec.Finalized {
			torn++
			rec.Pending = p
			c.cfg.Metrics.Counter("controller/recover-torn-remediations").Inc()
		}
		if rec.Deleted && !rec.Finalized {
			torn++
		}
		for _, ev := range eventOrder {
			if ev.Vid == vid {
				e := ev
				rec.lastEvent = &e
			}
		}
		if !(rec.Deleted && rec.Finalized) {
			c.loop.Enqueue(vid)
		}
	}
	for _, ev := range eventOrder {
		c.appendEvent(ev)
	}
	c.cfg.Metrics.Counter("controller/recover-replayed-entries").Add(int64(replayed))
	c.cfg.Metrics.Counter("controller/recover-torn-intents").Add(int64(torn))
	c.record(ledger.KindIntent, "", "", "", intentRecord{
		Phase: "end", Op: "recover", ID: c.intentID(), OK: true,
	})

	// Converge: finish torn teardowns, re-execute torn remediations,
	// schedule periodic re-attestation for the survivors.
	c.loop.ProcessReady()
	return nil
}

// recoverCleanup removes the debris of a torn placement: the guest on the
// candidate server and its appraisal registration. Best effort — the
// server may never have spawned it, and "no VM" is the converged outcome.
func (c *Controller) recoverCleanup(vid, srv string) {
	ctx, cancel := c.opCtx()
	defer cancel()
	if mgmt, err := c.mgmtClient(srv); err == nil {
		mgmt.CallIdem(ctx, server.MethodTerminate, rpc.NewIdemKey(), server.VidRequest{Vid: vid}, nil)
	}
	if rt, err := c.routeForVMOnServer(vid, srv); err == nil {
		c.callRouted(rt, func(rt attestRoute) error {
			return rt.client.CallCtx(ctx, attestsrv.MethodForgetVM, struct{ Vid string }{vid}, nil)
		})
	}
}
