package controller_test

import (
	"testing"
	"time"

	"cloudmonatt/internal/cloudsim"
	"cloudmonatt/internal/properties"
	"cloudmonatt/internal/rpc"
	"cloudmonatt/internal/server"
)

// serverNames mirrors cloudsim's naming scheme for the capacity audit.
func serverNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = cloudsimServerName(i)
	}
	return out
}

func cloudsimServerName(i int) string {
	return "cloud-server-" + string(rune('1'+i))
}

func totalUsed(tb *cloudsim.Testbed, names []string) server.Capacity {
	var sum server.Capacity
	for _, n := range names {
		u := tb.Ctrl.UsedCapacity(n)
		sum.VCPUs += u.VCPUs
		sum.MemoryMB += u.MemoryMB
		sum.DiskGB += u.DiskGB
	}
	return sum
}

// TestCapacityAccountingBalanced audits that every reserve is balanced by a
// release across the launch pipeline's failure paths: a rejected launch
// (corrupt image), a platform-integrity reschedule, and a normal
// terminate. Any leak would eventually wedge the scheduler with phantom
// load.
func TestCapacityAccountingBalanced(t *testing.T) {
	names := serverNames(2)

	t.Run("terminate releases", func(t *testing.T) {
		tb, cu := newTB(t, cloudsim.Options{Seed: 81, Servers: 2})
		if got := totalUsed(tb, names); got != (server.Capacity{}) {
			t.Fatalf("capacity reserved before any launch: %+v", got)
		}
		res, err := cu.Launch(req())
		if err != nil || !res.OK {
			t.Fatalf("launch: %v %s", err, res.Reason)
		}
		if got := totalUsed(tb, names); got == (server.Capacity{}) {
			t.Fatal("active VM holds no reservation")
		}
		if err := cu.Terminate(res.Vid); err != nil {
			t.Fatal(err)
		}
		if got := totalUsed(tb, names); got != (server.Capacity{}) {
			t.Fatalf("terminate leaked capacity: %+v", got)
		}
	})

	t.Run("rejected launch releases", func(t *testing.T) {
		tb, cu := newTB(t, cloudsim.Options{Seed: 82, Servers: 2})
		tb.CorruptNextImage()
		res, err := cu.Launch(req())
		if err != nil {
			t.Fatal(err)
		}
		if res.OK {
			t.Fatal("corrupt image launched")
		}
		if got := totalUsed(tb, names); got != (server.Capacity{}) {
			t.Fatalf("rejected launch leaked capacity: %+v", got)
		}
	})

	t.Run("unreachable appraiser registration releases the candidate", func(t *testing.T) {
		// The guest spawns and its reservation is taken before the controller
		// registers appraisal references with the Attestation Server; if that
		// registration cannot round-trip, both must be unwound.
		fn := rpc.NewFaultNetwork(rpc.NewMemNetwork(), rpc.FaultConfig{Seed: 3})
		tb, _ := newTB(t, cloudsim.Options{
			Seed: 84, Servers: 2, Network: fn,
			CallTimeout: 250 * time.Millisecond,
			Retry:       rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
			Breaker:     rpc.BreakerPolicy{Threshold: -1},
		})
		fn.Partition("attestation-server")
		r := req()
		r.Owner = "tester"
		// Direct call: the controller's retry budget against the partitioned
		// appraiser outlives a customer-facing rpc timeout.
		res, err := tb.Ctrl.LaunchVM(r)
		if err == nil && res.OK {
			t.Fatal("launch succeeded with the appraiser unreachable")
		}
		if got := totalUsed(tb, names); got != (server.Capacity{}) {
			t.Fatalf("appraiser-failure launch leaked capacity: %+v", got)
		}
	})

	t.Run("remediation terminate releases", func(t *testing.T) {
		tb, cu := newTB(t, cloudsim.Options{Seed: 85, Servers: 2})
		res, err := cu.Launch(req())
		if err != nil || !res.OK {
			t.Fatalf("launch: %v %s", err, res.Reason)
		}
		g, err := tb.GuestOf(res.Vid)
		if err != nil {
			t.Fatal(err)
		}
		g.InfectRootkit("stealth-miner")
		if v, err := cu.Attest(res.Vid, properties.RuntimeIntegrity); err != nil || v.Healthy {
			t.Fatalf("rootkit attest: %v %v", v, err)
		}
		// The auto-response terminated the VM; its reservation must be gone.
		if st, _ := tb.Ctrl.VMState(res.Vid); st != "terminated" {
			t.Fatalf("state %q after response", st)
		}
		if got := totalUsed(tb, names); got != (server.Capacity{}) {
			t.Fatalf("remediation terminate leaked capacity: %+v", got)
		}
	})

	t.Run("platform reschedule releases the failed candidate", func(t *testing.T) {
		tamper := map[string]bool{cloudsimServerName(0): true}
		tb, cu := newTB(t, cloudsim.Options{Seed: 83, Servers: 2, TamperPlatform: tamper})
		res, err := cu.Launch(req())
		if err != nil || !res.OK {
			t.Fatalf("launch: %v %s", err, res.Reason)
		}
		if res.Server == cloudsimServerName(0) {
			t.Fatalf("VM placed on tampered server %s", res.Server)
		}
		if got := tb.Ctrl.UsedCapacity(cloudsimServerName(0)); got != (server.Capacity{}) {
			t.Fatalf("tampered candidate still holds a reservation: %+v", got)
		}
		if got := tb.Ctrl.UsedCapacity(res.Server); got == (server.Capacity{}) {
			t.Fatal("placed VM holds no reservation")
		}
		if err := cu.Terminate(res.Vid); err != nil {
			t.Fatal(err)
		}
		if got := totalUsed(tb, names); got != (server.Capacity{}) {
			t.Fatalf("capacity leaked after reschedule + terminate: %+v", got)
		}
	})
}
